// Fig. 6 reproduction: qualitative vehicle detection & classification.
//
// The paper's Fig. 6 shows example detections from the prototype. This
// bench trains the split detector, renders a few detections (ASCII, the
// repo's stand-in for the figure's annotated photos), and quantifies what
// the figure could only illustrate: per-class precision/recall and the
// tiny-vs-full quality gap on the same frames.

#include <benchmark/benchmark.h>

#include "apps/vehicle_app.h"
#include "bench_util.h"

namespace {

using namespace metro;

apps::VehicleDetectionApp& TrainedApp() {
  static auto* app = [] {
    zoo::DetectorConfig config;
    auto* a = new apps::VehicleDetectionApp(config, 606);
    std::printf("[training split detector: 220 steps ...]\n");
    a->Train(220, 16);
    return a;
  }();
  return *app;
}

void QualitativeExamples() {
  auto& app = TrainedApp();
  const auto& config = app.detector().config();
  std::printf("\n=== Fig. 6: example detections (ASCII render; digits mark "
              "predicted class at box corner) ===\n");
  for (int i = 0; i < 3; ++i) {
    datagen::LabeledFrame frame = app.generator().Generate(2);
    const auto result = app.ProcessFrame(
        frame.image.Reshape(
            {1, config.image_size, config.image_size, config.channels}),
        0.35f);
    std::printf("\nframe %d  (ground truth:", i);
    for (const auto& box : frame.boxes) std::printf(" cls%d", box.cls);
    std::printf(")  path=%s  confidence=%.2f\n",
                result.offloaded ? "server (full model)" : "local (tiny)",
                result.tiny_confidence);
    std::printf("%s",
                apps::VehicleDetectionApp::RenderAscii(frame.image,
                                                       result.detections)
                    .c_str());
    for (const auto& det : result.detections) {
      std::printf("  -> class %d score %.2f box(%.2f, %.2f, %.2f, %.2f)\n",
                  det.cls, det.score, det.cx, det.cy, det.w, det.h);
    }
  }
  std::fflush(stdout);
}

void PerClassQuality() {
  auto& app = TrainedApp();
  const auto& config = app.detector().config();
  const int per_class = 40;

  struct Tally {
    int truths = 0, hits = 0, detections = 0;
  };
  std::vector<Tally> tiny(std::size_t(config.num_classes));
  std::vector<Tally> full(std::size_t(config.num_classes));

  auto score = [&](bool use_full, std::vector<Tally>& tally) {
    Rng unused(1);
    for (int cls = 0; cls < config.num_classes; ++cls) {
      for (int i = 0; i < per_class; ++i) {
        datagen::LabeledFrame frame = app.generator().Generate(1);
        const auto result = app.ProcessFrame(
            frame.image.Reshape({1, config.image_size, config.image_size,
                                 config.channels}),
            use_full ? 1.01f : 0.0f);
        for (const auto& box : frame.boxes) {
          ++tally[std::size_t(box.cls)].truths;
        }
        for (const auto& det : result.detections) {
          ++tally[std::size_t(det.cls)].detections;
          for (const auto& box : frame.boxes) {
            zoo::Detection gt;
            gt.cx = box.cx;
            gt.cy = box.cy;
            gt.w = box.w;
            gt.h = box.h;
            if (det.cls == box.cls && zoo::Iou(det, gt) > 0.3f) {
              ++tally[std::size_t(det.cls)].hits;
              break;
            }
          }
        }
      }
    }
  };
  score(false, tiny);
  score(true, full);

  bench::Table table({"class", "tiny recall", "tiny precision", "full recall",
                      "full precision"});
  for (int cls = 0; cls < config.num_classes; ++cls) {
    const auto& t = tiny[std::size_t(cls)];
    const auto& f = full[std::size_t(cls)];
    table.AddRow(
        {bench::FmtInt(cls),
         bench::Fmt(t.truths ? double(t.hits) / t.truths : 0, 3),
         bench::Fmt(t.detections ? double(t.hits) / t.detections : 0, 3),
         bench::Fmt(f.truths ? double(f.hits) / f.truths : 0, 3),
         bench::Fmt(f.detections ? double(f.hits) / f.detections : 0, 3)});
  }
  table.Print("Fig. 6: per-class detection quality, tiny exit vs full model");
}

void BM_DecodeAndNms(benchmark::State& state) {
  auto& app = TrainedApp();
  const auto& config = app.detector().config();
  datagen::LabeledFrame frame = app.generator().Generate(2);
  tensor::Tensor stem = app.detector().Stem(
      frame.image.Reshape(
          {1, config.image_size, config.image_size, config.channels}),
      false);
  tensor::Tensor out = app.detector().TinyHead(stem, false);
  for (auto _ : state) {
    auto dets = zoo::Nms(app.detector().Decode(out, 0, 0.1f), 0.4f, 0.1f);
    benchmark::DoNotOptimize(dets.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeAndNms);

}  // namespace

int main(int argc, char** argv) {
  QualitativeExamples();
  PerClassQuality();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
