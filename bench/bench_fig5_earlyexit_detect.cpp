// Fig. 5 reproduction: the split Tiny/Full early-exit vehicle detector.
//
// The figure's claim: run Tiny locally; when its best detection score is
// below a threshold, ship the branch feature map to the analysis server for
// the full model. This bench trains the split detector on synthetic vehicle
// frames, then sweeps the exit threshold and reports accuracy, detection
// precision/recall, offload fraction, bytes shipped per 1000 frames, and
// mean per-frame latency on the fog topology. Expected shape: accuracy and
// offloads rise together with the threshold; a mid threshold recovers most
// of the full model's accuracy at a fraction of the offloads.

// With --json[=path] the bench instead measures the eager layer-by-layer
// inference path against the planned arena-backed session on the
// single-image local-exit workload and merges the numbers into
// BENCH_infer.json (latency, throughput, heap allocations per inference,
// peak arena bytes) — the acceptance evidence for the inference engine.

#include <benchmark/benchmark.h>

#include "apps/vehicle_app.h"
#include "bench_util.h"
#include "fog/fog.h"
#include "infer_json.h"

namespace {

using namespace metro;

constexpr int kTrainSteps = 220;
constexpr int kEvalFrames = 150;

int g_train_steps = kTrainSteps;  // --json mode trains fewer steps

apps::VehicleDetectionApp& TrainedApp() {
  static auto* app = [] {
    zoo::DetectorConfig config;
    auto* a = new apps::VehicleDetectionApp(config, 2026);
    std::printf("[training split detector: %d steps ...]\n", g_train_steps);
    a->Train(g_train_steps, 16);
    return a;
  }();
  return *app;
}

void ThresholdSweep() {
  auto& app = TrainedApp();
  bench::Table table({"exit threshold", "offload %", "top-cls acc", "recall",
                      "precision", "mean IoU", "bytes/1k frames",
                      "mean lat (ms)"});

  for (const float threshold :
       {0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.7f, 0.9f, 1.01f}) {
    const auto eval = app.Evaluate(kEvalFrames, threshold);

    // Price the offloads on the Fig. 3 fog topology.
    fog::FogConfig fog_config;
    fog_config.num_edges = 8;
    fog::FogTopology topo(fog_config);
    std::vector<fog::WorkItem> items;
    Rng gate(7);
    const auto& det = app.detector();
    for (int i = 0; i < kEvalFrames; ++i) {
      fog::WorkItem item;
      item.id = std::uint64_t(i);
      item.edge = i % fog_config.num_edges;
      item.arrival = TimeNs(i) * 66 * kMillisecond;
      item.raw_bytes = std::uint64_t(det.config().image_size) *
                       det.config().image_size * 3 * 4;
      item.feature_bytes = det.FeatureMapBytes();
      item.local_macs = det.StemMacs(1) + det.TinyHeadMacs(1);
      item.server_macs = det.FullHeadMacs(1);
      item.local_exit = !gate.Bernoulli(eval.offload_fraction);
      items.push_back(item);
    }
    const auto fog_result = fog::RunEarlyExitPipeline(topo, std::move(items));

    const double bytes_per_1k =
        eval.offload_fraction * double(det.FeatureMapBytes()) * 1000.0;
    table.AddRow({bench::Fmt(threshold, 2),
                  bench::Fmt(eval.offload_fraction * 100, 1),
                  bench::Fmt(eval.classification_accuracy, 3),
                  bench::Fmt(eval.recall, 3), bench::Fmt(eval.precision, 3),
                  bench::Fmt(eval.mean_iou, 3),
                  bench::FmtBytes(std::uint64_t(bytes_per_1k)),
                  bench::Fmt(fog_result.mean_latency_ms, 2)});
  }
  table.Print(
      "Fig. 5: exit-threshold sweep of the split detector "
      "(tiny head local, full head on analysis server)");

  // Compute-cost context for the split (why the exit pays).
  bench::Table costs({"stage", "MACs/frame", "output bytes"});
  const auto& det = app.detector();
  costs.AddRow({"shared stem (local)", bench::FmtInt(std::int64_t(det.StemMacs(1))),
                bench::FmtBytes(det.FeatureMapBytes())});
  costs.AddRow({"tiny head (local)", bench::FmtInt(std::int64_t(det.TinyHeadMacs(1))), "-"});
  costs.AddRow({"full head (server)", bench::FmtInt(std::int64_t(det.FullHeadMacs(1))), "-"});
  costs.Print("Fig. 5: per-stage compute of the split architecture");
}

void BM_TinyInference(benchmark::State& state) {
  auto& app = TrainedApp();
  auto frame = app.generator().Generate(1);
  const auto& config = app.detector().config();
  const auto batch = frame.image.Reshape(
      {1, config.image_size, config.image_size, config.channels});
  for (auto _ : state) {
    auto result = app.ProcessFrame(batch, 0.0f);  // never offload
    benchmark::DoNotOptimize(result.tiny_confidence);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TinyInference);

void BM_FullInference(benchmark::State& state) {
  auto& app = TrainedApp();
  auto frame = app.generator().Generate(1);
  const auto& config = app.detector().config();
  const auto batch = frame.image.Reshape(
      {1, config.image_size, config.image_size, config.channels});
  for (auto _ : state) {
    auto result = app.ProcessFrame(batch, 1.01f);  // always offload
    benchmark::DoNotOptimize(result.detections.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullInference);

// Eager-vs-planned comparison on the Fig. 5 single-image local-exit
// workload (stem + tiny head + gate + decode + NMS), written to JSON.
int RunJsonMode(const std::string& path) {
  auto& app = TrainedApp();
  auto& det = app.detector();
  const auto& config = det.config();
  auto frame = app.generator().Generate(1);
  const auto batch = frame.image.Reshape(
      {1, config.image_size, config.image_size, config.channels});
  constexpr int kIters = 300;

  // Eager oracle path: per-layer heap-allocated activations.
  const auto eager = bench_json::Measure(20, kIters, [&] {
    nn::Tensor stem = det.Stem(batch, false);
    nn::Tensor tiny = det.TinyHead(stem, false);
    const float conf = det.Confidence(tiny, 0);
    auto dets = zoo::Nms(det.Decode(tiny, 0, 0.1f), 0.4f, 0.1f);
    benchmark::DoNotOptimize(conf);
    benchmark::DoNotOptimize(dets.size());
  });

  // Planned session path: same math, arena-backed (threshold 0 never
  // offloads, matching the eager loop above).
  const auto planned = bench_json::Measure(20, kIters, [&] {
    auto result = app.ProcessFrame(batch, 0.0f);
    benchmark::DoNotOptimize(result.tiny_confidence);
    benchmark::DoNotOptimize(result.detections.size());
  });

  const double speedup =
      planned.latency_ms > 0 ? eager.latency_ms / planned.latency_ms : 0;
  const double alloc_reduction =
      planned.heap_allocs_per_call > 0
          ? eager.heap_allocs_per_call / planned.heap_allocs_per_call
          : eager.heap_allocs_per_call;

  std::ostringstream os;
  os << "{\n    \"train_steps\": " << g_train_steps
     << ",\n    \"iters\": " << kIters
     << ",\n    \"eager\": " << bench_json::PathJson(eager)
     << ",\n    \"planned\": " << bench_json::PathJson(planned)
     << ",\n    \"peak_arena_bytes\": " << app.session().arena().peak_bytes()
     << ",\n    \"latency_speedup\": " << bench_json::Num(speedup)
     << ",\n    \"alloc_reduction\": " << bench_json::Num(alloc_reduction)
     << "\n  }";
  bench_json::MergeInferJson(path, "fig5_earlyexit_detect", os.str());

  std::printf(
      "fig5 local-exit: eager %.3f ms (%.1f allocs/call) -> planned %.3f ms "
      "(%.1f allocs/call); speedup %.2fx, alloc reduction %.1fx, "
      "peak arena %zu bytes -> %s\n",
      eager.latency_ms, eager.heap_allocs_per_call, planned.latency_ms,
      planned.heap_allocs_per_call, speedup, alloc_reduction,
      app.session().arena().peak_bytes(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (bench_json::ParseJsonFlag(argc, argv, json_path)) {
    g_train_steps = 40;
    return RunJsonMode(json_path);
  }
  ThresholdSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
