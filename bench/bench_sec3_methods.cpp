// Sec. III reproduction: the methodology building blocks the paper claims
// beyond the two headline applications — multi-modal fusion + CCA
// (Sec. III-C) and deep reinforcement learning for camera control
// (Sec. III-D) — plus the inception CNN variant of Sec. III-A.
//
// Expected shapes: fused detection beats either degraded single-modality
// pathway (the multimodal-learning claim); CCA finds the shared latent
// signature; the trained DQN policy beats a random policy by a wide
// margin; the inception block trains to parity with a plain conv stack.

#include <benchmark/benchmark.h>

#include "apps/camera_control.h"
#include "apps/gunshot_app.h"
#include "bench_util.h"
#include "nn/optimizer.h"
#include "util/clock.h"
#include "zoo/inception.h"

namespace {

using namespace metro;

void FusionTable() {
  bench::Table table({"gunshot fraction", "fused acc", "video-only acc",
                      "audio-only acc", "top CCA corr", "AE loss"});
  for (const double fraction : {0.15, 0.3, 0.5}) {
    apps::GunshotDetectionApp::Config config;
    config.gunshot_fraction = fraction;
    apps::GunshotDetectionApp app(config, 31 + std::uint64_t(fraction * 100));
    const auto eval = app.TrainAndEvaluate(384, 80, 256);
    table.AddRow({bench::Fmt(fraction, 2), bench::Fmt(eval.fused_accuracy, 3),
                  bench::Fmt(eval.video_only_accuracy, 3),
                  bench::Fmt(eval.audio_only_accuracy, 3),
                  bench::Fmt(eval.top_canonical_correlation, 3),
                  bench::Fmt(eval.autoencoder_loss, 4)});
  }
  table.Print(
      "Sec. III-C: multi-modal gunshot detection — fused vs degraded "
      "single-modality pathways (autoencoder fusion + logistic head)");
}

void DrlTable() {
  bench::Table table({"episodes trained", "policy return", "random return",
                      "improvement"});
  for (const int episodes : {0, 40, 120, 240}) {
    apps::CameraEnv::Config env_config;
    env_config.grid = 5;
    env_config.zoom_levels = 2;
    env_config.episode_steps = 25;
    env_config.incident_lifetime = 25;
    zoo::DqnConfig dqn;
    dqn.hidden = {24, 24};
    dqn.batch_size = 32;
    dqn.learning_rate = 2e-3f;
    dqn.target_sync_interval = 50;
    apps::CameraControlApp app(env_config, dqn, 1000 + std::uint64_t(episodes));
    if (episodes > 0) (void)app.Train(episodes);
    const double policy = app.EvaluatePolicy(40);
    const double random = app.EvaluateRandom(40);
    table.AddRow({bench::FmtInt(episodes), bench::Fmt(policy, 2),
                  bench::Fmt(random, 2),
                  bench::Fmt(policy - random, 2)});
  }
  table.Print(
      "Sec. III-D: DRL camera control — greedy DQN policy vs random policy "
      "(pan/zoom toward incidents)");
}

void InceptionVsPlain() {
  // Same budget comparison: inception block vs a plain 3x3 conv stack on a
  // 4-class quadrant task.
  constexpr int kClasses = 4, kImage = 12, kSteps = 300;
  auto make = [](Rng& rng, int n, nn::Tensor& x, std::vector<int>& labels) {
    x = nn::Tensor({n, kImage, kImage, 1});
    labels.resize(std::size_t(n));
    for (int i = 0; i < n; ++i) {
      const int cls = int(rng.UniformU64(kClasses));
      labels[std::size_t(i)] = cls;
      const int qy = cls / 2, qx = cls % 2;
      for (int y = 0; y < kImage; ++y) {
        for (int xx = 0; xx < kImage; ++xx) {
          const bool bright =
              (y >= qy * kImage / 2 && y < (qy + 1) * kImage / 2 &&
               xx >= qx * kImage / 2 && xx < (qx + 1) * kImage / 2);
          x[(std::size_t(i) * kImage + y) * kImage + std::size_t(xx)] =
              (bright ? 0.9f : 0.1f) + float(rng.Normal(0, 0.1));
        }
      }
    }
  };

  bench::Table table({"backbone", "test acc", "params", "fwd MACs",
                      "train ms"});

  // Variant A: inception module.
  {
    Rng rng(71);
    zoo::InceptionConfig config;
    zoo::InceptionBlock block(1, config, rng);
    nn::GlobalAvgPool gap;
    nn::Dense head(config.total_out(), kClasses, rng);
    nn::Adam opt(4e-3f);
    Rng data_rng(72);
    const auto start = WallClock::Instance().Now();
    for (int step = 0; step < kSteps; ++step) {
      nn::Tensor x;
      std::vector<int> labels;
      make(data_rng, 24, x, labels);
      auto ce = tensor::CrossEntropyLoss(
          head.Forward(gap.Forward(block.Forward(x, true), true), true),
          labels);
      block.Backward(gap.Backward(head.Backward(ce.grad)));
      std::vector<nn::Param*> params = block.Params();
      for (nn::Param* p : head.Params()) params.push_back(p);
      opt.Step(params);
    }
    const double ms =
        double(WallClock::Instance().Now() - start) / kMillisecond;
    nn::Tensor x;
    std::vector<int> labels;
    make(data_rng, 256, x, labels);
    auto ce = tensor::CrossEntropyLoss(
        head.Forward(gap.Forward(block.Forward(x, false), false), false),
        labels);
    std::size_t params = 0;
    for (nn::Param* p : block.Params()) params += p->value.size();
    table.AddRow({"inception module (Sec. III-A)",
                  bench::Fmt(double(ce.correct) / 256, 3),
                  bench::FmtInt(std::int64_t(params)),
                  bench::FmtInt(std::int64_t(
                      block.ForwardMacs({1, kImage, kImage, 1}))),
                  bench::Fmt(ms, 1)});
  }

  // Variant B: plain conv stack with a similar output width.
  {
    Rng rng(73);
    nn::Sequential net;
    net.Emplace<nn::Conv2d>(1, 24, 3, 1, 1, rng)
        .Emplace<nn::Activation>(nn::ActKind::kRelu);
    nn::GlobalAvgPool gap;
    nn::Dense head(24, kClasses, rng);
    nn::Adam opt(4e-3f);
    Rng data_rng(74);
    const auto start = WallClock::Instance().Now();
    for (int step = 0; step < kSteps; ++step) {
      nn::Tensor x;
      std::vector<int> labels;
      make(data_rng, 24, x, labels);
      auto ce = tensor::CrossEntropyLoss(
          head.Forward(gap.Forward(net.Forward(x, true), true), true), labels);
      net.Backward(gap.Backward(head.Backward(ce.grad)));
      std::vector<nn::Param*> params = net.Params();
      for (nn::Param* p : head.Params()) params.push_back(p);
      opt.Step(params);
    }
    const double ms =
        double(WallClock::Instance().Now() - start) / kMillisecond;
    nn::Tensor x;
    std::vector<int> labels;
    make(data_rng, 256, x, labels);
    auto ce = tensor::CrossEntropyLoss(
        head.Forward(gap.Forward(net.Forward(x, false), false), false),
        labels);
    std::size_t params = 0;
    for (nn::Param* p : net.Params()) params += p->value.size();
    table.AddRow({"plain 3x3 conv (baseline)",
                  bench::Fmt(double(ce.correct) / 256, 3),
                  bench::FmtInt(std::int64_t(params)),
                  bench::FmtInt(
                      std::int64_t(net.ForwardMacs({1, kImage, kImage, 1}))),
                  bench::Fmt(ms, 1)});
  }
  table.Print("Sec. III-A: inception module vs plain conv backbone");
}

void BM_InceptionForward(benchmark::State& state) {
  Rng rng(75);
  zoo::InceptionBlock block(3, {}, rng);
  nn::Tensor x = nn::Tensor::RandomNormal({4, 12, 12, 3}, 1.0f, rng);
  for (auto _ : state) {
    nn::Tensor y = block.Forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_InceptionForward);

}  // namespace

int main(int argc, char** argv) {
  FusionTable();
  DrlTable();
  InceptionVsPlain();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
