// Fig. 8 reproduction: the convolutional-shortcut ResNet block ablation.
//
// The paper's Fig. 8 states the design choice: "we use a convolutional
// layer for shortcut path instead of max pooling layer mostly used in
// Resnet block architecture". This bench trains a one-block classifier on
// a synthetic image task with each shortcut variant and compares accuracy,
// convergence, parameter count, and forward MACs. Expected shape: the conv
// shortcut matches or beats the pooling shortcut's accuracy at a modest
// parameter/compute premium.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/clock.h"
#include "zoo/resnet_block.h"

namespace {

using namespace metro;
using nn::Tensor;

constexpr int kClasses = 4;
constexpr int kImage = 12;
constexpr int kTrainSteps = 120;

// Four-class task: bright quadrant identifies the class — enough structure
// that the block's spatial features matter.
void MakeBatch(Rng& rng, int n, Tensor& x, std::vector<int>& labels) {
  x = Tensor({n, kImage, kImage, 1});
  labels.resize(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    const int cls = int(rng.UniformU64(kClasses));
    labels[std::size_t(i)] = cls;
    const int qy = cls / 2, qx = cls % 2;
    for (int y = 0; y < kImage; ++y) {
      for (int x_ = 0; x_ < kImage; ++x_) {
        const bool bright = (y >= qy * kImage / 2 && y < (qy + 1) * kImage / 2 &&
                             x_ >= qx * kImage / 2 && x_ < (qx + 1) * kImage / 2);
        x[((std::size_t(i) * kImage + y) * kImage + x_)] =
            (bright ? 0.9f : 0.1f) + float(rng.Normal(0, 0.1));
      }
    }
  }
}

struct AblationResult {
  double accuracy = 0;
  float loss_at_20 = 0;  ///< training loss after 20 steps (convergence speed)
  float final_loss = 0;
  std::size_t params = 0;
  std::size_t macs = 0;
  double train_ms = 0;
};

AblationResult RunVariant(zoo::ShortcutKind kind, std::uint64_t seed) {
  Rng rng(seed);
  zoo::ResNetBlock block(1, 8, 2, kind, rng);
  nn::GlobalAvgPool gap;
  nn::Dense head(8, kClasses, rng);
  nn::Adam opt(4e-3f);

  AblationResult res;
  for (nn::Param* p : block.Params()) res.params += p->value.size();
  res.macs = block.ForwardMacs({1, kImage, kImage, 1});

  Rng data_rng(seed ^ 0x5EED);
  const auto start = WallClock::Instance().Now();
  for (int step = 0; step < kTrainSteps; ++step) {
    Tensor x;
    std::vector<int> labels;
    MakeBatch(data_rng, 24, x, labels);
    Tensor logits = head.Forward(gap.Forward(block.Forward(x, true), true), true);
    auto ce = tensor::CrossEntropyLoss(logits, labels);
    block.Backward(gap.Backward(head.Backward(ce.grad)));
    std::vector<nn::Param*> params = block.Params();
    for (nn::Param* p : head.Params()) params.push_back(p);
    nn::ClipGradNorm(params, 5.0f);
    opt.Step(params);
    if (step == 19) res.loss_at_20 = ce.loss;
    res.final_loss = ce.loss;
  }
  res.train_ms = double(WallClock::Instance().Now() - start) / kMillisecond;

  Tensor x;
  std::vector<int> labels;
  MakeBatch(data_rng, 256, x, labels);
  auto ce = tensor::CrossEntropyLoss(
      head.Forward(gap.Forward(block.Forward(x, false), false), false), labels);
  res.accuracy = double(ce.correct) / 256.0;
  return res;
}

void Ablation() {
  struct Variant {
    zoo::ShortcutKind kind;
    const char* name;
  };
  const Variant variants[] = {
      {zoo::ShortcutKind::kConv, "conv shortcut (paper, Fig. 8)"},
      {zoo::ShortcutKind::kMaxPool, "max-pool shortcut (baseline)"},
  };
  bench::Table table({"shortcut", "test acc (mean of 3 seeds)", "loss@20",
                      "final loss", "params", "fwd MACs", "train ms"});
  for (const auto& variant : variants) {
    double acc = 0, loss20 = 0, lossf = 0, ms = 0;
    AblationResult last;
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
      last = RunVariant(variant.kind, seed);
      acc += last.accuracy;
      loss20 += last.loss_at_20;
      lossf += last.final_loss;
      ms += last.train_ms;
    }
    table.AddRow({variant.name, bench::Fmt(acc / 3, 3),
                  bench::Fmt(loss20 / 3, 3), bench::Fmt(lossf / 3, 3),
                  bench::FmtInt(std::int64_t(last.params)),
                  bench::FmtInt(std::int64_t(last.macs)),
                  bench::Fmt(ms / 3, 1)});
  }
  // Identity shortcut only applies without downsampling; report it on a
  // stride-1 variant for completeness.
  {
    Rng rng(55);
    zoo::ResNetBlock block(8, 8, 1, zoo::ShortcutKind::kIdentity, rng);
    std::size_t params = 0;
    for (nn::Param* p : block.Params()) params += p->value.size();
    table.AddRow({"identity shortcut (stride-1 blocks only)", "-", "-", "-",
                  bench::FmtInt(std::int64_t(params)),
                  bench::FmtInt(std::int64_t(block.ForwardMacs({1, 6, 6, 8}))),
                  "-"});
  }
  table.Print("Fig. 8: residual-block shortcut ablation");
}

void BM_ConvShortcutForward(benchmark::State& state) {
  Rng rng(1);
  zoo::ResNetBlock block(3, 16, 2, zoo::ShortcutKind::kConv, rng);
  Tensor x = Tensor::RandomNormal({4, 16, 16, 3}, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = block.Forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ConvShortcutForward);

void BM_PoolShortcutForward(benchmark::State& state) {
  Rng rng(1);
  zoo::ResNetBlock block(3, 16, 2, zoo::ShortcutKind::kMaxPool, rng);
  Tensor x = Tensor::RandomNormal({4, 16, 16, 3}, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = block.Forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PoolShortcutForward);

}  // namespace

int main(int argc, char** argv) {
  Ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
