// Substrate micro-benchmarks (Sec. II-C2's integration claims): DFS block
// I/O, message-log produce/fetch, LSM store reads/writes/scans, document
// store queries, dataflow shuffle, scheduler placement, and NLP primitives.
// These quantify the building blocks underneath the figure benches.

#include <benchmark/benchmark.h>

#include "dataflow/dataset.h"
#include "dfs/dfs.h"
#include "mq/message_log.h"
#include "sched/resource_manager.h"
#include "store/document_store.h"
#include "store/lsm.h"
#include "store/wide_column.h"
#include "text/text.h"
#include "util/rng.h"

namespace {

using namespace metro;

std::string RandomValue(Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = char('a' + rng.UniformU64(26));
  return s;
}

// ---------------------------------------------------------------- DFS

void BM_DfsWrite64K(benchmark::State& state) {
  Rng rng(1);
  const std::string data = RandomValue(rng, 64 * 1024);
  std::size_t i = 0;
  dfs::Cluster cluster(5, {.block_size = 16 * 1024, .replication = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster.Create("/bench/f" + std::to_string(i++), data).ok());
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) * 64 * 1024 * 3);
}
BENCHMARK(BM_DfsWrite64K);

void BM_DfsRead64K(benchmark::State& state) {
  Rng rng(2);
  dfs::Cluster cluster(5, {.block_size = 16 * 1024, .replication = 3});
  (void)cluster.Create("/bench/file", RandomValue(rng, 64 * 1024));
  for (auto _ : state) {
    auto data = cluster.Read("/bench/file");
    benchmark::DoNotOptimize(data.ok());
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_DfsRead64K);

void BM_DfsReplicationPass(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    dfs::Cluster cluster(6, {.block_size = 8 * 1024, .replication = 3});
    for (int f = 0; f < 20; ++f) {
      (void)cluster.Create("/f" + std::to_string(f), RandomValue(rng, 16 * 1024));
    }
    cluster.node(0).Kill();
    cluster.node(1).Kill();
    state.ResumeTiming();
    benchmark::DoNotOptimize(cluster.RunReplicationPass());
  }
}
BENCHMARK(BM_DfsReplicationPass)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- MQ

void BM_MqProduce(benchmark::State& state) {
  SimClock clock;
  mq::MessageLog log(clock);
  (void)log.CreateTopic("t", 8);
  Rng rng(4);
  const std::string value = RandomValue(rng, 256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        log.Produce("t", "key" + std::to_string(i++ % 1000), value).ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(std::int64_t(state.iterations()) * 256);
}
BENCHMARK(BM_MqProduce);

void BM_MqFetchBatch128(benchmark::State& state) {
  SimClock clock;
  mq::MessageLog log(clock);
  (void)log.CreateTopic("t", 1);
  Rng rng(5);
  for (int i = 0; i < 100'000; ++i) {
    (void)log.ProduceTo("t", 0, "", RandomValue(rng, 128));
  }
  std::int64_t offset = 0;
  for (auto _ : state) {
    auto records = log.Fetch("t", 0, offset, 128);
    offset = (offset + 128) % 90'000;
    benchmark::DoNotOptimize(records->size());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_MqFetchBatch128);

// ---------------------------------------------------------------- LSM

void BM_LsmPut(benchmark::State& state) {
  store::LsmEngine lsm;
  Rng rng(6);
  std::size_t i = 0;
  const std::string value = RandomValue(rng, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm.Put("key" + std::to_string(i++ % 100'000), value).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmPut);

void BM_LsmGetHot(benchmark::State& state) {
  store::LsmEngine lsm;
  Rng rng(7);
  for (int i = 0; i < 50'000; ++i) {
    (void)lsm.Put("key" + std::to_string(i), RandomValue(rng, 100));
  }
  (void)lsm.Flush();
  std::size_t i = 0;
  for (auto _ : state) {
    auto value = lsm.Get("key" + std::to_string(i++ % 50'000));
    benchmark::DoNotOptimize(value.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGetHot);

void BM_LsmScan100(benchmark::State& state) {
  store::LsmEngine lsm;
  Rng rng(8);
  for (int i = 0; i < 20'000; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key%08d", i);
    (void)lsm.Put(key, RandomValue(rng, 64));
  }
  for (auto _ : state) {
    auto rows = lsm.Scan("key00005000", "key00005100");
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_LsmScan100);

void BM_WideColumnPut(benchmark::State& state) {
  store::WideColumnTable table("bench");
  Rng rng(9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table
                                 .Put("row" + std::to_string(i++ % 10'000),
                                      "col", RandomValue(rng, 64))
                                 .ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WideColumnPut);

// ---------------------------------------------------------------- Documents

void BM_DocStoreIndexedQuery(benchmark::State& state) {
  store::Collection coll("bench");
  Rng rng(10);
  for (int i = 0; i < 20'000; ++i) {
    store::Document doc;
    doc["kind"] = std::string(i % 10 == 0 ? "crime" : "other");
    doc["ts"] = std::int64_t(i);
    coll.Insert(std::move(doc));
  }
  (void)coll.CreateIndex("kind");
  store::Query query;
  query.conditions.push_back(
      {"kind", store::Condition::Op::kEquals, std::string("crime")});
  for (auto _ : state) {
    auto ids = coll.Find(query);
    benchmark::DoNotOptimize(ids.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DocStoreIndexedQuery);

void BM_DocStoreGeoQuery(benchmark::State& state) {
  store::Collection coll("bench");
  Rng rng(11);
  for (int i = 0; i < 20'000; ++i) {
    store::Document doc;
    doc["lat"] = 30.45 + rng.Normal(0, 0.1);
    doc["lon"] = -91.18 + rng.Normal(0, 0.1);
    coll.Insert(std::move(doc));
  }
  (void)coll.CreateGeoIndex("lat", "lon");
  store::Query query;
  query.near_center = geo::LatLon{30.45, -91.18};
  query.near_radius_m = 2000;
  for (auto _ : state) {
    auto ids = coll.Find(query);
    benchmark::DoNotOptimize(ids.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DocStoreGeoQuery);

// ---------------------------------------------------------------- Dataflow

void BM_DataflowWordCount(benchmark::State& state) {
  dataflow::Engine engine(4);
  std::vector<std::pair<std::string, int>> pairs;
  Rng rng(12);
  for (int i = 0; i < 100'000; ++i) {
    pairs.emplace_back("word" + std::to_string(rng.Zipf(500, 1.1)), 1);
  }
  for (auto _ : state) {
    auto ds = dataflow::Dataset<std::pair<std::string, int>>::Parallelize(
        pairs, 8);
    auto counts =
        dataflow::ReduceByKey(ds, 4, [](int a, int b) { return a + b; });
    auto out = counts.Collect(engine);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_DataflowWordCount)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- Scheduler

void BM_SchedulerPlacement(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sched::ResourceManager rm(sched::Policy::kFair);
    for (int n = 0; n < 20; ++n) rm.AddNode({16, 32'768});
    std::vector<std::uint64_t> apps;
    for (int a = 0; a < 8; ++a) {
      apps.push_back(rm.SubmitApp({"app" + std::to_string(a)}));
      (void)rm.RequestContainers(apps.back(), {2, 2048}, 16);
    }
    state.ResumeTiming();
    auto granted = rm.Schedule();
    benchmark::DoNotOptimize(granted.size());
  }
}
BENCHMARK(BM_SchedulerPlacement)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- Text

void BM_TokenizeTweet(benchmark::State& state) {
  const std::string tweet =
      "heard gunshots near the corner store on 3rd street stay safe everyone";
  for (auto _ : state) {
    auto tokens = text::Tokenize(tweet);
    benchmark::DoNotOptimize(tokens.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenizeTweet);

void BM_NaiveBayesPredict(benchmark::State& state) {
  text::NaiveBayes nb(2);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    (void)nb.Train(i % 2 ? "shooting robbery weapon police downtown"
                         : "coffee weather game sunset traffic",
                   i % 2);
  }
  const std::string query = "police report of a shooting downtown tonight";
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Predict(query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveBayesPredict);

}  // namespace

BENCHMARK_MAIN();
