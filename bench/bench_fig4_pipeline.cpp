// Fig. 4 reproduction: the overall collection -> NoSQL storage -> analysis
// -> web/visualization pipeline.
//
// Drives the real threaded pipeline with the three streaming sources the
// figure names (tweets, Waze reports, annotated video events), measures
// steady-state throughput and produce-to-web latency, and reports per-topic
// storage/annotation counts. Expected shape: sustained throughput in the
// tens of thousands of records per second at millisecond-scale end-to-end
// latency on commodity hardware.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/city.h"
#include "text/text.h"

namespace {

using namespace metro;

struct RunStats {
  double wall_seconds = 0;
  core::PipelineStats pipeline;
};

RunStats RunPipeline(int records_per_topic) {
  core::CityPipeline pipeline(WallClock::Instance());

  // Tweets: annotate incident chatter via keyword matching (the collection
  // keyword filter of Sec. II-A2).
  auto matcher = std::make_shared<text::KeywordMatcher>(std::vector<std::string>{
      "gunshots", "shooting", "robbery", "fight", "shots"});
  core::CityPipeline::TopicSpec tweets;
  tweets.topic = "tweets";
  tweets.partitions = 4;
  tweets.analyzer = [matcher](const store::Document& doc)
      -> std::optional<store::Document> {
    const auto it = doc.find("text");
    if (it == doc.end()) return std::nullopt;
    const auto* txt = std::get_if<std::string>(&it->second);
    if (txt == nullptr || !matcher->Matches(*txt)) return std::nullopt;
    store::Document ann = doc;
    ann["alert"] = true;
    return ann;
  };

  // Waze: promote severe incidents.
  core::CityPipeline::TopicSpec waze;
  waze.topic = "waze";
  waze.partitions = 2;
  waze.analyzer = [](const store::Document& doc)
      -> std::optional<store::Document> {
    const auto it = doc.find("severity");
    if (it == doc.end()) return std::nullopt;
    if (std::get<std::int64_t>(it->second) < 4) return std::nullopt;
    return doc;
  };

  // Video annotations pass straight to the web feed.
  core::CityPipeline::TopicSpec video;
  video.topic = "video-annotations";
  video.partitions = 2;
  video.analyzer = [](const store::Document& doc)
      -> std::optional<store::Document> { return doc; };

  (void)pipeline.AddTopic(std::move(tweets));
  (void)pipeline.AddTopic(std::move(waze));
  (void)pipeline.AddTopic(std::move(video));
  (void)pipeline.Start();

  datagen::TweetGenerator tweet_gen({.num_users = 2000}, 1);
  datagen::WazeGenerator waze_gen(2);
  Rng rng(3);

  const auto start = WallClock::Instance().Now();
  for (int i = 0; i < records_per_topic; ++i) {
    const TimeNs now = WallClock::Instance().Now();
    (void)pipeline.log().Produce(
        "tweets", "",
        core::EncodeDocument(
            datagen::CityDataGenerator::ToDocument(tweet_gen.Generate(now))));
    (void)pipeline.log().Produce(
        "waze", "",
        core::EncodeDocument(
            datagen::CityDataGenerator::ToDocument(waze_gen.Generate(now))));
    store::Document video_doc;
    video_doc["type"] = std::string("vehicle");
    video_doc["camera"] = std::int64_t(rng.UniformU64(200));
    video_doc["cls"] = std::int64_t(rng.UniformU64(8));
    video_doc["score"] = rng.UniformDouble();
    (void)pipeline.log().Produce("video-annotations", "",
                                 core::EncodeDocument(video_doc));
  }
  pipeline.Drain();
  RunStats stats;
  stats.wall_seconds =
      double(WallClock::Instance().Now() - start) / kSecond;
  stats.pipeline = pipeline.Stats();
  pipeline.Stop();
  return stats;
}

void ThroughputTable() {
  bench::Table table({"records/topic", "total records", "wall (s)",
                      "throughput (rec/s)", "stored", "annotations",
                      "mean lat (ms)", "p99 lat (ms)"});
  for (const int n : {1'000, 5'000, 20'000}) {
    const auto stats = RunPipeline(n);
    const double total = double(stats.pipeline.records_consumed);
    table.AddRow({bench::FmtInt(n), bench::FmtInt(std::int64_t(total)),
                  bench::Fmt(stats.wall_seconds, 3),
                  bench::FmtInt(std::int64_t(total / stats.wall_seconds)),
                  bench::FmtInt(stats.pipeline.documents_stored),
                  bench::FmtInt(stats.pipeline.annotations),
                  bench::Fmt(stats.pipeline.mean_latency_ms, 2),
                  bench::Fmt(stats.pipeline.p99_latency_ms, 2)});
  }
  table.Print(
      "Fig. 4: collection -> storage -> analysis -> web pipeline "
      "(3 topics: tweets, Waze, video annotations)");
}

void BM_PipelineEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    const auto stats = RunPipeline(int(state.range(0)));
    benchmark::DoNotOptimize(stats.pipeline.web_items);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ThroughputTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
