// Trace-breakdown bench: where does the Fig. 3 latency go?
//
// Runs the resilient fog pipeline with the span collector attached, on
// simulated time, healthy and under a scripted analysis-server outage. For
// each run it prints the span-derived per-stage p50/p95/p99 table and checks
// the accounting invariant the tracing layer is built around: per-trace
// stage durations must sum to the measured end-to-end latency (within 5%;
// on the simulator they agree exactly). The chaos run additionally shows
// degraded traces and the breaker's transition events riding in the same
// span stream. A final microbenchmark measures the collector's overhead on
// the simulation itself.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "fog/fog.h"
#include "obs/trace.h"
#include "resilience/chaos.h"
#include "util/rng.h"

namespace {

using namespace metro;
using resilience::chaos::FaultKind;
using resilience::chaos::FaultPlan;
using resilience::chaos::FaultTargets;

fog::FogConfig Topology() {
  fog::FogConfig config;
  config.num_edges = 16;  // 4 fogs -> 2 analysis servers
  return config;
}

std::vector<fog::WorkItem> MakeWorkload(const fog::FogConfig& config,
                                        int items_per_edge,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fog::WorkItem> items;
  std::uint64_t id = 0;
  for (int e = 0; e < config.num_edges; ++e) {
    for (int i = 0; i < items_per_edge; ++i) {
      fog::WorkItem item;
      item.id = id++;
      item.edge = e;
      item.arrival = TimeNs(i) * 66 * kMillisecond;
      item.raw_bytes = 24'576;
      item.feature_bytes = 3'072;
      item.edge_filter_macs = 50'000;
      item.local_macs = 4'000'000;
      item.server_macs = 40'000'000;
      item.local_exit = rng.Bernoulli(0.5);
      items.push_back(item);
    }
  }
  return items;
}

FaultPlan ServerOutagePlan(TimeNs from, TimeNs until) {
  FaultPlan plan;
  fog::FogTopology probe(Topology());
  for (int s = 0; s < probe.num_servers(); ++s) {
    resilience::chaos::FaultEvent down;
    down.at = from;
    down.kind = FaultKind::kServerOutage;
    down.index = s;
    plan.Add(down);
    resilience::chaos::FaultEvent up;
    up.at = until;
    up.kind = FaultKind::kServerRecovery;
    up.index = s;
    plan.Add(up);
  }
  return plan;
}

// Runs the pipeline with tracing and prints the stage table plus the
// stage-sum / end-to-end reconciliation check.
void TracedRun(bool chaos) {
  fog::FogTopology topo(Topology());
  if (chaos) {
    auto plan = ServerOutagePlan(kSecond, 3 * kSecond);
    FaultTargets targets;
    targets.fog = &topo;
    plan.ScheduleOn(topo.sim(), targets);
  }
  obs::SpanCollector spans(topo.sim().clock());
  fog::FogResilienceOptions options;
  options.spans = &spans;
  const auto items = MakeWorkload(topo.config(), 60, 42);
  const auto result = fog::RunResilientPipeline(topo, items, options);

  bench::Table table({"stage", "count", "mean (ms)", "p50 (ms)", "p95 (ms)",
                      "p99 (ms)"});
  for (const auto& st : spans.StageBreakdown()) {
    table.AddRow({st.stage, bench::FmtInt(st.count), bench::Fmt(st.mean_ms, 3),
                  bench::Fmt(st.p50_ms, 3), bench::Fmt(st.p95_ms, 3),
                  bench::Fmt(st.p99_ms, 3)});
  }
  table.Print(chaos ? "Trace breakdown B: server outage t=[1s,3s) "
                      "(16 edges, 960 frames)"
                    : "Trace breakdown A: healthy run (16 edges, 960 frames)");

  // The invariant: stage spans partition each trace, so per-trace stage
  // sums must reconcile with the trace's end-to-end extent.
  double stage_ms = 0, e2e_ms = 0;
  std::int64_t traces = 0, degraded = 0, retried = 0, worst_off = 0;
  for (const auto& t : spans.Traces()) {
    if (t.stage_total == 0) continue;  // run-level breaker-event trace
    stage_ms += double(t.stage_total) / kMillisecond;
    e2e_ms += double(t.total()) / kMillisecond;
    worst_off = std::max<std::int64_t>(
        worst_off, std::abs(std::int64_t(t.total() - t.stage_total)));
    ++traces;
    if (t.degraded) ++degraded;
    if (t.retried) ++retried;
  }
  const double off = e2e_ms == 0 ? 0 : std::abs(stage_ms - e2e_ms) / e2e_ms;
  std::printf("reconciliation: %lld traces, stage sums %.1f ms vs e2e "
              "%.1f ms (off by %.3f%%, worst trace %.3f ms) -- %s within 5%%\n",
              (long long)traces, stage_ms, e2e_ms, 100.0 * off,
              double(worst_off) / kMillisecond,
              off <= 0.05 ? "MET" : "MISSED");
  std::printf("annotations: %lld degraded traces (pipeline reported %lld), "
              "%lld retried; send retries %lld\n\n",
              (long long)degraded, (long long)result.items_degraded,
              (long long)retried, (long long)result.send_retries);
  if (chaos) {
    std::printf("%s\n", spans.CriticalPathReport().c_str());
  }
}

// Collector overhead on the simulation: same workload with and without the
// tracer attached.
void BM_ResilientPipeline(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  for (auto _ : state) {
    fog::FogTopology topo(Topology());
    obs::SpanCollector spans(topo.sim().clock());
    fog::FogResilienceOptions options;
    if (traced) options.spans = &spans;
    const auto result = fog::RunResilientPipeline(
        topo, MakeWorkload(topo.config(), 60, 42), options);
    benchmark::DoNotOptimize(result.items_offloaded);
  }
  state.SetItemsProcessed(state.iterations() * 960);
  state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(BM_ResilientPipeline)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  TracedRun(/*chaos=*/false);
  TracedRun(/*chaos=*/true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
