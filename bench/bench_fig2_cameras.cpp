// Fig. 2 reproduction: the DOTD camera network around Baton Rouge.
//
// The figure shows 200+ cameras strung along the interstate corridors. This
// bench instantiates the synthetic camera network at the paper's scale,
// verifies its geography (corridor structure, geo-indexed dispatch), and
// measures the ingest load the camera fleet imposes on the fog tier as the
// fleet grows. Expected shape: ingest bytes scale linearly with camera
// count; nearest-camera dispatch via the grid index answers in microseconds.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "datagen/city.h"
#include "fog/fog.h"
#include "geo/geo.h"

namespace {

using namespace metro;

void CameraInventory() {
  datagen::CityDataGenerator city({}, 2018);
  std::map<std::string, int> per_corridor;
  double min_lat = 90, max_lat = -90, min_lon = 180, max_lon = -180;
  for (const auto& cam : city.cameras()) {
    ++per_corridor[cam.corridor];
    min_lat = std::min(min_lat, cam.location.lat);
    max_lat = std::max(max_lat, cam.location.lat);
    min_lon = std::min(min_lon, cam.location.lon);
    max_lon = std::max(max_lon, cam.location.lon);
  }
  bench::Table table({"corridor", "cameras", "span note"});
  for (const auto& [corridor, count] : per_corridor) {
    table.AddRow({corridor, bench::FmtInt(count), "radiates from city center"});
  }
  table.AddRow({"TOTAL", bench::FmtInt(std::int64_t(city.cameras().size())),
                "bbox " + bench::Fmt(max_lat - min_lat, 3) + " x " +
                    bench::Fmt(max_lon - min_lon, 3) + " deg"});
  table.Print("Fig. 2: synthetic DOTD camera network (Baton Rouge corridors)");
}

void NearestCameraDispatch() {
  // Incident -> nearest cameras: the smart-camera-control dispatch query.
  datagen::CityDataGenerator city({}, 2019);
  geo::GridIndex index;
  for (const auto& cam : city.cameras()) {
    index.Insert(std::uint64_t(cam.id), cam.location);
  }
  bench::Table table({"radius (m)", "mean cameras in range", "lookup (us)"});
  Rng rng(5);
  for (const double radius : {500.0, 1000.0, 2500.0, 5000.0}) {
    double total = 0;
    const int queries = 500;
    const auto start = WallClock::Instance().Now();
    for (int q = 0; q < queries; ++q) {
      const geo::LatLon where{
          datagen::kBatonRouge.lat + rng.Normal(0, 0.05),
          datagen::kBatonRouge.lon + rng.Normal(0, 0.05)};
      total += double(index.QueryRadius(where, radius).size());
    }
    const double us =
        double(WallClock::Instance().Now() - start) / kMicrosecond / queries;
    table.AddRow({bench::FmtInt(std::int64_t(radius)),
                  bench::Fmt(total / queries, 1), bench::Fmt(us, 1)});
  }
  table.Print("Fig. 2: geo-indexed nearest-camera dispatch");
}

void FleetIngestScaling() {
  bench::Table table({"cameras", "frames (1 s @15fps)", "edge->fog traffic",
                      "mean lat (ms)"});
  for (const int cameras : {50, 100, 200, 400}) {
    fog::FogConfig config;
    config.num_edges = std::max(1, cameras / 25);  // 25 cameras per edge hub
    fog::FogTopology topo(config);
    std::vector<fog::WorkItem> items;
    Rng rng(7);
    std::uint64_t id = 0;
    for (int cam = 0; cam < cameras; ++cam) {
      for (int f = 0; f < 15; ++f) {  // one second of 15 fps
        fog::WorkItem item;
        item.id = id++;
        item.edge = cam % config.num_edges;
        item.arrival = TimeNs(f) * 66 * kMillisecond;
        item.raw_bytes = 24'576;
        item.edge_filter_macs = 50'000;
        item.local_macs = 4'000'000;
        item.server_macs = 40'000'000;
        item.dropped_by_edge_filter = rng.Bernoulli(0.5);  // static scenes
        item.local_exit = rng.Bernoulli(0.8);
        item.feature_bytes = 3'072;
        items.push_back(item);
      }
    }
    const auto result = fog::RunEarlyExitPipeline(topo, std::move(items));
    table.AddRow({bench::FmtInt(cameras), bench::FmtInt(cameras * 15),
                  bench::FmtBytes(result.traffic.edge_to_fog),
                  bench::Fmt(result.mean_latency_ms, 2)});
  }
  table.Print("Fig. 2: camera-fleet ingest scaling on the fog tier");
}

void BM_GeoRadiusQuery(benchmark::State& state) {
  datagen::CityDataGenerator city({}, 2020);
  geo::GridIndex index;
  for (const auto& cam : city.cameras()) {
    index.Insert(std::uint64_t(cam.id), cam.location);
  }
  Rng rng(9);
  for (auto _ : state) {
    const geo::LatLon where{datagen::kBatonRouge.lat + rng.Normal(0, 0.05),
                            datagen::kBatonRouge.lon + rng.Normal(0, 0.05)};
    auto hits = index.QueryRadius(where, 2000);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeoRadiusQuery);

}  // namespace

int main(int argc, char** argv) {
  CameraInventory();
  NearestCameraDispatch();
  FleetIngestScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
