// Sec. II-C2 reproduction: the "other analytical workloads" sentence —
// "Our cyberinfrastructure also supports other types of analytical
// workloads such as streaming processing, geospatial processing, and
// graph-based processing."
//
// Three workload tables: (1) windowed stream processing with spike
// detection over a bursty tweet stream, (2) vertex-centric graph
// processing (PageRank / components / SSSP) on the Sec. IV-B gang network,
// (3) data-parallel DNN training scaling (Sec. II-C1's parallelism claim).

#include <benchmark/benchmark.h>

#include <cmath>
#include <thread>
#include <set>

#include "bench_util.h"
#include "datagen/social.h"
#include "graph/pregel.h"
#include "nn/parallel.h"
#include "stream/windows.h"
#include "util/clock.h"

namespace {

using namespace metro;

void StreamingTable() {
  bench::Table table({"events", "windows fired", "late dropped",
                      "spikes found", "events/s"});
  for (const int events : {50'000, 200'000}) {
    stream::WindowedAggregator agg({.window_size = 60 * kSecond,
                                    .allowed_lateness = 10 * kSecond,
                                    .agg = stream::AggKind::kCount});
    stream::SpikeDetector detector({.history = 5, .factor = 4.0,
                                    .min_count = 20});
    Rng rng(1);
    int spikes = 0;
    std::size_t fired_count = 0;
    const auto start = WallClock::Instance().Now();
    TimeNs now = 0;
    for (int i = 0; i < events; ++i) {
      now += TimeNs(rng.Exponential(10.0) * double(kSecond));  // ~100 ms mean gap
      stream::Event event;
      // Keyword mix with a planted burst of "gunshots" mid-stream.
      const bool in_burst = i > events / 2 && i < events / 2 + events / 50;
      if (in_burst && rng.Bernoulli(0.6)) {
        event.key = "gunshots";
      } else if (rng.Bernoulli(0.03)) {
        event.key = "gunshots";  // baseline chatter the detector learns
      } else {
        event.key = std::string("kw") + std::to_string(rng.Zipf(8, 1.1));
      }
      // Mild out-of-orderness.
      event.event_time = now - TimeNs(rng.UniformU64(5)) * kSecond;
      (void)agg.Add(event);
      if (i % 512 == 0) {
        agg.AdvanceWatermark(now - 5 * kSecond);
        for (const auto& window : agg.TakeFired()) {
          ++fired_count;
          if (detector.Observe(window)) ++spikes;
        }
      }
    }
    agg.Close();
    fired_count += agg.TakeFired().size();
    const double secs =
        double(WallClock::Instance().Now() - start) / kSecond;
    table.AddRow({bench::FmtInt(events),
                  bench::FmtInt(std::int64_t(fired_count)),
                  bench::FmtInt(agg.late_events()), bench::FmtInt(spikes),
                  bench::FmtInt(std::int64_t(double(events) / secs))});
  }
  table.Print(
      "Sec. II-C2 / streaming: event-time windows + watermarks + spike "
      "detection over a bursty keyword stream");
}

void GraphTable() {
  const auto gang = datagen::GenerateGangNetwork({}, 42);
  graph::PregelGraph g;
  g.AddVertices(gang.graph.num_people());
  for (std::size_t p = 0; p < gang.graph.num_people(); ++p) {
    for (const auto nbr : gang.graph.Neighbors(graph::PersonId(p))) {
      (void)g.AddEdge(graph::VertexId(p), graph::VertexId(nbr));
    }
  }
  ThreadPool pool(4);
  bench::Table table({"algorithm", "result", "wall (ms)"});

  {
    const auto start = WallClock::Instance().Now();
    const auto ranks = graph::PageRank(g, pool, 20);
    const double ms =
        double(WallClock::Instance().Now() - start) / kMillisecond;
    std::size_t top = 0;
    for (std::size_t v = 1; v < ranks.size(); ++v) {
      if (ranks[v] > ranks[top]) top = v;
    }
    table.AddRow({"PageRank (20 iters)",
                  "top influencer: member-" + std::to_string(top) +
                      " (rank " + bench::Fmt(ranks[top] * 1000, 2) + "e-3)",
                  bench::Fmt(ms, 1)});
  }
  {
    const auto start = WallClock::Instance().Now();
    const auto labels = graph::ConnectedComponents(g, pool);
    const double ms =
        double(WallClock::Instance().Now() - start) / kMillisecond;
    std::set<graph::VertexId> components(labels.begin(), labels.end());
    table.AddRow({"connected components",
                  bench::FmtInt(std::int64_t(components.size())) +
                      " components over 982 members",
                  bench::Fmt(ms, 1)});
  }
  {
    const auto start = WallClock::Instance().Now();
    const auto dist = graph::ShortestPaths(g, 0, pool);
    const double ms =
        double(WallClock::Instance().Now() - start) / kMillisecond;
    int reachable = 0;
    double max_hops = 0;
    for (const double d : dist) {
      if (std::isfinite(d)) {
        ++reachable;
        max_hops = std::max(max_hops, d);
      }
    }
    table.AddRow({"SSSP from member-0",
                  bench::FmtInt(reachable) + " reachable, eccentricity " +
                      bench::Fmt(max_hops, 0),
                  bench::Fmt(ms, 1)});
  }
  table.Print(
      "Sec. II-C2 / graph processing: vertex-centric engine on the "
      "Sec. IV-B gang network (982 vertices, " +
      std::to_string(g.num_edges()) + " directed edges)");
}

void DataParallelTable() {
  auto factory = [] {
    Rng rng(5);
    nn::Sequential net;
    net.Emplace<nn::Conv2d>(1, 8, 3, 1, 1, rng)
        .Emplace<nn::Activation>(nn::ActKind::kRelu)
        .Emplace<nn::MaxPool2d>(2, 2)
        .Emplace<nn::Flatten>()
        .Emplace<nn::Dense>(8 * 8 * 8, 4, rng);
    return net;
  };
  Rng data_rng(6);
  nn::Tensor x = nn::Tensor::RandomNormal({64, 16, 16, 1}, 1.0f, data_rng);
  std::vector<int> labels;
  for (int i = 0; i < 64; ++i) labels.push_back(int(data_rng.UniformU64(4)));

  bench::Table table({"replicas", "steps/s", "speedup"});
  double base = 0;
  for (const int replicas : {1, 2, 4}) {
    ThreadPool pool(static_cast<std::size_t>(replicas));
    nn::DataParallelTrainer trainer(factory, replicas, pool);
    nn::Sgd opt(0.01f);
    const int steps = 12;
    const auto start = WallClock::Instance().Now();
    for (int s = 0; s < steps; ++s) (void)trainer.Step(x, labels, opt);
    const double secs =
        double(WallClock::Instance().Now() - start) / kSecond;
    const double rate = steps / secs;
    if (replicas == 1) base = rate;
    table.AddRow({bench::FmtInt(replicas), bench::Fmt(rate, 2),
                  bench::Fmt(rate / base, 2) + "x"});
  }
  table.Print(
      "Sec. II-C1 / data parallelism: synchronous multi-worker training "
      "(batch 64, conv classifier; " +
      std::to_string(std::thread::hardware_concurrency()) +
      " hardware thread(s) available — speedup tracks physical cores)");
}

void BM_WindowAdd(benchmark::State& state) {
  stream::WindowedAggregator agg({.window_size = 60 * kSecond});
  Rng rng(2);
  TimeNs now = 0;
  for (auto _ : state) {
    now += kMillisecond;
    benchmark::DoNotOptimize(
        agg.Add({now, "k" + std::to_string(rng.UniformU64(16)), 1.0}).ok());
    if (now % (10 * kSecond) == 0) {
      agg.AdvanceWatermark(now - kSecond);
      benchmark::DoNotOptimize(agg.TakeFired().size());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowAdd);

void BM_PageRankGangNetwork(benchmark::State& state) {
  const auto gang = datagen::GenerateGangNetwork({}, 7);
  graph::PregelGraph g;
  g.AddVertices(gang.graph.num_people());
  for (std::size_t p = 0; p < gang.graph.num_people(); ++p) {
    for (const auto nbr : gang.graph.Neighbors(graph::PersonId(p))) {
      (void)g.AddEdge(graph::VertexId(p), graph::VertexId(nbr));
    }
  }
  ThreadPool pool(4);
  for (auto _ : state) {
    auto ranks = graph::PageRank(g, pool, 10);
    benchmark::DoNotOptimize(ranks.data());
  }
}
BENCHMARK(BM_PageRankGangNetwork)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  StreamingTable();
  GraphTable();
  DataParallelTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
