// Chaos-recovery bench: availability under injected faults (Sec. II-B1's
// availability claim, stress-tested).
//
// The headline experiment scripts an analysis-server outage into the fog
// simulation and runs the same workload twice: through the raw pipeline
// (sends fail, items are lost) and through the resilience layer (retry +
// circuit breaker + local-answer degradation). The resilient run must keep
// item availability >= 99% — degraded local answers count as answers,
// errors do not — while the baseline collapses for the outage window. A
// second sweep draws seeded random fault plans at rising intensity, and a
// breaker trace shows the open -> half-open -> closed recovery landing
// within one configured cool-down on simulated time.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "fog/fog.h"
#include "resilience/chaos.h"
#include "resilience/policy.h"
#include "util/rng.h"

namespace {

using namespace metro;
using resilience::CircuitBreaker;
using resilience::chaos::FaultKind;
using resilience::chaos::FaultPlan;
using resilience::chaos::FaultTargets;

fog::FogConfig ChaosTopology() {
  fog::FogConfig config;
  config.num_edges = 16;  // 4 fogs -> 2 analysis servers
  return config;
}

// ~15 fps cameras with a fog-side early-exit gate. The correctness flags
// model the paper's split-model accuracy gap: the full (server) model is
// right more often than the local half, so degradation trades accuracy for
// availability instead of dropping items.
std::vector<fog::WorkItem> MakeWorkload(const fog::FogConfig& config,
                                        int items_per_edge,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fog::WorkItem> items;
  std::uint64_t id = 0;
  for (int e = 0; e < config.num_edges; ++e) {
    for (int i = 0; i < items_per_edge; ++i) {
      fog::WorkItem item;
      item.id = id++;
      item.edge = e;
      item.arrival = TimeNs(i) * 66 * kMillisecond;
      item.raw_bytes = 24'576;
      item.feature_bytes = 3'072;
      item.edge_filter_macs = 50'000;
      item.local_macs = 4'000'000;
      item.server_macs = 40'000'000;
      item.local_exit = rng.Bernoulli(0.5);
      item.local_correct = rng.Bernoulli(0.88);
      item.server_correct = rng.Bernoulli(0.95);
      items.push_back(item);
    }
  }
  return items;
}

FaultPlan ServerOutagePlan(TimeNs from, TimeNs until) {
  FaultPlan plan;
  fog::FogTopology probe(ChaosTopology());  // sized like the real runs
  for (int s = 0; s < probe.num_servers(); ++s) {
    resilience::chaos::FaultEvent down;
    down.at = from;
    down.kind = FaultKind::kServerOutage;
    down.index = s;
    plan.Add(down);
    resilience::chaos::FaultEvent up;
    up.at = until;
    up.kind = FaultKind::kServerRecovery;
    up.index = s;
    plan.Add(up);
  }
  return plan;
}

void ScriptedServerOutage() {
  const TimeNs outage_from = kSecond;
  const TimeNs outage_until = 3 * kSecond;
  const int items_per_edge = 60;  // ~4s of frames per edge

  bench::Table table({"pipeline", "answered", "offloaded", "degraded",
                      "failed", "availability", "accuracy"});
  double resilient_availability = 0;
  double baseline_availability = 0;

  for (const bool resilient : {false, true}) {
    fog::FogTopology topo(ChaosTopology());
    auto plan = ServerOutagePlan(outage_from, outage_until);
    FaultTargets targets;
    targets.fog = &topo;
    plan.ScheduleOn(topo.sim(), targets);
    const auto items = MakeWorkload(topo.config(), items_per_edge, 42);

    fog::PipelineResult result;
    if (resilient) {
      fog::FogResilienceOptions options;
      result = fog::RunResilientPipeline(topo, items, options);
      resilient_availability = result.Availability();
    } else {
      result = fog::RunEarlyExitPipeline(topo, items);
      baseline_availability = result.Availability();
    }
    const std::int64_t answered =
        result.items_local + result.items_offloaded + result.items_degraded;
    table.AddRow({resilient ? "resilient" : "baseline",
                  bench::FmtInt(answered),
                  bench::FmtInt(result.items_offloaded),
                  bench::FmtInt(result.items_degraded),
                  bench::FmtInt(result.items_failed),
                  bench::Fmt(100.0 * result.Availability(), 2) + "%",
                  bench::Fmt(100.0 * result.AccuracyOver(items), 2) + "%"});
  }
  table.Print(
      "Chaos A: scripted analysis-server outage t=[1s,3s) "
      "(16 edges, 960 frames, exit rate 0.5)");
  std::printf("availability target >= 99%% with resilience: %s "
              "(resilient %.2f%%, baseline %.2f%%)\n",
              resilient_availability >= 0.99 ? "MET" : "MISSED",
              100.0 * resilient_availability, 100.0 * baseline_availability);
}

void IntensitySweep() {
  bench::Table table({"intensity", "faults", "baseline avail", "resil avail",
                      "degraded", "retries", "resil accuracy"});
  for (const double intensity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const TimeNs horizon = 4 * kSecond;
    double avail[2] = {0, 0};
    std::int64_t degraded = 0, retries = 0;
    double accuracy = 0;
    std::size_t faults = 0;
    for (const bool resilient : {false, true}) {
      fog::FogTopology topo(ChaosTopology());
      FaultTargets targets;
      targets.fog = &topo;
      auto plan = FaultPlan::Random(intensity, horizon, targets, {}, 7);
      faults = plan.size();
      plan.ScheduleOn(topo.sim(), targets);
      const auto items = MakeWorkload(topo.config(), 60, 42);
      fog::PipelineResult result;
      if (resilient) {
        fog::FogResilienceOptions options;
        result = fog::RunResilientPipeline(topo, items, options);
        degraded = result.items_degraded;
        retries = result.send_retries;
        accuracy = result.AccuracyOver(items);
      } else {
        result = fog::RunEarlyExitPipeline(topo, items);
      }
      avail[resilient ? 1 : 0] = result.Availability();
    }
    table.AddRow({bench::Fmt(intensity, 2),
                  bench::FmtInt(static_cast<long long>(faults)),
                  bench::Fmt(100.0 * avail[0], 2) + "%",
                  bench::Fmt(100.0 * avail[1], 2) + "%",
                  bench::FmtInt(degraded), bench::FmtInt(retries),
                  bench::Fmt(100.0 * accuracy, 2) + "%"});
  }
  table.Print("Chaos B: random fault plans at rising intensity (seed 7)");
}

void BreakerRecoveryTrace() {
  SimClock clock;
  resilience::BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown = 200 * kMillisecond;
  CircuitBreaker breaker(config, clock);

  bench::Table table({"t (ms)", "event", "state"});
  auto row = [&](const char* event) {
    table.AddRow({bench::Fmt(double(clock.Now()) / kMillisecond, 0), event,
                  std::string(resilience::BreakerStateName(breaker.state()))});
  };
  row("start");
  for (int i = 0; i < config.failure_threshold; ++i) {
    breaker.RecordFailure();
    clock.Advance(10 * kMillisecond);
  }
  row("threshold failures recorded");
  const TimeNs tripped_at = clock.Now();
  (void)breaker.Allow();
  row("call rejected while open");
  clock.Advance(config.cooldown);
  (void)breaker.Allow();  // admitted as the half-open probe
  row("cool-down elapsed, probe admitted");
  breaker.RecordSuccess();
  row("probe succeeded");
  const TimeNs recovered_at = clock.Now();
  table.Print("Chaos C: breaker recovery on simulated time");
  std::printf("half-open -> closed %.0f ms after trip "
              "(configured cool-down %.0f ms): %s\n",
              double(recovered_at - tripped_at) / kMillisecond,
              double(config.cooldown) / kMillisecond,
              recovered_at - tripped_at <= config.cooldown + 10 * kMillisecond
                  ? "within cool-down"
                  : "LATE");
}

void BM_ResilientPipelineUnderOutage(benchmark::State& state) {
  for (auto _ : state) {
    fog::FogTopology topo(ChaosTopology());
    auto plan = ServerOutagePlan(kSecond, 3 * kSecond);
    FaultTargets targets;
    targets.fog = &topo;
    plan.ScheduleOn(topo.sim(), targets);
    fog::FogResilienceOptions options;
    const auto result = fog::RunResilientPipeline(
        topo, MakeWorkload(topo.config(), 60, 42), options);
    benchmark::DoNotOptimize(result.items_degraded);
  }
  state.SetItemsProcessed(state.iterations() * 960);
}
BENCHMARK(BM_ResilientPipelineUnderOutage);

}  // namespace

int main(int argc, char** argv) {
  ScriptedServerOutage();
  IntensitySweep();
  BreakerRecoveryTrace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
