// Storage-engine read storm: Zipfian point reads racing sustained ingest.
//
// The versioned LSM engine exists so that reads never wait for writers —
// readers pin an immutable Version + sequence number and go lock-free,
// while flushes and leveled compactions swap versions under a brief mutex.
// This bench quantifies that against `SeedEngine`, a faithful replica of
// the engine this repository started with (one mutex over a std::map
// memtable and sorted-vector SSTables; every Get waits behind any
// in-progress flush or compaction, and compaction rewrites everything).
//
// Workload, identical for both engines:
//   - prefill kKeys small records, then
//   - kReaders threads each issue kReadsPerReader point Gets with Zipfian
//     key popularity (s ~ 1.1, drawn via a precomputed inverse-CDF table so
//     the hot set is realistic and identical across engines/runs), while
//   - one writer thread sustains Puts over a rotating fresh-key window for
//     the whole read window, forcing seals and compactions mid-storm.
//
// Reads are issued OPEN-LOOP: each reader schedules arrivals at a fixed
// rate and measures latency from the scheduled arrival, not from when the
// engine finally admitted the call. A closed loop would hide exactly the
// failure mode this bench exists to expose — when the seed engine's global
// mutex is held by a flush or compaction, a closed-loop reader silently
// issues fewer reads, while real clients keep arriving and queue
// (coordinated omission).
//
// Reported per engine: read p50/p99/mean, read throughput, write
// throughput, and write-stall time (writer time lost to seal + compact —
// both engines count it at the same place, around the flush/compaction
// work inside Put). `read_p99_improvement` = seed p99 / versioned p99 is
// the headline check_perf.sh gates on (>= 2x under METRO_PERF_STRICT).
//
// --json [--json=<path>] writes a "store_readstorm" section (default
// BENCH_store.json); --seed=<n> reseeds the Zipfian draw (default 42).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "infer_json.h"
#include "store/lsm.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/sync.h"

namespace {

using namespace metro;

constexpr int kKeys = 50'000;
constexpr int kReaders = 4;
constexpr int kReadsPerReader = 30'000;
constexpr int kFreshWindow = 100'000;  ///< writer key space (wraps)
constexpr double kZipfS = 1.1;
constexpr std::uint64_t kDefaultSeed = 42;
/// Memtable sized to the dataset (~10 MB of live records) the way a real
/// deployment sizes its to the working set: seals and compactions must
/// happen *during* the storm, not be amortized away by a memtable that
/// swallows the whole run. Both engines get the same limit and trigger.
constexpr std::size_t kMemtableLimit = 64 * 1024;
constexpr std::size_t kCompactionTrigger = 4;
/// Aggregate open-loop arrival rate across all readers — well under both
/// engines' closed-loop capacity even on a single-core machine, so backlog
/// drains between stalls and p99 measures stalls, not saturation.
constexpr double kTargetReadsPerSec = 60'000;

std::uint64_t ParseSeedFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      return std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }
  return kDefaultSeed;
}

std::string ReadKey(int i) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "key%06d", i);
  return buf;
}

std::string FreshKey(int i) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "fresh%06d", i);
  return buf;
}

/// Replica of the engine at the repository seed: one mutex over a std::map
/// memtable plus sorted-vector SSTables. Every operation — including every
/// Get — takes the mutex, so reads queue behind the flush + full-rewrite
/// compaction a writer runs inline. Only the stall counter is new; it wraps
/// exactly the code a Put executes beyond the memtable insert, mirroring
/// where LsmStats::write_stall_ns is counted in the versioned engine.
class SeedEngine {
 public:
  Status Put(std::string_view key, std::string_view value) {
    MutexLock lock(mu_);
    Insert(key, std::string(value));
    if (memtable_bytes_ >= kMemtableLimit) {
      const Stopwatch stall;
      FlushLocked();
      if (sstables_.size() >= kCompactionTrigger) CompactLocked();
      stall_ns_ += stall.ElapsedNs();
    }
    return Status::Ok();
  }

  Result<std::string> Get(std::string_view key) const {
    MutexLock lock(mu_);
    const auto mit = memtable_.find(key);
    if (mit != memtable_.end()) {
      if (!mit->second) return NotFoundError(std::string(key));
      return *mit->second;
    }
    for (auto it = sstables_.rbegin(); it != sstables_.rend(); ++it) {
      const auto eit = std::lower_bound(
          it->begin(), it->end(), key,
          [](const auto& entry, std::string_view k) {
            return entry.first < k;
          });
      if (eit != it->end() && eit->first == key) {
        if (!eit->second) return NotFoundError(std::string(key));
        return *eit->second;
      }
    }
    return NotFoundError(std::string(key));
  }

  std::uint64_t stall_ns() const {
    MutexLock lock(mu_);
    return stall_ns_;
  }
  std::uint64_t seals() const {
    MutexLock lock(mu_);
    return seals_;
  }
  std::uint64_t compactions() const {
    MutexLock lock(mu_);
    return compactions_;
  }

 private:
  using Entry = std::pair<std::string, std::optional<std::string>>;

  void Insert(std::string_view key, std::optional<std::string> value)
      METRO_REQUIRES(mu_) {
    const auto it = memtable_.find(key);
    const std::size_t add =
        key.size() + (value ? value->size() : 0) + 32 /*node overhead*/;
    if (it != memtable_.end()) {
      memtable_bytes_ -=
          it->first.size() + (it->second ? it->second->size() : 0) + 32;
      it->second = std::move(value);
    } else {
      memtable_.emplace(std::string(key), std::move(value));
    }
    memtable_bytes_ += add;
  }

  void FlushLocked() METRO_REQUIRES(mu_) {
    std::vector<Entry> sst;
    sst.reserve(memtable_.size());
    for (auto& [k, v] : memtable_) sst.emplace_back(k, v);
    sstables_.push_back(std::move(sst));
    memtable_.clear();
    memtable_bytes_ = 0;
    ++seals_;
  }

  void CompactLocked() METRO_REQUIRES(mu_) {
    std::map<std::string, std::optional<std::string>> merged;
    for (const auto& sst : sstables_) {  // oldest -> newest
      for (const auto& [k, v] : sst) merged[k] = v;
    }
    std::vector<Entry> compacted;
    compacted.reserve(merged.size());
    for (auto& [k, v] : merged) {
      if (v) compacted.emplace_back(k, std::move(v));
    }
    sstables_.clear();
    sstables_.push_back(std::move(compacted));
    ++compactions_;
  }

  mutable Mutex mu_;
  std::map<std::string, std::optional<std::string>, std::less<>> memtable_
      METRO_GUARDED_BY(mu_);
  std::size_t memtable_bytes_ METRO_GUARDED_BY(mu_) = 0;
  std::vector<std::vector<Entry>> sstables_ METRO_GUARDED_BY(mu_);
  std::uint64_t stall_ns_ METRO_GUARDED_BY(mu_) = 0;
  std::uint64_t seals_ METRO_GUARDED_BY(mu_) = 0;
  std::uint64_t compactions_ METRO_GUARDED_BY(mu_) = 0;
};

/// Zipfian key sampler: CDF over ranks precomputed once, each draw is a
/// binary search on a uniform variate, and ranks map to key indices through
/// a fixed odd-multiplier permutation so popularity is not correlated with
/// key order (that would let fences alone absorb the whole storm).
class ZipfSampler {
 public:
  explicit ZipfSampler(int n, double s) : n_(n) {
    cdf_.reserve(std::size_t(n));
    double total = 0;
    for (int rank = 1; rank <= n; ++rank) {
      total += 1.0 / std::pow(double(rank), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  int Draw(std::uint64_t& state) const {
    // xorshift64* uniform in [0, 1).
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const double u =
        double((state * 0x2545f4914f6cdd1dull) >> 11) / double(1ull << 53);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const int rank = int(it - cdf_.begin());
    return int((std::uint64_t(rank) * 0x9e3779b1ull) % std::uint64_t(n_));
  }

 private:
  int n_;
  std::vector<double> cdf_;
};

struct StormResult {
  double read_p50_us = 0;
  double read_p99_us = 0;
  double read_mean_us = 0;
  double reads_per_s = 0;
  double writes_per_s = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  double write_stall_ms = 0;
  std::uint64_t seals = 0;
  std::uint64_t compactions = 0;
  std::uint64_t bloom_skips = 0;     ///< versioned engine only
  double cache_hit_rate = 0;         ///< versioned engine only
};

/// Runs the storm against `engine` (anything with Put/Get): prefills,
/// starts the writer, fires the readers, and collects latencies. The
/// stall/seal/compaction numbers come from the caller because the two
/// engines expose them differently; `on_prefilled` runs between the prefill
/// and the storm so the caller can snapshot those counters and report only
/// the storm-window deltas.
template <typename Engine, typename Fn>
StormResult RunStorm(Engine& engine, const ZipfSampler& zipf,
                     std::uint64_t seed, Fn&& on_prefilled) {
  const std::string value(64, 'v');
  for (int i = 0; i < kKeys; ++i) (void)engine.Put(ReadKey(i), value);
  on_prefilled();

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> writes{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)engine.Put(FreshKey(i % kFreshWindow), value);
      ++i;
    }
    writes.store(i, std::memory_order_relaxed);
  });

  std::vector<std::vector<double>> latencies_us(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  const Stopwatch storm;
  const double interval_ns = 1e9 * double(kReaders) / kTargetReadsPerSec;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t rng = seed + std::uint64_t(t) * 0x9e3779b97f4a7c15ull + 1;
      auto& lat = latencies_us[std::size_t(t)];
      lat.reserve(kReadsPerReader);
      const Stopwatch wall;
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::string key = ReadKey(zipf.Draw(rng));
        // Open-loop: spin until this read's scheduled arrival, then time it
        // from that arrival. A read admitted late (engine stalled) keeps its
        // queueing delay in the measurement.
        const double scheduled_ns = double(i) * interval_ns;
        for (double now = double(wall.ElapsedNs()); now < scheduled_ns;
             now = double(wall.ElapsedNs())) {
          // Far from the deadline, give the core away (machines running the
          // gate may have fewer cores than storm threads); spin the last
          // stretch for arrival precision.
          if (scheduled_ns - now > 100'000) std::this_thread::yield();
        }
        benchmark::DoNotOptimize(engine.Get(key));
        lat.push_back((double(wall.ElapsedNs()) - scheduled_ns) / 1e3);
      }
    });
  }
  for (std::thread& th : readers) th.join();
  const double read_window_s = storm.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  writer.join();

  std::vector<double> all;
  all.reserve(std::size_t(kReaders) * kReadsPerReader);
  for (auto& lat : latencies_us) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());

  StormResult r;
  r.reads = std::int64_t(all.size());
  r.writes = writes.load();
  if (!all.empty()) {
    r.read_p50_us = all[all.size() / 2];
    r.read_p99_us = all[std::size_t(double(all.size() - 1) * 0.99)];
    double sum = 0;
    for (const double v : all) sum += v;
    r.read_mean_us = sum / double(all.size());
  }
  if (read_window_s > 0) {
    r.reads_per_s = double(r.reads) / read_window_s;
    r.writes_per_s = double(r.writes) / read_window_s;
  }
  return r;
}

StormResult RunSeedStorm(const ZipfSampler& zipf, std::uint64_t seed) {
  SeedEngine engine;
  std::uint64_t stall0 = 0, seals0 = 0, compactions0 = 0;
  StormResult r = RunStorm(engine, zipf, seed, [&] {
    stall0 = engine.stall_ns();
    seals0 = engine.seals();
    compactions0 = engine.compactions();
  });
  r.write_stall_ms = double(engine.stall_ns() - stall0) / 1e6;
  r.seals = engine.seals() - seals0;
  r.compactions = engine.compactions() - compactions0;
  return r;
}

StormResult RunVersionedStorm(const ZipfSampler& zipf, std::uint64_t seed) {
  store::LsmConfig config;
  config.memtable_limit_bytes = kMemtableLimit;
  config.compaction_trigger = kCompactionTrigger;
  config.block_cache = std::make_shared<store::BlockCache>();
  store::LsmEngine engine(config);
  store::LsmStats prefill;
  StormResult r = RunStorm(engine, zipf, seed,
                           [&] { prefill = engine.Stats(); });
  const store::LsmStats stats = engine.Stats();
  r.write_stall_ms = double(stats.write_stall_ns - prefill.write_stall_ns) / 1e6;
  r.seals = stats.seals - prefill.seals;
  r.compactions = stats.compactions - prefill.compactions;
  r.bloom_skips = stats.bloom_skips;
  const auto cache = config.block_cache->GetStats();
  const std::uint64_t probes = cache.hits + cache.misses;
  r.cache_hit_rate = probes > 0 ? double(cache.hits) / double(probes) : 0;
  return r;
}

std::string StormJson(const StormResult& r, bool versioned) {
  std::ostringstream os;
  os << "{\"read_p50_us\": " << bench_json::Num(r.read_p50_us)
     << ", \"read_p99_us\": " << bench_json::Num(r.read_p99_us)
     << ", \"read_mean_us\": " << bench_json::Num(r.read_mean_us)
     << ", \"reads_per_s\": " << bench_json::Num(r.reads_per_s)
     << ", \"writes_per_s\": " << bench_json::Num(r.writes_per_s)
     << ", \"reads\": " << r.reads << ", \"writes\": " << r.writes
     << ", \"write_stall_ms\": " << bench_json::Num(r.write_stall_ms)
     << ", \"seals\": " << r.seals << ", \"compactions\": " << r.compactions;
  if (versioned) {
    os << ", \"bloom_skips\": " << r.bloom_skips
       << ", \"cache_hit_rate\": " << bench_json::Num(r.cache_hit_rate);
  }
  os << "}";
  return os.str();
}

int RunJsonMode(const std::string& path, std::uint64_t seed) {
  const ZipfSampler zipf(kKeys, kZipfS);
  const StormResult seed_engine = RunSeedStorm(zipf, seed);
  const StormResult versioned = RunVersionedStorm(zipf, seed);

  const double p99_improvement =
      versioned.read_p99_us > 0 ? seed_engine.read_p99_us / versioned.read_p99_us
                                : 0;
  const double stall_reduction =
      versioned.write_stall_ms > 0
          ? seed_engine.write_stall_ms / versioned.write_stall_ms
          : 0;

  std::ostringstream os;
  os << "{\"seed\": " << seed << ", \"keys\": " << kKeys
     << ", \"readers\": " << kReaders << ", \"zipf_s\": "
     << bench_json::Num(kZipfS) << ", \"target_reads_per_s\": "
     << bench_json::Num(kTargetReadsPerSec)
     << ", \"seed_engine\": " << StormJson(seed_engine, /*versioned=*/false)
     << ", \"versioned_engine\": " << StormJson(versioned, /*versioned=*/true)
     << ", \"read_p99_improvement\": " << bench_json::Num(p99_improvement)
     << ", \"write_stall_reduction\": " << bench_json::Num(stall_reduction)
     << "}";
  bench_json::MergeInferJson(path, "store_readstorm", os.str());
  std::printf(
      "wrote %s (read p99: seed %.1fus vs versioned %.1fus = %.2fx; "
      "write stall: %.1fms vs %.1fms)\n",
      path.c_str(), seed_engine.read_p99_us, versioned.read_p99_us,
      p99_improvement, seed_engine.write_stall_ms, versioned.write_stall_ms);

  // Sanity floor, not the perf gate: the workload must actually have run
  // with ingest pressure on both engines.
  if (seed_engine.writes == 0 || versioned.writes == 0 ||
      versioned.compactions == 0) {
    std::fprintf(stderr, "store_readstorm: storm ran without ingest churn\n");
    return 1;
  }
  return 0;
}

void BM_VersionedPointGet(benchmark::State& state) {
  store::LsmEngine engine;
  const std::string value(64, 'v');
  for (int i = 0; i < kKeys; ++i) (void)engine.Put(ReadKey(i), value);
  const ZipfSampler zipf(kKeys, kZipfS);
  std::uint64_t rng = kDefaultSeed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Get(ReadKey(zipf.Draw(rng))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedPointGet);

void BM_VersionedSnapshotScan(benchmark::State& state) {
  store::LsmEngine engine;
  const std::string value(64, 'v');
  for (int i = 0; i < kKeys; ++i) (void)engine.Put(ReadKey(i), value);
  for (auto _ : state) {
    std::size_t n = 0;
    for (auto it = engine.NewIterator("", ""); it.Valid(); it.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_VersionedSnapshotScan);

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = ParseSeedFlag(argc, argv);
  std::string json_path;
  if (bench_json::ParseJsonFlag(argc, argv, json_path)) {
    // This bench owns its own output file unless pointed elsewhere.
    if (json_path == "BENCH_infer.json") json_path = "BENCH_store.json";
    return RunJsonMode(json_path, seed);
  }
  const ZipfSampler zipf(kKeys, kZipfS);
  const StormResult seed_engine = RunSeedStorm(zipf, seed);
  const StormResult versioned = RunVersionedStorm(zipf, seed);
  std::printf("seed_engine:      %s\n",
              StormJson(seed_engine, false).c_str());
  std::printf("versioned_engine: %s\n", StormJson(versioned, true).c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
