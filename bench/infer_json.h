#pragma once

// --json output helpers for the inference benchmarks.
//
// Both Fig. 5 and Fig. 7 benches write their eager-vs-planned measurements
// into one BENCH_infer.json file keyed by bench name. The file is a flat
// JSON object; MergeInferJson re-reads it, replaces/appends this bench's
// key (balanced-brace scan — enough for our own machine-written output),
// and rewrites the whole file, so the benches can run in either order.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc_count.h"

namespace bench_json {

/// True when argv contains `--json` or `--json=<path>`; sets `path` for the
/// latter (default BENCH_infer.json in the working directory).
inline bool ParseJsonFlag(int argc, char** argv, std::string& path) {
  path = "BENCH_infer.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") return true;
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      return true;
    }
  }
  return false;
}

/// One measured inference path.
struct PathMetrics {
  double latency_ms = 0;
  double throughput_per_s = 0;
  double heap_allocs_per_call = 0;
};

/// Times `fn` over `iters` calls (after `warmup` untimed ones) and counts
/// heap allocations per call via bench_alloc. The calls are split into
/// several groups and the reported latency is the best group mean: on a
/// shared machine, scheduler noise only ever makes a group slower, so the
/// floor across groups is the stable estimate of what the path costs.
template <typename Fn>
PathMetrics Measure(int warmup, int iters, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) fn();

  constexpr int kGroups = 5;
  const int per_group = iters / kGroups > 0 ? iters / kGroups : 1;
  double best_ns_per_call = 0;
  const std::uint64_t allocs0 = bench_alloc::Count();
  std::uint64_t calls = 0;
  for (int g = 0; g < kGroups; ++g) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < per_group; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    calls += std::uint64_t(per_group);
    const double ns =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
        double(per_group);
    if (g == 0 || ns < best_ns_per_call) best_ns_per_call = ns;
  }
  const std::uint64_t allocs1 = bench_alloc::Count();

  PathMetrics m;
  m.latency_ms = best_ns_per_call / 1e6;
  m.throughput_per_s =
      best_ns_per_call > 0 ? 1e9 / best_ns_per_call : 0;
  m.heap_allocs_per_call = double(allocs1 - allocs0) / double(calls);
  return m;
}

inline std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

inline std::string PathJson(const PathMetrics& m) {
  std::ostringstream os;
  os << "{\"latency_ms\": " << Num(m.latency_ms)
     << ", \"throughput_per_s\": " << Num(m.throughput_per_s)
     << ", \"heap_allocs_per_call\": " << Num(m.heap_allocs_per_call) << "}";
  return os.str();
}

/// Splits a flat `{"k": <value>, ...}` object into key -> raw value text.
inline std::vector<std::pair<std::string, std::string>> SplitTopLevel(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = text.find('{');
  if (i == std::string::npos) return out;
  ++i;
  while (i < text.size()) {
    const std::size_t kq = text.find('"', i);
    if (kq == std::string::npos) break;
    const std::size_t kq2 = text.find('"', kq + 1);
    if (kq2 == std::string::npos) break;
    const std::string key = text.substr(kq + 1, kq2 - kq - 1);
    std::size_t v = text.find(':', kq2);
    if (v == std::string::npos) break;
    ++v;
    while (v < text.size() && (text[v] == ' ' || text[v] == '\n')) ++v;
    // Scan the value: balanced braces/brackets, or up to , / } at depth 0.
    int depth = 0;
    std::size_t e = v;
    for (; e < text.size(); ++e) {
      const char c = text[e];
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      }
      if (c == ',' && depth == 0) break;
    }
    std::string val = text.substr(v, e - v);
    while (!val.empty() && (val.back() == ' ' || val.back() == '\n')) {
      val.pop_back();
    }
    out.emplace_back(key, val);
    i = e + 1;
  }
  return out;
}

/// Writes/replaces `key` in the JSON object file at `path`.
inline void MergeInferJson(const std::string& path, const std::string& key,
                           const std::string& value) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  auto entries = SplitTopLevel(existing);
  bool replaced = false;
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = value;
      replaced = true;
    }
  }
  if (!replaced) entries.emplace_back(key, value);

  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "  \"" << entries[i].first << "\": " << entries[i].second;
    if (i + 1 < entries.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
}

}  // namespace bench_json
