// Fig. 7 reproduction: the split ResNet+LSTM behavior recognizer with an
// entropy-gated early exit.
//
// Trains the joint two-exit model on synthetic action clips, then sweeps
// the entropy threshold and reports gated accuracy, offload fraction, and
// the exit-1 / exit-2 accuracy floor and ceiling. Expected shape: at
// threshold 0 everything offloads (accuracy = exit-2 ceiling); raising the
// threshold keeps more clips local, trading a little accuracy for large
// offload savings; somewhere in between the gated accuracy tracks the
// ceiling at well under 100% offloads.

// With --json[=path] the bench instead measures the eager local/server
// inference halves against the planned arena-backed session on a single
// clip and merges the numbers into BENCH_infer.json.

#include <benchmark/benchmark.h>

#include "apps/behavior_app.h"
#include "bench_util.h"
#include "fog/fog.h"
#include "infer_json.h"

namespace {

using namespace metro;

constexpr int kTrainSteps = 160;
constexpr int kEvalClips = 150;

int g_train_steps = kTrainSteps;  // --json mode trains fewer steps

apps::BehaviorRecognitionApp& TrainedApp() {
  static auto* app = [] {
    zoo::BehaviorConfig config;
    auto* a = new apps::BehaviorRecognitionApp(config, 1276);
    std::printf("[training split behavior net: %d steps ...]\n",
                g_train_steps);
    a->Train(g_train_steps, 12);
    return a;
  }();
  return *app;
}

void EntropySweep() {
  auto& app = TrainedApp();
  bench::Table table({"entropy threshold", "offload %", "gated acc",
                      "exit-1 acc", "exit-2 acc", "bytes/clip shipped",
                      "mean lat (ms)"});
  for (const float threshold :
       {0.0f, 0.1f, 0.25f, 0.5f, 0.75f, 1.0f, 1.3f, 1.61f}) {
    const auto eval = app.Evaluate(kEvalClips, threshold);

    fog::FogConfig fog_config;
    fog_config.num_edges = 8;
    fog::FogTopology topo(fog_config);
    std::vector<fog::WorkItem> items;
    Rng gate(9);
    const auto& model = app.model();
    const auto& config = app.model().config();
    for (int i = 0; i < kEvalClips; ++i) {
      fog::WorkItem item;
      item.id = std::uint64_t(i);
      item.edge = i % fog_config.num_edges;
      item.arrival = TimeNs(i) * 200 * kMillisecond;
      item.raw_bytes = std::uint64_t(config.clip_length) * config.frame_size *
                       config.frame_size * config.channels * 4;
      item.feature_bytes = model.FeatureMapBytes();
      item.local_macs = model.LocalMacs();
      item.server_macs = model.ServerMacs();
      item.local_exit = !gate.Bernoulli(eval.offload_fraction);
      items.push_back(item);
    }
    const auto fog_result = fog::RunEarlyExitPipeline(topo, std::move(items));

    table.AddRow(
        {bench::Fmt(threshold, 2), bench::Fmt(eval.offload_fraction * 100, 1),
         bench::Fmt(eval.accuracy, 3), bench::Fmt(eval.exit1_accuracy, 3),
         bench::Fmt(eval.exit2_accuracy, 3),
         bench::FmtBytes(std::uint64_t(eval.offload_fraction *
                                       double(model.FeatureMapBytes()))),
         bench::Fmt(fog_result.mean_latency_ms, 2)});
  }
  table.Print(
      "Fig. 7: entropy-threshold sweep of the split ResNet+LSTM recognizer "
      "(exit 1 on local device, exit 2 on analysis server)");

  bench::Table costs({"stage", "MACs/clip", "tensor bytes"});
  const auto& model = app.model();
  const auto& config = model.config();
  costs.AddRow({"raw clip (edge->fog)", "-",
                bench::FmtBytes(std::uint64_t(config.clip_length) *
                                config.frame_size * config.frame_size *
                                config.channels * 4)});
  costs.AddRow({"block1+LSTM1+FC1 (local)",
                bench::FmtInt(std::int64_t(model.LocalMacs())),
                bench::FmtBytes(model.FeatureMapBytes())});
  costs.AddRow({"blocks2-3+LSTM2+FC2 (server)",
                bench::FmtInt(std::int64_t(model.ServerMacs())), "-"});
  costs.Print("Fig. 7: per-stage compute/bytes of the split architecture");
}

void PerClassBreakdown() {
  auto& app = TrainedApp();
  bench::Table table({"behavior class", "clips", "gated acc", "offload %"});
  for (int cls = 0; cls < app.model().config().num_classes; ++cls) {
    int hits = 0, offloads = 0;
    const int n = 40;
    for (int i = 0; i < n; ++i) {
      const auto clip = app.generator().Generate(cls);
      const auto pred = app.model().Predict(clip, 0.5f);
      if (pred.label == cls) ++hits;
      if (pred.used_server) ++offloads;
    }
    table.AddRow({std::string(datagen::BehaviorName(datagen::BehaviorClass(cls))),
                  bench::FmtInt(n), bench::Fmt(double(hits) / n, 3),
                  bench::Fmt(double(offloads) / n * 100, 1)});
  }
  table.Print("Fig. 7: per-class gated accuracy at threshold 0.5");
}

void BM_LocalInference(benchmark::State& state) {
  auto& app = TrainedApp();
  const auto clip = app.generator().Generate(1);
  for (auto _ : state) {
    auto pass = app.model().RunLocal(clip);
    benchmark::DoNotOptimize(pass.entropy);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalInference);

void BM_ServerEscalation(benchmark::State& state) {
  auto& app = TrainedApp();
  const auto clip = app.generator().Generate(1);
  auto pass = app.model().RunLocal(clip);
  for (auto _ : state) {
    auto probs = app.model().RunServer(pass.block1_out);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerEscalation);

// Eager-vs-planned comparison on the Fig. 7 single-clip workload: the
// local half (block1 + GAP + LSTM1 + FC1 + entropy) and the server
// escalation (blocks 2-3 + GAP + LSTM2 + FC2), written to JSON.
int RunJsonMode(const std::string& path) {
  auto& app = TrainedApp();
  const auto clip = app.generator().Generate(1);
  constexpr int kIters = 200;

  const auto local_eager = bench_json::Measure(10, kIters, [&] {
    auto pass = app.model().RunLocal(clip);
    benchmark::DoNotOptimize(pass.entropy);
  });
  const auto local_planned = bench_json::Measure(10, kIters, [&] {
    auto pass =
        app.session().RunLocal(tensor::TensorView::OfConst(clip.frames), 1);
    benchmark::DoNotOptimize(pass.entropy.front());
  });

  auto eager_pass = app.model().RunLocal(clip);
  const auto server_eager = bench_json::Measure(10, kIters, [&] {
    auto probs = app.model().RunServer(eager_pass.block1_out);
    benchmark::DoNotOptimize(probs.data());
  });
  auto planned_pass =
      app.session().RunLocal(tensor::TensorView::OfConst(clip.frames), 1);
  const auto server_planned = bench_json::Measure(10, kIters, [&] {
    auto logits = app.session().ServerLogits(planned_pass.block1_out, 1);
    benchmark::DoNotOptimize(logits.data());
  });

  const auto speedup = [](const bench_json::PathMetrics& eager,
                          const bench_json::PathMetrics& planned) {
    return planned.latency_ms > 0 ? eager.latency_ms / planned.latency_ms : 0;
  };
  const auto alloc_cut = [](const bench_json::PathMetrics& eager,
                            const bench_json::PathMetrics& planned) {
    return planned.heap_allocs_per_call > 0
               ? eager.heap_allocs_per_call / planned.heap_allocs_per_call
               : eager.heap_allocs_per_call;
  };

  std::ostringstream os;
  os << "{\n    \"train_steps\": " << g_train_steps
     << ",\n    \"iters\": " << kIters
     << ",\n    \"local_eager\": " << bench_json::PathJson(local_eager)
     << ",\n    \"local_planned\": " << bench_json::PathJson(local_planned)
     << ",\n    \"server_eager\": " << bench_json::PathJson(server_eager)
     << ",\n    \"server_planned\": " << bench_json::PathJson(server_planned)
     << ",\n    \"peak_arena_bytes\": " << app.session().arena().peak_bytes()
     << ",\n    \"local_latency_speedup\": "
     << bench_json::Num(speedup(local_eager, local_planned))
     << ",\n    \"local_alloc_reduction\": "
     << bench_json::Num(alloc_cut(local_eager, local_planned))
     << ",\n    \"server_latency_speedup\": "
     << bench_json::Num(speedup(server_eager, server_planned))
     << ",\n    \"server_alloc_reduction\": "
     << bench_json::Num(alloc_cut(server_eager, server_planned)) << "\n  }";
  bench_json::MergeInferJson(path, "fig7_behavior", os.str());

  std::printf(
      "fig7 local: eager %.3f ms (%.1f allocs) -> planned %.3f ms "
      "(%.1f allocs), %.2fx; server: %.3f ms -> %.3f ms, %.2fx; "
      "peak arena %zu bytes -> %s\n",
      local_eager.latency_ms, local_eager.heap_allocs_per_call,
      local_planned.latency_ms, local_planned.heap_allocs_per_call,
      speedup(local_eager, local_planned), server_eager.latency_ms,
      server_planned.latency_ms, speedup(server_eager, server_planned),
      app.session().arena().peak_bytes(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (bench_json::ParseJsonFlag(argc, argv, json_path)) {
    g_train_steps = 40;
    return RunJsonMode(json_path);
  }
  EntropySweep();
  PerClassBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
