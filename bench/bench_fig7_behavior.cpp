// Fig. 7 reproduction: the split ResNet+LSTM behavior recognizer with an
// entropy-gated early exit.
//
// Trains the joint two-exit model on synthetic action clips, then sweeps
// the entropy threshold and reports gated accuracy, offload fraction, and
// the exit-1 / exit-2 accuracy floor and ceiling. Expected shape: at
// threshold 0 everything offloads (accuracy = exit-2 ceiling); raising the
// threshold keeps more clips local, trading a little accuracy for large
// offload savings; somewhere in between the gated accuracy tracks the
// ceiling at well under 100% offloads.

#include <benchmark/benchmark.h>

#include "apps/behavior_app.h"
#include "bench_util.h"
#include "fog/fog.h"

namespace {

using namespace metro;

constexpr int kTrainSteps = 160;
constexpr int kEvalClips = 150;

apps::BehaviorRecognitionApp& TrainedApp() {
  static auto* app = [] {
    zoo::BehaviorConfig config;
    auto* a = new apps::BehaviorRecognitionApp(config, 1276);
    std::printf("[training split behavior net: %d steps ...]\n", kTrainSteps);
    a->Train(kTrainSteps, 12);
    return a;
  }();
  return *app;
}

void EntropySweep() {
  auto& app = TrainedApp();
  bench::Table table({"entropy threshold", "offload %", "gated acc",
                      "exit-1 acc", "exit-2 acc", "bytes/clip shipped",
                      "mean lat (ms)"});
  for (const float threshold :
       {0.0f, 0.1f, 0.25f, 0.5f, 0.75f, 1.0f, 1.3f, 1.61f}) {
    const auto eval = app.Evaluate(kEvalClips, threshold);

    fog::FogConfig fog_config;
    fog_config.num_edges = 8;
    fog::FogTopology topo(fog_config);
    std::vector<fog::WorkItem> items;
    Rng gate(9);
    const auto& model = app.model();
    const auto& config = app.model().config();
    for (int i = 0; i < kEvalClips; ++i) {
      fog::WorkItem item;
      item.id = std::uint64_t(i);
      item.edge = i % fog_config.num_edges;
      item.arrival = TimeNs(i) * 200 * kMillisecond;
      item.raw_bytes = std::uint64_t(config.clip_length) * config.frame_size *
                       config.frame_size * config.channels * 4;
      item.feature_bytes = model.FeatureMapBytes();
      item.local_macs = model.LocalMacs();
      item.server_macs = model.ServerMacs();
      item.local_exit = !gate.Bernoulli(eval.offload_fraction);
      items.push_back(item);
    }
    const auto fog_result = fog::RunEarlyExitPipeline(topo, std::move(items));

    table.AddRow(
        {bench::Fmt(threshold, 2), bench::Fmt(eval.offload_fraction * 100, 1),
         bench::Fmt(eval.accuracy, 3), bench::Fmt(eval.exit1_accuracy, 3),
         bench::Fmt(eval.exit2_accuracy, 3),
         bench::FmtBytes(std::uint64_t(eval.offload_fraction *
                                       double(model.FeatureMapBytes()))),
         bench::Fmt(fog_result.mean_latency_ms, 2)});
  }
  table.Print(
      "Fig. 7: entropy-threshold sweep of the split ResNet+LSTM recognizer "
      "(exit 1 on local device, exit 2 on analysis server)");

  bench::Table costs({"stage", "MACs/clip", "tensor bytes"});
  const auto& model = app.model();
  const auto& config = model.config();
  costs.AddRow({"raw clip (edge->fog)", "-",
                bench::FmtBytes(std::uint64_t(config.clip_length) *
                                config.frame_size * config.frame_size *
                                config.channels * 4)});
  costs.AddRow({"block1+LSTM1+FC1 (local)",
                bench::FmtInt(std::int64_t(model.LocalMacs())),
                bench::FmtBytes(model.FeatureMapBytes())});
  costs.AddRow({"blocks2-3+LSTM2+FC2 (server)",
                bench::FmtInt(std::int64_t(model.ServerMacs())), "-"});
  costs.Print("Fig. 7: per-stage compute/bytes of the split architecture");
}

void PerClassBreakdown() {
  auto& app = TrainedApp();
  bench::Table table({"behavior class", "clips", "gated acc", "offload %"});
  for (int cls = 0; cls < app.model().config().num_classes; ++cls) {
    int hits = 0, offloads = 0;
    const int n = 40;
    for (int i = 0; i < n; ++i) {
      const auto clip = app.generator().Generate(cls);
      const auto pred = app.model().Predict(clip, 0.5f);
      if (pred.label == cls) ++hits;
      if (pred.used_server) ++offloads;
    }
    table.AddRow({std::string(datagen::BehaviorName(datagen::BehaviorClass(cls))),
                  bench::FmtInt(n), bench::Fmt(double(hits) / n, 3),
                  bench::Fmt(double(offloads) / n * 100, 1)});
  }
  table.Print("Fig. 7: per-class gated accuracy at threshold 0.5");
}

void BM_LocalInference(benchmark::State& state) {
  auto& app = TrainedApp();
  const auto clip = app.generator().Generate(1);
  for (auto _ : state) {
    auto pass = app.model().RunLocal(clip);
    benchmark::DoNotOptimize(pass.entropy);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalInference);

void BM_ServerEscalation(benchmark::State& state) {
  auto& app = TrainedApp();
  const auto clip = app.generator().Generate(1);
  auto pass = app.model().RunLocal(clip);
  for (auto _ : state) {
    auto probs = app.model().RunServer(pass.block1_out);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerEscalation);

}  // namespace

int main(int argc, char** argv) {
  EntropySweep();
  PerClassBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
