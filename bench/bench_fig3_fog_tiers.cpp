// Fig. 3 reproduction: the four-tier fog pipeline.
//
// The figure's claim is architectural: edge filtering and fog-side early
// exits shrink the data volume climbing the hierarchy while keeping
// decision latency low. This bench sweeps (a) edge-filter selectivity and
// (b) fog confidence (local-exit rate) on a 16-edge topology and reports,
// per setting: bytes crossing each tier boundary, mean/p99 latency, and
// analysis-server compute. The expected shape: upstream traffic falls
// monotonically with both knobs; server compute falls with confidence.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "fog/fog.h"
#include "util/rng.h"

namespace {

using namespace metro;

std::vector<fog::WorkItem> MakeWorkload(const fog::FogConfig& config,
                                        int items_per_edge, double drop_rate,
                                        double local_exit_rate,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fog::WorkItem> items;
  std::uint64_t id = 0;
  for (int e = 0; e < config.num_edges; ++e) {
    for (int i = 0; i < items_per_edge; ++i) {
      fog::WorkItem item;
      item.id = id++;
      item.edge = e;
      item.arrival = TimeNs(i) * 66 * kMillisecond;  // ~15 fps cameras
      item.raw_bytes = 24'576;       // one 32x32x3 float frame + headers
      item.feature_bytes = 3'072;    // 8x8x12 branch feature map
      item.edge_filter_macs = 50'000;
      item.local_macs = 4'000'000;   // split-model local half
      item.server_macs = 40'000'000; // split-model server half
      item.dropped_by_edge_filter = rng.Bernoulli(drop_rate);
      item.local_exit = rng.Bernoulli(local_exit_rate);
      items.push_back(item);
    }
  }
  return items;
}

void SweepEdgeFilter() {
  bench::Table table({"edge-filter drop", "edge->fog", "fog->server",
                      "server->cloud", "mean lat (ms)", "p99 lat (ms)"});
  for (const double drop : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    fog::FogConfig config;
    config.num_edges = 16;
    fog::FogTopology topo(config);
    auto items = MakeWorkload(config, 40, drop, 0.7, 42);
    const auto result = fog::RunEarlyExitPipeline(topo, std::move(items));
    table.AddRow({bench::Fmt(drop, 1),
                  bench::FmtBytes(result.traffic.edge_to_fog),
                  bench::FmtBytes(result.traffic.fog_to_server),
                  bench::FmtBytes(result.traffic.server_to_cloud),
                  bench::Fmt(result.mean_latency_ms, 2),
                  bench::Fmt(result.p99_latency_ms, 2)});
  }
  table.Print(
      "Fig. 3 / sweep A: edge filtering cuts upstream traffic "
      "(16 edges, 640 frames, local-exit rate 0.7)");
}

void SweepConfidence() {
  bench::Table table({"local-exit rate", "offloaded", "fog->server",
                      "server MACs", "mean lat (ms)", "p99 lat (ms)"});
  for (const double exit_rate : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    fog::FogConfig config;
    config.num_edges = 16;
    fog::FogTopology topo(config);
    auto items = MakeWorkload(config, 40, 0.0, exit_rate, 43);
    const auto result = fog::RunEarlyExitPipeline(topo, std::move(items));
    table.AddRow({bench::Fmt(exit_rate, 2),
                  bench::FmtInt(result.items_offloaded),
                  bench::FmtBytes(result.traffic.fog_to_server),
                  bench::Fmt(result.server_macs_total / 1e9, 2) + "G",
                  bench::Fmt(result.mean_latency_ms, 2),
                  bench::Fmt(result.p99_latency_ms, 2)});
  }
  table.Print(
      "Fig. 3 / sweep B: fog confidence controls offload volume and server "
      "load (16 edges, 640 frames, no edge filtering)");
}

void TierScaling() {
  bench::Table table({"edges", "fogs", "servers", "total bytes",
                      "mean lat (ms)", "sim horizon (s)"});
  for (const int edges : {4, 16, 64, 128}) {
    fog::FogConfig config;
    config.num_edges = edges;
    fog::FogTopology topo(config);
    auto items = MakeWorkload(config, 20, 0.2, 0.7, 44);
    const auto result = fog::RunEarlyExitPipeline(topo, std::move(items));
    TimeNs horizon = 0;
    for (const auto& o : result.outcomes) horizon = std::max(horizon, o.completed);
    table.AddRow({bench::FmtInt(edges), bench::FmtInt(topo.num_fogs()),
                  bench::FmtInt(topo.num_servers()),
                  bench::FmtBytes(result.traffic.edge_to_fog +
                                  result.traffic.fog_to_server +
                                  result.traffic.server_to_cloud),
                  bench::Fmt(result.mean_latency_ms, 2),
                  bench::Fmt(double(horizon) / kSecond, 2)});
  }
  table.Print("Fig. 3 / sweep C: topology scaling (20 frames per edge)");
}

void BM_FogPipeline640Frames(benchmark::State& state) {
  for (auto _ : state) {
    fog::FogConfig config;
    config.num_edges = 16;
    fog::FogTopology topo(config);
    auto items = MakeWorkload(config, 40, 0.2, 0.7, 45);
    const auto result = fog::RunEarlyExitPipeline(topo, std::move(items));
    benchmark::DoNotOptimize(result.mean_latency_ms);
  }
  state.SetItemsProcessed(state.iterations() * 640);
}
BENCHMARK(BM_FogPipeline640Frames);

}  // namespace

int main(int argc, char** argv) {
  SweepEdgeFilter();
  SweepConfidence();
  TierScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
