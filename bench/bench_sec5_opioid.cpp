// Sec. V reproduction (future work, implemented): opioid-epidemic
// analytics over the multi-source city panel.
//
// The paper's stated plan: fuse prescriptions, drug-related arrests,
// overdose locations, 911 calls, and traffic data so "deep learning-based
// analytics ... may uncover additional factors that explain why opioid
// mortality rates are at epidemic levels". This bench trains the risk
// model on the dataflow engine over the synthetic tract panel, scores
// held-out months, and reports the recovered factor structure. Expected
// shape: the model beats the majority baseline by a clear margin, the
// top-10 ranked tracts are mostly true positives, prescriptions/poverty
// surface as risk factors and treatment availability as protective.

#include <benchmark/benchmark.h>

#include "apps/opioid_app.h"
#include "bench_util.h"

namespace {

using namespace metro;

void RiskModelTable() {
  dataflow::Engine engine(4);
  bench::Table table({"tracts", "months", "train rows", "test rows",
                      "model acc", "baseline acc", "top-10 precision"});
  for (const int tracts : {60, 120, 240}) {
    apps::OpioidAnalyticsApp app(
        {.num_tracts = tracts, .num_months = 12}, 500 + std::uint64_t(tracts));
    const auto report = app.Run(engine, 3);
    table.AddRow({bench::FmtInt(tracts), "12",
                  bench::FmtInt(report.train_rows),
                  bench::FmtInt(report.test_rows),
                  bench::Fmt(report.test_accuracy, 3),
                  bench::Fmt(report.baseline_accuracy, 3),
                  bench::Fmt(report.top10_precision, 2)});
  }
  table.Print(
      "Sec. V: opioid overdose risk model on held-out months "
      "(logistic regression over the fused tract panel)");
}

void FactorTable() {
  dataflow::Engine engine(4);
  apps::OpioidAnalyticsApp app({.num_tracts = 200, .num_months = 12}, 777);
  const auto report = app.Run(engine, 3);
  bench::Table table({"factor", "learned weight", "direction"});
  for (const auto& [name, weight] : report.factor_weights) {
    table.AddRow({name, bench::Fmt(weight, 3),
                  weight > 0 ? "risk" : "protective"});
  }
  table.Print(
      "Sec. V: factors the model uncovered, ranked by |weight| "
      "(ground truth plants prescriptions x poverty as the main driver and "
      "treatment availability as protective)");
}

void BM_PanelGeneration(benchmark::State& state) {
  for (auto _ : state) {
    datagen::OpioidPanelGenerator gen({.num_tracts = 200, .num_months = 12},
                                      1);
    auto panel = gen.Generate();
    benchmark::DoNotOptimize(panel.size());
  }
  state.SetItemsProcessed(state.iterations() * 2400);
}
BENCHMARK(BM_PanelGeneration);

void BM_RiskModelTraining(benchmark::State& state) {
  dataflow::Engine engine(4);
  for (auto _ : state) {
    apps::OpioidAnalyticsApp app({.num_tracts = 120, .num_months = 12}, 2);
    auto report = app.Run(engine, 3);
    benchmark::DoNotOptimize(report.test_accuracy);
  }
}
BENCHMARK(BM_RiskModelTraining)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RiskModelTable();
  FactorTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
