#pragma once

// Shared console-table helpers for the figure-reproduction benches. Each
// bench binary prints the series/rows its paper figure implies, then runs
// any registered google-benchmark micro-measurements.

#include <cstdio>
#include <string>
#include <vector>

namespace metro::bench {

/// Fixed-width console table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print(const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::printf("\n=== %s ===\n", title.c_str());
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        std::printf("| %-*s ", int(widths[c]), c < cells.size() ? cells[c].c_str() : "");
      }
      std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("|%s", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("|\n");
    for (const auto& row : rows_) print_row(row);
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

inline std::string FmtInt(long long v) { return std::to_string(v); }

inline std::string FmtBytes(unsigned long long bytes) {
  char buf[64];
  if (bytes >= 1'000'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f GB", double(bytes) / 1e9);
  } else if (bytes >= 1'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f MB", double(bytes) / 1e6);
  } else if (bytes >= 1'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f KB", double(bytes) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", bytes);
  }
  return buf;
}

}  // namespace metro::bench
