// Replicated-MQ failover bench: what does a leader kill cost, what does it
// lose, and what does batching buy?
//
// Scenarios over the same produce workload against a 5-node cluster
// (replication factor 3, acks=quorum):
//
//   healthy      steady-state quorum produce, measured with the grouped-min
//                scheme (best group mean) from infer_json.h;
//   leader_kill  mid-run the preferred leader of partition 0 is killed
//                (failover), then a second replica (quorum lost — produces
//                to that partition are rejected until revival), then both
//                revive and resync;
//   chaos        a seeded FaultPlan::Random storm (node kills, partition
//                outages) replayed on a SimClock — fully deterministic for
//                a given --seed, which defaults to a constant so two runs
//                of the bench always draw the same faults.
//
// After each faulted run, every partition is fetched end-to-end and the
// bench *asserts* the replication contract: every acked record is delivered
// exactly once — zero acked-record loss, zero duplicate deliveries — even
// though every 50th request was deliberately submitted twice to exercise
// the idempotent produce path. Violations exit non-zero, so the CI step
// that emits BENCH_mq.json is also a correctness gate.
//
// The batched-produce curves drive the zero-copy path: `produce_scaling`
// sweeps partition counts (one producing thread per partition) comparing
// single-record against 256-record batched produce, and `batch_size_curve`
// sweeps the batch size at 8 partitions. `batched_speedup_at_8` is the
// ratio check_perf.sh gates on.
//
// --json [--json=<path>] writes the measurements into BENCH_mq.json;
// --seed=<n> reseeds the chaos scenario (default 42, echoed in the JSON).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "infer_json.h"
#include "mq/broker_cluster.h"
#include "resilience/chaos.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace {

using namespace metro;

constexpr const char* kTopic = "city.events";
constexpr int kPartitions = 4;
constexpr int kRecords = 20'000;
constexpr std::uint64_t kDefaultSeed = 42;

mq::BrokerClusterConfig ClusterConfig() {
  mq::BrokerClusterConfig config;
  config.nodes = 5;
  config.replication_factor = 3;
  return config;
}

/// `--seed=<n>` if present; the constant default otherwise, so the chaos
/// scenario replays identically run to run unless explicitly reseeded.
std::uint64_t ParseSeedFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      return std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }
  return kDefaultSeed;
}

struct ScenarioResult {
  double throughput_per_s = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  std::int64_t acked = 0;
  std::int64_t rejected = 0;    ///< produces shed in the quorum-lost window
  std::int64_t duplicates_suppressed = 0;
  std::int64_t failovers = 0;
  std::int64_t faults_applied = 0;        ///< chaos scenario only
  std::int64_t lost_acked = 0;            ///< must be 0
  std::int64_t duplicate_deliveries = 0;  ///< must be 0
};

/// Exactly-once audit shared by every scenario: fetches each partition end
/// to end through the zero-copy view path and checks that every acked value
/// appears exactly once in the delivered stream.
void AuditDelivery(const mq::BrokerCluster& cluster,
                   const std::vector<std::string>& acked_values,
                   ScenarioResult& result) {
  std::map<std::string, int> delivered;
  for (int p = 0; p < kPartitions; ++p) {
    const auto info = cluster.GetPartitionInfo(kTopic, p);
    if (!info.ok()) continue;
    std::int64_t offset = info->begin_offset;
    while (offset < info->end_offset) {
      const auto view = cluster.FetchBatch(kTopic, p, offset, 512);
      if (!view.ok() || view->empty()) break;
      for (std::size_t i = 0; i < view->size(); ++i) {
        ++delivered[std::string((*view)[i].value())];
      }
      offset = view->next_offset();
    }
  }
  for (const std::string& value : acked_values) {
    const auto it = delivered.find(value);
    if (it == delivered.end()) {
      ++result.lost_acked;
    } else if (it->second > 1) {
      ++result.duplicate_deliveries;
    }
  }
}

/// Runs the produce workload; when `kill_leader` is set, injects the
/// kill/kill/revive episode against partition 0's replica set.
ScenarioResult RunScenario(bool kill_leader) {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  if (!cluster.CreateTopic(kTopic, kPartitions).ok()) return {};
  const mq::ProducerId producer = cluster.CreateProducer();

  const int preferred = *cluster.PreferredLeader(kTopic, 0);
  const auto view = *cluster.View(kTopic, 0);
  const int second_replica = view.replicas[1];

  ScenarioResult result;
  std::vector<std::string> acked_values;
  std::vector<double> latencies_ms;
  acked_values.reserve(kRecords);
  latencies_ms.reserve(kRecords);

  const Stopwatch run;
  for (int i = 0; i < kRecords; ++i) {
    if (kill_leader) {
      // Failover at the halfway mark, quorum loss at 5/8, recovery at 3/4.
      if (i == kRecords / 2) (void)cluster.KillNode(preferred);
      if (i == kRecords * 5 / 8) (void)cluster.KillNode(second_replica);
      if (i == kRecords * 3 / 4) {
        (void)cluster.ReviveNode(preferred);
        (void)cluster.ReviveNode(second_replica);
      }
    }
    const std::string value = "rec-" + std::to_string(i);
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64), value);
    if (!request.ok()) continue;
    const Stopwatch one;
    Result<mq::ProduceAck> ack = cluster.Produce(*request);
    for (int attempt = 0; attempt < 3 && !ack.ok() &&
                          ack.status().code() == StatusCode::kUnavailable;
         ++attempt) {
      ack = cluster.Produce(*request);
    }
    latencies_ms.push_back(double(one.ElapsedNs()) / double(kMillisecond));
    if (!ack.ok()) {
      ++result.rejected;  // shed during the quorum-lost window
      continue;
    }
    ++result.acked;
    acked_values.push_back(value);
    // Every 50th request is submitted again after its ack — the retry storm
    // the idempotent path must absorb without a duplicate append.
    if (i % 50 == 0) {
      const auto dup = cluster.Produce(*request);
      if (dup.ok() && dup->duplicate) ++result.duplicates_suppressed;
    }
  }
  const double elapsed_s = run.ElapsedSeconds();
  result.throughput_per_s =
      elapsed_s > 0 ? double(result.acked) / elapsed_s : 0;

  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    double sum = 0;
    for (const double v : latencies_ms) sum += v;
    result.mean_ms = sum / double(latencies_ms.size());
    result.p99_ms =
        latencies_ms[std::size_t(double(latencies_ms.size() - 1) * 0.99)];
  }
  result.failovers = cluster.metrics().GetCounter("mq.failovers").value();

  AuditDelivery(cluster, acked_values, result);
  return result;
}

/// Seeded random fault storm on a SimClock: node kills, partition outages,
/// and their recoveries drawn by FaultPlan::Random over the run's horizon.
/// Deterministic for a given seed — the clock is simulated and every fault
/// timestamp comes from the seeded plan, so a reported violation replays.
ScenarioResult RunChaosScenario(std::uint64_t seed) {
  SimClock clock;
  mq::BrokerCluster cluster(clock, ClusterConfig());
  if (!cluster.CreateTopic(kTopic, kPartitions).ok()) return {};
  const mq::ProducerId producer = cluster.CreateProducer();

  resilience::chaos::FaultTargets targets;
  targets.mq_cluster = &cluster;
  const TimeNs kTick = 5 * kMicrosecond;
  const TimeNs horizon = TimeNs(kRecords) * kTick;
  auto plan = resilience::chaos::FaultPlan::Random(/*intensity=*/0.9, horizon,
                                                   targets, {kTopic}, seed);

  ScenarioResult result;
  std::vector<std::string> acked_values;
  acked_values.reserve(kRecords);
  for (int i = 0; i < kRecords; ++i) {
    clock.Advance(kTick);
    plan.ApplyUpTo(clock.Now(), targets);
    const std::string value = "chaos-" + std::to_string(i);
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64), value);
    if (!request.ok()) continue;
    Result<mq::ProduceAck> ack = cluster.Produce(*request);
    for (int attempt = 0; attempt < 3 && !ack.ok() &&
                          ack.status().code() == StatusCode::kUnavailable;
         ++attempt) {
      // Let simulated time move so a recovery event can land mid-retry.
      clock.Advance(kTick);
      plan.ApplyUpTo(clock.Now(), targets);
      ack = cluster.Produce(*request);
    }
    if (!ack.ok()) {
      ++result.rejected;
      continue;
    }
    ++result.acked;
    acked_values.push_back(value);
    if (i % 50 == 0) {
      const auto dup = cluster.Produce(*request);
      if (dup.ok() && dup->duplicate) ++result.duplicates_suppressed;
    }
  }
  // Run out the plan: every injected fault has a recovery before the
  // horizon, so the audit below sees a healthy cluster.
  clock.Advance(horizon);
  plan.ApplyUpTo(clock.Now(), targets);
  result.faults_applied = std::int64_t(plan.applied());
  result.failovers = cluster.metrics().GetCounter("mq.failovers").value();

  AuditDelivery(cluster, acked_values, result);
  return result;
}

std::string ScenarioJson(const ScenarioResult& r) {
  std::ostringstream os;
  os << "{\"throughput_per_s\": " << bench_json::Num(r.throughput_per_s)
     << ", \"mean_ms\": " << bench_json::Num(r.mean_ms)
     << ", \"p99_ms\": " << bench_json::Num(r.p99_ms)
     << ", \"acked\": " << r.acked << ", \"rejected\": " << r.rejected
     << ", \"failovers\": " << r.failovers
     << ", \"faults_applied\": " << r.faults_applied
     << ", \"duplicates_suppressed\": " << r.duplicates_suppressed
     << ", \"lost_acked\": " << r.lost_acked
     << ", \"duplicate_deliveries\": " << r.duplicate_deliveries << "}";
  return os.str();
}

/// A key that the broker's key-hash partitioner maps to `partition` — lets
/// the single-record path target one partition per thread, matching the
/// batched path's explicit-partition produce for a fair comparison.
std::string PartitionKey(int partition, int partitions) {
  for (int j = 0;; ++j) {
    std::string key =
        "part-" + std::to_string(partition) + "-" + std::to_string(j);
    if (int(Fnv1a64(key) % std::uint64_t(partitions)) == partition) {
      return key;
    }
  }
}

/// Multi-threaded produce throughput: one thread per partition, each
/// producing `records_per_thread` records to its own partition — single
/// records through the pinned Prepare/Produce path when `batch_size` <= 1,
/// `batch_size`-record batches through PrepareBatch otherwise. Returns
/// acked records per second.
double MeasureProduceRps(int partitions, int batch_size,
                         int records_per_thread) {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  if (!cluster.CreateTopic(kTopic, partitions).ok()) return 0;
  std::vector<mq::ProducerId> producers;
  std::vector<std::string> keys;
  for (int t = 0; t < partitions; ++t) {
    producers.push_back(cluster.CreateProducer());
    keys.push_back(PartitionKey(t, partitions));
  }

  std::atomic<std::int64_t> acked{0};
  std::atomic<bool> go{false};
  auto worker = [&](int t) {
    while (!go.load(std::memory_order_acquire)) {
    }
    if (batch_size <= 1) {
      for (int i = 0; i < records_per_thread; ++i) {
        auto request = cluster.Prepare(producers[std::size_t(t)], kTopic,
                                       keys[std::size_t(t)],
                                       "rec-" + std::to_string(i));
        if (!request.ok()) continue;
        const auto ack = cluster.Produce(*request);
        if (ack.ok()) acked.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    mq::RecordBatchBuilder builder(/*reserve_bytes=*/std::size_t(batch_size) *
                                       32,
                                   /*reserve_records=*/std::size_t(batch_size));
    for (int done = 0; done < records_per_thread;) {
      const int n = std::min(batch_size, records_per_thread - done);
      for (int j = 0; j < n; ++j) {
        builder.Add(keys[std::size_t(t)], "rec-" + std::to_string(done + j));
      }
      auto request =
          cluster.PrepareBatch(producers[std::size_t(t)], kTopic, t, builder);
      if (!request.ok()) break;
      const auto ack = cluster.Produce(*request);
      if (ack.ok()) acked.fetch_add(ack->count, std::memory_order_relaxed);
      done += n;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(std::size_t(partitions));
  for (int t = 0; t < partitions; ++t) threads.emplace_back(worker, t);
  const Stopwatch run;
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  const double elapsed_s = run.ElapsedSeconds();
  return elapsed_s > 0 ? double(acked.load()) / elapsed_s : 0;
}

/// Grouped-min steady-state produce cost (the infer_json.h Measure scheme):
/// one Prepare + quorum Produce per call against a healthy cluster.
bench_json::PathMetrics MeasureSteadyState() {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  (void)cluster.CreateTopic(kTopic, kPartitions);
  const mq::ProducerId producer = cluster.CreateProducer();
  int i = 0;
  return bench_json::Measure(2'000, 20'000, [&] {
    ++i;
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64),
                                   "rec-" + std::to_string(i));
    if (request.ok()) (void)cluster.Produce(*request);
  });
}

/// Same scheme for the batched path: each call prepares and produces one
/// 64-record batch (latency and allocations are per *batch*).
bench_json::PathMetrics MeasureSteadyStateBatched() {
  constexpr int kBatch = 64;
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  (void)cluster.CreateTopic(kTopic, kPartitions);
  const mq::ProducerId producer = cluster.CreateProducer();
  mq::RecordBatchBuilder builder(/*reserve_bytes=*/kBatch * 32,
                                 /*reserve_records=*/kBatch);
  int i = 0;
  return bench_json::Measure(100, 1'000, [&] {
    for (int j = 0; j < kBatch; ++j) {
      builder.Add("cam-" + std::to_string(j % 64), "rec-" + std::to_string(i));
      ++i;
    }
    auto request =
        cluster.PrepareBatch(producer, kTopic, i % kPartitions, builder);
    if (request.ok()) (void)cluster.Produce(*request);
  });
}

int RunJsonMode(const std::string& path, std::uint64_t seed) {
  const bench_json::PathMetrics steady = MeasureSteadyState();
  const bench_json::PathMetrics steady_batched = MeasureSteadyStateBatched();
  const ScenarioResult healthy = RunScenario(/*kill_leader=*/false);
  const ScenarioResult faulted = RunScenario(/*kill_leader=*/true);
  const ScenarioResult chaos = RunChaosScenario(seed);

  // Records/s vs partitions (single vs 256-record batches, one producing
  // thread per partition), and records/s vs batch size at 8 partitions.
  constexpr int kScalingRecords = 24'000;  // total per measured point
  constexpr int kScalingBatch = 256;
  const std::vector<int> partition_counts = {1, 2, 4, 8};
  std::ostringstream scaling;
  scaling << "[";
  double single_at_8 = 0;
  double batched_at_8 = 0;
  for (std::size_t i = 0; i < partition_counts.size(); ++i) {
    const int p = partition_counts[i];
    const int per_thread = kScalingRecords / p;
    const double single = MeasureProduceRps(p, 1, per_thread);
    const double batched = MeasureProduceRps(p, kScalingBatch, per_thread);
    if (p == 8) {
      single_at_8 = single;
      batched_at_8 = batched;
    }
    scaling << (i > 0 ? ", " : "") << "{\"partitions\": " << p
            << ", \"single_records_per_s\": " << bench_json::Num(single)
            << ", \"batched_records_per_s\": " << bench_json::Num(batched)
            << "}";
  }
  scaling << "]";
  const std::vector<int> batch_sizes = {1, 8, 64, 256};
  std::ostringstream batch_curve;
  batch_curve << "[";
  for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
    const int b = batch_sizes[i];
    const double rps = MeasureProduceRps(8, b, kScalingRecords / 8);
    batch_curve << (i > 0 ? ", " : "") << "{\"batch_size\": " << b
                << ", \"records_per_s\": " << bench_json::Num(rps) << "}";
  }
  batch_curve << "]";
  const double speedup = single_at_8 > 0 ? batched_at_8 / single_at_8 : 0;

  std::ostringstream os;
  os << "{\"seed\": " << seed
     << ", \"steady_state\": " << bench_json::PathJson(steady)
     << ", \"steady_state_batched_64\": " << bench_json::PathJson(steady_batched)
     << ", \"healthy\": " << ScenarioJson(healthy)
     << ", \"leader_kill\": " << ScenarioJson(faulted)
     << ", \"chaos\": " << ScenarioJson(chaos)
     << ", \"produce_scaling\": " << scaling.str()
     << ", \"batch_size_curve\": " << batch_curve.str()
     << ", \"batched_speedup_at_8\": " << bench_json::Num(speedup) << "}";
  bench_json::MergeInferJson(path, "mq_failover", os.str());
  std::printf("wrote %s (seed %llu, batched speedup at 8 partitions: %.2fx)\n",
              path.c_str(), (unsigned long long)seed, speedup);

  const std::int64_t lost =
      healthy.lost_acked + faulted.lost_acked + chaos.lost_acked;
  const std::int64_t dups = healthy.duplicate_deliveries +
                            faulted.duplicate_deliveries +
                            chaos.duplicate_deliveries;
  if (lost + dups > 0) {
    std::fprintf(stderr,
                 "replication contract violated: lost=%lld dups=%lld\n",
                 (long long)lost, (long long)dups);
    return 1;
  }
  if (faulted.failovers < 1) {
    std::fprintf(stderr, "leader_kill scenario triggered no failover\n");
    return 1;
  }
  return 0;
}

void BM_QuorumProduce(benchmark::State& state) {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  (void)cluster.CreateTopic(kTopic, kPartitions);
  const mq::ProducerId producer = cluster.CreateProducer();
  int i = 0;
  for (auto _ : state) {
    ++i;
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64),
                                   "rec-" + std::to_string(i));
    if (request.ok()) benchmark::DoNotOptimize(cluster.Produce(*request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuorumProduce);

void BM_QuorumProduceBatch(benchmark::State& state) {
  const int batch = int(state.range(0));
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  (void)cluster.CreateTopic(kTopic, kPartitions);
  const mq::ProducerId producer = cluster.CreateProducer();
  mq::RecordBatchBuilder builder(std::size_t(batch) * 32, std::size_t(batch));
  int i = 0;
  for (auto _ : state) {
    for (int j = 0; j < batch; ++j) {
      builder.Add("cam-" + std::to_string(j % 64), "rec-" + std::to_string(i));
      ++i;
    }
    auto request =
        cluster.PrepareBatch(producer, kTopic, i % kPartitions, builder);
    if (request.ok()) benchmark::DoNotOptimize(cluster.Produce(*request));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_QuorumProduceBatch)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = ParseSeedFlag(argc, argv);
  std::string json_path;
  if (bench_json::ParseJsonFlag(argc, argv, json_path)) {
    // This bench owns its own output file (the MQ numbers, not the
    // inference ones) unless the caller pointed somewhere explicitly.
    if (json_path == "BENCH_infer.json") json_path = "BENCH_mq.json";
    return RunJsonMode(json_path, seed);
  }
  const ScenarioResult healthy = RunScenario(false);
  const ScenarioResult faulted = RunScenario(true);
  const ScenarioResult chaos = RunChaosScenario(seed);
  std::printf("healthy:     %s\n", ScenarioJson(healthy).c_str());
  std::printf("leader_kill: %s\n", ScenarioJson(faulted).c_str());
  std::printf("chaos[%llu]: %s\n", (unsigned long long)seed,
              ScenarioJson(chaos).c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
