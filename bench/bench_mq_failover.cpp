// Replicated-MQ failover bench: what does a leader kill cost, and what does
// it lose?
//
// Two scenarios over the same produce workload against a 5-node cluster
// (replication factor 3, acks=quorum):
//
//   healthy      steady-state quorum produce, measured with the grouped-min
//                scheme (best group mean) from infer_json.h;
//   leader_kill  mid-run the preferred leader of partition 0 is killed
//                (failover), then a second replica (quorum lost — produces
//                to that partition are rejected until revival), then both
//                revive and resync.
//
// After the faulted run, every partition is fetched end-to-end and the bench
// *asserts* the replication contract: every acked record is delivered
// exactly once — zero acked-record loss, zero duplicate deliveries — even
// though every 50th request was deliberately submitted twice to exercise the
// idempotent produce path. Violations exit non-zero, so the CI step that
// emits BENCH_mq.json is also a correctness gate.
//
// --json [--json=<path>] writes the measurements into BENCH_mq.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "infer_json.h"
#include "mq/broker_cluster.h"
#include "util/clock.h"

namespace {

using namespace metro;

constexpr const char* kTopic = "city.events";
constexpr int kPartitions = 4;
constexpr int kRecords = 20'000;

mq::BrokerClusterConfig ClusterConfig() {
  mq::BrokerClusterConfig config;
  config.nodes = 5;
  config.replication_factor = 3;
  return config;
}

struct ScenarioResult {
  double throughput_per_s = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  std::int64_t acked = 0;
  std::int64_t rejected = 0;    ///< produces shed in the quorum-lost window
  std::int64_t duplicates_suppressed = 0;
  std::int64_t failovers = 0;
  std::int64_t lost_acked = 0;        ///< must be 0
  std::int64_t duplicate_deliveries = 0;  ///< must be 0
};

/// Runs the produce workload; when `kill_leader` is set, injects the
/// kill/kill/revive episode against partition 0's replica set.
ScenarioResult RunScenario(bool kill_leader) {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  if (!cluster.CreateTopic(kTopic, kPartitions).ok()) return {};
  const mq::ProducerId producer = cluster.CreateProducer();

  const int preferred = *cluster.PreferredLeader(kTopic, 0);
  const auto view = *cluster.View(kTopic, 0);
  const int second_replica = view.replicas[1];

  ScenarioResult result;
  std::vector<std::string> acked_values;
  std::vector<double> latencies_ms;
  acked_values.reserve(kRecords);
  latencies_ms.reserve(kRecords);

  const Stopwatch run;
  for (int i = 0; i < kRecords; ++i) {
    if (kill_leader) {
      // Failover at the halfway mark, quorum loss at 5/8, recovery at 3/4.
      if (i == kRecords / 2) (void)cluster.KillNode(preferred);
      if (i == kRecords * 5 / 8) (void)cluster.KillNode(second_replica);
      if (i == kRecords * 3 / 4) {
        (void)cluster.ReviveNode(preferred);
        (void)cluster.ReviveNode(second_replica);
      }
    }
    const std::string value = "rec-" + std::to_string(i);
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64), value);
    if (!request.ok()) continue;
    const Stopwatch one;
    Result<mq::ProduceAck> ack = cluster.Produce(*request);
    for (int attempt = 0; attempt < 3 && !ack.ok() &&
                          ack.status().code() == StatusCode::kUnavailable;
         ++attempt) {
      ack = cluster.Produce(*request);
    }
    latencies_ms.push_back(double(one.ElapsedNs()) / double(kMillisecond));
    if (!ack.ok()) {
      ++result.rejected;  // shed during the quorum-lost window
      continue;
    }
    ++result.acked;
    acked_values.push_back(value);
    // Every 50th request is submitted again after its ack — the retry storm
    // the idempotent path must absorb without a duplicate append.
    if (i % 50 == 0) {
      const auto dup = cluster.Produce(*request);
      if (dup.ok() && dup->duplicate) ++result.duplicates_suppressed;
    }
  }
  const double elapsed_s = run.ElapsedSeconds();
  result.throughput_per_s =
      elapsed_s > 0 ? double(result.acked) / elapsed_s : 0;

  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    double sum = 0;
    for (const double v : latencies_ms) sum += v;
    result.mean_ms = sum / double(latencies_ms.size());
    result.p99_ms =
        latencies_ms[std::size_t(double(latencies_ms.size() - 1) * 0.99)];
  }
  result.failovers = cluster.metrics().GetCounter("mq.failovers").value();

  // Contract check: fetch everything below the high-water marks and verify
  // each acked record was delivered exactly once.
  std::map<std::string, int> delivered;
  for (int p = 0; p < kPartitions; ++p) {
    const auto info = cluster.GetPartitionInfo(kTopic, p);
    if (!info.ok()) continue;
    std::int64_t offset = info->begin_offset;
    while (offset < info->end_offset) {
      const auto records = cluster.Fetch(kTopic, p, offset, 512);
      if (!records.ok() || records->empty()) break;
      for (const mq::Record& rec : *records) ++delivered[rec.value];
      offset = records->back().offset + 1;
    }
  }
  for (const std::string& value : acked_values) {
    const auto it = delivered.find(value);
    if (it == delivered.end()) {
      ++result.lost_acked;
    } else if (it->second > 1) {
      ++result.duplicate_deliveries;
    }
  }
  return result;
}

std::string ScenarioJson(const ScenarioResult& r) {
  std::ostringstream os;
  os << "{\"throughput_per_s\": " << bench_json::Num(r.throughput_per_s)
     << ", \"mean_ms\": " << bench_json::Num(r.mean_ms)
     << ", \"p99_ms\": " << bench_json::Num(r.p99_ms)
     << ", \"acked\": " << r.acked << ", \"rejected\": " << r.rejected
     << ", \"failovers\": " << r.failovers
     << ", \"duplicates_suppressed\": " << r.duplicates_suppressed
     << ", \"lost_acked\": " << r.lost_acked
     << ", \"duplicate_deliveries\": " << r.duplicate_deliveries << "}";
  return os.str();
}

/// Grouped-min steady-state produce cost (the infer_json.h Measure scheme):
/// one Prepare + quorum Produce per call against a healthy cluster.
bench_json::PathMetrics MeasureSteadyState() {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  (void)cluster.CreateTopic(kTopic, kPartitions);
  const mq::ProducerId producer = cluster.CreateProducer();
  int i = 0;
  return bench_json::Measure(2'000, 20'000, [&] {
    ++i;
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64),
                                   "rec-" + std::to_string(i));
    if (request.ok()) (void)cluster.Produce(*request);
  });
}

int RunJsonMode(const std::string& path) {
  const bench_json::PathMetrics steady = MeasureSteadyState();
  const ScenarioResult healthy = RunScenario(/*kill_leader=*/false);
  const ScenarioResult faulted = RunScenario(/*kill_leader=*/true);

  std::ostringstream os;
  os << "{\"steady_state\": " << bench_json::PathJson(steady)
     << ", \"healthy\": " << ScenarioJson(healthy)
     << ", \"leader_kill\": " << ScenarioJson(faulted) << "}";
  bench_json::MergeInferJson(path, "mq_failover", os.str());
  std::printf("wrote %s\n", path.c_str());

  const std::int64_t violations = healthy.lost_acked + faulted.lost_acked +
                                  healthy.duplicate_deliveries +
                                  faulted.duplicate_deliveries;
  if (violations > 0) {
    std::fprintf(stderr,
                 "replication contract violated: lost=%lld dups=%lld\n",
                 (long long)(healthy.lost_acked + faulted.lost_acked),
                 (long long)(healthy.duplicate_deliveries +
                             faulted.duplicate_deliveries));
    return 1;
  }
  if (faulted.failovers < 1) {
    std::fprintf(stderr, "leader_kill scenario triggered no failover\n");
    return 1;
  }
  return 0;
}

void BM_QuorumProduce(benchmark::State& state) {
  WallClock& clock = WallClock::Instance();
  mq::BrokerCluster cluster(clock, ClusterConfig());
  (void)cluster.CreateTopic(kTopic, kPartitions);
  const mq::ProducerId producer = cluster.CreateProducer();
  int i = 0;
  for (auto _ : state) {
    ++i;
    auto request = cluster.Prepare(producer, kTopic,
                                   "cam-" + std::to_string(i % 64),
                                   "rec-" + std::to_string(i));
    if (request.ok()) benchmark::DoNotOptimize(cluster.Produce(*request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuorumProduce);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (bench_json::ParseJsonFlag(argc, argv, json_path)) {
    // This bench owns its own output file (the MQ numbers, not the
    // inference ones) unless the caller pointed somewhere explicitly.
    if (json_path == "BENCH_infer.json") json_path = "BENCH_mq.json";
    return RunJsonMode(json_path);
  }
  const ScenarioResult healthy = RunScenario(false);
  const ScenarioResult faulted = RunScenario(true);
  std::printf("healthy:     %s\n", ScenarioJson(healthy).c_str());
  std::printf("leader_kill: %s\n", ScenarioJson(faulted).c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
