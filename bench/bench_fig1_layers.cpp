// Fig. 1 reproduction: the four-layer cyberinfrastructure, end to end.
//
// Assembles the full stack (data layer: all four source types; hardware
// layer: DFS + fog; software layer: message log, stores, dataflow,
// scheduler; application layer: analyzers + alerts) and drives one city
// "day": ingest -> NoSQL -> analysis -> archive -> mining -> alerts.
// Reports per-layer volumes and timings. The figure is an architecture
// diagram; its implied claim — heterogeneous sources flowing through one
// integrated stack — is what this measures.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/infrastructure.h"
#include "dataflow/dataset.h"
#include "dataflow/mllib.h"
#include "datagen/city.h"
#include "ingest/bulkload.h"

namespace {

using namespace metro;

void EndToEndDay() {
  const auto t0 = WallClock::Instance().Now();

  core::InfrastructureConfig config;
  config.dfs_datanodes = 6;
  config.fog.num_edges = 16;
  core::Cyberinfrastructure infra(config, WallClock::Instance());
  std::printf("\n%s\n", infra.Describe().c_str());

  // --- Software layer: declare topics with their analyzers.
  for (const char* topic : {"tweets", "waze", "crimes", "calls"}) {
    core::CityPipeline::TopicSpec spec;
    spec.topic = topic;
    spec.partitions = 2;
    spec.analyzer = [](const store::Document& doc)
        -> std::optional<store::Document> {
      // Analysis servers promote everything geo-tagged for visualization.
      if (!doc.count("lat")) return std::nullopt;
      return doc;
    };
    (void)infra.pipeline().AddTopic(std::move(spec));
  }
  (void)infra.pipeline().Start();

  // --- Data layer: one synthetic city day.
  datagen::CityDataGenerator city({}, 11);
  datagen::TweetGenerator tweets({.num_users = 1500}, 12);
  datagen::WazeGenerator waze(13);
  const auto network = datagen::GenerateGangNetwork({}, 14);

  const int kTweets = 6000, kWaze = 1500, kCrimes = 400, kCalls = 1200;
  const TimeNs now = WallClock::Instance().Now();
  for (int i = 0; i < kTweets; ++i) {
    (void)infra.pipeline().log().Produce(
        "tweets", "",
        core::EncodeDocument(
            datagen::CityDataGenerator::ToDocument(tweets.Generate(now))));
  }
  for (int i = 0; i < kWaze; ++i) {
    (void)infra.pipeline().log().Produce(
        "waze", "",
        core::EncodeDocument(
            datagen::CityDataGenerator::ToDocument(waze.Generate(now))));
  }
  for (int i = 0; i < kCrimes; ++i) {
    (void)infra.pipeline().log().Produce(
        "crimes", "",
        core::EncodeDocument(datagen::CityDataGenerator::ToDocument(
            city.GenerateCrime(now, &network))));
  }
  for (int i = 0; i < kCalls; ++i) {
    (void)infra.pipeline().log().Produce(
        "calls", "",
        core::EncodeDocument(
            datagen::CityDataGenerator::ToDocument(city.GenerateCall(now))));
  }
  infra.pipeline().Drain();
  const auto t_ingest = WallClock::Instance().Now();

  // --- Hardware layer: archive the day's web feed into the DFS.
  std::string archive;
  for (const auto& line : infra.pipeline().WebFeed()) {
    archive += line;
    archive += '\n';
  }
  (void)infra.storage().Create("/archive/day-0/webfeed.jsonl", archive);
  const auto day_stat = infra.storage().Stat("/archive/day-0/webfeed.jsonl");
  const auto t_archive = WallClock::Instance().Now();

  // --- Software layer: mine crime hot-spots from the stored documents.
  auto crimes = infra.pipeline().collection("crimes");
  std::vector<dataflow::FeatureVec> points;
  for (const auto& doc : (*crimes)->FindDocs({})) {
    points.push_back({float(std::get<double>(doc.at("lat"))),
                      float(std::get<double>(doc.at("lon")))});
  }
  Rng rng(15);
  auto kmeans = dataflow::FitKMeans(
      dataflow::Dataset<dataflow::FeatureVec>::Parallelize(points, 4), 6,
      infra.engine(), rng);
  const auto t_mine = WallClock::Instance().Now();

  // --- Application layer: alert on clusters near schools (stand-in rule).
  if (kmeans.ok()) {
    for (const auto& centroid : kmeans->centroids) {
      infra.alerts().Raise({.time = now,
                            .location = {centroid[0], centroid[1]},
                            .kind = "hotspot",
                            .message = "crime hot-spot identified",
                            .severity = 3});
    }
  }

  const auto stats = infra.pipeline().Stats();
  bench::Table table({"layer", "work", "volume", "wall (ms)"});
  table.AddRow({"data", "records generated",
                bench::FmtInt(kTweets + kWaze + kCrimes + kCalls), "-"});
  table.AddRow({"software: collection+storage+analysis",
                "consumed/stored/annotated",
                bench::FmtInt(stats.records_consumed) + "/" +
                    bench::FmtInt(stats.documents_stored) + "/" +
                    bench::FmtInt(stats.annotations),
                bench::Fmt(double(t_ingest - t0) / kMillisecond, 1)});
  table.AddRow({"hardware: DFS archive",
                "webfeed blocks x" +
                    bench::FmtInt(day_stat.ok() ? day_stat->replication : 0) +
                    " replicas",
                day_stat.ok() ? bench::FmtBytes(day_stat->size) : "-",
                bench::Fmt(double(t_archive - t_ingest) / kMillisecond, 1)});
  table.AddRow({"software: dataflow mining",
                "k-means on " + bench::FmtInt(std::int64_t(points.size())) +
                    " crime docs",
                kmeans.ok() ? bench::FmtInt(kmeans->iterations) + " iters" : "-",
                bench::Fmt(double(t_mine - t_archive) / kMillisecond, 1)});
  table.AddRow({"application: alerts", "hot-spot alerts raised",
                bench::FmtInt(std::int64_t(infra.alerts().total())), "-"});
  table.Print("Fig. 1: one city day through the four-layer stack");

  infra.pipeline().Stop();
}

void BM_FullStackSmallDay(benchmark::State& state) {
  for (auto _ : state) {
    core::InfrastructureConfig config;
    config.dfs_datanodes = 3;
    config.fog.num_edges = 4;
    core::Cyberinfrastructure infra(config, WallClock::Instance());
    core::CityPipeline::TopicSpec spec;
    spec.topic = "tweets";
    spec.partitions = 2;
    (void)infra.pipeline().AddTopic(std::move(spec));
    (void)infra.pipeline().Start();
    datagen::TweetGenerator tweets({.num_users = 100}, 1);
    for (int i = 0; i < 500; ++i) {
      (void)infra.pipeline().log().Produce(
          "tweets", "",
          core::EncodeDocument(datagen::CityDataGenerator::ToDocument(
              tweets.Generate(WallClock::Instance().Now()))));
    }
    infra.pipeline().Drain();
    infra.pipeline().Stop();
    benchmark::DoNotOptimize(infra.pipeline().Stats().documents_stored);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_FullStackSmallDay)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  EndToEndDay();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
