#pragma once

// Program-wide heap-allocation counter for the inference benchmarks.
//
// Including this header in a bench's main TU replaces the global operator
// new/delete family with malloc/free wrappers that bump a relaxed atomic, so
// a measurement loop can report heap allocations per inference (the planned
// engine's claim is that steady-state runs allocate ~nothing). Include it
// from exactly ONE translation unit per executable — the replacement
// operators are definitions, not inline — and never from library code.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace bench_alloc {

inline std::atomic<std::uint64_t> g_news{0};

/// Total operator-new calls since process start.
inline std::uint64_t Count() {
  return g_news.load(std::memory_order_relaxed);
}

inline void* Grab(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

inline void* GrabAligned(std::size_t n, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, ((n + align - 1) / align) * align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace bench_alloc

void* operator new(std::size_t n) { return bench_alloc::Grab(n); }
void* operator new[](std::size_t n) { return bench_alloc::Grab(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  bench_alloc::g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  bench_alloc::g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return bench_alloc::GrabAligned(n, std::size_t(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return bench_alloc::GrabAligned(n, std::size_t(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
