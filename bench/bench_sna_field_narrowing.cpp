// Sec. IV-B reproduction: social-network-analysis field narrowing.
//
// The paper's published numbers: 67 groups, 982 members, mean first-degree
// field ~14, second-degree field ~200 — "prohibitively large" for manual
// investigation — narrowed by geo-targeted tweets in the incident window.
// This bench regenerates the network at those statistics, stages incidents
// with planted present associates, and reports the funnel at each stage
// plus plant recall/precision across many investigations. Expected shape:
// the multi-modal narrowing shrinks the field by >10x while keeping recall
// of planted associates near 1.

#include <benchmark/benchmark.h>

#include "apps/sna_app.h"
#include "bench_util.h"

namespace {

using namespace metro;

void NetworkStatsTable() {
  apps::SnaApp::Config config;
  apps::SnaApp app(config, 982);
  const auto stats = app.Stats(200);
  bench::Table table({"statistic", "paper (Sec. IV-B)", "reproduced"});
  table.AddRow({"groups/gangs", "67", bench::FmtInt(std::int64_t(stats.groups))});
  table.AddRow({"identified members", "982",
                bench::FmtInt(std::int64_t(stats.members))});
  table.AddRow({"mean 1st-degree associates", "14",
                bench::Fmt(stats.mean_first_degree, 1)});
  table.AddRow({"mean 2nd-degree field", "~200",
                bench::Fmt(stats.mean_second_degree_field, 1)});
  table.Print("Sec. IV-B: gang-network statistics, paper vs reproduction");
}

void InvestigationFunnel() {
  bench::Table table({"incident", "1st deg", "2nd-deg field", "geo+time",
                      "persons of interest", "narrowing factor",
                      "plant recall", "plant precision"});
  double mean_narrow = 0, mean_recall = 0;
  const int incidents = 8;
  for (int i = 0; i < incidents; ++i) {
    apps::SnaApp::Config config;
    config.planted_present_associates = 5;
    apps::SnaApp app(config, 3000 + std::uint64_t(i));
    const geo::LatLon scene{datagen::kBatonRouge.lat + 0.01 * (i - 4),
                            datagen::kBatonRouge.lon + 0.008 * (i - 4)};
    const TimeNs when = TimeNs(100 + i) * 3600 * kSecond;
    const auto seed = app.StageIncident(when, scene);
    const auto result = app.Investigate(seed, when, scene);
    mean_narrow += result.narrowing_factor;
    mean_recall += result.plant_recall;
    table.AddRow({bench::FmtInt(i),
                  bench::FmtInt(std::int64_t(result.first_degree)),
                  bench::FmtInt(std::int64_t(result.second_degree_field)),
                  bench::FmtInt(std::int64_t(result.geo_time_matched)),
                  bench::FmtInt(std::int64_t(result.persons_of_interest)),
                  bench::Fmt(result.narrowing_factor, 1) + "x",
                  bench::Fmt(result.plant_recall, 2),
                  bench::Fmt(result.plant_precision, 2)});
  }
  table.AddRow({"MEAN", "-", "-", "-", "-",
                bench::Fmt(mean_narrow / incidents, 1) + "x",
                bench::Fmt(mean_recall / incidents, 2), "-"});
  table.Print(
      "Sec. IV-B: investigation funnel — associate expansion narrowed by "
      "geo-temporal tweet matching + NLP filtering");
}

void WindowSensitivity() {
  bench::Table table({"radius (m)", "window (h)", "geo+time matches",
                      "persons of interest", "plant recall"});
  for (const double radius : {600.0, 1200.0, 2400.0}) {
    for (const double hours : {1.0, 2.0, 6.0}) {
      apps::SnaApp::Config config;
      config.window_radius_m = radius;
      config.window_duration = TimeNs(hours * 3600) * kSecond;
      apps::SnaApp app(config, 4242);
      const geo::LatLon scene{30.43, -91.15};
      const TimeNs when = 5000 * kSecond * 3600;
      const auto seed = app.StageIncident(when, scene);
      const auto result = app.Investigate(seed, when, scene);
      table.AddRow({bench::FmtInt(std::int64_t(radius)), bench::Fmt(hours, 0),
                    bench::FmtInt(std::int64_t(result.geo_time_matched)),
                    bench::FmtInt(std::int64_t(result.persons_of_interest)),
                    bench::Fmt(result.plant_recall, 2)});
    }
  }
  table.Print(
      "Sec. IV-B: sensitivity of the field of interest to the space-time "
      "window");
}

void BM_SecondDegreeExpansion(benchmark::State& state) {
  const auto net = datagen::GenerateGangNetwork({}, 99);
  Rng rng(1);
  for (auto _ : state) {
    const auto seed =
        graph::PersonId(rng.UniformU64(net.graph.num_people()));
    auto field = net.graph.KDegreeAssociates(seed, 2);
    benchmark::DoNotOptimize(field.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SecondDegreeExpansion);

void BM_FullInvestigation(benchmark::State& state) {
  apps::SnaApp::Config config;
  apps::SnaApp app(config, 7);
  const geo::LatLon scene{30.42, -91.14};
  const TimeNs when = 900 * kSecond * 3600;
  const auto seed = app.StageIncident(when, scene);
  for (auto _ : state) {
    auto result = app.Investigate(seed, when, scene);
    benchmark::DoNotOptimize(result.persons_of_interest);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullInvestigation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  NetworkStatsTable();
  InvestigationFunnel();
  WindowSensitivity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
