#!/usr/bin/env bash
# Tier-1 gate plus the observability/resilience concurrency gate.
#
# 1. Plain build, full test suite (the tier-1 bar every PR must hold).
# 2. ThreadSanitizer build of the tree, running the obs- and
#    resilience-labelled tests — the span collector and the breaker's
#    state-listener hand-off are the lock-heavy paths this PR touches.
#
# Usage: scripts/check_obs.sh [build-dir-prefix]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> tier-1: plain build + full ctest"
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "==> tsan: METRO_SANITIZE=thread build + obs/resilience tests"
cmake -B "${PREFIX}-tsan" -S . -DMETRO_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target \
  obs_test resilience_test chaos_test util_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -L "obs|resilience"

echo "==> check_obs: OK"
