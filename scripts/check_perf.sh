#!/usr/bin/env bash
# Performance gate for the planned inference engine and the batched MQ
# produce path. Builds Release, proves bit-exactness first (the parity
# suite is the contract that makes the perf numbers meaningful), then runs
# the Fig. 5 / Fig. 7 benches in --json mode and reports the
# eager-vs-planned ratios from BENCH_infer.json, and finally runs the MQ
# failover bench and gates on the batched-produce speedup from
# BENCH_mq.json.
#
# Exits non-zero when:
#   - the build or the inference parity suite fails, or
#   - either inference bench fails to produce its BENCH_infer.json section, or
#   - the MQ bench fails its exactly-once audit / misses BENCH_mq.json, or
#   - batched produce is < 2x single-record records/s at 8 partitions, or
#   - the store read-storm bench fails its ingest sanity floor / misses
#     BENCH_store.json.
#
# The latency/alloc ratios are printed for trend-watching but only warn by
# default (shared CI machines are noisy); set METRO_PERF_STRICT=1 to also
# fail when Fig. 5 local-exit speedup < 2x or alloc reduction < 4x.
#
# Usage: scripts/check_perf.sh [build-dir]   (default: build-perf)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-perf}"
JOBS="$(nproc 2>/dev/null || echo 4)"
JSON="${PREFIX}/BENCH_infer.json"

echo "==> build: Release (${PREFIX})"
cmake -B "${PREFIX}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}" --target \
  inference_parity_test bench_fig5_earlyexit_detect bench_fig7_behavior \
  bench_mq_failover bench_store_readstorm

echo "==> parity: planned inference must be bit-exact with eager"
ctest --test-dir "${PREFIX}" --output-on-failure -R inference_parity_test

echo "==> bench: fig5 early-exit detector (--json)"
rm -f "${JSON}"
(cd "${PREFIX}" && ./bench/bench_fig5_earlyexit_detect --json)

echo "==> bench: fig7 behavior recognizer (--json)"
(cd "${PREFIX}" && ./bench/bench_fig7_behavior --json)

grep -q '"fig5_earlyexit_detect"' "${JSON}" ||
  { echo "check_perf: fig5 section missing from ${JSON}" >&2; exit 1; }
grep -q '"fig7_behavior"' "${JSON}" ||
  { echo "check_perf: fig7 section missing from ${JSON}" >&2; exit 1; }

# Pull the headline ratios out of the (machine-written, one-key-per-line)
# JSON without requiring jq.
ratio() { sed -n "s/.*\"$1\": \([0-9.eE+-]*\).*/\1/p" "${JSON}" | head -1; }
SPEEDUP="$(ratio latency_speedup)"
ALLOC_CUT="$(ratio alloc_reduction)"
echo "==> fig5 local-exit: planned is ${SPEEDUP}x faster, ${ALLOC_CUT}x fewer heap allocs (target: >= 2x / >= 4x)"

if [[ "${METRO_PERF_STRICT:-0}" == "1" ]]; then
  awk -v s="${SPEEDUP}" -v a="${ALLOC_CUT}" \
    'BEGIN { exit !(s >= 2.0 && a >= 4.0) }' ||
    { echo "check_perf: FAIL (below 2x latency / 4x alloc targets)" >&2; exit 1; }
fi

# Batched MQ produce: the bench itself is the exactly-once audit (non-zero
# on acked loss or duplicate delivery); the speedup gate here is a *hard*
# gate — batching amortizes the broker's lock and bookkeeping, so even a
# noisy shared machine clears 2x with a wide margin.
MQ_JSON="${PREFIX}/BENCH_mq.json"
echo "==> bench: mq failover + batched produce (--json)"
rm -f "${MQ_JSON}"
(cd "${PREFIX}" && ./bench/bench_mq_failover --json)
grep -q '"mq_failover"' "${MQ_JSON}" ||
  { echo "check_perf: mq_failover section missing from ${MQ_JSON}" >&2; exit 1; }
MQ_SPEEDUP="$(sed -n 's/.*"batched_speedup_at_8": \([0-9.eE+-]*\).*/\1/p' "${MQ_JSON}" | head -1)"
echo "==> mq: batched produce is ${MQ_SPEEDUP}x single-record at 8 partitions (target: >= 2x)"
awk -v s="${MQ_SPEEDUP}" 'BEGIN { exit !(s >= 2.0) }' ||
  { echo "check_perf: FAIL (batched produce < 2x single-record at 8 partitions)" >&2; exit 1; }

# Storage read storm: Zipfian open-loop readers against sustained ingest,
# versioned LSM engine vs a replica of the seed engine (one global mutex).
# The headline ratio is tail read latency at a fixed arrival rate; like the
# Fig. 5 ratios it only warns by default (the storm is scheduler-sensitive
# on shared machines) and becomes a >= 2x gate under METRO_PERF_STRICT=1.
STORE_JSON="${PREFIX}/BENCH_store.json"
echo "==> bench: store read storm (--json)"
rm -f "${STORE_JSON}"
(cd "${PREFIX}" && ./bench/bench_store_readstorm --json=BENCH_store.json)
grep -q '"store_readstorm"' "${STORE_JSON}" ||
  { echo "check_perf: store_readstorm section missing from ${STORE_JSON}" >&2; exit 1; }
P99_IMPROVEMENT="$(sed -n 's/.*"read_p99_improvement": \([0-9.eE+-]*\).*/\1/p' "${STORE_JSON}" | head -1)"
echo "==> store: versioned engine read p99 is ${P99_IMPROVEMENT}x better than the seed engine under ingest (target: >= 2x)"
if [[ "${METRO_PERF_STRICT:-0}" == "1" ]]; then
  awk -v s="${P99_IMPROVEMENT}" 'BEGIN { exit !(s >= 2.0) }' ||
    { echo "check_perf: FAIL (read p99 improvement < 2x over seed engine)" >&2; exit 1; }
fi

echo "==> check_perf: OK (${JSON}, ${MQ_JSON}, ${STORE_JSON})"
