#!/usr/bin/env bash
# Static-analysis gate: thread-safety analysis, clang-tidy, and the
# sanitizer matrix in one command. Exits non-zero on any thread-safety
# warning, clang-tidy finding, or sanitizer failure.
#
# Stages:
#   1. Clang + METRO_THREAD_SAFETY=ON: -Werror=thread-safety over the whole
#      annotated tree (src/util/sync.h vocabulary). Skipped with a notice
#      when no clang is installed — the annotations compile as no-ops under
#      GCC, so this stage needs a real Clang to prove anything.
#   2. clang-tidy with the repo .clang-tidy profile over src/. Skipped with
#      a notice when clang-tidy is not installed.
#   3. Sanitizer matrix: TSan on the concurrency-heavy labels (static, obs,
#      resilience), ASan and UBSan on the full suite. Runs with whatever
#      compiler CMake picks (GCC and Clang both support all three).
#
# Usage: scripts/check_static.sh [build-dir-prefix]   (default: build)
# Env:   METRO_CHECK_FAST=1 limits ASan/UBSan to the static-labelled tests
#        (useful on slow machines; the full matrix is the real gate).

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIPPED=()

# --- 1. Clang thread-safety analysis -----------------------------------
CLANGXX="$(command -v clang++ || true)"
if [[ -n "${CLANGXX}" ]]; then
  echo "==> thread-safety: clang + METRO_THREAD_SAFETY=ON (-Werror=thread-safety)"
  cmake -B "${PREFIX}-tsafe" -S . \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DMETRO_THREAD_SAFETY=ON >/dev/null
  cmake --build "${PREFIX}-tsafe" -j "${JOBS}"
else
  echo "==> thread-safety: SKIPPED (no clang++ on PATH; annotations are no-ops under this compiler)"
  SKIPPED+=("thread-safety")
fi

# --- 2. clang-tidy ------------------------------------------------------
CLANG_TIDY="$(command -v clang-tidy || true)"
if [[ -n "${CLANG_TIDY}" ]]; then
  echo "==> clang-tidy: src/ with repo .clang-tidy profile"
  cmake -B "${PREFIX}-tidy" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # xargs propagates clang-tidy's non-zero exit through set -e.
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "${JOBS}" "${CLANG_TIDY}" -p "${PREFIX}-tidy" --quiet
else
  echo "==> clang-tidy: SKIPPED (not installed)"
  SKIPPED+=("clang-tidy")
fi

# --- 3. Sanitizer matrix ------------------------------------------------
CONCURRENCY_TARGETS=(static_stress_test obs_test resilience_test chaos_test util_test)
FULL_LABEL_ARGS=()
if [[ "${METRO_CHECK_FAST:-0}" == "1" ]]; then
  FULL_LABEL_ARGS=(-L "static")
fi

echo "==> tsan: METRO_SANITIZE=thread + static/obs/resilience tests"
cmake -B "${PREFIX}-tsan" -S . -DMETRO_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target "${CONCURRENCY_TARGETS[@]}"
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -L "static|obs|resilience"

echo "==> asan: METRO_SANITIZE=address + tests"
cmake -B "${PREFIX}-asan" -S . -DMETRO_SANITIZE=address >/dev/null
if [[ "${METRO_CHECK_FAST:-0}" == "1" ]]; then
  cmake --build "${PREFIX}-asan" -j "${JOBS}" --target static_stress_test
else
  cmake --build "${PREFIX}-asan" -j "${JOBS}"
fi
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  "${FULL_LABEL_ARGS[@]}"

echo "==> ubsan: METRO_SANITIZE=undefined (-fno-sanitize-recover) + tests"
cmake -B "${PREFIX}-ubsan" -S . -DMETRO_SANITIZE=undefined >/dev/null
if [[ "${METRO_CHECK_FAST:-0}" == "1" ]]; then
  cmake --build "${PREFIX}-ubsan" -j "${JOBS}" --target static_stress_test
else
  cmake --build "${PREFIX}-ubsan" -j "${JOBS}"
fi
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}" \
  "${FULL_LABEL_ARGS[@]}"

if ((${#SKIPPED[@]})); then
  echo "==> check_static: OK (skipped: ${SKIPPED[*]})"
else
  echo "==> check_static: OK"
fi
