#!/usr/bin/env bash
# Static-analysis gate: project invariants (metrolint), thread-safety +
# lifetime analysis, clang-format, clang-tidy, and the sanitizer matrix in
# one command. Exits non-zero on any finding.
#
# Stages:
#   0. metrolint: the project-invariant analyzer (tools/metrolint/) —
#      include-layering DAG, METRO_NOALLOC hot-path allocation ban, banned
#      patterns. Compiled directly with the host C++ compiler (no cmake, no
#      clang needed), so this stage ALWAYS runs: it is the portable floor
#      under the clang-only stages below. Runs --selftest first (the rule
#      engine must prove it still catches seeded violations), then the
#      zero-findings gate over src/ bench/ tests/.
#   0.5 Runtime lock-rank checker: Debug build of lock_rank_test so the
#      METRO_LOCK_RANK_CHECK Mutex-hook death tests run with the hooks
#      compiled in (every NDEBUG flavor compiles them out).
#   1. Clang + METRO_THREAD_SAFETY=ON + METRO_LIFETIME=ON:
#      -Werror=thread-safety over the annotated tree (src/util/sync.h
#      vocabulary) and -Werror=dangling* over the METRO_LIFETIME_BOUND
#      view APIs (src/util/analysis.h), then the static-labelled ctests in
#      that build (including the WILL_FAIL dangling-view compile test).
#      Skipped with a notice when no clang is installed — both annotation
#      families compile as no-ops under GCC.
#   2. clang-format --dry-run -Werror over src/ bench/ tests/ tools/ with
#      the repo .clang-format. Skipped when not installed.
#   3. clang-tidy with the repo .clang-tidy profile over src/ .cpp files
#      AND over header-only modules (headers with no same-named .cpp
#      anywhere in src/, e.g. src/dataflow/dataset.h) via generated
#      single-include TUs. Skipped when not installed.
#   4. Sanitizer matrix: TSan on the concurrency-heavy labels (static, obs,
#      resilience, store), ASan and UBSan on the full suite. Runs with whatever
#      compiler CMake picks (GCC and Clang both support all three).
#
# Usage: scripts/check_static.sh [build-dir-prefix]   (default: build)
# Env:   METRO_CHECK_FAST=1 limits ASan/UBSan to the static-labelled tests
#        (useful on slow machines; the full matrix is the real gate).

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIPPED=()

# --- 0. metrolint project invariants ------------------------------------
echo "==> metrolint: v1 per-file rules + v2/v3 whole-program passes (always on)"
HOSTCXX="${CXX:-$(command -v c++ || command -v g++ || command -v clang++)}"
mkdir -p "${PREFIX}-metrolint"
"${HOSTCXX}" -std=c++20 -O1 -o "${PREFIX}-metrolint/metrolint" \
  tools/metrolint/metrolint.cpp tools/metrolint/wholeprogram.cpp \
  tools/metrolint/views.cpp
"${PREFIX}-metrolint/metrolint" --selftest --root .
# The whole-program run prints per-pass timings, writes the global lock
# graph and the view-ownership graph (CI uploads both, plus the findings
# report, as artifacts), and fails only on findings not fingerprinted in
# the baseline file (empty today: the tree is clean). --budget-ms keeps the
# full-tree scan honest: the gate itself fails if analysis time regresses
# past 10 s (it runs in well under one today).
"${PREFIX}-metrolint/metrolint" --root . \
  --baseline tools/metrolint/baseline.txt \
  --dot "${PREFIX}-metrolint/lockgraph.dot" \
  --dot-views "${PREFIX}-metrolint/viewgraph.dot" \
  --report "${PREFIX}-metrolint/findings.txt" \
  --budget-ms 10000

# --- 0.5 runtime lock-rank + view-invalidation checkers ------------------
# The dynamic mirrors of the lockorder and invalidation passes live behind
# METRO_LOCK_RANK_CHECK / METRO_VIEW_CHECK, which every NDEBUG flavor
# (RelWithDebInfo default, sanitizer builds) compiles out of the hot paths.
# Build the death tests once in Debug so the hook integrations — a real
# Mutex inversion aborts with both stacks, a stale TensorView/RecordView
# access aborts with context — are proven by the gate, not just by whoever
# happens to run a Debug build.
echo "==> lock-rank + view-check: Debug death tests (hooks compiled in)"
cmake -B "${PREFIX}-lockrank" -S . -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build "${PREFIX}-lockrank" -j "${JOBS}" \
  --target lock_rank_test invariants_test
ctest --test-dir "${PREFIX}-lockrank" --output-on-failure \
  -R "^(lock_rank_test|invariants_test)$"

# --- 1. Clang thread-safety + lifetime analysis --------------------------
CLANGXX="$(command -v clang++ || true)"
if [[ -n "${CLANGXX}" ]]; then
  echo "==> clang analyses: METRO_THREAD_SAFETY=ON + METRO_LIFETIME=ON"
  cmake -B "${PREFIX}-tsafe" -S . \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DMETRO_THREAD_SAFETY=ON -DMETRO_LIFETIME=ON >/dev/null
  cmake --build "${PREFIX}-tsafe" -j "${JOBS}"
  # Static-labelled tests in the clang build, including the WILL_FAIL
  # dangling-view negative compile test (tests/static/).
  ctest --test-dir "${PREFIX}-tsafe" --output-on-failure -j "${JOBS}" \
    -L "static"
else
  echo "==> clang analyses: SKIPPED (no clang++ on PATH; thread-safety and lifetime annotations are no-ops under this compiler)"
  SKIPPED+=("thread-safety" "lifetime")
fi

# --- 2. clang-format ------------------------------------------------------
CLANG_FORMAT="$(command -v clang-format || true)"
if [[ -n "${CLANG_FORMAT}" ]]; then
  echo "==> clang-format: --dry-run -Werror with repo .clang-format"
  find src bench tests tools \( -name '*.cpp' -o -name '*.h' \) -print0 |
    xargs -0 -n 16 -P "${JOBS}" "${CLANG_FORMAT}" --dry-run -Werror
else
  echo "==> clang-format: SKIPPED (not installed)"
  SKIPPED+=("clang-format")
fi

# --- 3. clang-tidy ------------------------------------------------------
CLANG_TIDY="$(command -v clang-tidy || true)"
if [[ -n "${CLANG_TIDY}" ]]; then
  echo "==> clang-tidy: src/ .cpp files with repo .clang-tidy profile"
  cmake -B "${PREFIX}-tidy" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # xargs propagates clang-tidy's non-zero exit through set -e.
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "${JOBS}" "${CLANG_TIDY}" -p "${PREFIX}-tidy" --quiet

  echo "==> clang-tidy: header-only modules via generated TUs"
  # Headers with no same-named .cpp anywhere under src/ never appear in
  # compile_commands.json, so the pass above cannot see them. Wrap each in
  # a one-line TU and tidy that with explicit flags.
  TUDIR="${PREFIX}-tidy/header-tus"
  mkdir -p "${TUDIR}"
  HEADER_TUS=()
  while IFS= read -r header; do
    base="$(basename "${header}" .h)"
    if ! find src -name "${base}.cpp" -print -quit | grep -q .; then
      tu="${TUDIR}/$(echo "${header#src/}" | tr '/' '_').cpp"
      printf '#include "%s"\n' "${header#src/}" > "${tu}"
      HEADER_TUS+=("${tu}")
    fi
  done < <(find src -name '*.h' | sort)
  printf '%s\0' "${HEADER_TUS[@]}" |
    xargs -0 -n 8 -P "${JOBS}" "${CLANG_TIDY}" --quiet \
      -- -std=c++20 -Isrc
else
  echo "==> clang-tidy: SKIPPED (not installed)"
  SKIPPED+=("clang-tidy")
fi

# --- 4. Sanitizer matrix ------------------------------------------------
CONCURRENCY_TARGETS=(static_stress_test invariants_test lock_rank_test
                     metrolint obs_test resilience_test chaos_test
                     mq_cluster_test store_test util_test)
FULL_LABEL_ARGS=()
if [[ "${METRO_CHECK_FAST:-0}" == "1" ]]; then
  FULL_LABEL_ARGS=(-L "static")
fi

echo "==> tsan: METRO_SANITIZE=thread + static/obs/resilience/store tests"
cmake -B "${PREFIX}-tsan" -S . -DMETRO_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target "${CONCURRENCY_TARGETS[@]}"
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -L "static|obs|resilience|store"

echo "==> asan: METRO_SANITIZE=address + tests"
cmake -B "${PREFIX}-asan" -S . -DMETRO_SANITIZE=address >/dev/null
if [[ "${METRO_CHECK_FAST:-0}" == "1" ]]; then
  cmake --build "${PREFIX}-asan" -j "${JOBS}" \
    --target static_stress_test invariants_test lock_rank_test metrolint
else
  cmake --build "${PREFIX}-asan" -j "${JOBS}"
fi
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  "${FULL_LABEL_ARGS[@]}"

echo "==> ubsan: METRO_SANITIZE=undefined (-fno-sanitize-recover) + tests"
cmake -B "${PREFIX}-ubsan" -S . -DMETRO_SANITIZE=undefined >/dev/null
if [[ "${METRO_CHECK_FAST:-0}" == "1" ]]; then
  cmake --build "${PREFIX}-ubsan" -j "${JOBS}" \
    --target static_stress_test invariants_test lock_rank_test metrolint
else
  cmake --build "${PREFIX}-ubsan" -j "${JOBS}"
fi
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}" \
  "${FULL_LABEL_ARGS[@]}"

if ((${#SKIPPED[@]})); then
  echo "==> check_static: OK (skipped: ${SKIPPED[*]})"
else
  echo "==> check_static: OK"
fi
