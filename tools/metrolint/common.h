#pragma once

// Shared vocabulary for the metrolint passes: the parsed rule config, the
// finding record, and the lexical helpers every pass builds on. Split out of
// metrolint.cpp when the v2 whole-program passes (wholeprogram.cpp) arrived;
// the tool is still a single self-contained binary with no dependencies
// beyond the C++20 standard library.

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace metrolint {

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

struct Config {
  std::map<std::string, int> ranks;           // module -> layer rank
  std::set<std::string> include_exceptions;   // "src-rel-file -> include"
  std::vector<std::string> noalloc_functions; // banned free-function calls
  std::vector<std::string> noalloc_methods;   // banned .x( / ->x( calls
  std::vector<std::string> noalloc_types;     // banned std::T / bare types
  std::set<std::string> mutex_allowed;        // files that may own std::mutex
  std::set<std::string> const_cast_allowed;   // files that may const_cast
  std::vector<std::string> tensor_at_paths;   // prefixes where .at( is banned
  std::vector<std::string> sleep_for_paths;   // prefixes where sleep_for is banned
  std::set<std::string> sleep_for_allowed;    // chaos-harness exceptions

  // --- v2 whole-program passes ---------------------------------------------
  struct LockInfo {
    std::string name;  // human lock name, e.g. "mq.cluster"
    int rank = -1;     // position in the global acquired-before order
  };
  // Lock identity -> declared name/rank. Identity is "Class::field" for
  // member mutexes, "src-rel-file:expr" for free/file-local locks.
  std::map<std::string, LockInfo> locks;
  // Edge exceptions, "A -> B" -> justification (required non-empty).
  std::map<std::string, std::string> lockorder_exceptions;   // lock names
  std::map<std::string, std::string> noalloc_exceptions;     // func quals
  std::map<std::string, std::string> blocking_exceptions;    // func quals
  std::vector<std::string> blocking_functions;  // bare tokens (sleep_for)
  std::vector<std::string> blocking_qualified;  // "Class::Method" entries
  std::vector<std::string> callgraph_ignore;    // call names never resolved

  // --- v3 view-ownership / status passes -----------------------------------
  // Declared borrowed-view types: qualified view type -> qualified owner type
  // ("tensor::TensorView" -> "tensor::Workspace"). The last :: component is
  // the lexical token the passes match on.
  std::map<std::string, std::string> views;
  // Escape sinks: call tokens whose lambda arguments outlive the caller's
  // frame (ThreadPool Submit, std::thread, std::async).
  std::vector<std::string> view_sinks;
  // "Class::field" / "Func -> sink" -> justification for a by-design borrow.
  std::map<std::string, std::string> view_exceptions;
  // "Class::Method" -> what the call frees ("Workspace::Rewind" ->
  // "releases arena storage past the mark").
  std::map<std::string, std::string> invalidates;
  // "Caller::Qual -> view-var" -> justification (guarded use the lexical
  // path-order approximation cannot see).
  std::map<std::string, std::string> invalidation_exceptions;
  // "anchor -> Callee::Qual" -> justification for a (void)-cast Status
  // discard; anchor is the caller qual, the caller's file, or "*".
  std::map<std::string, std::string> status_exceptions;
};

// Minimal TOML-subset parser (defined in metrolint.cpp; also used by the
// embedded v2 selftest configs in wholeprogram.cpp).
bool ParseConfig(const std::string& text, Config* cfg, std::string* err);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

inline void Report(std::vector<Finding>* out, const std::string& file,
                   int line, const char* rule, std::string message) {
  out->push_back(Finding{file, line, rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

// Replaces comments (and, when `strip_literals`, string/char literal
// contents) with spaces, preserving every newline so byte offsets map to the
// original line numbers.
inline std::string StripSource(std::string_view src, bool strip_literals) {
  std::string out(src);
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      blank(i, j);
      i = j;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      j = std::min(n, j + 2);
      blank(i, j);
      i = j;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      j = std::min(n, j + 1);
      if (strip_literals) blank(i + 1, j > i + 1 ? j - 1 : i + 1);
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

inline int LineOf(std::string_view text, std::size_t pos) {
  return 1 + int(std::count(text.begin(), text.begin() + long(pos), '\n'));
}

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when text[pos, pos+len) is a whole identifier token.
inline bool IsWholeToken(std::string_view text, std::size_t pos,
                         std::size_t len) {
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  if (pos + len < text.size() && IsIdentChar(text[pos + len])) return false;
  return true;
}

// Last non-whitespace character strictly before `pos`, or '\0'.
inline char PrevNonSpace(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      return text[pos];
    }
  }
  return '\0';
}

// First non-whitespace character at or after `pos`, or '\0'.
inline char NextNonSpace(std::string_view text, std::size_t pos) {
  while (pos < text.size()) {
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      return text[pos];
    }
    ++pos;
  }
  return '\0';
}

inline bool HasPrefix(const std::string& s,
                      const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (s.rfind(p, 0) == 0) return true;
  }
  return false;
}

// Scans [begin, end) of literal-stripped `text` for allocation tokens banned
// under METRO_NOALLOC and invokes `sink(pos, what)` per hit. Shared between
// the v1 per-body pass (sink reports a finding) and the v2 interprocedural
// summaries (sink records an alloc site).
template <typename Sink>
void ScanAllocTokens(std::string_view text, std::size_t begin, std::size_t end,
                     const Config& cfg, Sink&& sink) {
  for (std::size_t i = begin; i < end; ++i) {
    if (!IsIdentChar(text[i]) || (i > 0 && IsIdentChar(text[i - 1]))) {
      continue;  // not the start of an identifier
    }
    std::size_t j = i;
    while (j < end && IsIdentChar(text[j])) ++j;
    const std::string_view tok = text.substr(i, j - i);
    const char prev = PrevNonSpace(text, i);
    const bool member = prev == '.' ||
                        (prev == '>' && i >= 2 && text[i - 2] == '-');
    const bool called = NextNonSpace(text, j) == '(';

    if (tok == "new" && !member) {
      sink(i, std::string("operator new"));
    } else if (!member && called &&
               std::find(cfg.noalloc_functions.begin(),
                         cfg.noalloc_functions.end(),
                         tok) != cfg.noalloc_functions.end()) {
      sink(i, "call to " + std::string(tok) + "()");
    } else if (member && called &&
               std::find(cfg.noalloc_methods.begin(),
                         cfg.noalloc_methods.end(),
                         tok) != cfg.noalloc_methods.end()) {
      sink(i, "owning-container growth ." + std::string(tok) + "()");
    } else if (!member &&
               std::find(cfg.noalloc_types.begin(), cfg.noalloc_types.end(),
                         tok) != cfg.noalloc_types.end()) {
      // Bare banned type (Tensor) or std-qualified owning container
      // (std::vector, std::string, ...). `prev == ':'` means the token is
      // namespace-qualified; only std:: qualification bans it.
      bool banned = true;
      if (prev == ':') {
        std::size_t k = i;
        while (k > 0 &&
               (text[k - 1] == ':' ||
                std::isspace(static_cast<unsigned char>(text[k - 1])))) {
          --k;
        }
        banned = k >= 3 && text.compare(k - 3, 3, "std") == 0 &&
                 IsWholeToken(text, k - 3, 3);
      }
      if (banned) {
        sink(i, "owning type " + std::string(prev == ':' ? "std::" : "") +
                    std::string(tok));
      }
    }
    i = j - 1;
  }
}

}  // namespace metrolint
