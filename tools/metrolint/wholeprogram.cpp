// metrolint v2 — whole-program model construction and passes.
//
// See wholeprogram.h for the model vocabulary and DESIGN.md "metrolint v2
// whole-program passes" for the pass semantics. Everything here is lexical:
// a scope-tracking scan (no clang) that is precise enough on this codebase
// because the code style is uniform (MutexLock RAII acquisition, member
// mutexes named *mu*, out-of-class definitions qualified Class::Method).

#include "wholeprogram.h"

#include <cctype>
#include <cstdio>
#include <functional>
#include <sstream>

namespace metrolint {
namespace {

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool HasToken(const std::string& text, std::string_view tok) {
  std::size_t pos = 0;
  while ((pos = text.find(tok, pos)) != std::string::npos) {
    if (IsWholeToken(text, pos, tok.size())) return true;
    pos += tok.size();
  }
  return false;
}

// Blanks preprocessor lines (including backslash continuations), preserving
// newlines. Includes are collected from the un-stripped text beforehand.
std::string StripPreprocessor(const std::string& code) {
  std::string out = code;
  std::size_t i = 0;
  const std::size_t n = out.size();
  while (i < n) {
    std::size_t j = i;
    while (j < n && (out[j] == ' ' || out[j] == '\t')) ++j;
    std::size_t eol = out.find('\n', i);
    if (eol == std::string::npos) eol = n;
    if (j < n && out[j] == '#') {
      // Blank this line and every continuation line.
      for (;;) {
        bool cont = eol > i && out[eol - 1] == '\\';
        for (std::size_t k = i; k < eol; ++k) out[k] = ' ';
        if (!cont || eol >= n) break;
        i = eol + 1;
        eol = out.find('\n', i);
        if (eol == std::string::npos) eol = n;
      }
    }
    i = eol + 1;
    if (eol >= n) break;
  }
  return out;
}

// Collects `#include "path"` directives from comment-stripped text.
std::vector<std::string> CollectIncludes(const std::string& lit) {
  std::vector<std::string> out;
  std::istringstream in(lit);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos || line[p] != '#') continue;
    p = line.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || line.compare(p, 7, "include") != 0) continue;
    const std::size_t q1 = line.find('"', p + 7);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    out.push_back(line.substr(q1 + 1, q2 - q1 - 1));
  }
  return out;
}

// One function definition as found by the scope scanner (pre-model form).
struct RawFunc {
  std::string head;  // signature text (everything between boundary and '{')
  std::string cls;   // enclosing/explicit class chain, namespaces stripped
  std::string name;
  std::string ret;   // head text before the (qualified) name
  bool is_lambda = false;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int line = 0;
  // Nested function bodies (lambdas) excluded from this body's event scan.
  std::vector<std::pair<std::size_t, std::size_t>> children;
};

// Class name out of a head like "template <typename T> class METRO_X(..) Foo
// : public Bar". Takes the first plain identifier after the last
// class/struct/union keyword, skipping annotation-macro groups.
std::string ClassNameFrom(const std::string& head) {
  std::size_t kw = std::string::npos, kwlen = 0;
  for (std::string_view k : {"class", "struct", "union"}) {
    std::size_t pos = 0;
    while ((pos = head.find(k, pos)) != std::string::npos) {
      if (IsWholeToken(head, pos, k.size()) &&
          (kw == std::string::npos || pos > kw)) {
        kw = pos;
        kwlen = k.size();
      }
      pos += k.size();
    }
  }
  if (kw == std::string::npos) return "";
  std::size_t i = kw + kwlen;
  const std::size_t n = head.size();
  while (i < n) {
    while (i < n && !IsIdentChar(head[i])) {
      if (head[i] == ':' || head[i] == '{') return "";  // hit the base clause
      ++i;
    }
    std::size_t j = i;
    while (j < n && IsIdentChar(head[j])) ++j;
    std::string tok = head.substr(i, j - i);
    if (tok.rfind("METRO_", 0) == 0 || tok == "alignas") {
      // Skip the macro's argument group.
      std::size_t p = j;
      while (p < n && std::isspace(static_cast<unsigned char>(head[p]))) ++p;
      if (p < n && head[p] == '(') {
        int depth = 0;
        for (; p < n; ++p) {
          if (head[p] == '(') ++depth;
          else if (head[p] == ')' && --depth == 0) { ++p; break; }
        }
      }
      i = p;
      continue;
    }
    return tok;
  }
  return "";
}

// Function name + explicit class qualifier out of a definition head.
// Returns false when the head cannot be a function definition. `name_begin`
// (optional) receives the offset where the qualified name chain starts —
// everything before it is the return type.
bool ParseFuncHead(const std::string& head, std::string* name,
                   std::string* cls, std::size_t* name_begin = nullptr) {
  int angle = 0;
  std::size_t ppos = std::string::npos;
  for (std::size_t i = 0; i < head.size(); ++i) {
    const char c = head[i];
    if (c == '<') {
      ++angle;
    } else if (c == '>') {
      if (i > 0 && head[i - 1] == '-') continue;  // ->
      if (angle > 0) --angle;
    } else if (c == '(' && angle == 0) {
      ppos = i;
      break;
    }
  }
  if (ppos == std::string::npos) return false;
  std::size_t e = ppos;
  auto skipws = [&](std::size_t p) {
    while (p > 0 && std::isspace(static_cast<unsigned char>(head[p - 1]))) --p;
    return p;
  };
  e = skipws(e);
  std::vector<std::string> comps;
  std::size_t chain_begin = e;
  for (;;) {
    std::size_t b = e;
    while (b > 0 && IsIdentChar(head[b - 1])) --b;
    if (b == e) break;
    std::string comp = head.substr(b, e - b);
    if (b > 0 && head[b - 1] == '~') comp = "~" + comp;
    comps.insert(comps.begin(), comp);
    chain_begin = b - (comp[0] == '~' ? 1 : 0);
    std::size_t k = skipws(b - (comp[0] == '~' ? 1 : 0));
    if (k >= 2 && head[k - 1] == ':' && head[k - 2] == ':') {
      e = skipws(k - 2);
    } else {
      break;
    }
  }
  if (comps.empty()) return false;
  const std::string& last = comps.back();
  static const char* kNotAFunc[] = {"if",     "for",   "while", "switch",
                                    "catch",  "return", "do",   "else",
                                    "sizeof", "new",   "delete", "operator",
                                    "defined"};
  for (const char* k : kNotAFunc) {
    if (last == k) return false;
  }
  if (std::isdigit(static_cast<unsigned char>(last[0]))) return false;
  *name = last;
  if (name_begin) *name_begin = chain_begin;
  std::string c;
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    if (comps[i] == "std" || comps[i] == "metro") continue;  // namespaces
    if (!c.empty()) c += "::";
    c += comps[i];
  }
  *cls = c;
  return true;
}

// Tries to parse the class-scope statement code[b,e) as a Mutex member
// declaration, optionally with a `{lockrank::kX, "name"}` initializer (the
// name literal is read from `lit`, where literals survive).
void TryMutexFieldDecl(const std::string& rel, const std::string& code,
                       const std::string& lit, std::size_t b, std::size_t e,
                       const std::vector<std::string>& cls_chain,
                       std::vector<MutexFieldDecl>* decls) {
  std::size_t pos = std::string::npos;
  for (std::size_t i = b; i + 5 <= e; ++i) {
    if (code[i] == '(') return;  // parameter list: a method declaration
    if (code.compare(i, 5, "Mutex") == 0 && IsWholeToken(code, i, 5)) {
      pos = i;
      break;
    }
  }
  if (pos == std::string::npos) return;
  std::size_t i = pos + 5;
  while (i < e && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
  if (i >= e || !(std::isalpha(static_cast<unsigned char>(code[i])) ||
                  code[i] == '_')) {
    return;  // Mutex* / Mutex& / vector<Mutex> / operator use
  }
  const std::size_t fb = i;
  while (i < e && IsIdentChar(code[i])) ++i;
  const std::string field = code.substr(fb, i - fb);
  while (i < e && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
  std::string rank_const, lockname;
  if (i < e && code[i] == '{') {
    const std::size_t open = i;
    int depth = 0;
    std::size_t close = e;
    for (; i < e; ++i) {
      if (code[i] == '{') ++depth;
      else if (code[i] == '}' && --depth == 0) { close = i; break; }
    }
    const std::string inner = Trim(code.substr(open + 1, close - open - 1));
    if (inner.rfind("lockrank::", 0) == 0) {
      std::size_t k = 10, ke = 10;
      while (ke < inner.size() && IsIdentChar(inner[ke])) ++ke;
      rank_const = inner.substr(k, ke - k);
    }
    const std::size_t q1 = lit.find('"', open);
    if (q1 != std::string::npos && q1 < close) {
      const std::size_t q2 = lit.find('"', q1 + 1);
      if (q2 != std::string::npos && q2 <= close) {
        lockname = lit.substr(q1 + 1, q2 - q1 - 1);
      }
    }
  }
  std::string cls;
  for (const std::string& c : cls_chain) {
    if (c.empty()) continue;
    if (!cls.empty()) cls += "::";
    cls += c;
  }
  MutexFieldDecl d;
  d.id = cls.empty() ? rel + ":" + field : cls + "::" + field;
  d.rank_const = rank_const;
  d.name = lockname;
  d.file = rel;
  d.line = LineOf(code, fb);
  decls->push_back(d);
}

// Records a class/namespace-scope statement without a parameter list as a
// generic declaration (the v3 passes filter by type token later). Skips the
// obviously-not-a-field statement shapes so the list stays small.
void TryFieldDecl(const std::string& rel, const std::string& code,
                  std::size_t b, std::size_t e, const std::string& cls,
                  std::vector<FieldDecl>* fields) {
  for (std::size_t i = b; i < e; ++i) {
    if (code[i] == '(') return;  // a method/function declaration
  }
  std::string text = Trim(code.substr(b, e - b));
  if (text.empty()) return;
  for (std::string_view kw :
       {"using", "typedef", "friend", "template", "extern", "namespace"}) {
    if (text.compare(0, kw.size(), kw) == 0 &&
        IsWholeToken(text, 0, kw.size())) {
      return;
    }
  }
  std::size_t fb = b;
  while (fb < e && std::isspace(static_cast<unsigned char>(code[fb]))) ++fb;
  fields->push_back(FieldDecl{cls, std::move(text), rel, LineOf(code, fb)});
}

// The scope scanner: walks preprocessed `code`, tracking namespace / class /
// function / other brace frames, and emits RawFuncs + Mutex member decls +
// generic field/static declarations.
void ScanScopes(const std::string& rel, const std::string& code,
                const std::string& lit, std::vector<RawFunc>* raws,
                std::vector<MutexFieldDecl>* decls,
                std::vector<FieldDecl>* fields) {
  struct Frame {
    char kind;  // 'n'amespace, 'c'lass, 'f'unction, 'o'ther
    int raw_idx;
    std::size_t open;
    int saved_paren;
    std::size_t saved_boundary;
  };
  std::vector<Frame> stack;
  std::vector<std::string> cls_chain;
  std::size_t boundary = 0;
  int paren = 0;
  const std::size_t n = code.size();

  auto innermost = [&]() { return stack.empty() ? 'g' : stack.back().kind; };
  auto nearest_func = [&]() {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == 'f') return it->raw_idx;
    }
    return -1;
  };
  auto joined_cls = [&]() {
    std::string c;
    for (const std::string& s : cls_chain) {
      if (s.empty()) continue;
      if (!c.empty()) c += "::";
      c += s;
    }
    return c;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const char c = code[i];
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      if (paren > 0) --paren;
    } else if (c == ';' && paren == 0) {
      if (innermost() == 'c') {
        TryMutexFieldDecl(rel, code, lit, boundary, i, cls_chain, decls);
        TryFieldDecl(rel, code, boundary, i, joined_cls(), fields);
      } else if (innermost() == 'n' || innermost() == 'g') {
        TryFieldDecl(rel, code, boundary, i, "", fields);
      }
      boundary = i + 1;
    } else if (c == '{') {
      const std::string head = Trim(code.substr(boundary, i - boundary));
      const bool in_func = nearest_func() >= 0;
      char kind = 'o';
      std::string name, cls, ret;
      bool lambda = false;
      if (!head.empty() &&
          (head.back() == ']' || head.find("](") != std::string::npos ||
           head.find("] (") != std::string::npos)) {
        kind = 'f';
        lambda = true;
      } else if (in_func || paren > 0) {
        if ((HasToken(head, "class") || HasToken(head, "struct")) &&
            !HasToken(head, "enum")) {
          kind = 'c';
          name = ClassNameFrom(head);
        }
        // control flow / plain blocks / braced initializers: 'o'
      } else if (HasToken(head, "namespace")) {
        kind = 'n';
      } else if (HasToken(head, "enum")) {
        kind = 'o';
      } else if (HasToken(head, "class") || HasToken(head, "struct") ||
                 HasToken(head, "union")) {
        kind = 'c';
        name = ClassNameFrom(head);
      } else if (head.find('(') != std::string::npos) {
        std::string fname, fcls;
        std::size_t nb = 0;
        if (ParseFuncHead(head, &fname, &fcls, &nb)) {
          kind = 'f';
          name = fname;
          cls = fcls;
          ret = Trim(head.substr(0, nb));
        }
      }

      int raw_idx = -1;
      if (kind == 'f') {
        RawFunc rf;
        rf.head = head;
        rf.ret = ret;
        rf.is_lambda = lambda;
        if (lambda) {
          rf.cls = joined_cls();
          rf.name = "<lambda>";
        } else {
          rf.cls = cls.empty() ? joined_cls() : cls;
          rf.name = name;
        }
        // Anchor the line at the head start (first non-space of the head).
        std::size_t hb = boundary;
        while (hb < i && std::isspace(static_cast<unsigned char>(code[hb]))) {
          ++hb;
        }
        rf.line = LineOf(code, hb < i ? hb : i);
        raw_idx = int(raws->size());
        raws->push_back(std::move(rf));
      }
      if (kind == 'c') cls_chain.push_back(name);
      stack.push_back(Frame{kind, raw_idx, i, paren, boundary});
      paren = 0;
      boundary = i + 1;
    } else if (c == '}') {
      if (stack.empty()) {
        boundary = i + 1;
        continue;
      }
      const Frame fr = stack.back();
      stack.pop_back();
      paren = fr.saved_paren;
      if (fr.kind == 'c' && !cls_chain.empty()) cls_chain.pop_back();
      if (fr.kind == 'f') {
        (*raws)[fr.raw_idx].body_begin = fr.open + 1;
        (*raws)[fr.raw_idx].body_end = i;
        const int parent = nearest_func();
        if (parent >= 0) {
          (*raws)[parent].children.push_back({fr.open + 1, i});
        }
      }
      // A brace-init 'o' scope inside a class does not end the member
      // statement: keep the pre-'{' boundary so `Mutex mu_{...};` is parsed
      // whole at the following ';'.
      if (fr.kind == 'o' && innermost() == 'c') {
        boundary = fr.saved_boundary;
      } else {
        boundary = i + 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-identity resolution
// ---------------------------------------------------------------------------

struct DeclIndex {
  // (cls chain, field) -> id; field -> ids (for unique-by-field fallback).
  std::map<std::pair<std::string, std::string>, std::string> exact;
  std::map<std::string, std::vector<std::string>> by_field;
};

DeclIndex IndexDecls(const std::vector<MutexFieldDecl>& decls) {
  DeclIndex ix;
  for (const MutexFieldDecl& d : decls) {
    const std::size_t sep = d.id.rfind("::");
    if (sep == std::string::npos) continue;  // file-scoped pseudo decl
    const std::string cls = d.id.substr(0, sep);
    const std::string field = d.id.substr(sep + 2);
    ix.exact[{cls, field}] = d.id;
    ix.by_field[field].push_back(d.id);
  }
  return ix;
}

std::string ResolveField(const std::string& field, const std::string& cls,
                         const std::string& file, const DeclIndex& ix,
                         bool allow_unique) {
  std::string base = field;
  if (base.size() >= 2 && base.compare(base.size() - 2, 2, "[]") == 0) {
    base.resize(base.size() - 2);
  }
  auto it = ix.exact.find({cls, base});
  if (it != ix.exact.end()) return it->second;
  if (allow_unique) {
    auto bf = ix.by_field.find(base);
    if (bf != ix.by_field.end() && bf->second.size() == 1) {
      return bf->second[0];
    }
  }
  if (cls.empty()) return file + ":" + field;
  return cls + "::" + field;
}

// Canonicalizes a MutexLock / METRO_REQUIRES argument expression into a lock
// identity. `params` is the function's parameter-list text (a lock that is a
// parameter is generic -> "" and dropped from the analysis).
std::string NormalizeLockExpr(const std::string& raw, const std::string& cls,
                              const std::string& file,
                              const std::string& params, const DeclIndex& ix) {
  std::string canon;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '[') {
      int depth = 0;
      for (; i < raw.size(); ++i) {
        if (raw[i] == '[') ++depth;
        else if (raw[i] == ']' && --depth == 0) break;
      }
      canon += "[]";
      continue;
    }
    canon += c;
  }
  while (!canon.empty() && (canon[0] == '*' || canon[0] == '&')) {
    canon.erase(canon.begin());
  }
  if (canon.empty()) return "";
  if (canon.back() == ')') return file + ":" + canon;  // call expression
  std::size_t acc = std::string::npos;
  for (std::size_t i = canon.size(); i-- > 1;) {
    if (canon[i] == '.' || (canon[i] == '>' && canon[i - 1] == '-')) {
      acc = i;
      break;
    }
  }
  if (acc != std::string::npos) {
    return ResolveField(canon.substr(acc + 1), cls, file, ix,
                        /*allow_unique=*/true);
  }
  // Bare identifier (maybe with []): parameter -> generic.
  std::string base = canon;
  if (base.size() >= 2 && base.compare(base.size() - 2, 2, "[]") == 0) {
    base.resize(base.size() - 2);
  }
  std::size_t p = 0;
  while ((p = params.find(base, p)) != std::string::npos) {
    if (IsWholeToken(params, p, base.size())) return "";
    p += base.size();
  }
  if (cls.empty()) return file + ":" + canon;
  return ResolveField(canon, cls, file, ix, /*allow_unique=*/false);
}

// First balanced parenthesis group of `head` (the parameter list), contents
// only.
std::string ParamListOf(const std::string& head) {
  const std::size_t open = head.find('(');
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < head.size(); ++i) {
    if (head[i] == '(') ++depth;
    else if (head[i] == ')' && --depth == 0) {
      return head.substr(open + 1, i - open - 1);
    }
  }
  return head.substr(open + 1);
}

// Splits `args` on top-level commas.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : args) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!Trim(cur).empty()) out.push_back(Trim(cur));
  return out;
}

// ---------------------------------------------------------------------------
// Event extraction
// ---------------------------------------------------------------------------

bool InRanges(std::size_t pos,
              const std::vector<std::pair<std::size_t, std::size_t>>& rs) {
  for (const auto& r : rs) {
    if (pos >= r.first && pos < r.second) return true;
  }
  return false;
}

bool IsCallKeyword(std::string_view tok) {
  static const char* kKw[] = {"if",      "for",     "while",    "switch",
                              "return",  "sizeof",  "alignof",  "catch",
                              "throw",   "new",     "delete",   "assert",
                              "defined", "do",      "else",     "case",
                              "co_await", "co_return", "static_assert",
                              "decltype", "noexcept", "operator"};
  for (const char* k : kKw) {
    if (tok == k) return true;
  }
  return false;
}

void ExtractEvents(Func* f, const RawFunc& raw, const std::string& code,
                   const std::string& file, const Config& cfg,
                   const DeclIndex& ix) {
  const std::string params = ParamListOf(raw.head);

  // Annotations in the head.
  f->noalloc = HasToken(raw.head, "METRO_NOALLOC");
  for (std::string_view macro : {"METRO_REQUIRES", "METRO_ACQUIRE"}) {
    std::size_t p = raw.head.find(macro);
    while (p != std::string::npos) {
      if (IsWholeToken(raw.head, p, macro.size())) {
        const std::size_t open = raw.head.find('(', p + macro.size());
        if (open != std::string::npos) {
          int depth = 0;
          std::size_t close = raw.head.size();
          for (std::size_t k = open; k < raw.head.size(); ++k) {
            if (raw.head[k] == '(') ++depth;
            else if (raw.head[k] == ')' && --depth == 0) { close = k; break; }
          }
          for (const std::string& arg :
               SplitArgs(raw.head.substr(open + 1, close - open - 1))) {
            if (arg.empty() || arg[0] == '!') continue;
            const std::string id =
                NormalizeLockExpr(arg, f->cls, file, params, ix);
            if (!id.empty()) f->requires_locks.push_back(id);
          }
        }
      }
      p = raw.head.find(macro, p + macro.size());
    }
  }

  // Segments of the body, excluding nested lambda bodies.
  std::vector<std::pair<std::size_t, std::size_t>> children = raw.children;
  std::sort(children.begin(), children.end());
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  std::size_t cur = raw.body_begin;
  for (const auto& ch : children) {
    if (ch.first > cur) segs.push_back({cur, ch.first});
    cur = std::max(cur, ch.second);
  }
  if (cur < raw.body_end) segs.push_back({cur, raw.body_end});

  // Pass 1 over segments: MutexLock acquisition sites.
  struct RawSite {
    std::string var;
    std::string expr;
    std::size_t tok_pos;
    std::size_t ctor_close;
  };
  std::vector<RawSite> sites;
  std::vector<std::pair<std::size_t, std::size_t>> site_ranges;
  for (const auto& seg : segs) {
    std::size_t p = seg.first;
    while ((p = code.find("MutexLock", p)) != std::string::npos &&
           p < seg.second) {
      if (!IsWholeToken(code, p, 9)) {
        p += 9;
        continue;
      }
      std::size_t i = p + 9;
      while (i < seg.second &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      std::size_t vb = i;
      while (i < seg.second && IsIdentChar(code[i])) ++i;
      const std::string var = code.substr(vb, i - vb);
      while (i < seg.second &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      if (var.empty() || i >= seg.second ||
          (code[i] != '(' && code[i] != '{')) {
        p += 9;
        continue;
      }
      const char open = code[i];
      const char close_ch = open == '(' ? ')' : '}';
      int depth = 0;
      std::size_t close = seg.second;
      for (std::size_t k = i; k < seg.second; ++k) {
        if (code[k] == open) ++depth;
        else if (code[k] == close_ch && --depth == 0) { close = k; break; }
      }
      sites.push_back(
          RawSite{var, Trim(code.substr(i + 1, close - i - 1)), p, close});
      site_ranges.push_back({p, close + 1});
      p = close + 1;
    }
  }

  // Regions: from the ctor close to the end of the enclosing brace scope,
  // split by `var.Unlock()` / `var.Lock()` toggles.
  for (const RawSite& s : sites) {
    std::size_t scope_end = raw.body_end;
    int depth = 0;
    for (std::size_t k = s.ctor_close + 1; k < raw.body_end; ++k) {
      if (code[k] == '{') ++depth;
      else if (code[k] == '}') {
        if (depth == 0) { scope_end = k; break; }
        --depth;
      }
    }
    std::vector<std::pair<std::size_t, bool>> toggles;  // pos, is_lock
    std::size_t p = s.ctor_close + 1;
    while ((p = code.find(s.var, p)) != std::string::npos && p < scope_end) {
      if (IsWholeToken(code, p, s.var.size())) {
        std::size_t q = p + s.var.size();
        while (q < scope_end &&
               std::isspace(static_cast<unsigned char>(code[q]))) {
          ++q;
        }
        if (q < scope_end && code[q] == '.') {
          ++q;
          while (q < scope_end &&
                 std::isspace(static_cast<unsigned char>(code[q]))) {
            ++q;
          }
          if (code.compare(q, 6, "Unlock") == 0 &&
              IsWholeToken(code, q, 6)) {
            toggles.push_back({p, false});
          } else if (code.compare(q, 4, "Lock") == 0 &&
                     IsWholeToken(code, q, 4)) {
            toggles.push_back({p, true});
          }
        }
      }
      p += s.var.size();
    }
    LockSite site;
    site.lock_id = NormalizeLockExpr(s.expr, f->cls, file, params, ix);
    site.line = LineOf(code, s.tok_pos);
    bool held = true;
    std::size_t begin = s.ctor_close + 1;
    for (const auto& t : toggles) {
      if (!t.second && held) {
        site.regions.push_back({begin, t.first});
        held = false;
      } else if (t.second && !held) {
        begin = t.first;
        held = true;
      }
    }
    if (held) site.regions.push_back({begin, scope_end});
    if (!site.lock_id.empty()) f->acquires.push_back(std::move(site));
  }

  // Pass 2 over segments: calls, blocking tokens, allocation sites.
  for (const auto& seg : segs) {
    for (std::size_t i = seg.first; i < seg.second; ++i) {
      if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
        continue;
      }
      std::size_t j = i;
      while (j < seg.second && IsIdentChar(code[j])) ++j;
      if (InRanges(i, site_ranges)) {
        i = j - 1;
        continue;
      }
      const std::string tok = code.substr(i, j - i);
      const char prev = PrevNonSpace(code, i);
      const bool member =
          prev == '.' || (prev == '>' && i >= 2 && code[i - 2] == '-');
      const bool called = NextNonSpace(code, j) == '(';
      const int line = LineOf(code, i);

      if (called && !member &&
          std::find(cfg.blocking_functions.begin(),
                    cfg.blocking_functions.end(),
                    tok) != cfg.blocking_functions.end()) {
        f->blocking.push_back(BlockSite{tok, "", line, i});
        i = j - 1;
        continue;
      }
      if (called && member &&
          (tok == "Wait" || tok == "WaitFor" || tok == "WaitUntil")) {
        // CondVar-style wait: first argument is the mutex.
        const std::size_t open = code.find('(', j);
        int depth = 0;
        std::size_t close = seg.second;
        for (std::size_t k = open; k < seg.second; ++k) {
          if (code[k] == '(') ++depth;
          else if (code[k] == ')' && --depth == 0) { close = k; break; }
        }
        const std::vector<std::string> args =
            SplitArgs(code.substr(open + 1, close - open - 1));
        const std::string arg_id =
            args.empty()
                ? ""
                : NormalizeLockExpr(args[0], f->cls, file, params, ix);
        f->blocking.push_back(BlockSite{tok, arg_id, line, i});
        i = j - 1;
        continue;
      }
      if (called && !IsCallKeyword(tok) && tok.rfind("METRO_", 0) != 0 &&
          tok != "MutexLock") {
        CallSite cs;
        cs.line = line;
        cs.pos = i;
        if (member) {
          // Walk back over the accessor to the receiver token.
          std::size_t r = i;
          while (r > 0 &&
                 std::isspace(static_cast<unsigned char>(code[r - 1]))) {
            --r;
          }
          if (r > 0 && code[r - 1] == '.') --r;
          else if (r > 1 && code[r - 1] == '>' && code[r - 2] == '-') r -= 2;
          while (r > 0 &&
                 std::isspace(static_cast<unsigned char>(code[r - 1]))) {
            --r;
          }
          std::size_t rb = r;
          while (rb > 0 && IsIdentChar(code[rb - 1])) --rb;
          cs.receiver = rb < r ? code.substr(rb, r - rb) : "<expr>";
          cs.name = tok;
        } else if (prev == ':' && i >= 2 && code[i - 2] == ':') {
          // Qualified call: walk the chain back.
          std::string chain = tok;
          std::size_t r = i;
          while (r >= 2 && code[r - 1] == ':' && code[r - 2] == ':') {
            std::size_t rb = r - 2;
            while (rb > 0 && IsIdentChar(code[rb - 1])) --rb;
            if (rb == r - 2) break;
            chain = code.substr(rb, r - 2 - rb) + "::" + chain;
            r = rb;
          }
          // std::-qualified calls can never land in the tree; strip a
          // leading metro:: so example code resolves like src/ code.
          if (chain.rfind("std::", 0) == 0) {
            i = j - 1;
            continue;
          }
          if (chain.rfind("metro::", 0) == 0) chain = chain.substr(7);
          cs.name = chain;
        } else {
          cs.name = tok;
        }
        f->calls.push_back(std::move(cs));
      }
      i = j - 1;
    }
    ScanAllocTokens(code, seg.first, seg.second, cfg,
                    [&](std::size_t pos, const std::string& what) {
                      if (!InRanges(pos, site_ranges)) {
                        f->allocs.push_back(AllocSite{what, LineOf(code, pos)});
                      }
                    });
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BuildProgram
// ---------------------------------------------------------------------------

Program BuildProgram(const std::vector<SourceFile>& files, const Config& cfg) {
  Program prog;
  std::vector<std::string> codes(files.size()), lits(files.size());
  std::vector<std::vector<RawFunc>> raws(files.size());
  std::vector<std::vector<std::string>> incs(files.size());
  std::set<std::string> rels;
  for (const SourceFile& sf : files) rels.insert(sf.rel);

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    lits[fi] = StripSource(files[fi].text, /*strip_literals=*/false);
    incs[fi] = CollectIncludes(lits[fi]);
    codes[fi] =
        StripPreprocessor(StripSource(files[fi].text, /*strip_literals=*/true));
    ScanScopes(files[fi].rel, codes[fi], lits[fi], &raws[fi],
               &prog.mutex_decls, &prog.field_decls);
    if (files[fi].rel == "src/util/lock_ranks.h") {
      // Collect `kName = <int>` constants.
      const std::string& code = codes[fi];
      for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i] != 'k' || (i > 0 && IsIdentChar(code[i - 1]))) continue;
        std::size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        if (j == i + 1) continue;
        std::size_t p = j;
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p]))) {
          ++p;
        }
        if (p >= code.size() || code[p] != '=') { i = j - 1; continue; }
        ++p;
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p]))) {
          ++p;
        }
        std::size_t d = p;
        while (d < code.size() &&
               std::isdigit(static_cast<unsigned char>(code[d]))) {
          ++d;
        }
        if (d > p) {
          prog.rank_consts[code.substr(i, j - i)] =
              std::stoi(code.substr(p, d - p));
        }
        i = j - 1;
      }
    }
  }

  const DeclIndex ix = IndexDecls(prog.mutex_decls);

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (const RawFunc& rf : raws[fi]) {
      Func f;
      f.file = files[fi].rel;
      f.cls = rf.cls;
      f.name = rf.name;
      f.qual = rf.cls.empty() ? rf.name : rf.cls + "::" + rf.name;
      f.ret = rf.ret;
      f.line = rf.line;
      f.is_lambda = rf.is_lambda;
      f.body_begin = rf.body_begin;
      f.body_end = rf.body_end;
      f.lambda_bodies = rf.children;
      ExtractEvents(&f, rf, codes[fi], files[fi].rel, cfg, ix);
      prog.funcs.push_back(std::move(f));
    }
    prog.code[files[fi].rel] = std::move(codes[fi]);
  }

  for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
    const Func& f = prog.funcs[i];
    if (f.is_lambda || f.name.empty()) continue;
    prog.by_name[f.name].push_back(int(i));
    prog.by_qual[f.qual].push_back(int(i));
  }

  // Include-reachability closure + partner .cpp/.cc of reachable headers.
  std::map<std::string, std::vector<std::string>> direct;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& rel = files[fi].rel;
    const std::string dir = rel.substr(0, rel.find_last_of('/') + 1);
    for (const std::string& inc : incs[fi]) {
      for (const std::string& cand :
           {"src/" + inc, dir + inc, inc}) {
        if (rels.count(cand)) {
          direct[rel].push_back(cand);
          break;
        }
      }
    }
  }
  auto partners = [&](const std::string& h) {
    std::vector<std::string> out;
    const std::size_t dot = h.find_last_of('.');
    if (dot == std::string::npos) return out;
    const std::string ext = h.substr(dot);
    if (ext != ".h" && ext != ".hpp") return out;
    for (const char* e : {".cpp", ".cc"}) {
      const std::string p = h.substr(0, dot) + e;
      if (rels.count(p)) out.push_back(p);
    }
    return out;
  };
  for (const SourceFile& sf : files) {
    std::set<std::string>& closure = prog.reach[sf.rel];
    std::vector<std::string> work{sf.rel};
    closure.insert(sf.rel);
    while (!work.empty()) {
      const std::string f = work.back();
      work.pop_back();
      auto it = direct.find(f);
      if (it == direct.end()) continue;
      for (const std::string& g : it->second) {
        if (closure.insert(g).second) work.push_back(g);
      }
    }
    std::vector<std::string> add;
    for (const std::string& h : closure) {
      for (const std::string& p : partners(h)) add.push_back(p);
    }
    closure.insert(add.begin(), add.end());
  }

  // Call resolution.
  for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
    Func& f = prog.funcs[i];
    const std::set<std::string>& vis = prog.reach[f.file];
    f.resolved.resize(f.calls.size());
    for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
      const CallSite& c = f.calls[ci];
      const std::string last =
          c.name.rfind("::") == std::string::npos
              ? c.name
              : c.name.substr(c.name.rfind("::") + 2);
      bool ignored = false;
      for (const std::string& ig : cfg.callgraph_ignore) {
        if (c.name == ig || last == ig) { ignored = true; break; }
      }
      if (ignored) continue;
      std::vector<int> cands;
      if (c.name.find("::") != std::string::npos) {
        auto q = prog.by_qual.find(c.name);
        if (q != prog.by_qual.end()) {
          cands = q->second;
        } else {
          auto n2 = prog.by_name.find(last);
          if (n2 != prog.by_name.end()) cands = n2->second;
        }
      } else if (c.receiver.empty() || c.receiver == "this") {
        auto q = prog.by_qual.find(f.cls + "::" + c.name);
        if (!f.cls.empty() && q != prog.by_qual.end()) {
          cands = q->second;
        } else {
          auto n2 = prog.by_name.find(c.name);
          if (n2 != prog.by_name.end()) cands = n2->second;
        }
      } else {
        // Explicit receiver: same-name methods of *other* classes (avoid
        // false self-edges on common names).
        auto n2 = prog.by_name.find(c.name);
        if (n2 != prog.by_name.end()) {
          for (int idx : n2->second) {
            if (prog.funcs[idx].cls != f.cls || prog.funcs[idx].cls.empty()) {
              cands.push_back(idx);
            }
          }
        }
      }
      for (int idx : cands) {
        if (vis.count(prog.funcs[idx].file)) f.resolved[ci].push_back(idx);
      }
    }
  }
  return prog;
}

// ---------------------------------------------------------------------------
// Shared pass machinery
// ---------------------------------------------------------------------------

namespace {

bool Reportable(const std::string& file) {
  return file.rfind("src/", 0) == 0 || file.rfind("examples/", 0) == 0;
}

std::string Disp(const Config& cfg, const std::string& id) {
  auto it = cfg.locks.find(id);
  return it == cfg.locks.end() ? id : it->second.name;
}

int RankOf(const Config& cfg, const std::string& id) {
  auto it = cfg.locks.find(id);
  return it == cfg.locks.end() ? -1 : it->second.rank;
}

struct LockWitness {
  int via;       // -1: acquired directly; else callee func idx
  int line;      // acquisition line (direct) or call line (via)
};

// Fixed point of "locks this function may acquire, directly or via calls",
// with a deterministic first-discovered witness per (func, lock).
std::vector<std::map<std::string, LockWitness>> ComputeLocksets(
    const Program& prog) {
  std::vector<std::map<std::string, LockWitness>> ls(prog.funcs.size());
  for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
    for (const LockSite& a : prog.funcs[i].acquires) {
      ls[i].emplace(a.lock_id, LockWitness{-1, a.line});
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
      const Func& f = prog.funcs[i];
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        for (int j : f.resolved[ci]) {
          for (const auto& [lock, w] : ls[j]) {
            if (ls[i].emplace(lock, LockWitness{j, f.calls[ci].line}).second) {
              changed = true;
            }
          }
        }
      }
    }
  }
  return ls;
}

// "F (file:line) -> G (file:line) -> H acquires it at file:line"
std::string PathToLock(const Program& prog,
                       const std::vector<std::map<std::string, LockWitness>>& ls,
                       int start, const std::string& lock) {
  std::string out;
  int j = start;
  for (int depth = 0; depth < 16; ++depth) {
    const Func& g = prog.funcs[j];
    auto it = ls[j].find(lock);
    if (it == ls[j].end()) break;
    if (it->second.via < 0) {
      out += g.qual + " acquires it at " + g.file + ":" +
             std::to_string(it->second.line);
      return out;
    }
    out += g.qual + " (" + g.file + ":" + std::to_string(it->second.line) +
           ") -> ";
    j = it->second.via;
  }
  return out + "...";
}

// Locks held at byte offset `pos` of the function body: METRO_REQUIRES /
// METRO_ACQUIRE entry locks plus every acquisition region containing `pos`.
std::vector<std::pair<std::string, int>> HeldAt(const Func& f, std::size_t pos,
                                                int self_site) {
  std::vector<std::pair<std::string, int>> held;
  auto add = [&](const std::string& id, int line) {
    for (const auto& h : held) {
      if (h.first == id) return;
    }
    held.push_back({id, line});
  };
  for (const std::string& id : f.requires_locks) add(id, f.line);
  for (std::size_t si = 0; si < f.acquires.size(); ++si) {
    if (int(si) == self_site) continue;
    for (const auto& r : f.acquires[si].regions) {
      if (pos >= r.first && pos < r.second) {
        add(f.acquires[si].lock_id, f.acquires[si].line);
        break;
      }
    }
  }
  return held;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: lock-order / deadlock analysis
// ---------------------------------------------------------------------------

void RunLockOrder(const Program& prog, const Config& cfg,
                  std::vector<Finding>* out, std::string* dot_out) {
  const auto ls = ComputeLocksets(prog);

  struct EdgeInfo {
    std::string witness;
    std::string file;
    int line;
  };
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;
  auto add_edge = [&](const std::string& a, const std::string& b,
                      std::string witness, const std::string& file, int line) {
    edges.emplace(std::make_pair(a, b),
                  EdgeInfo{std::move(witness), file, line});
  };

  // Every lock acquired from a src/ or examples/ function needs a declared
  // name/rank.
  std::map<std::string, std::pair<std::string, int>> unranked;
  for (const Func& f : prog.funcs) {
    if (!Reportable(f.file)) continue;
    for (const LockSite& a : f.acquires) {
      if (!cfg.locks.count(a.lock_id)) {
        unranked.emplace(a.lock_id, std::make_pair(f.file, a.line));
      }
    }
  }
  for (const auto& [id, where] : unranked) {
    Report(out, where.first, where.second, "lockorder",
           "lock '" + id +
               "' is acquired here but has no [locks] entry in "
               "metrolint.toml — every src/ mutex needs a declared name and "
               "rank in the global hierarchy (DESIGN.md)");
  }

  // Acquired-while-holding edges: direct nesting + calls under held locks.
  for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
    const Func& f = prog.funcs[i];
    for (std::size_t si = 0; si < f.acquires.size(); ++si) {
      const LockSite& a = f.acquires[si];
      const std::size_t pos = a.regions.empty() ? 0 : a.regions[0].first;
      for (const auto& [held, hline] : HeldAt(f, pos, int(si))) {
        add_edge(held, a.lock_id,
                 "\"" + Disp(cfg, held) + "\" held at " + f.file + ":" +
                     std::to_string(hline) + " in " + f.qual + " -> \"" +
                     Disp(cfg, a.lock_id) + "\" acquired at " + f.file + ":" +
                     std::to_string(a.line),
                 f.file, a.line);
      }
    }
    for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
      const CallSite& c = f.calls[ci];
      const auto held = HeldAt(f, c.pos, -1);
      if (held.empty()) continue;
      for (int j : f.resolved[ci]) {
        for (const auto& [lock, w] : ls[j]) {
          for (const auto& [h, hline] : held) {
            add_edge(h, lock,
                     "\"" + Disp(cfg, h) + "\" held at " + f.file + ":" +
                         std::to_string(hline) + " in " + f.qual +
                         " -> call path " + f.qual + " (" + f.file + ":" +
                         std::to_string(c.line) + ") -> " +
                         PathToLock(prog, ls, j, lock) + " -> \"" +
                         Disp(cfg, lock) + "\"",
                     f.file, c.line);
          }
        }
      }
    }
  }

  // Per-edge partial-order checks.
  std::map<std::string, std::vector<std::string>> adj;
  std::set<std::pair<std::string, std::string>> kept;
  for (const auto& [key, e] : edges) {
    const auto& [a, b] = key;
    const std::string exc = Disp(cfg, a) + " -> " + Disp(cfg, b);
    if (cfg.lockorder_exceptions.count(exc)) continue;
    kept.insert(key);
    adj[a].push_back(b);
    if (!Reportable(e.file)) continue;
    if (a == b) {
      Report(out, e.file, e.line, "lockorder",
             "recursive acquisition of \"" + Disp(cfg, a) +
                 "\" (non-recursive mutex): " + e.witness);
      continue;
    }
    const int ra = RankOf(cfg, a), rb = RankOf(cfg, b);
    if (ra >= 0 && rb >= 0 && ra >= rb) {
      Report(out, e.file, e.line, "lockorder",
             "lock-order violation: \"" + Disp(cfg, a) + "\" (rank " +
                 std::to_string(ra) + ") held while acquiring \"" +
                 Disp(cfg, b) + "\" (rank " + std::to_string(rb) +
                 ") — ranks must strictly increase along acquisition: " +
                 e.witness);
    }
  }

  // Cycles in the kept edge graph are potential deadlocks even when some
  // endpoint is unranked.
  for (auto& [n, vs] : adj) std::sort(vs.begin(), vs.end());
  std::set<std::string> seen_cycles;
  std::map<std::string, int> color;
  std::vector<std::string> stk;
  auto report_cycle = [&](std::vector<std::string> cyc) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < cyc.size(); ++k) {
      if (cyc[k] < cyc[best]) best = k;
    }
    std::rotate(cyc.begin(), cyc.begin() + long(best), cyc.end());
    std::string names;
    for (const std::string& n : cyc) names += Disp(cfg, n) + " -> ";
    names += Disp(cfg, cyc.front());
    if (!seen_cycles.insert(names).second) return;
    std::string anchor_file;
    int anchor_line = 0;
    std::string wit;
    for (std::size_t k = 0; k < cyc.size(); ++k) {
      auto it = edges.find({cyc[k], cyc[(k + 1) % cyc.size()]});
      if (it == edges.end()) continue;
      if (anchor_file.empty() && Reportable(it->second.file)) {
        anchor_file = it->second.file;
        anchor_line = it->second.line;
      }
      if (!wit.empty()) wit += " | ";
      wit += it->second.witness;
    }
    if (anchor_file.empty()) return;  // cycle anchored entirely in tests
    Report(out, anchor_file, anchor_line, "lockorder",
           "potential deadlock: lock cycle " + names + " [" + wit + "]");
  };
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stk.push_back(u);
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const std::string& v : it->second) {
        if (color[v] == 1) {
          auto at = std::find(stk.begin(), stk.end(), v);
          report_cycle(std::vector<std::string>(at, stk.end()));
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
    }
    stk.pop_back();
    color[u] = 2;
  };
  for (const auto& [n, vs] : adj) {
    if (color[n] == 0) dfs(n);
  }

  // Declared ranks in code must agree with the config.
  for (const MutexFieldDecl& d : prog.mutex_decls) {
    if (d.file.rfind("src/", 0) != 0 || d.file == "src/util/sync.h") continue;
    auto it = cfg.locks.find(d.id);
    if (it == cfg.locks.end()) {
      Report(out, d.file, d.line, "lockorder",
             "Mutex member '" + d.id +
                 "' has no [locks] entry in metrolint.toml");
    }
    if (d.rank_const.empty()) {
      Report(out, d.file, d.line, "lockorder",
             "Mutex member '" + d.id +
                 "' declared without a lockrank initializer — use "
                 "Mutex mu_{lockrank::kX, \"module.name\"} so the runtime "
                 "checker sees the declared hierarchy");
    } else if (!prog.rank_consts.empty()) {
      auto rc = prog.rank_consts.find(d.rank_const);
      if (rc == prog.rank_consts.end()) {
        Report(out, d.file, d.line, "lockorder",
               "Mutex member '" + d.id + "' uses unknown constant lockrank::" +
                   d.rank_const + " (not in src/util/lock_ranks.h)");
      } else if (it != cfg.locks.end() && rc->second != it->second.rank) {
        Report(out, d.file, d.line, "lockorder",
               "rank mismatch for '" + d.id + "': lockrank::" + d.rank_const +
                   " = " + std::to_string(rc->second) +
                   " but metrolint.toml declares " +
                   std::to_string(it->second.rank));
      }
    }
    if (it != cfg.locks.end() && !d.name.empty() &&
        d.name != it->second.name) {
      Report(out, d.file, d.line, "lockorder",
             "lock-name mismatch for '" + d.id + "': declared \"" + d.name +
                 "\" but metrolint.toml says \"" + it->second.name + "\"");
    }
  }

  if (dot_out) {
    std::string dot = "digraph metrolint_locks {\n  rankdir=LR;\n";
    std::set<std::string> nodes;
    for (const auto& [id, info] : cfg.locks) nodes.insert(id);
    for (const auto& key : kept) {
      nodes.insert(key.first);
      nodes.insert(key.second);
    }
    for (const std::string& n : nodes) {
      const int r = RankOf(cfg, n);
      dot += "  \"" + Disp(cfg, n) + "\" [label=\"" + Disp(cfg, n) +
             (r >= 0 ? "\\nrank " + std::to_string(r) : "\\nunranked") +
             "\"];\n";
    }
    for (const auto& [a, b] : kept) {
      const int ra = RankOf(cfg, a), rb = RankOf(cfg, b);
      const bool bad = a == b || (ra >= 0 && rb >= 0 && ra >= rb);
      dot += "  \"" + Disp(cfg, a) + "\" -> \"" + Disp(cfg, b) + "\"" +
             (bad ? " [color=red, penwidth=2]" : "") + ";\n";
    }
    dot += "}\n";
    *dot_out = std::move(dot);
  }
}

// ---------------------------------------------------------------------------
// Pass 2: interprocedural METRO_NOALLOC
// ---------------------------------------------------------------------------

void RunNoallocInterproc(const Program& prog, const Config& cfg,
                         std::vector<Finding>* out) {
  for (std::size_t ri = 0; ri < prog.funcs.size(); ++ri) {
    const Func& root = prog.funcs[ri];
    if (!root.noalloc || root.is_lambda || !Reportable(root.file)) continue;
    std::set<int> visited;
    std::set<std::string> reported;
    std::vector<int> path{int(ri)};
    std::function<void(int, int)> visit = [&](int cur, int depth) {
      if (depth > 12) return;
      const Func& f = prog.funcs[cur];
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        for (int j : f.resolved[ci]) {
          const Func& g = prog.funcs[j];
          if (g.noalloc) continue;  // checked under its own annotation
          const std::string k1 = f.qual + " -> " + g.qual;
          const std::string k2 = "* -> " + g.qual;
          if (cfg.noalloc_exceptions.count(k1) ||
              cfg.noalloc_exceptions.count(k2)) {
            continue;
          }
          if (!visited.insert(j).second) continue;
          path.push_back(j);
          if (!g.allocs.empty() && reported.insert(g.qual).second) {
            std::string chain;
            for (int idx : path) {
              if (!chain.empty()) chain += " -> ";
              chain += prog.funcs[idx].qual;
            }
            Report(out, root.file, root.line, "noalloc-interproc",
                   "METRO_NOALLOC '" + root.qual +
                       "' reaches an allocating un-annotated helper: " +
                       chain + "; " + g.allocs[0].what + " at " + g.file +
                       ":" + std::to_string(g.allocs[0].line) +
                       " — annotate the helper METRO_NOALLOC or declare a "
                       "justified [noalloc_exceptions] edge");
          }
          visit(j, depth + 1);
          path.pop_back();
        }
      }
    };
    visit(int(ri), 0);
  }
}

// ---------------------------------------------------------------------------
// Pass 3: blocking-while-locked
// ---------------------------------------------------------------------------

namespace {

bool IsWaitToken(const std::string& tok) {
  return tok.rfind("Wait", 0) == 0;
}

}  // namespace

void RunBlockingWhileLocked(const Program& prog, const Config& cfg,
                            std::vector<Finding>* out) {
  struct BlockInfo {
    bool blocking = false;
    int via = -1;  // callee idx when transitive
    std::string desc;
  };
  std::vector<BlockInfo> bi(prog.funcs.size());
  for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
    const Func& f = prog.funcs[i];
    for (const BlockSite& s : f.blocking) {
      if (IsWaitToken(s.token)) continue;  // waits are checked in place
      bi[i] = BlockInfo{true, -1,
                        f.qual + " calls " + s.token + "() at " + f.file +
                            ":" + std::to_string(s.line)};
      break;
    }
    if (!bi[i].blocking) {
      for (const std::string& q : cfg.blocking_qualified) {
        if (f.qual == q) {
          bi[i] = BlockInfo{true, -1,
                            f.qual + " is a declared blocking entry point"};
          break;
        }
      }
    }
  }
  auto excepted = [&](const Func& caller, const Func& callee) {
    return cfg.blocking_exceptions.count(caller.qual + " -> " + callee.qual) ||
           cfg.blocking_exceptions.count("* -> " + callee.qual);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
      if (bi[i].blocking) continue;
      const Func& f = prog.funcs[i];
      for (std::size_t ci = 0; ci < f.calls.size() && !bi[i].blocking; ++ci) {
        for (int j : f.resolved[ci]) {
          if (bi[j].blocking && !excepted(f, prog.funcs[j])) {
            bi[i] = BlockInfo{true, j,
                              f.qual + " (" + f.file + ":" +
                                  std::to_string(f.calls[ci].line) + ") -> " +
                                  bi[j].desc};
            changed = true;
            break;
          }
        }
      }
    }
  }

  std::set<std::string> emitted;
  auto report_once = [&](const std::string& file, int line, std::string msg) {
    if (emitted.insert(file + ":" + std::to_string(line) + ":" + msg).second) {
      Report(out, file, line, "blocking-while-locked", std::move(msg));
    }
  };
  for (std::size_t i = 0; i < prog.funcs.size(); ++i) {
    const Func& f = prog.funcs[i];
    if (!Reportable(f.file)) continue;
    for (const BlockSite& s : f.blocking) {
      auto held = HeldAt(f, s.pos, -1);
      if (IsWaitToken(s.token)) {
        if (s.wait_arg_lock.empty()) continue;  // generic/unresolvable mutex
        std::erase_if(held, [&](const auto& h) {
          return h.first == s.wait_arg_lock;
        });
        if (!held.empty()) {
          report_once(f.file, s.line,
                      "CondVar::" + s.token + " on \"" +
                          Disp(cfg, s.wait_arg_lock) + "\" in " + f.qual +
                          " while also holding \"" +
                          Disp(cfg, held[0].first) + "\" (acquired :" +
                          std::to_string(held[0].second) +
                          ") — the wait parks the thread with the other lock "
                          "held");
        }
      } else if (!held.empty()) {
        report_once(f.file, s.line,
                    "blocking call " + s.token + "() in " + f.qual +
                        " while holding \"" + Disp(cfg, held[0].first) +
                        "\" (acquired :" + std::to_string(held[0].second) +
                        ")");
      }
    }
    for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
      const CallSite& c = f.calls[ci];
      const auto held = HeldAt(f, c.pos, -1);
      if (held.empty()) continue;
      for (int j : f.resolved[ci]) {
        if (!bi[j].blocking || excepted(f, prog.funcs[j])) continue;
        report_once(f.file, c.line,
                    "call to blocking '" + prog.funcs[j].qual + "' in " +
                        f.qual + " while holding \"" +
                        Disp(cfg, held[0].first) + "\" (acquired :" +
                        std::to_string(held[0].second) + "); " +
                        bi[j].desc);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Selftest: seeded multi-file violation fixtures for the v2 passes
// ---------------------------------------------------------------------------

namespace {

const char kRanksFixture[] =
    "#pragma once\n"
    "namespace lockrank {\n"
    "inline constexpr int kAlpha = 10;\n"
    "inline constexpr int kBeta = 20;\n"
    "inline constexpr int kLo = 10;\n"
    "inline constexpr int kHi = 20;\n"
    "}\n";

struct V2Expect {
  const char* substr;  // must appear in >= min findings' "rule message" text
  int min;
};

struct V2Case {
  const char* name;
  std::vector<SourceFile> files;
  const char* config;
  std::vector<V2Expect> expects;
  std::vector<const char*> absent;  // substrings no finding may contain
};

}  // namespace

int RunSelftestV2() {
  std::vector<V2Case> cases;

  // 1. Cross-module lock cycle through the call graph: alpha holds its lock
  //    and calls into beta; beta holds its lock and calls back.
  cases.push_back(V2Case{
      "lockorder-cross-module-cycle",
      {
          {"src/util/lock_ranks.h", kRanksFixture},
          {"src/beta/b.h",
           "#pragma once\n"
           "#include \"util/lock_ranks.h\"\n"
           "class B {\n"
           " public:\n"
           "  void G();\n"
           "  Mutex mu_{lockrank::kBeta, \"beta.lock\"};\n"
           "  class A* peer_ = nullptr;\n"
           "};\n"},
          {"src/alpha/a.h",
           "#pragma once\n"
           "#include \"beta/b.h\"\n"
           "class A {\n"
           " public:\n"
           "  void F() {\n"
           "    MutexLock l(mu_);\n"
           "    b_.G();\n"
           "  }\n"
           "  void Back() {\n"
           "    MutexLock l(mu_);\n"
           "  }\n"
           "  Mutex mu_{lockrank::kAlpha, \"alpha.lock\"};\n"
           "  B b_;\n"
           "};\n"},
          {"src/beta/b.cpp",
           "#include \"alpha/a.h\"\n"
           "void B::G() {\n"
           "  MutexLock l(mu_);\n"
           "  peer_->Back();\n"
           "}\n"},
      },
      "[locks]\n"
      "\"A::mu_\" = \"alpha.lock 10\"\n"
      "\"B::mu_\" = \"beta.lock 20\"\n",
      {{"potential deadlock", 1},
       {"lock-order violation", 1},
       {"recursive acquisition", 1}},
      {"no [locks] entry"}});

  // 2. Direct nested rank inversion; the correctly-ordered sibling (on its
  // own lock pair, so the two functions cannot form a combined cycle) is
  // clean.
  cases.push_back(V2Case{
      "lockorder-nested-inversion",
      {
          {"src/util/lock_ranks.h", kRanksFixture},
          {"src/alpha/nested.h",
           "#pragma once\n"
           "#include \"util/lock_ranks.h\"\n"
           "class N {\n"
           " public:\n"
           "  void Bad() {\n"
           "    MutexLock hi(hi_mu_);\n"
           "    MutexLock lo(lo_mu_);\n"
           "  }\n"
           "  void Good() {\n"
           "    MutexLock lo(lo2_mu_);\n"
           "    MutexLock hi(hi2_mu_);\n"
           "  }\n"
           "  Mutex lo_mu_{lockrank::kLo, \"lo.lock\"};\n"
           "  Mutex hi_mu_{lockrank::kHi, \"hi.lock\"};\n"
           "  Mutex lo2_mu_{lockrank::kLo, \"lo2.lock\"};\n"
           "  Mutex hi2_mu_{lockrank::kHi, \"hi2.lock\"};\n"
           "};\n"},
      },
      "[locks]\n"
      "\"N::lo_mu_\" = \"lo.lock 10\"\n"
      "\"N::hi_mu_\" = \"hi.lock 20\"\n"
      "\"N::lo2_mu_\" = \"lo2.lock 10\"\n"
      "\"N::hi2_mu_\" = \"hi2.lock 20\"\n",
      {{"lock-order violation", 1}, {"N::Bad", 1}},
      {"N::Good"}});

  // 3. Recursive re-acquisition through a helper call.
  cases.push_back(V2Case{
      "lockorder-recursive-via-helper",
      {
          {"src/util/lock_ranks.h", kRanksFixture},
          {"src/alpha/rec.h",
           "#pragma once\n"
           "#include \"util/lock_ranks.h\"\n"
           "class R {\n"
           " public:\n"
           "  void Re() {\n"
           "    MutexLock a(mu_);\n"
           "    Helper();\n"
           "  }\n"
           "  void Helper() {\n"
           "    MutexLock b(mu_);\n"
           "  }\n"
           "  Mutex mu_{lockrank::kLo, \"r.lock\"};\n"
           "};\n"},
      },
      "[locks]\n"
      "\"R::mu_\" = \"r.lock 10\"\n",
      {{"recursive acquisition", 1}},
      {}});

  // 4. Declaration cross-check: unranked, unregistered Mutex member.
  cases.push_back(V2Case{
      "lockorder-decl-check",
      {
          {"src/util/lock_ranks.h", kRanksFixture},
          {"src/gamma/g.h",
           "#pragma once\n"
           "class G {\n"
           "  Mutex mu_;\n"
           "};\n"},
      },
      "[locks]\n",
      {{"no [locks] entry", 1}, {"without a lockrank initializer", 1}},
      {}});

  // 5. Transitive NOALLOC: annotated -> helper -> allocating helper; a
  //    declared exception edge silences the sanctioned cold path.
  cases.push_back(V2Case{
      "noalloc-transitive",
      {
          {"src/alpha/hot.h",
           "#pragma once\n"
           "class HotPath {\n"
           " public:\n"
           "  METRO_NOALLOC void Hot() {\n"
           "    Step();\n"
           "  }\n"
           "  void Step() {\n"
           "    Cold();\n"
           "  }\n"
           "  void Cold() {\n"
           "    buf_.push_back(1);\n"
           "  }\n"
           "  METRO_NOALLOC void Hot2() {\n"
           "    Replan();\n"
           "  }\n"
           "  void Replan() {\n"
           "    buf_.push_back(2);\n"
           "  }\n"
           "  int buf_[4];\n"
           "};\n"},
      },
      "[noalloc]\n"
      "functions = []\n"
      "methods = [ \"push_back\" ]\n"
      "types = []\n"
      "[noalloc_exceptions]\n"
      "\"HotPath::Hot2 -> HotPath::Replan\" = \"cold replan path, runs once "
      "per reconfiguration\"\n",
      {{"noalloc-interproc", 1}, {"HotPath::Cold", 1}},
      {"Replan"}});

  // 6. Blocking-while-locked: direct sleep, wait on a different mutex,
  //    declared blocking entry point, and a transitive path; the
  //    wait-on-own-mutex and unlocked-sleep controls stay clean.
  cases.push_back(V2Case{
      "blocking-while-locked",
      {
          {"src/util/lock_ranks.h", kRanksFixture},
          {"src/alpha/block.h",
           "#pragma once\n"
           "#include \"util/lock_ranks.h\"\n"
           "class Pool {\n"
           " public:\n"
           "  void Submit(int task) {\n"
           "    (void)task;\n"
           "  }\n"
           "};\n"
           "class W {\n"
           " public:\n"
           "  void BadSleep() {\n"
           "    MutexLock l(mu_);\n"
           "    sleep_for(10);\n"
           "  }\n"
           "  void BadWait() {\n"
           "    MutexLock l(mu_);\n"
           "    cv_.Wait(other_);\n"
           "  }\n"
           "  void OkWait() {\n"
           "    MutexLock l(mu_);\n"
           "    cv_.Wait(mu_);\n"
           "  }\n"
           "  void BadSubmit() {\n"
           "    MutexLock l(mu_);\n"
           "    pool_->Submit(1);\n"
           "  }\n"
           "  void BadTransitive() {\n"
           "    MutexLock l(mu_);\n"
           "    Helper2();\n"
           "  }\n"
           "  void Helper2() {\n"
           "    sleep_for(5);\n"
           "  }\n"
           "  void OkSleep() {\n"
           "    sleep_for(1);\n"
           "  }\n"
           "  Mutex mu_{lockrank::kLo, \"w.lock\"};\n"
           "  Mutex other_{lockrank::kHi, \"w.other\"};\n"
           "  CondVar cv_;\n"
           "  Pool* pool_ = nullptr;\n"
           "};\n"},
      },
      "[locks]\n"
      "\"W::mu_\" = \"w.lock 10\"\n"
      "\"W::other_\" = \"w.other 20\"\n"
      "[blocking]\n"
      "functions = [ \"sleep_for\" ]\n"
      "qualified = [ \"Pool::Submit\" ]\n",
      {{"blocking call sleep_for() in W::BadSleep", 1},
       {"CondVar::Wait on \"w.other\"", 1},
       {"Pool::Submit", 1},
       {"W::Helper2", 1}},
      {"W::OkWait", "W::OkSleep"}});

  int failures = 0;
  for (const V2Case& tc : cases) {
    Config cfg;
    std::string err;
    if (!ParseConfig(tc.config, &cfg, &err)) {
      std::fprintf(stderr, "[FAIL] %-32s config error: %s\n", tc.name,
                   err.c_str());
      ++failures;
      continue;
    }
    std::vector<SourceFile> files = tc.files;
    std::sort(files.begin(), files.end(),
              [](const SourceFile& a, const SourceFile& b) {
                return a.rel < b.rel;
              });
    const Program prog = BuildProgram(files, cfg);
    std::vector<Finding> findings;
    RunLockOrder(prog, cfg, &findings, nullptr);
    RunNoallocInterproc(prog, cfg, &findings);
    RunBlockingWhileLocked(prog, cfg, &findings);

    bool ok = true;
    std::string why;
    for (const V2Expect& e : tc.expects) {
      int hits = 0;
      for (const Finding& f : findings) {
        if ((f.rule + " " + f.message).find(e.substr) != std::string::npos) {
          ++hits;
        }
      }
      if (hits < e.min) {
        ok = false;
        why += std::string(" missing '") + e.substr + "'";
      }
    }
    for (const char* a : tc.absent) {
      for (const Finding& f : findings) {
        if ((f.rule + " " + f.message).find(a) != std::string::npos) {
          ok = false;
          why += std::string(" unexpected '") + a + "'";
        }
      }
    }
    std::fprintf(stderr, "[%s] %-32s %zu finding(s)%s\n", ok ? "PASS" : "FAIL",
                 tc.name, findings.size(), why.c_str());
    if (!ok) {
      for (const Finding& f : findings) {
        std::fprintf(stderr, "       %s:%d: [%s] %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
      }
      ++failures;
    }
  }
  std::fprintf(stderr, "metrolint --selftest (v2): %d failure(s)\n", failures);
  return failures;
}

}  // namespace metrolint
