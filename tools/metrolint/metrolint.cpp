// metrolint — project-invariant static analysis for the metro tree.
//
// A self-contained lexical analyzer (no clang dependency; builds and runs
// wherever the tier-1 suite builds) enforcing the per-file rule families
// over src/, bench/, tests/ and examples/:
//
//   layering   — the include-layering DAG. Every module in src/ has a rank
//                (tools/metrolint/metrolint.toml, [ranks]); a file may only
//                include headers from strictly lower-ranked modules or its
//                own module. Upward or cross-layer includes are errors and
//                print the offending edge. Declared exceptions (the single
//                resilience/chaos.h -> fog/fog.h test-harness edge) live in
//                the config, not in code.
//
//   noalloc    — the hot-path allocation ban. Function definitions annotated
//                METRO_NOALLOC (src/util/analysis.h) must not lexically
//                contain `new`, malloc-family calls, owning-container
//                types/growth methods, or Tensor materialization. This
//                per-body check is shallow by design; the v2
//                noalloc-interproc pass (wholeprogram.cpp) propagates the
//                contract through the call graph.
//
//   hygiene    — banned patterns: raw std::mutex outside util/sync.h,
//                const_cast outside the declared whitelist, bounds-checked
//                Tensor::at() in src/nn/ + src/tensor/ kernels, and
//                sleep_for in tests outside the chaos harness.
//
// plus the v2 whole-program passes (wholeprogram.cpp): lockorder (global
// acquired-while-holding graph checked against the declared partial order,
// cycles reported as potential deadlocks), noalloc-interproc, and
// blocking-while-locked. See DESIGN.md "metrolint v2 whole-program passes".
//
// The analysis is two-pass lexical: comments are stripped (preserving
// newlines so findings carry real line numbers) for include extraction, and
// comments + string/char literals are stripped for token scanning. This is
// deliberately not a parser — the rules are chosen so that a token-level
// scan has no false positives on this codebase, and the config whitelists
// carry the rest.
//
// Exit status: 0 when the tree is clean (or every finding is baselined),
// 1 when fresh findings exist, 2 on usage or I/O errors. `--selftest` runs
// the rule engine over embedded fixture files seeding at least one violation
// per rule family (v1 per-file rules and all three v2 passes) and verifies
// both the positive and negative controls.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common.h"
#include "wholeprogram.h"

namespace fs = std::filesystem;

namespace metrolint {

// Minimal TOML subset: [section] headers, `key = int`, `"key" = "string"`,
// `key = [ "a", "b", ... ]` (arrays may span lines). Enough for
// metrolint.toml; anything else is a config error.
bool ParseConfig(const std::string& text, Config* cfg, std::string* err) {
  std::istringstream in(text);
  std::string line, section;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    *err = "metrolint.toml:" + std::to_string(lineno) + ": " + what;
    return false;
  };
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return std::string();
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
  };
  auto unquote = [](std::string s) {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
      return s.substr(1, s.size() - 2);
    }
    return s;
  };
  auto strip_comment = [](std::string s) {
    bool in_str = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '"') in_str = !in_str;
      if (s[i] == '#' && !in_str) return s.substr(0, i);
    }
    return s;
  };
  // Collects quoted strings out of `chunk` into `out`; returns false on a
  // malformed quote.
  auto collect_strings = [](const std::string& chunk,
                            std::vector<std::string>* out) {
    std::size_t i = 0;
    while ((i = chunk.find('"', i)) != std::string::npos) {
      const std::size_t j = chunk.find('"', i + 1);
      if (j == std::string::npos) return false;
      out->push_back(chunk.substr(i + 1, j - i - 1));
      i = j + 1;
    }
    return true;
  };

  while (std::getline(in, line)) {
    ++lineno;
    line = trim(strip_comment(line));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      section = line.substr(1, line.size() - 2);
      continue;
    }
    // Split on the first '=' outside quotes (lock keys contain "->" but
    // never '='; quoted keys keep this simple).
    std::size_t eq = std::string::npos;
    {
      bool in_str = false;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"') in_str = !in_str;
        if (line[i] == '=' && !in_str) { eq = i; break; }
      }
    }
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = unquote(trim(line.substr(0, eq)));
    std::string value = trim(line.substr(eq + 1));

    if (!value.empty() && value.front() == '[') {
      // Array (possibly multiline): read until the closing bracket.
      std::string body = value.substr(1);
      while (body.find(']') == std::string::npos) {
        std::string more;
        if (!std::getline(in, more)) return fail("unterminated array");
        ++lineno;
        body += trim(strip_comment(more));
      }
      body = body.substr(0, body.find(']'));
      std::vector<std::string> items;
      if (!collect_strings(body, &items)) return fail("bad string in array");

      auto as_set = [&](std::set<std::string>* dst) {
        dst->insert(items.begin(), items.end());
      };
      if (section == "include" && key == "exceptions") {
        as_set(&cfg->include_exceptions);
      } else if (section == "noalloc" && key == "functions") {
        cfg->noalloc_functions = items;
      } else if (section == "noalloc" && key == "methods") {
        cfg->noalloc_methods = items;
      } else if (section == "noalloc" && key == "types") {
        cfg->noalloc_types = items;
      } else if (section == "mutex" && key == "allowed") {
        as_set(&cfg->mutex_allowed);
      } else if (section == "const_cast" && key == "allowed") {
        as_set(&cfg->const_cast_allowed);
      } else if (section == "tensor_at" && key == "paths") {
        cfg->tensor_at_paths = items;
      } else if (section == "sleep_for" && key == "paths") {
        cfg->sleep_for_paths = items;
      } else if (section == "sleep_for" && key == "allowed") {
        as_set(&cfg->sleep_for_allowed);
      } else if (section == "blocking" && key == "functions") {
        cfg->blocking_functions = items;
      } else if (section == "blocking" && key == "qualified") {
        cfg->blocking_qualified = items;
      } else if (section == "callgraph" && key == "ignore") {
        cfg->callgraph_ignore = items;
      } else if (section == "views" && key == "sinks") {
        cfg->view_sinks = items;
      } else {
        return fail("unknown array key '" + section + "." + key + "'");
      }
      continue;
    }

    if (section == "ranks") {
      try {
        cfg->ranks[key] = std::stoi(value);
      } catch (...) {
        return fail("rank for '" + key + "' is not an integer");
      }
      continue;
    }
    if (!value.empty() && value.front() == '"') {
      const std::string sval = unquote(value);
      if (section == "locks") {
        // "Class::field" = "human.name rank"
        const std::size_t sp = sval.find_last_of(' ');
        if (sp == std::string::npos) {
          return fail("lock '" + key + "' needs \"name rank\"");
        }
        Config::LockInfo info;
        info.name = trim(sval.substr(0, sp));
        try {
          info.rank = std::stoi(sval.substr(sp + 1));
        } catch (...) {
          return fail("lock '" + key + "' rank is not an integer");
        }
        if (info.name.empty()) return fail("lock '" + key + "' has no name");
        cfg->locks[key] = info;
        continue;
      }
      if (section == "views") {
        // "qualified::ViewType" = "qualified::OwnerType"
        if (trim(sval).empty()) {
          return fail("view '" + key + "' needs an owner type");
        }
        cfg->views[key] = trim(sval);
        continue;
      }
      if (section == "invalidates") {
        // "Class::Method" = "what the call frees"
        if (trim(sval).empty()) {
          return fail("invalidator '" + key + "' needs a description");
        }
        cfg->invalidates[key] = trim(sval);
        continue;
      }
      std::map<std::string, std::string>* dst = nullptr;
      if (section == "lockorder_exceptions") dst = &cfg->lockorder_exceptions;
      if (section == "noalloc_exceptions") dst = &cfg->noalloc_exceptions;
      if (section == "blocking_exceptions") dst = &cfg->blocking_exceptions;
      if (section == "view_exceptions") dst = &cfg->view_exceptions;
      if (section == "invalidation_exceptions") {
        dst = &cfg->invalidation_exceptions;
      }
      if (section == "status_exceptions") dst = &cfg->status_exceptions;
      if (dst) {
        if (trim(sval).empty()) {
          return fail("exception '" + key + "' needs a justification string");
        }
        (*dst)[key] = sval;
        continue;
      }
    }
    return fail("unknown key '" + section + "." + key + "'");
  }
  return true;
}

}  // namespace metrolint

namespace {

using metrolint::Config;
using metrolint::Finding;
using metrolint::HasPrefix;
using metrolint::IsWholeToken;
using metrolint::LineOf;
using metrolint::NextNonSpace;
using metrolint::PrevNonSpace;
using metrolint::Report;
using metrolint::SourceFile;
using metrolint::StripSource;

// ---------------------------------------------------------------------------
// Rule family 1: include-layering DAG
// ---------------------------------------------------------------------------

// `rel` is the repo-relative path, e.g. "src/nn/layer.cpp".
void CheckLayering(const std::string& rel, std::string_view src,
                   const Config& cfg, std::vector<Finding>* out) {
  if (rel.rfind("src/", 0) != 0) return;  // bench/tests sit above the DAG
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return;
  const std::string module = rel.substr(4, slash - 4);
  const auto self = cfg.ranks.find(module);
  if (self == cfg.ranks.end()) return;  // unranked dirs are out of scope

  const std::string text = StripSource(src, /*strip_literals=*/false);
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos || line[p] != '#') continue;
    p = line.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || line.compare(p, 7, "include") != 0) continue;
    const std::size_t q1 = line.find('"', p + 7);
    if (q1 == std::string::npos) continue;  // <system> includes are free
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string inc = line.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t inc_slash = inc.find('/');
    if (inc_slash == std::string::npos) continue;  // same-dir relative include
    const std::string target = inc.substr(0, inc_slash);
    const auto tgt = cfg.ranks.find(target);
    if (tgt == cfg.ranks.end()) continue;
    if (target == module) continue;
    if (tgt->second < self->second) continue;
    if (cfg.include_exceptions.count(rel + " -> " + inc)) continue;
    Report(out, rel, lineno, "layering",
           "illegal include edge " + module + " (rank " +
               std::to_string(self->second) + ") -> " + target + " (rank " +
               std::to_string(tgt->second) + "): #include \"" + inc +
               "\" points up or across the layer DAG");
  }
}

// ---------------------------------------------------------------------------
// Rule family 2: METRO_NOALLOC hot-path allocation ban (per-body)
// ---------------------------------------------------------------------------

void CheckNoalloc(const std::string& rel, std::string_view src,
                  const Config& cfg, std::vector<Finding>* out) {
  const std::string text = StripSource(src, /*strip_literals=*/true);
  std::size_t pos = 0;
  while ((pos = text.find("METRO_NOALLOC", pos)) != std::string::npos) {
    if (!IsWholeToken(text, pos, 13)) {
      ++pos;
      continue;
    }
    const std::size_t anchor = pos;
    pos += 13;
    // Walk the signature: the first `{` at paren depth 0 opens the body; a
    // `;` at depth 0 first means this is a declaration (or the macro's own
    // #define) — skip it.
    std::size_t i = pos;
    int paren = 0;
    std::size_t body_begin = std::string::npos;
    while (i < text.size()) {
      const char c = text[i];
      if (c == '(') ++paren;
      else if (c == ')') --paren;
      else if (c == '#') break;  // hit a preprocessor line: it was the macro
      else if (paren == 0 && c == ';') break;
      else if (paren == 0 && c == '{') {
        body_begin = i + 1;
        break;
      }
      ++i;
    }
    if (body_begin == std::string::npos) continue;
    // Match the body's closing brace.
    int depth = 1;
    std::size_t j = body_begin;
    while (j < text.size() && depth > 0) {
      if (text[j] == '{') ++depth;
      else if (text[j] == '}') --depth;
      ++j;
    }
    if (depth != 0) {
      Report(out, rel, LineOf(text, anchor), "noalloc",
             "unbalanced braces after METRO_NOALLOC (lexer cannot find the "
             "end of the annotated body)");
      return;
    }
    metrolint::ScanAllocTokens(
        text, body_begin, j - 1, cfg,
        [&](std::size_t p, const std::string& what) {
          Report(out, rel, LineOf(text, p), "noalloc",
                 what + " inside a METRO_NOALLOC body (move cold-path work "
                        "to an un-annotated helper)");
        });
    pos = j;
  }
}

// ---------------------------------------------------------------------------
// Rule family 3: banned-pattern hygiene
// ---------------------------------------------------------------------------

void CheckHygiene(const std::string& rel, std::string_view src,
                  const Config& cfg, std::vector<Finding>* out) {
  const std::string text = StripSource(src, /*strip_literals=*/true);

  auto scan_token = [&](std::string_view needle, auto&& accept,
                        const char* rule, const std::string& msg) {
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      if (IsWholeToken(text, pos, needle.size()) && accept(pos)) {
        Report(out, rel, LineOf(text, pos), rule, msg);
      }
      pos += needle.size();
    }
  };

  if (!cfg.mutex_allowed.count(rel)) {
    std::size_t pos = 0;
    while ((pos = text.find("std::mutex", pos)) != std::string::npos) {
      if (IsWholeToken(text, pos, 10)) {
        Report(out, rel, LineOf(text, pos), "hygiene",
               "raw std::mutex — use metro::Mutex (util/sync.h) so the "
               "thread-safety analysis layer sees the lock");
      }
      pos += 10;
    }
  }

  if (!cfg.const_cast_allowed.count(rel)) {
    scan_token(
        "const_cast", [](std::size_t) { return true; }, "hygiene",
        "const_cast outside the whitelist (metrolint.toml [const_cast]) — "
        "thread const-ness through the API instead");
  }

  if (HasPrefix(rel, cfg.tensor_at_paths)) {
    scan_token(
        "at",
        [&](std::size_t pos) {
          const char prev = PrevNonSpace(text, pos);
          const bool member =
              prev == '.' || (prev == '>' && pos >= 2 && text[pos - 2] == '-');
          return member && NextNonSpace(text, pos + 2) == '(';
        },
        "hygiene",
        "bounds-checked at() in kernel code — index arithmetic is the "
        "kernels' contract; use data()/operator[] with METRO_DCHECK");
  }

  if (HasPrefix(rel, cfg.sleep_for_paths) &&
      !cfg.sleep_for_allowed.count(rel)) {
    scan_token(
        "sleep_for", [](std::size_t) { return true; }, "hygiene",
        "sleep_for in tests — synchronize on state (WaitUntil/CondVar), "
        "wall-clock sleeps make the suite slow and flaky");
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void CheckFile(const std::string& rel, std::string_view src, const Config& cfg,
               std::vector<Finding>* out) {
  CheckLayering(rel, src, cfg, out);
  CheckNoalloc(rel, src, cfg, out);
  CheckHygiene(rel, src, cfg, out);
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

// Baseline fingerprints are stable across line-number churn: digits after a
// ':' inside the message (witness-chain line numbers) are normalized away,
// and the finding's own line is not part of the key.
std::string Fingerprint(const Finding& f) {
  std::string msg;
  msg.reserve(f.message.size());
  for (std::size_t i = 0; i < f.message.size(); ++i) {
    msg += f.message[i];
    if (f.message[i] == ':') {
      std::size_t j = i + 1;
      while (j < f.message.size() &&
             std::isdigit(static_cast<unsigned char>(f.message[j]))) {
        ++j;
      }
      if (j > i + 1) {
        msg += 'N';
        i = j - 1;
      }
    }
  }
  return f.rule + "|" + f.file + "|" + msg;
}

struct Options {
  fs::path root;
  fs::path config_path;
  fs::path baseline_path;
  fs::path write_baseline_path;
  fs::path dot_path;
  fs::path dot_views_path;
  fs::path report_path;
  long budget_ms = 0;  // 0 = no budget; otherwise fail if the scan exceeds it
  bool selftest = false;
};

int RunTree(const Options& opt, const Config& cfg) {
  using Clock = std::chrono::steady_clock;
  std::vector<Finding> findings;
  std::vector<std::string> rels;
  for (const char* dir : {"src", "bench", "tests", "examples"}) {
    const fs::path base = opt.root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        rels.push_back(fs::relative(entry.path(), opt.root).generic_string());
      }
    }
  }
  std::sort(rels.begin(), rels.end());

  std::vector<SourceFile> files;
  files.reserve(rels.size());
  for (const std::string& rel : rels) {
    std::ifstream in(opt.root / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "metrolint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{rel, ss.str()});
  }

  long long total_ms = 0;
  auto timed = [&](const char* pass, auto&& body) {
    const auto t0 = Clock::now();
    const std::size_t before = findings.size();
    body();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - t0)
                        .count();
    total_ms += ms;
    std::fprintf(stderr, "metrolint: pass %-18s %5lld ms  %zu finding(s)\n",
                 pass, static_cast<long long>(ms), findings.size() - before);
  };

  timed("per-file (v1)", [&] {
    for (const SourceFile& sf : files) {
      CheckFile(sf.rel, sf.text, cfg, &findings);
    }
  });

  metrolint::Program prog;
  timed("build-model", [&] { prog = metrolint::BuildProgram(files, cfg); });
  std::string dot;
  timed("lockorder", [&] {
    metrolint::RunLockOrder(prog, cfg, &findings,
                            opt.dot_path.empty() ? nullptr : &dot);
  });
  timed("noalloc-interproc",
        [&] { metrolint::RunNoallocInterproc(prog, cfg, &findings); });
  timed("blocking-while-locked",
        [&] { metrolint::RunBlockingWhileLocked(prog, cfg, &findings); });
  std::string dot_views;
  timed("view-escape", [&] {
    metrolint::RunViewEscape(prog, cfg, &findings,
                             opt.dot_views_path.empty() ? nullptr
                                                        : &dot_views);
  });
  timed("invalidation",
        [&] { metrolint::RunInvalidation(prog, cfg, &findings); });
  timed("unchecked-status",
        [&] { metrolint::RunUncheckedStatus(prog, cfg, &findings); });

  std::fprintf(stderr, "metrolint: full scan %lld ms total\n", total_ms);
  if (opt.budget_ms > 0 && total_ms > opt.budget_ms) {
    std::fprintf(stderr,
                 "metrolint: ERROR scan exceeded --budget-ms %ld (took %lld "
                 "ms) — the static gate must stay cheap\n",
                 opt.budget_ms, total_ms);
    return 2;
  }

  if (!opt.dot_path.empty()) {
    std::ofstream dout(opt.dot_path);
    if (!dout) {
      std::fprintf(stderr, "metrolint: cannot write %s\n",
                   opt.dot_path.string().c_str());
      return 2;
    }
    dout << dot;
  }
  if (!opt.dot_views_path.empty()) {
    std::ofstream dout(opt.dot_views_path);
    if (!dout) {
      std::fprintf(stderr, "metrolint: cannot write %s\n",
                   opt.dot_views_path.string().c_str());
      return 2;
    }
    dout << dot_views;
  }
  if (!opt.report_path.empty()) {
    std::ofstream rout(opt.report_path);
    if (!rout) {
      std::fprintf(stderr, "metrolint: cannot write %s\n",
                   opt.report_path.string().c_str());
      return 2;
    }
    rout << "# metrolint findings report (" << rels.size() << " files, "
         << total_ms << " ms)\n";
    for (const Finding& f : findings) {
      rout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
           << "\n";
    }
  }

  if (!opt.write_baseline_path.empty()) {
    std::set<std::string> fps;
    for (const Finding& f : findings) fps.insert(Fingerprint(f));
    std::ofstream bout(opt.write_baseline_path);
    if (!bout) {
      std::fprintf(stderr, "metrolint: cannot write %s\n",
                   opt.write_baseline_path.string().c_str());
      return 2;
    }
    for (const std::string& fp : fps) bout << fp << "\n";
    std::fprintf(stderr, "metrolint: wrote %zu baseline fingerprint(s)\n",
                 fps.size());
    return 0;
  }

  std::set<std::string> baseline;
  if (!opt.baseline_path.empty() && fs::exists(opt.baseline_path)) {
    std::ifstream bin(opt.baseline_path);
    std::string bline;
    while (std::getline(bin, bline)) {
      if (!bline.empty()) baseline.insert(bline);
    }
  }

  std::size_t suppressed = 0, fresh = 0;
  for (const Finding& f : findings) {
    if (baseline.count(Fingerprint(f))) {
      ++suppressed;
      continue;
    }
    ++fresh;
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  std::fprintf(stderr,
               "metrolint: %zu file(s), %zu finding(s) (%zu fresh, %zu "
               "baselined)\n",
               rels.size(), findings.size(), fresh, suppressed);
  return fresh == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Selftest (v1 per-file rules; the v2 fixtures live in wholeprogram.cpp)
// ---------------------------------------------------------------------------

struct Fixture {
  const char* name;      // virtual repo-relative path
  const char* source;    // file contents
  const char* rule;      // expected rule, or nullptr for "must be clean"
  int min_findings;
};

int RunSelftest(const Config& cfg) {
  const Fixture fixtures[] = {
      // layering: util (rank 0) reaching up into nn (rank 2).
      {"src/util/bad_layering.h",
       "#pragma once\n#include \"nn/layer.h\"\n", "layering", 1},
      // layering negative control: nn -> tensor is a legal downward edge.
      {"src/nn/good_layering.h",
       "#pragma once\n#include \"tensor/ops.h\"\n#include \"nn/layer.h\"\n",
       nullptr, 0},
      // layering: declared exception edge stays clean.
      {"src/resilience/chaos.h",
       "#pragma once\n#include \"fog/fog.h\"\n", nullptr, 0},
      // noalloc: new + container growth + owning type in an annotated body.
      {"src/nn/bad_noalloc.cpp",
       "#include \"nn/layer.h\"\n"
       "METRO_NOALLOC\n"
       "void Hot(std::span<float> out) {\n"
       "  std::vector<float> tmp;\n"
       "  tmp.push_back(1.0f);\n"
       "  float* p = new float[4];\n"
       "  Tensor t({2, 2});\n"
       "  (void)p; (void)t; (void)out;\n"
       "}\n",
       "noalloc", 4},
      // noalloc negative control: declaration annotation + clean body +
      // non-owning std types.
      {"src/nn/good_noalloc.cpp",
       "#include \"nn/layer.h\"\n"
       "METRO_NOALLOC\n"
       "void Hot(std::span<float> out);\n"
       "METRO_NOALLOC\n"
       "void Hot2(std::span<const float> in, std::span<float> out) {\n"
       "  std::size_t n = std::min(in.size(), out.size());\n"
       "  for (std::size_t i = 0; i < n; ++i) out[i] = in[i];\n"
       "}\n",
       nullptr, 0},
      // noalloc: banned tokens in comments and strings are ignored.
      {"src/nn/commented_noalloc.cpp",
       "METRO_NOALLOC\n"
       "void Hot() {\n"
       "  // new std::vector<float> push_back malloc\n"
       "  const char* s = \"new malloc\"; (void)s;\n"
       "}\n",
       nullptr, 0},
      // hygiene: raw std::mutex outside util/sync.h.
      {"src/zoo/bad_mutex.h", "#pragma once\n#include <mutex>\nstd::mutex m;\n",
       "hygiene", 1},
      // hygiene: const_cast outside the whitelist.
      {"src/obs/bad_cast.cpp", "int* P(const int* p) { return const_cast<int*>(p); }\n",
       "hygiene", 1},
      // hygiene negative control: whitelisted const_cast file.
      {"src/tensor/workspace.h", "float* f(const float* p) { return const_cast<float*>(p); }\n",
       nullptr, 0},
      // hygiene: Tensor::at() in kernel code.
      {"src/tensor/bad_at.cpp", "float F(const Tensor& t) { return t.at(3); }\n",
       "hygiene", 1},
      // hygiene: sleep_for in a test.
      {"tests/bad_sleep_test.cpp",
       "#include <thread>\nvoid T() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
       "hygiene", 1},
  };

  int failures = 0;
  for (const Fixture& fx : fixtures) {
    std::vector<Finding> findings;
    CheckFile(fx.name, fx.source, cfg, &findings);
    const bool ok =
        fx.rule == nullptr
            ? findings.empty()
            : int(findings.size()) >= fx.min_findings &&
                  std::all_of(findings.begin(), findings.end(),
                              [&](const Finding& f) { return f.rule == fx.rule; });
    std::fprintf(stderr, "[%s] %-28s %zu finding(s), expected %s%s\n",
                 ok ? "PASS" : "FAIL", fx.name, findings.size(),
                 fx.rule ? fx.rule : "clean",
                 fx.rule ? (" >= " + std::to_string(fx.min_findings)).c_str()
                         : "");
    if (!ok) {
      for (const Finding& f : findings) {
        std::fprintf(stderr, "       %s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
      }
      ++failures;
    }
  }
  std::fprintf(stderr, "metrolint --selftest (v1): %d failure(s)\n", failures);
  return failures;
}

const char kUsage[] =
    "usage: metrolint [--root DIR] [--config FILE] [--selftest]\n"
    "                 [--baseline FILE] [--write-baseline FILE] [--dot FILE]\n"
    "                 [--dot-views FILE] [--report FILE] [--budget-ms N]\n"
    "  --root DIR            repository root to scan (default: cwd)\n"
    "  --config FILE         rule config (default: ROOT/tools/metrolint/metrolint.toml)\n"
    "  --selftest            run the embedded rule fixtures instead of scanning\n"
    "  --baseline FILE       suppress findings fingerprinted in FILE; fail only on fresh ones\n"
    "  --write-baseline FILE write the current findings' fingerprints and exit 0\n"
    "  --dot FILE            write the global lock graph in Graphviz DOT form\n"
    "  --dot-views FILE      write the declared view-ownership graph in DOT form\n"
    "  --report FILE         write every finding (pre-baseline) to FILE\n"
    "  --budget-ms N         fail if the full scan takes longer than N ms\n";

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      opt.config_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      opt.write_baseline_path = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      opt.dot_path = argv[++i];
    } else if (arg == "--dot-views" && i + 1 < argc) {
      opt.dot_views_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      opt.report_path = argv[++i];
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      opt.budget_ms = std::atol(argv[++i]);
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (opt.config_path.empty()) {
    opt.config_path = opt.root / "tools" / "metrolint" / "metrolint.toml";
  }

  std::ifstream in(opt.config_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrolint: cannot read config %s\n",
                 opt.config_path.string().c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  Config cfg;
  std::string err;
  if (!metrolint::ParseConfig(ss.str(), &cfg, &err)) {
    std::fprintf(stderr, "metrolint: %s\n", err.c_str());
    return 2;
  }

  if (opt.selftest) {
    const int failures = RunSelftest(cfg) + metrolint::RunSelftestV2() +
                         metrolint::RunSelftestV3();
    return failures == 0 ? 0 : 1;
  }
  return RunTree(opt, cfg);
}
