// metrolint v3: view-ownership, invalidation, and unchecked-Status passes.
//
// The zero-copy surfaces (TensorView over Workspace arenas, BatchView /
// RecordView over pinned RecordBatches, LsmIterator over refcounted LSM
// versions, string_view over util::bytes buffers) are all *borrows*: cheap
// to pass around, catastrophic to outlive their owner. [[clang::lifetimebound]]
// only catches same-expression dangling, so these passes close the gap
// lexically over the same whole-program model the v2 lock passes use:
//
//   view-escape       a [views] section declares view -> owner type pairs;
//                     the pass flags views stored into members / statics /
//                     containers, views over a *local* owner returned out of
//                     the frame, and view locals captured by lambdas handed
//                     to [views] sinks (ThreadPool::Submit, std::thread, ...).
//   invalidation      [invalidates] declares the owner methods that free a
//                     view's storage (Workspace::Rewind, RecordBatch::Seal,
//                     ...); the pass reports a live view variable used after
//                     an invalidator ran on its owner along the lexical
//                     path, propagated interprocedurally through callees
//                     known to invalidate the owner type.
//   unchecked-status  call sites resolving to util::Status / Result<T>
//                     returners whose value is discarded. [[nodiscard]] is
//                     only a warning on non-Werror hosts; here it is an
//                     error, and a `(void)` cast is only accepted when a
//                     justified [status_exceptions] entry exists.
//
// Everything is a deliberate lexical approximation (no types, no dataflow):
// owners are receiver *tokens*, paths are source order, and aliasing through
// pointers is invisible. The escape hatches ([view_exceptions],
// [invalidation_exceptions], [status_exceptions]) all require a non-empty
// justification, and the METRO_VIEW_CHECK runtime generation counters
// cross-validate the static claims the approximation cannot prove.
//
// Like v2, findings anchor only to src/ + bench/ + examples/ — tests/
// deliberately exercise use-after-invalidation in death tests and must not
// have to baseline their own fixtures.

#include "wholeprogram.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace metrolint {
namespace {

std::string Trim(std::string s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string LastComp(const std::string& q) {
  const std::size_t p = q.rfind("::");
  return p == std::string::npos ? q : q.substr(p + 2);
}

// v3 findings anchor to src/, bench/ and examples/. tests/ participates in
// the model but deliberately uses views after invalidation (death tests).
bool ReportableV3(const std::string& file) {
  return file.rfind("src/", 0) == 0 || file.rfind("bench/", 0) == 0 ||
         file.rfind("examples/", 0) == 0;
}

// Index (not char) of the last non-space character strictly before pos.
std::size_t PrevNonSpacePos(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return pos;
  }
  return std::string::npos;
}

// Matching close delimiter for the open bracket at `open`; `limit` on miss.
std::size_t CloseDelim(std::string_view text, std::size_t open,
                       std::size_t limit) {
  const char oc = text[open];
  const char cc = oc == '(' ? ')' : oc == '{' ? '}' : ']';
  int depth = 0;
  for (std::size_t k = open; k < limit; ++k) {
    if (text[k] == oc) {
      ++depth;
    } else if (text[k] == cc && --depth == 0) {
      return k;
    }
  }
  return limit;
}

// Body segments of `f` with nested lambda bodies cut out, so a parent's
// statements are scanned exactly once and lambda statements belong to the
// lambda's own Func.
std::vector<std::pair<std::size_t, std::size_t>> SegsOf(const Func& f) {
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  auto children = f.lambda_bodies;
  std::sort(children.begin(), children.end());
  std::size_t cur = f.body_begin;
  for (const auto& [cb, ce] : children) {
    if (cb > cur) segs.emplace_back(cur, cb);
    cur = std::max(cur, ce);
  }
  if (f.body_end > cur) segs.emplace_back(cur, f.body_end);
  return segs;
}

// Invokes fn(pos, token) for every identifier token in text[b, e).
template <typename Fn>
void ForEachToken(std::string_view text, std::size_t b, std::size_t e,
                  Fn&& fn) {
  e = std::min(e, text.size());
  for (std::size_t i = b; i < e; ++i) {
    if (!IsIdentChar(text[i]) || (i > 0 && IsIdentChar(text[i - 1]))) continue;
    std::size_t j = i;
    while (j < e && IsIdentChar(text[j])) ++j;
    fn(i, text.substr(i, j - i));
    i = j - 1;
  }
}

bool HasTok(std::string_view text, std::string_view tok) {
  std::size_t p = text.find(tok);
  while (p != std::string::npos) {
    if (IsWholeToken(text, p, tok.size())) return true;
    p = text.find(tok, p + 1);
  }
  return false;
}

// A declared view type: qualified names from [views] plus the bare lexical
// tokens the passes actually match on.
struct VT {
  std::string view_qual;
  std::string owner_qual;
  std::string view_tok;
  std::string owner_tok;
};

std::vector<VT> MakeViewTypes(const Config& cfg) {
  std::vector<VT> out;
  for (const auto& [v, o] : cfg.views) {
    out.push_back(VT{v, o, LastComp(v), LastComp(o)});
  }
  return out;
}

const VT* ByViewTok(const std::vector<VT>& vts, std::string_view tok) {
  for (const VT& vt : vts) {
    if (vt.view_tok == tok) return &vt;
  }
  return nullptr;
}

// View producers, derived from the model rather than configured: a method of
// an owner class whose return type names a view type mints a fresh view over
// its receiver (ws.AllocView(n)); a method of a view class returning a view
// derives one that inherits the receiver's owner (v.Reshaped(...)).
struct Producers {
  std::map<std::string, const VT*> owner_methods;
  std::map<std::string, const VT*> view_methods;
};

Producers MakeProducers(const Program& prog, const std::vector<VT>& vts) {
  Producers p;
  for (const Func& f : prog.funcs) {
    if (f.is_lambda || f.cls.empty() || f.ret.empty()) continue;
    const VT* out = nullptr;
    for (const VT& vt : vts) {
      if (HasTok(f.ret, vt.view_tok)) {
        out = &vt;
        break;
      }
    }
    if (out == nullptr) continue;
    const std::string ctok = LastComp(f.cls);
    bool owner_cls = false, view_cls = false;
    for (const VT& vt : vts) {
      owner_cls = owner_cls || vt.owner_tok == ctok;
      view_cls = view_cls || vt.view_tok == ctok;
    }
    if (owner_cls) {
      p.owner_methods.emplace(f.name, out);
    } else if (view_cls) {
      p.view_methods.emplace(f.name, out);
    }
  }
  return p;
}

// A tracked view variable local to one function body.
struct ViewLocal {
  std::string name;
  const VT* vt = nullptr;
  std::string owner;      // receiver token of the producing call ("" unknown)
  std::size_t name_pos = 0;
  int line = 0;
};

struct Derived {
  std::string owner;
  const VT* vt = nullptr;
};

// Walks an initializer expression for a producing call (recv.M(...) with M a
// producer method) or a bare alias of an already-tracked view local.
Derived DeriveOwner(std::string_view text, std::size_t b, std::size_t e,
                    const Producers& prod,
                    const std::vector<ViewLocal>& locals) {
  Derived d;
  std::string first_tok;
  ForEachToken(text, b, e, [&](std::size_t pos, std::string_view tok) {
    if (d.vt != nullptr) return;
    if (first_tok.empty()) first_tok = std::string(tok);
    const char prev = PrevNonSpace(text, pos);
    const bool member =
        prev == '.' || (prev == '>' && pos >= 2 && text[pos - 2] == '-');
    if (!member || NextNonSpace(text, pos + tok.size()) != '(') return;
    // Receiver: the single identifier token before the '.' / '->'.
    std::size_t cp = PrevNonSpacePos(text, pos);
    if (cp != std::string::npos && text[cp] == '>') --cp;  // '->'
    std::size_t re = cp;  // points at '.' or '-'
    while (re > 0 && std::isspace(static_cast<unsigned char>(text[re - 1]))) {
      --re;
    }
    std::size_t rb = re;
    while (rb > 0 && IsIdentChar(text[rb - 1])) --rb;
    const std::string recv(text.substr(rb, re - rb));
    const std::string m(tok);
    if (auto it = prod.owner_methods.find(m); it != prod.owner_methods.end()) {
      d.owner = recv;
      d.vt = it->second;
    } else if (auto it2 = prod.view_methods.find(m);
               it2 != prod.view_methods.end()) {
      for (const ViewLocal& l : locals) {
        if (l.name == recv) {
          d.owner = l.owner;
          break;
        }
      }
      d.vt = it2->second;
    }
  });
  if (d.vt == nullptr && !first_tok.empty()) {
    for (const ViewLocal& l : locals) {
      if (l.name == first_tok) {
        d.owner = l.owner;
        d.vt = l.vt;
        break;
      }
    }
  }
  return d;
}

// Collects explicitly-typed view declarations (`TensorView v = ...;`,
// references allowed, pointers skipped) and `auto v = <producer call>` in
// source order, so later initializers can alias earlier locals.
std::vector<ViewLocal> CollectViewLocals(
    const Func& f, const std::string& code,
    const std::vector<std::pair<std::size_t, std::size_t>>& segs,
    const std::vector<VT>& vts, const Producers& prod) {
  std::vector<ViewLocal> out;
  auto initializer_end = [&](std::size_t from) {
    int depth = 0;
    for (std::size_t k = from; k < code.size(); ++k) {
      const char c = code[k];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (depth == 0) return k;  // range-for close paren
        --depth;
      }
      if (c == ';' && depth == 0) return k;
    }
    return code.size();
  };
  for (const auto& [sb, se] : segs) {
    ForEachToken(code, sb, se, [&](std::size_t pos, std::string_view tok) {
      const VT* vt = ByViewTok(vts, tok);
      const bool is_auto = tok == "auto";
      if (vt == nullptr && !is_auto) return;
      const char prev = PrevNonSpace(code, pos);
      if (prev == '<' || prev == ',') return;  // template argument position
      std::size_t q = pos + tok.size();
      while (q < se && std::isspace(static_cast<unsigned char>(code[q]))) ++q;
      while (q < se && code[q] == '&') {
        ++q;
        while (q < se && std::isspace(static_cast<unsigned char>(code[q]))) {
          ++q;
        }
      }
      if (q >= se || code[q] == '*' || !IsIdentChar(code[q]) ||
          std::isdigit(static_cast<unsigned char>(code[q]))) {
        return;
      }
      std::size_t ne = q;
      while (ne < se && IsIdentChar(code[ne])) ++ne;
      const std::string name = code.substr(q, ne - q);
      std::size_t k = ne;
      while (k < se && std::isspace(static_cast<unsigned char>(code[k]))) ++k;
      if (k >= se) return;
      std::size_t ib = 0, ie = 0;
      if (code[k] == '=' && k + 1 < se && code[k + 1] != '=') {
        ib = k + 1;
        ie = initializer_end(ib);
      } else if (code[k] == '(' || code[k] == '{') {
        ib = k + 1;
        ie = CloseDelim(code, k, se);
      } else if (code[k] == ':' && k + 1 < se && code[k + 1] != ':') {
        ib = k + 1;  // range-for
        ie = initializer_end(ib);
      } else if (code[k] == ';' && !is_auto) {
        out.push_back(ViewLocal{name, vt, "", q, LineOf(code, q)});
        return;
      } else {
        return;
      }
      const Derived d = DeriveOwner(code, ib, ie, prod, out);
      if (is_auto) {
        if (d.vt == nullptr) return;  // auto that isn't a view
        vt = d.vt;
      }
      out.push_back(ViewLocal{name, vt, d.owner, q, LineOf(code, q)});
    });
  }
  return out;
}

std::string FuncLabel(const Func& f) {
  return f.qual.empty() ? (f.is_lambda ? "<lambda>" : f.name) : f.qual;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 4: view-escape
// ---------------------------------------------------------------------------

void RunViewEscape(const Program& prog, const Config& cfg,
                   std::vector<Finding>* out, std::string* dot_out) {
  const std::vector<VT> vts = MakeViewTypes(cfg);
  if (dot_out != nullptr) {
    std::ostringstream dot;
    dot << "digraph metrolint_views {\n  rankdir=LR;\n"
        << "  node [fontname=\"Helvetica\", fontsize=11];\n";
    for (const VT& vt : vts) {
      dot << "  \"" << vt.view_qual << "\" [shape=box];\n"
          << "  \"" << vt.owner_qual << "\" [shape=ellipse, style=filled, "
          << "fillcolor=\"#e8f0fe\"];\n"
          << "  \"" << vt.view_qual << "\" -> \"" << vt.owner_qual
          << "\" [label=\"borrows\"];\n";
    }
    for (const auto& [qual, desc] : cfg.invalidates) {
      const std::string cls = LastComp(
          qual.substr(0, qual.rfind("::") == std::string::npos
                             ? 0
                             : qual.rfind("::")));
      dot << "  \"" << qual << "\" [shape=octagon, color=red];\n";
      for (const VT& vt : vts) {
        if (vt.owner_tok == cls) {
          dot << "  \"" << vt.owner_qual << "\" -> \"" << qual
              << "\" [label=\"invalidated by\", color=red];\n";
          break;
        }
      }
    }
    for (const std::string& s : cfg.view_sinks) {
      dot << "  \"sink: " << s << "\" [shape=diamond, color=gray];\n";
    }
    dot << "}\n";
    *dot_out = dot.str();
  }
  if (vts.empty()) return;
  const Producers prod = MakeProducers(prog, vts);

  // (a) view types stored into class members / statics / globals. The raw
  // FieldDecl statements cover both (`TensorView view_;` in a class,
  // `inline TensorView g;` at namespace scope); constexpr statements are
  // compile-time constants (string_view literals) and are skipped.
  for (const FieldDecl& fd : prog.field_decls) {
    if (!ReportableV3(fd.file)) continue;
    const std::string& t = fd.text;
    if (HasTok(t, "constexpr")) continue;
    for (const VT& vt : vts) {
      if (!HasTok(t, vt.view_tok)) continue;
      // Field name: last identifier token before the first top-level
      // initializer ('=' or '{'), depth-tracked so template args and array
      // bounds don't confuse it.
      std::string field;
      int depth = 0;
      for (std::size_t k = 0; k < t.size(); ++k) {
        const char c = t[k];
        if (c == '<' || c == '(' || c == '[') ++depth;
        if (c == '>' || c == ')' || c == ']') --depth;
        if (depth == 0 && (c == '=' || c == '{')) break;
        if (IsIdentChar(c) && (k == 0 || !IsIdentChar(t[k - 1]))) {
          std::size_t j = k;
          while (j < t.size() && IsIdentChar(t[j])) ++j;
          field = t.substr(k, j - k);
          k = j - 1;
        }
      }
      if (field.empty() || field == vt.view_tok) break;  // fwd decl etc.
      const std::string key =
          fd.cls.empty() ? fd.file + ":" + field : fd.cls + "::" + field;
      if (cfg.view_exceptions.count(key) != 0 ||
          (!fd.cls.empty() && cfg.view_exceptions.count(fd.cls + "::*") != 0)) {
        break;
      }
      Report(out, fd.file, fd.line, "view-escape",
             "borrowed view type '" + vt.view_qual + "' stored in " +
                 (fd.cls.empty() ? "file-scope variable '" : "member '") +
                 key + "' — a " + vt.view_tok +
                 " must not outlive its owner " + vt.owner_qual +
                 "; own the storage (or a refcounted pin) instead, or add a "
                 "justified [view_exceptions] entry");
      break;
    }
  }

  // (b) + (c) need per-function view locals.
  for (const Func& f : prog.funcs) {
    if (f.is_lambda || !ReportableV3(f.file) || f.body_end <= f.body_begin) {
      continue;
    }
    const auto cit = prog.code.find(f.file);
    if (cit == prog.code.end()) continue;
    const std::string& code = cit->second;
    const auto segs = SegsOf(f);
    const std::vector<ViewLocal> locals =
        CollectViewLocals(f, code, segs, vts, prod);

    // (b) returning a view over a local owner. Parameters are not locals —
    // `TensorView Cut(Workspace& ws) { return ws.AllocView(n); }` is the
    // blessed shape; `Workspace ws; ... return ws.AllocView(n);` dangles.
    const VT* rvt = nullptr;
    for (const VT& vt : vts) {
      if (HasTok(f.ret, vt.view_tok)) {
        rvt = &vt;
        break;
      }
    }
    if (rvt != nullptr && cfg.view_exceptions.count(f.qual) == 0) {
      std::set<std::string> owner_locals;
      for (const auto& [sb, se] : segs) {
        ForEachToken(code, sb, se, [&](std::size_t pos, std::string_view tk) {
          bool is_owner = false;
          for (const VT& vt : vts) {
            is_owner = is_owner || vt.owner_tok == tk;
          }
          if (!is_owner) return;
          std::size_t q = pos + tk.size();
          while (q < se && std::isspace(static_cast<unsigned char>(code[q]))) {
            ++q;
          }
          if (q >= se || code[q] == '&' || code[q] == '*' ||
              !IsIdentChar(code[q])) {
            return;  // reference / pointer binding: not frame-owned
          }
          std::size_t ne = q;
          while (ne < se && IsIdentChar(code[ne])) ++ne;
          const char after = NextNonSpace(code, ne);
          if (after == ';' || after == '(' || after == '{' || after == '=') {
            owner_locals.insert(code.substr(q, ne - q));
          }
        });
      }
      if (!owner_locals.empty()) {
        for (const auto& [sb, se] : segs) {
          ForEachToken(code, sb, se, [&](std::size_t pos,
                                         std::string_view tk) {
            if (tk != "return") return;
            std::size_t q = pos + tk.size();
            while (q < se &&
                   (std::isspace(static_cast<unsigned char>(code[q])) ||
                    code[q] == '(' || code[q] == '*' || code[q] == '&')) {
              ++q;
            }
            if (q >= se || !IsIdentChar(code[q])) return;
            std::size_t ne = q;
            while (ne < se && IsIdentChar(code[ne])) ++ne;
            const std::string root = code.substr(q, ne - q);
            std::string via;
            if (owner_locals.count(root) != 0) {
              const char nx = NextNonSpace(code, ne);
              if (nx == '.' || nx == '-') via = root;  // ws.AllocView(...)
            } else {
              for (const ViewLocal& l : locals) {
                if (l.name == root && owner_locals.count(l.owner) != 0) {
                  via = l.owner;
                  break;
                }
              }
            }
            if (via.empty()) return;
            Report(out, f.file, LineOf(code, pos), "view-escape",
                   "in '" + FuncLabel(f) + "': returns a " + rvt->view_qual +
                       " derived from local owner '" + via +
                       "' — the owner dies with this frame and the view "
                       "dangles; return owning storage or take the owner as "
                       "a parameter (or add a [view_exceptions] entry "
                       "keyed '" + f.qual + "')");
          });
        }
      }
    }

    // (c) view locals captured by lambdas handed to escape sinks.
    if (locals.empty() || f.lambda_bodies.empty()) continue;
    for (const std::string& sink : cfg.view_sinks) {
      for (const auto& [sb, se] : segs) {
        std::size_t p = code.find(sink, sb);
        while (p != std::string::npos && p < se) {
          const std::size_t hit = p;
          p = code.find(sink, p + 1);
          if (!IsWholeToken(code, hit, sink.size())) continue;
          // Call form `Submit(...)` or declarator form `thread t(...)`.
          std::size_t open = hit + sink.size();
          while (open < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[open]))) {
            ++open;
          }
          if (open < code.size() && IsIdentChar(code[open])) {
            while (open < code.size() && IsIdentChar(code[open])) ++open;
            while (open < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[open]))) {
              ++open;
            }
          }
          if (open >= code.size() ||
              (code[open] != '(' && code[open] != '{')) {
            continue;
          }
          const std::size_t close = CloseDelim(code, open, f.body_end);
          bool has_lambda = false;
          for (const auto& [cb, ce] : f.lambda_bodies) {
            has_lambda = has_lambda || (cb >= open && ce <= close + 1);
          }
          if (!has_lambda) continue;
          if (cfg.view_exceptions.count(f.qual + " -> " + sink) != 0 ||
              cfg.view_exceptions.count(f.qual) != 0) {
            continue;
          }
          for (const ViewLocal& v : locals) {
            if (v.name_pos >= hit) continue;
            std::size_t vp = code.find(v.name, open);
            bool used = false;
            while (vp != std::string::npos && vp < close) {
              if (IsWholeToken(code, vp, v.name.size())) {
                used = true;
                break;
              }
              vp = code.find(v.name, vp + 1);
            }
            if (!used) continue;
            Report(out, f.file, LineOf(code, hit), "view-escape",
                   "in '" + FuncLabel(f) + "': view '" + v.name + "' (" +
                       v.vt->view_qual +
                       ") is captured by a lambda handed to '" + sink +
                       "' — the task can outlive both the view and its "
                       "owner " + v.vt->owner_qual +
                       "; pass owning storage into the task or add a "
                       "[view_exceptions] entry keyed '" + f.qual + " -> " +
                       sink + "'");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 5: invalidation
// ---------------------------------------------------------------------------

namespace {

struct DirectInv {
  std::string cls_tok;  // "Workspace"
  std::string qual;     // "Workspace::Rewind"
  std::string desc;     // config justification text
};

struct InvEvent {
  std::size_t pos = 0;
  int line = 0;
  std::set<std::string> owner_toks;  // candidate owner tokens at this site
  std::string cls_tok;               // owner class this event invalidates
  std::string desc;
};

}  // namespace

void RunInvalidation(const Program& prog, const Config& cfg,
                     std::vector<Finding>* out) {
  if (cfg.invalidates.empty() || cfg.views.empty()) return;
  const std::vector<VT> vts = MakeViewTypes(cfg);
  const Producers prod = MakeProducers(prog, vts);

  std::map<std::string, std::vector<DirectInv>> direct;
  for (const auto& [qual, desc] : cfg.invalidates) {
    const std::size_t p = qual.rfind("::");
    if (p == std::string::npos) continue;
    direct[qual.substr(p + 2)].push_back(
        DirectInv{LastComp(qual.substr(0, p)), qual, desc});
  }

  // Transitive closure: inv[i][cls] = callee index through which function i
  // invalidates owners of class `cls` (-1: i *is* a declared invalidator).
  const int n = int(prog.funcs.size());
  std::vector<std::map<std::string, int>> inv;
  inv.resize(std::size_t(n));
  for (const auto& [qual, desc] : cfg.invalidates) {
    const auto it = prog.by_qual.find(qual);
    if (it == prog.by_qual.end()) continue;
    const std::size_t p = qual.rfind("::");
    const std::string cls = LastComp(qual.substr(0, p));
    for (const int i : it->second) inv[std::size_t(i)][cls] = -1;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      const Func& f = prog.funcs[std::size_t(i)];
      for (const auto& targets : f.resolved) {
        for (const int j : targets) {
          for (const auto& [cls, via] : inv[std::size_t(j)]) {
            if (i != j && inv[std::size_t(i)].count(cls) == 0) {
              inv[std::size_t(i)][cls] = j;
              changed = true;
            }
          }
        }
      }
    }
  }
  auto path_to_inv = [&](int j, const std::string& cls) {
    std::string path;
    int guard = 0;
    while (j >= 0 && guard++ < 32) {
      const Func& g = prog.funcs[std::size_t(j)];
      if (!path.empty()) path += " -> ";
      path += FuncLabel(g) + " (" + g.file + ":" + std::to_string(g.line) +
              ")";
      const auto it = inv[std::size_t(j)].find(cls);
      if (it == inv[std::size_t(j)].end() || it->second == -1) break;
      j = it->second;
    }
    return path;
  };

  for (const Func& f : prog.funcs) {
    if (!ReportableV3(f.file) || f.body_end <= f.body_begin) continue;
    const auto cit = prog.code.find(f.file);
    if (cit == prog.code.end()) continue;
    const std::string& code = cit->second;
    const auto segs = SegsOf(f);
    const std::vector<ViewLocal> locals =
        CollectViewLocals(f, code, segs, vts, prod);
    if (locals.empty()) continue;

    // Invalidation events in this body, in source order.
    std::vector<InvEvent> events;
    for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
      const CallSite& cs = f.calls[ci];
      const std::string mname = LastComp(cs.name);
      if (const auto it = direct.find(mname);
          it != direct.end() && !cs.receiver.empty() &&
          cs.receiver != "this") {
        for (const DirectInv& d : it->second) {
          events.push_back(InvEvent{cs.pos, cs.line, {cs.receiver}, d.cls_tok,
                                    cs.receiver + "." + mname + "() [" +
                                        d.desc + "]"});
        }
      }
      if (ci >= f.resolved.size()) continue;
      for (const int j : f.resolved[ci]) {
        for (const auto& [cls, via] : inv[std::size_t(j)]) {
          if (via == -1) continue;  // direct branch above covers these
          std::set<std::string> owners;
          if (!cs.receiver.empty()) owners.insert(cs.receiver);
          std::size_t open = cs.pos;
          while (open < code.size() && IsIdentChar(code[open])) ++open;
          while (open < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[open]))) {
            ++open;
          }
          if (open < code.size() && code[open] == '(') {
            const std::size_t close = CloseDelim(code, open, code.size());
            ForEachToken(code, open + 1, close,
                         [&](std::size_t, std::string_view tk) {
                           if (!std::isdigit(
                                   static_cast<unsigned char>(tk[0]))) {
                             owners.insert(std::string(tk));
                           }
                         });
          }
          if (owners.empty()) continue;
          events.push_back(InvEvent{
              cs.pos, cs.line, std::move(owners), cls,
              "call path " + path_to_inv(j, cls) +
                  " (reaches a declared invalidator of " + cls + ")"});
        }
      }
    }
    if (events.empty()) continue;
    std::sort(events.begin(), events.end(),
              [](const InvEvent& a, const InvEvent& b) { return a.pos < b.pos; });

    for (const ViewLocal& v : locals) {
      if (v.owner.empty()) continue;
      if (cfg.invalidation_exceptions.count(f.qual + " -> " + v.name) != 0) {
        continue;
      }
      // Timeline: occurrences of v (uses / reassignments) merged with the
      // invalidation events, walked in source order.
      struct Entry {
        std::size_t pos;
        int kind;  // 0 event, 1 reassign, 2 use
        int line;
        const InvEvent* ev;
        std::string new_owner;
      };
      std::vector<Entry> tl;
      for (const InvEvent& ev : events) {
        if (ev.pos > v.name_pos) {
          tl.push_back(Entry{ev.pos, 0, ev.line, &ev, ""});
        }
      }
      for (const auto& [sb, se] : segs) {
        std::size_t p = code.find(v.name, std::max(sb, v.name_pos + 1));
        while (p != std::string::npos && p < se) {
          const std::size_t hit = p;
          p = code.find(v.name, p + 1);
          if (!IsWholeToken(code, hit, v.name.size())) continue;
          std::size_t a = hit + v.name.size();
          while (a < se && std::isspace(static_cast<unsigned char>(code[a]))) {
            ++a;
          }
          if (a < se && code[a] == '=' && (a + 1 >= se || code[a + 1] != '=')) {
            const std::size_t ie = code.find(';', a);
            const Derived d = DeriveOwner(
                code, a + 1, ie == std::string::npos ? se : ie, prod, locals);
            tl.push_back(Entry{hit, 1, LineOf(code, hit), nullptr, d.owner});
          } else {
            tl.push_back(Entry{hit, 2, LineOf(code, hit), nullptr, ""});
          }
        }
      }
      std::sort(tl.begin(), tl.end(),
                [](const Entry& a, const Entry& b) { return a.pos < b.pos; });
      std::string cur_owner = v.owner;
      const InvEvent* pending = nullptr;
      for (const Entry& en : tl) {
        if (en.kind == 1) {
          cur_owner = en.new_owner;
          pending = nullptr;
        } else if (en.kind == 0) {
          if (!cur_owner.empty() && en.ev->cls_tok == v.vt->owner_tok &&
              en.ev->owner_toks.count(cur_owner) != 0) {
            pending = en.ev;
          }
        } else if (pending != nullptr) {
          Report(out, f.file, en.line, "invalidation",
                 "in '" + FuncLabel(f) + "': view '" + v.name + "' (" +
                     v.vt->view_qual + " over owner '" + cur_owner +
                     "', created at line " + std::to_string(v.line) +
                     ") is used after " + pending->desc + " at line " +
                     std::to_string(pending->line) +
                     " invalidated its storage — re-derive the view after "
                     "the invalidating call, or add a justified "
                     "[invalidation_exceptions] entry keyed '" + f.qual +
                     " -> " + v.name + "'");
          break;  // one finding per view
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 6: unchecked-status
// ---------------------------------------------------------------------------

namespace {

bool RetIsStatus(const std::string& ret) {
  return HasTok(ret, "Status") || HasTok(ret, "Result");
}

}  // namespace

void RunUncheckedStatus(const Program& prog, const Config& cfg,
                        std::vector<Finding>* out) {
  for (const Func& f : prog.funcs) {
    if (!ReportableV3(f.file) || f.body_end <= f.body_begin) continue;
    const auto cit = prog.code.find(f.file);
    if (cit == prog.code.end()) continue;
    const std::string& code = cit->second;
    for (std::size_t ci = 0; ci < f.calls.size() && ci < f.resolved.size();
         ++ci) {
      const CallSite& cs = f.calls[ci];
      const std::vector<int>& targets = f.resolved[ci];
      if (targets.empty()) continue;
      bool all_status = true;
      for (const int j : targets) {
        all_status = all_status && RetIsStatus(prog.funcs[std::size_t(j)].ret);
      }
      if (!all_status) continue;

      // The full statement must be `<chain>(args);` with nothing consuming
      // the value: find the call's closing paren, demand ';' right after,
      // then walk the receiver chain back to the statement start.
      std::size_t te = cs.pos;
      while (te < code.size() && IsIdentChar(code[te])) ++te;
      std::size_t op = te;
      while (op < code.size() &&
             std::isspace(static_cast<unsigned char>(code[op]))) {
        ++op;
      }
      if (op >= code.size() || code[op] != '(') continue;
      const std::size_t cp = CloseDelim(code, op, code.size());
      if (cp >= code.size() || NextNonSpace(code, cp + 1) != ';') continue;

      std::size_t r = cs.pos;
      bool gave_up = false;
      for (;;) {
        std::size_t s = r;
        while (s > 0 && std::isspace(static_cast<unsigned char>(code[s - 1]))) {
          --s;
        }
        std::size_t conn = 0;
        if (s >= 2 && code[s - 1] == ':' && code[s - 2] == ':') {
          conn = 2;
        } else if (s >= 1 && code[s - 1] == '.') {
          conn = 1;
        } else if (s >= 2 && code[s - 1] == '>' && code[s - 2] == '-') {
          conn = 2;
        } else {
          r = s;
          break;
        }
        std::size_t b = s - conn;
        while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1]))) {
          --b;
        }
        std::size_t ib = b;
        while (ib > 0 && IsIdentChar(code[ib - 1])) --ib;
        if (ib == b) {
          gave_up = true;  // `(*p)->Foo()` and friends: treat as consumed
          break;
        }
        r = ib;
      }
      if (gave_up) continue;

      const std::size_t pp = PrevNonSpacePos(code, r);
      bool voidcast = false;
      if (pp != std::string::npos && code[pp] == ')') {
        // Walk back to the matching '(' and accept only a `(void)` cast.
        int depth = 0;
        std::size_t open = pp;
        bool found = false;
        for (std::size_t k = pp + 1; k-- > 0;) {
          if (code[k] == ')') ++depth;
          if (code[k] == '(' && --depth == 0) {
            open = k;
            found = true;
            break;
          }
        }
        if (!found || Trim(code.substr(open + 1, pp - open - 1)) != "void") {
          continue;  // parenthesized receiver or other consumer
        }
        voidcast = true;
      } else if (pp != std::string::npos && code[pp] != ';' &&
                 code[pp] != '{' && code[pp] != '}') {
        continue;  // assigned, returned, compared, macro-wrapped: consumed
      }

      const Func& g = prog.funcs[std::size_t(targets[0])];
      if (voidcast) {
        bool excepted = false;
        for (const int j : targets) {
          const Func& gj = prog.funcs[std::size_t(j)];
          excepted = excepted ||
                     cfg.status_exceptions.count(f.qual + " -> " + gj.qual) ||
                     cfg.status_exceptions.count(f.file + " -> " + gj.qual) ||
                     cfg.status_exceptions.count(f.file + " -> *") ||
                     cfg.status_exceptions.count("* -> " + gj.qual);
        }
        if (excepted) continue;
        Report(out, f.file, cs.line, "unchecked-status",
               "in '" + FuncLabel(f) + "': (void)-cast discards the " +
                   "Status/Result of '" + g.qual +
                   "' without a [status_exceptions] entry — handle the "
                   "error or add a justified exception keyed '" + f.qual +
                   " -> " + g.qual + "'");
      } else {
        Report(out, f.file, cs.line, "unchecked-status",
               "in '" + FuncLabel(f) + "': the Status/Result returned by '" +
                   g.qual +
                   "' is silently discarded — check it "
                   "(METRO_RETURN_IF_ERROR / .ok()) or (void)-cast it with "
                   "a justified [status_exceptions] entry");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// v3 selftest fixtures
// ---------------------------------------------------------------------------

namespace {

struct V3Case {
  const char* name;
  std::vector<std::pair<std::string, std::string>> files;
  std::string config;
  // (substring, min occurrences) that must appear in the findings dump.
  std::vector<std::pair<std::string, int>> expects;
  std::vector<std::string> absent;
};

const char* const kViewCfg = R"(
[views]
"tensor::TensorView" = "tensor::Workspace"
sinks = ["Submit", "thread"]

[invalidates]
"Workspace::Rewind" = "releases arena storage past the mark"
)";

const char* const kFixturePrelude = R"(
namespace tensor {
class TensorView {
 public:
  const float* data() const { return nullptr; }
};
class Workspace {
 public:
  TensorView AllocView(unsigned long n) { (void)n; return TensorView(); }
  void Rewind(unsigned long mark) { (void)mark; }
};
}
)";

int RunV3Cases() {
  const V3Case cases[] = {
      {"escape-member-store",
       {{"src/fx/member.cpp", std::string(kFixturePrelude) + R"(
struct Holder {
  tensor::TensorView view_;
  std::vector<tensor::TensorView> all_;
};
struct Plan {
  tensor::TensorView cached_;
};
inline tensor::TensorView g_last;
)"}},
       std::string(kViewCfg) + R"(
[view_exceptions]
"Plan::cached_" = "plan owns the backing workspace for its whole lifetime"
)",
       {{"Holder::view_", 1}, {"Holder::all_", 1}, {"g_last", 1},
        {"view-escape", 3}},
       {"Plan::cached_"}},

      {"escape-threadpool-lambda",
       {{"src/fx/spawn.cpp", std::string(kFixturePrelude) + R"(
struct ThreadPool {
  template <typename F>
  int Submit(F f) { f(); return 0; }
};
void Spawn(ThreadPool* pool, tensor::Workspace& ws) {
  tensor::TensorView v = ws.AllocView(4);
  pool->Submit([&] { v.data(); });
}
void SpawnOk(ThreadPool* pool, tensor::Workspace& ws) {
  tensor::TensorView v = ws.AllocView(4);
  v.data();
  pool->Submit([] { return 1; });
}
)"}},
       kViewCfg,
       {{"'Spawn'", 1}, {"captured by a lambda handed to 'Submit'", 1}},
       {"'SpawnOk'"}},

      {"escape-return-local-owner",
       {{"src/fx/ret.cpp", std::string(kFixturePrelude) + R"(
tensor::TensorView Make() {
  tensor::Workspace ws;
  tensor::TensorView v = ws.AllocView(8);
  return v;
}
tensor::TensorView MakeDirect() {
  tensor::Workspace ws;
  return ws.AllocView(8);
}
tensor::TensorView Ok(tensor::Workspace& ws) {
  return ws.AllocView(8);
}
)"}},
       kViewCfg,
       {{"'Make'", 1}, {"'MakeDirect'", 1}, {"local owner 'ws'", 2}},
       {"'Ok'"}},

      {"use-after-rewind",
       {{"src/fx/rewind.cpp", std::string(kFixturePrelude) + R"(
void Bad(tensor::Workspace& ws) {
  tensor::TensorView v = ws.AllocView(4);
  ws.Rewind(0);
  v.data();
}
void OkReassign(tensor::Workspace& ws) {
  tensor::TensorView v = ws.AllocView(4);
  ws.Rewind(0);
  v = ws.AllocView(4);
  v.data();
}
void OkOther(tensor::Workspace& ws, tensor::Workspace& other) {
  tensor::TensorView v = ws.AllocView(4);
  other.Rewind(0);
  v.data();
}
)"}},
       kViewCfg,
       {{"'Bad'", 1}, {"ws.Rewind()", 1}, {"invalidation", 1}},
       {"'OkReassign'", "'OkOther'"}},

      {"interprocedural-invalidation",
       {{"src/fx/interproc.cpp", std::string(kFixturePrelude) + R"(
void Churn(tensor::Workspace& ws) { ws.Rewind(0); }
void Bad2(tensor::Workspace& ws) {
  tensor::TensorView v = ws.AllocView(4);
  Churn(ws);
  v.data();
}
void Ok2(tensor::Workspace& ws) {
  Churn(ws);
  tensor::TensorView v = ws.AllocView(4);
  v.data();
}
)"}},
       kViewCfg,
       {{"'Bad2'", 1}, {"Churn", 1}, {"declared invalidator", 1}},
       {"'Ok2'"}},

      {"unchecked-status",
       {{"src/fx/status.cpp", R"(
namespace util {
class Status {
 public:
  bool ok() const { return true; }
};
}
class Engine {
 public:
  util::Status Flush() { return util::Status(); }
  util::Status BestEffort() { return util::Status(); }
};
void Drive(Engine& e) {
  e.Flush();
  (void)e.Flush();
  (void)e.BestEffort();
  util::Status s = e.Flush();
  if (!s.ok()) { return; }
}
)"},
        },
       R"(
[status_exceptions]
"* -> Engine::BestEffort" = "best-effort background flush; failure retried"
)",
       {{"silently discarded", 1}, {"(void)-cast discards", 1}},
       {"BestEffort"}},
  };

  int failures = 0;
  for (const V3Case& c : cases) {
    Config cfg;
    std::string err;
    if (!ParseConfig(c.config, &cfg, &err)) {
      std::fprintf(stderr, "FAIL %s: config parse error: %s\n", c.name,
                   err.c_str());
      ++failures;
      continue;
    }
    std::vector<SourceFile> files;
    for (const auto& [rel, text] : c.files) {
      files.push_back(SourceFile{rel, text});
    }
    const Program prog = BuildProgram(files, cfg);
    std::vector<Finding> findings;
    RunViewEscape(prog, cfg, &findings, nullptr);
    RunInvalidation(prog, cfg, &findings);
    RunUncheckedStatus(prog, cfg, &findings);
    std::string dump;
    for (const Finding& fi : findings) {
      dump += fi.file + ":" + std::to_string(fi.line) + " [" + fi.rule +
              "] " + fi.message + "\n";
    }
    bool ok = true;
    for (const auto& [needle, min_count] : c.expects) {
      int count = 0;
      std::size_t p = dump.find(needle);
      while (p != std::string::npos) {
        ++count;
        p = dump.find(needle, p + 1);
      }
      if (count < min_count) {
        std::fprintf(stderr,
                     "FAIL %s: expected >=%d x \"%s\", got %d\n---\n%s---\n",
                     c.name, min_count, needle.c_str(), count, dump.c_str());
        ok = false;
      }
    }
    for (const std::string& needle : c.absent) {
      if (dump.find(needle) != std::string::npos) {
        std::fprintf(stderr, "FAIL %s: unexpected \"%s\"\n---\n%s---\n",
                     c.name, needle.c_str(), dump.c_str());
        ok = false;
      }
    }
    if (!ok) ++failures;
  }
  return failures;
}

}  // namespace

int RunSelftestV3() {
  const int failures = RunV3Cases();
  if (failures == 0) {
    std::fprintf(stderr, "metrolint: v3 selftest OK (6 fixtures)\n");
  }
  return failures;
}

}  // namespace metrolint
