#pragma once

// metrolint v2: the whole-program model and passes.
//
// v1's rules are per-line and per-file; the three v2 passes need to see the
// tree at once. BuildProgram() runs a scope-tracking lexical scan over every
// source file and produces:
//
//   - every function definition (enclosing class resolved, METRO_NOALLOC /
//     METRO_REQUIRES annotations captured, lambdas split out as anonymous
//     leaf functions so async bodies are not attributed to their spawner),
//   - per-function event streams: lock acquisitions (`MutexLock l(mu_)`,
//     with early Unlock()/re-Lock() regions), calls, allocation sites, and
//     raw blocking tokens,
//   - a name-indexed call graph filtered by the #include reachability
//     closure (a call resolves only to definitions the caller's translation
//     unit could actually see),
//   - every `Mutex field{lockrank::kX, "name"}` declaration plus the
//     constants in src/util/lock_ranks.h, so the declared runtime ranks are
//     cross-checked against metrolint.toml.
//
// Lock identity is "Class::field" for member mutexes ("Dataset::mu" for a
// pointee field reached via ->), "file:expr" for free-function/file-local
// locks ("src/util/logging.cpp:OutputMutex()", "src/graph/pregel.h:
// outbox_mu[]" with indices normalized away).
//
// The passes (see RunLockOrder / RunNoallocInterproc /
// RunBlockingWhileLocked) are documented in DESIGN.md "metrolint v2
// whole-program passes". They report findings only for src/ and examples/
// anchors; bench/ and tests/ functions still participate in the model (a
// test calling into src/ contributes real edges) but their own ad-hoc locks
// are not ranked and not reported on.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common.h"

namespace metrolint {

struct SourceFile {
  std::string rel;   // repo-relative path, forward slashes
  std::string text;  // raw contents
};

// One lock-acquisition site and the regions over which it is held.
struct LockSite {
  std::string lock_id;  // resolved identity (see header comment)
  int line = 0;
  std::vector<std::pair<std::size_t, std::size_t>> regions;  // [begin,end)
};

struct CallSite {
  std::string name;      // callee token, possibly "A::b" qualified
  std::string receiver;  // explicit receiver token ("" = plain / implicit)
  int line = 0;
  std::size_t pos = 0;
};

struct AllocSite {
  std::string what;
  int line = 0;
};

// A raw blocking token ([blocking] functions) or a CondVar-style
// `x.Wait(mu)` (wait_arg_lock carries the resolved mutex identity).
struct BlockSite {
  std::string token;
  std::string wait_arg_lock;  // non-empty only for Wait(mu) sites
  int line = 0;
  std::size_t pos = 0;
};

// A ranked Mutex field declaration: `Mutex mu_{lockrank::kX, "name"};`.
struct MutexFieldDecl {
  std::string id;          // "Class::field"
  std::string rank_const;  // "kX" ("" when declared without an initializer)
  std::string name;        // the declared lock-name literal ("" if none)
  std::string file;
  int line = 0;
};

// Any class- or namespace-scope declaration statement without a parameter
// list (fields, statics, globals). The v3 view-escape pass filters these by
// declared view-type tokens; the raw statement text keeps the pass lexical.
struct FieldDecl {
  std::string cls;   // enclosing class chain ("" at namespace/global scope)
  std::string text;  // trimmed statement text (literals stripped)
  std::string file;
  int line = 0;
};

struct Func {
  std::string file;
  std::string cls;   // enclosing class ("" for free functions)
  std::string name;  // unqualified
  std::string qual;  // cls.empty() ? name : cls + "::" + name
  std::string ret;   // head text before the (qualified) name: the return type
  int line = 0;
  bool noalloc = false;
  bool is_lambda = false;
  std::size_t body_begin = 0;  // byte offsets into Program::code[file]
  std::size_t body_end = 0;
  // Nested lambda bodies (excluded from this body's own event stream).
  std::vector<std::pair<std::size_t, std::size_t>> lambda_bodies;
  std::vector<std::string> requires_locks;  // held on entry (METRO_REQUIRES)
  std::vector<LockSite> acquires;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::vector<BlockSite> blocking;
  std::vector<std::vector<int>> resolved;  // per CallSite: callee func idxs
};

struct Program {
  std::vector<Func> funcs;
  std::map<std::string, std::vector<int>> by_name;  // unqualified name -> idx
  std::map<std::string, std::vector<int>> by_qual;  // "Class::name" -> idx
  std::map<std::string, std::set<std::string>> reach;  // file -> visible files
  std::vector<MutexFieldDecl> mutex_decls;
  std::vector<FieldDecl> field_decls;
  std::map<std::string, int> rank_consts;  // lock_ranks.h: "kX" -> value
  // Preprocessed, literal-stripped text per file (Func offsets index into
  // this); kept so the v3 passes can re-scan statement context.
  std::map<std::string, std::string> code;
};

// Builds the model and resolves the call graph. Deterministic: files must
// arrive sorted by rel path.
Program BuildProgram(const std::vector<SourceFile>& files, const Config& cfg);

// Pass 1: lock-order / deadlock analysis. Derives the global
// acquired-while-holding graph, checks every edge against the declared
// partial order ([locks] ranks), reports cycles with full witness chains,
// demands a rank for every lock acquired under src/, and cross-checks the
// in-code lockrank:: constants against the config. When `dot_out` is
// non-null it receives the lock graph in Graphviz DOT form.
void RunLockOrder(const Program& prog, const Config& cfg,
                  std::vector<Finding>* out, std::string* dot_out);

// Pass 2: interprocedural METRO_NOALLOC. Flags an annotated function whose
// un-annotated (and un-excepted) transitive callees allocate, with the call
// path to the offending site.
void RunNoallocInterproc(const Program& prog, const Config& cfg,
                         std::vector<Finding>* out);

// Pass 3: blocking-while-locked. Flags configured blocking calls (bare
// tokens, qualified entry points, and transitive paths to them) plus
// CondVar waits on a *different* mutex, made while any lock is held.
void RunBlockingWhileLocked(const Program& prog, const Config& cfg,
                            std::vector<Finding>* out);

// Seeded-violation fixtures for the three v2 passes (multi-file programs
// with an embedded config). Returns the number of failures.
int RunSelftestV2();

// --- v3 passes (views.cpp) -------------------------------------------------
//
// The three view/status passes run over the same Program model. [views] in
// metrolint.toml declares borrowed-view -> owner type pairs, [invalidates]
// declares the owner methods that free a view's storage, and
// [status_exceptions] whitelists (void)-cast Status discards. See DESIGN.md
// "View ownership & invalidation (metrolint v3)".

// Pass 4: view-escape. Flags declared view types stored into class members /
// statics / containers, views over a local owner returned out of the frame,
// and view locals captured by lambdas handed to [views] sinks
// (ThreadPool::Submit, std::thread, ...). When `dot_out` is non-null it
// receives the declared view-ownership graph in Graphviz DOT form.
void RunViewEscape(const Program& prog, const Config& cfg,
                   std::vector<Finding>* out, std::string* dot_out);

// Pass 5: invalidation. Reports a live view variable used after an
// [invalidates] method ran on its owner along the lexical path, propagated
// interprocedurally through callees known to invalidate the owner type.
void RunInvalidation(const Program& prog, const Config& cfg,
                     std::vector<Finding>* out);

// Pass 6: unchecked-status. Flags call sites resolving to util::Status /
// Result returners whose value is discarded; (void)-cast opt-outs must carry
// a [status_exceptions] entry.
void RunUncheckedStatus(const Program& prog, const Config& cfg,
                        std::vector<Finding>* out);

// Seeded fixtures for the v3 passes. Returns the number of failures.
int RunSelftestV3();

}  // namespace metrolint
