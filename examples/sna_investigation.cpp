// Social-network-analysis investigation demo (Sec. IV-B).
//
// Generates the criminal/gang network at the paper's published scale,
// stages a violent incident with planted "present" associates, and runs the
// multi-modal narrowing: second-degree associate expansion, geo-temporal
// tweet matching, and NLP incident-text filtering down to a short
// persons-of-interest list.
//
//   ./examples/sna_investigation

#include <cstdio>

#include "apps/sna_app.h"

using namespace metro;

int main() {
  apps::SnaApp::Config config;
  config.planted_present_associates = 4;
  apps::SnaApp app(config, 404);

  const auto stats = app.Stats(150);
  std::printf("criminal/gang network: %zu groups, %zu members, mean "
              "first-degree %.1f, mean second-degree field %.1f\n\n",
              stats.groups, stats.members, stats.mean_first_degree,
              stats.mean_second_degree_field);

  // A shooting at 9pm near Florida Blvd.
  const geo::LatLon scene{30.4480, -91.1540};
  const TimeNs when = TimeNs(21) * 3600 * kSecond;
  const auto seed = app.StageIncident(when, scene);
  std::printf("incident staged at (%.4f, %.4f); seed offender: %s "
              "(degree %zu)\n\n",
              scene.lat, scene.lon,
              app.network().graph.name(seed).c_str(),
              app.network().graph.Degree(seed));

  const auto result = app.Investigate(seed, when, scene);
  std::printf("investigation funnel:\n");
  std::printf("  1st-degree associates:            %zu\n",
              result.first_degree);
  std::printf("  2nd-degree field (1st + 2nd):     %zu  <- 'prohibitively "
              "large' (Sec. IV-B)\n",
              result.second_degree_field);
  std::printf("  tweeted inside space-time window: %zu\n",
              result.geo_time_matched);
  std::printf("  incident-flavored text (NLP):     %zu persons of interest\n",
              result.persons_of_interest);
  std::printf("  narrowing factor:                 %.1fx\n",
              result.narrowing_factor);
  std::printf("  planted-associate recall:         %.2f\n\n",
              result.plant_recall);

  std::printf("persons of interest:\n");
  for (const auto person : result.poi) {
    std::printf("  %s (group %d, degree %zu)\n",
                app.network().graph.name(person).c_str(),
                app.network().group_of[person],
                app.network().graph.Degree(person));
  }
  return 0;
}
