// Suspicious-behavior monitoring demo (Sec. IV-A2, Fig. 7).
//
// Trains the split ResNet+LSTM recognizer, then watches clips from several
// synthetic street cameras. Confident clips are classified on the "local
// device"; uncertain ones escalate to the analysis server. Recognized
// suspicious activity is indexed (time, location, type) and raised to the
// human operator, who reviews the queue at the end — the paper's deployment
// loop, end to end.
//
//   ./examples/behavior_watch [train_steps]

#include <cstdio>
#include <cstdlib>

#include "apps/behavior_app.h"
#include "datagen/city.h"

using namespace metro;

int main(int argc, char** argv) {
  const int train_steps = argc > 1 ? std::atoi(argv[1]) : 140;

  zoo::BehaviorConfig config;
  apps::BehaviorRecognitionApp app(config, 777);
  std::printf("training split behavior recognizer (%d steps)...\n",
              train_steps);
  app.Train(train_steps, 12);

  // A handful of cameras from the Fig. 2 network.
  datagen::CityDataGenerator city({}, 9);
  store::Collection incidents("behavior_incidents");
  core::AlertManager alerts;
  const float entropy_threshold = 1.0f;

  int escalated = 0;
  const int clips = 30;
  for (int i = 0; i < clips; ++i) {
    const auto& camera = city.cameras()[std::size_t(i) % 8];
    const auto clip = app.generator().Generate();
    const auto pred =
        app.Monitor(clip, camera.location, TimeNs(i) * 10 * kSecond,
                    entropy_threshold, incidents, alerts);
    if (pred.used_server) ++escalated;
    std::printf("cam %-3d (%s): %-12s entropy=%.2f %s%s\n", camera.id,
                camera.corridor.c_str(),
                std::string(datagen::BehaviorName(
                                datagen::BehaviorClass(pred.label)))
                    .c_str(),
                pred.entropy, pred.used_server ? "[escalated] " : "",
                apps::BehaviorRecognitionApp::IsSuspicious(pred.label)
                    ? "** ALERT **"
                    : "");
  }

  std::printf("\n%d/%d clips escalated to the analysis server "
              "(entropy > %.2f)\n",
              escalated, clips, entropy_threshold);
  std::printf("planned inference: local and server halves shared one "
              "%zu-byte arena (cut-point features never copied)\n",
              app.session().arena().peak_bytes());
  std::printf("%zu incidents indexed; %zu alerts pending review\n",
              incidents.size(), alerts.pending());

  std::printf("\noperator review:\n");
  while (auto alert = alerts.ReviewNext()) {
    std::printf("  [sev %d] %s at (%.4f, %.4f): %s\n", alert->severity,
                alert->kind.c_str(), alert->location.lat, alert->location.lon,
                alert->message.c_str());
  }
  return 0;
}
