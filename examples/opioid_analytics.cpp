// Opioid-epidemic analytics demo (Sec. V future work, implemented).
//
// Builds the monthly multi-source tract panel the paper proposes to
// assemble (prescriptions, drug arrests, 911 overdose calls, traffic,
// census deprivation, treatment availability), trains the risk model on
// the dataflow engine, scores held-out months, and prints the ranked
// intervention list with the factors the model uncovered.
//
//   ./examples/opioid_analytics

#include <algorithm>
#include <cstdio>

#include "apps/opioid_app.h"

using namespace metro;

int main() {
  dataflow::Engine engine(4);
  datagen::OpioidPanelGenerator::Config config;
  config.num_tracts = 150;
  config.num_months = 12;

  apps::OpioidAnalyticsApp app(config, 2026);
  const auto report = app.Run(engine, /*holdout_months=*/3);

  std::printf("opioid risk model: trained on %d tract-months, scored %d "
              "held-out tract-months\n",
              report.train_rows, report.test_rows);
  std::printf("  held-out accuracy: %.3f (majority baseline %.3f)\n",
              report.test_accuracy, report.baseline_accuracy);
  std::printf("  top-10 ranked tracts precision: %.2f\n\n",
              report.top10_precision);

  std::printf("factors uncovered (by |weight|):\n");
  for (const auto& [name, weight] : report.factor_weights) {
    std::printf("  %-24s %+.3f  (%s)\n", name.c_str(), weight,
                weight > 0 ? "risk factor" : "protective factor");
  }

  // Rank the most recent month's tracts for intervention.
  datagen::OpioidPanelGenerator gen(config, 2026);
  const auto panel = gen.Generate();
  std::vector<const datagen::TractMonth*> latest;
  for (const auto& obs : panel) {
    if (obs.month == config.num_months - 1) latest.push_back(&obs);
  }
  std::sort(latest.begin(), latest.end(),
            [&](const auto* a, const auto* b) {
              return app.Score(*a) > app.Score(*b);
            });
  std::printf("\nhighest-risk tracts this month:\n");
  for (int i = 0; i < 5 && i < int(latest.size()); ++i) {
    const auto* obs = latest[std::size_t(i)];
    std::printf("  tract %-4d risk %.2f  (rx %.2f, 911 calls %.2f, "
                "poverty %.2f)%s\n",
                obs->tract, app.Score(*obs), obs->prescriptions,
                obs->overdose_calls, obs->poverty_index,
                obs->high_overdose_next_month ? "  <- true high-overdose"
                                              : "");
  }
  return 0;
}
