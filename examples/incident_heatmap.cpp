// Streaming + graph + visualization demo: watch the tweet stream for
// keyword spikes with event-time windows, map the month's crime incidents
// as an ASCII heatmap with the camera network overlaid, rank gang-network
// influencers with the vertex-centric engine, and export hot-spots as
// GeoJSON for the web layer (the D3 role).
//
//   ./examples/incident_heatmap

#include <cstdio>
#include <set>

#include "datagen/city.h"
#include "graph/pregel.h"
#include "stream/windows.h"
#include "viz/viz.h"

using namespace metro;

int main() {
  // --- 1. Spike detection on the tweet stream (streaming processing).
  datagen::TweetGenerator tweets({.num_users = 400, .incident_fraction = 0.02},
                                 3);
  stream::WindowedAggregator agg({.window_size = 60 * kSecond,
                                  .allowed_lateness = 5 * kSecond,
                                  .agg = stream::AggKind::kCount});
  stream::SpikeDetector detector({.history = 5, .factor = 3.0, .min_count = 8});
  Rng rng(4);
  TimeNs now = 0;
  int spikes = 0;
  for (int i = 0; i < 20'000; ++i) {
    now += TimeNs(rng.Exponential(20.0) * double(kSecond));  // ~50 ms apart
    // A gunfire burst two thirds through the stream.
    const bool burst = i > 13'000 && i < 13'600;
    datagen::Tweet t = tweets.Generate(now);
    stream::Event event;
    event.event_time = now;
    event.key = burst || t.about_incident ? "incident-chatter" : "background";
    (void)agg.Add(event);
    if (i % 256 == 0) {
      agg.AdvanceWatermark(now - 5 * kSecond);
      for (const auto& window : agg.TakeFired()) {
        if (const auto spike = detector.Observe(window)) {
          ++spikes;
          std::printf("SPIKE: '%s' hit %.0f mentions/min (trailing mean "
                      "%.1f) at t=%llds\n",
                      spike->key.c_str(), spike->value, spike->trailing_mean,
                      (long long)(spike->window_start / kSecond));
        }
      }
    }
  }
  std::printf("stream watch complete: %d spike alerts\n\n", spikes);

  // --- 2. Crime heatmap with the camera network (geospatial + viz).
  datagen::CityDataGenerator city({}, 5);
  const auto box = geo::BoundingBox::Around(datagen::kBatonRouge, 12'000);
  viz::AsciiHeatmap map(box, 56, 20);
  for (int i = 0; i < 2'000; ++i) {
    map.Add(city.GenerateCrime(TimeNs(i) * kSecond).location);
  }
  for (const auto& cam : city.cameras()) map.Mark(cam.location, 'C');
  std::printf("crime density (month of incidents; C = DOTD camera):\n%s\n",
              map.Render().c_str());

  // --- 3. Influencer ranking on the gang network (graph processing).
  const auto gang = datagen::GenerateGangNetwork({}, 6);
  graph::PregelGraph g;
  g.AddVertices(gang.graph.num_people());
  for (std::size_t p = 0; p < gang.graph.num_people(); ++p) {
    for (const auto nbr : gang.graph.Neighbors(graph::PersonId(p))) {
      (void)g.AddEdge(graph::VertexId(p), graph::VertexId(nbr));
    }
  }
  ThreadPool pool(4);
  const auto ranks = graph::PageRank(g, pool, 20);
  std::vector<std::size_t> order(ranks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ranks[a] > ranks[b]; });
  std::printf("highest-centrality network members (PageRank):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-12s rank %.4f  degree %zu  group %d\n",
                gang.graph.name(graph::PersonId(order[std::size_t(i)])).c_str(),
                ranks[order[std::size_t(i)]],
                gang.graph.Degree(graph::PersonId(order[std::size_t(i)])),
                gang.group_of[order[std::size_t(i)]]);
  }

  // --- 4. GeoJSON export of hot-spots for the web layer.
  std::vector<viz::GeoFeature> features;
  for (std::size_t h = 0; h < city.hotspots().size(); ++h) {
    features.push_back({city.hotspots()[h],
                        "hotspot-" + std::to_string(h), double(h + 1)});
  }
  const std::string geojson = viz::ToGeoJson(features);
  std::printf("\nGeoJSON for the web map (%zu features, %zu bytes):\n%.160s"
              "...\n",
              features.size(), geojson.size(), geojson.c_str());
  return 0;
}
