// Vehicle detection & classification demo (Sec. IV-A1, Figs. 5-6).
//
// Trains the split early-exit detector on synthetic traffic frames, then
// processes a stream of frames the way a fog node would: the tiny exit
// answers confident frames locally; uncertain frames ship their branch
// feature map to the "analysis server" (the full head). Prints ASCII
// detections and the session's offload economics.
//
//   ./examples/vehicle_detection [train_steps]

#include <cstdio>
#include <cstdlib>

#include "apps/vehicle_app.h"

using namespace metro;

int main(int argc, char** argv) {
  const int train_steps = argc > 1 ? std::atoi(argv[1]) : 200;

  zoo::DetectorConfig config;
  apps::VehicleDetectionApp app(config, 1234);

  std::printf("training split detector (%d steps, %d classes)...\n",
              train_steps, config.num_classes);
  const float loss = app.Train(train_steps, 16);
  std::printf("final training loss: %.3f\n\n", loss);

  const float threshold = 0.5f;
  int offloads = 0;
  std::size_t bytes_shipped = 0;
  const int frames = 12;
  for (int i = 0; i < frames; ++i) {
    datagen::LabeledFrame frame = app.generator().Generate(2);
    const auto result = app.ProcessFrame(
        frame.image.Reshape(
            {1, config.image_size, config.image_size, config.channels}),
        threshold);
    if (result.offloaded) {
      ++offloads;
      bytes_shipped += app.detector().FeatureMapBytes();
    }
    if (i < 3) {  // render the first few frames, Fig. 6 style
      std::printf("frame %d: confidence %.2f -> %s, %zu detections\n", i,
                  result.tiny_confidence,
                  result.offloaded ? "OFFLOADED to analysis server"
                                   : "answered locally",
                  result.detections.size());
      std::printf("%s\n", apps::VehicleDetectionApp::RenderAscii(
                              frame.image, result.detections)
                              .c_str());
    }
  }
  std::printf("session: %d/%d frames offloaded at threshold %.2f; %zu bytes "
              "of feature maps shipped upstream\n",
              offloads, frames, threshold, bytes_shipped);
  std::printf("planned inference: all frames ran through the arena-backed "
              "session (%zu bytes peak, %zu chunk growths after warm-up)\n",
              app.session().arena().peak_bytes(),
              app.session().arena().grow_count());

  std::printf("\nthreshold sweep (accuracy vs offload):\n");
  std::printf("  %-10s %-10s %-10s %-8s\n", "threshold", "offload%", "top-acc",
              "recall");
  for (const float t : {0.0f, 0.3f, 0.6f, 0.9f, 1.01f}) {
    const auto eval = app.Evaluate(60, t);
    std::printf("  %-10.2f %-10.1f %-10.3f %-8.3f\n", t,
                eval.offload_fraction * 100, eval.classification_accuracy,
                eval.recall);
  }
  return 0;
}
