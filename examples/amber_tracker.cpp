// AMBER-alert tracking demo (Sec. IV-A1's motivating scenario), end to
// end: a wanted vehicle drives a Fig. 2 corridor; each camera it passes
// produces a *frame*; the trained split detector turns frames into
// detections; detections become sightings; the tracker correlates them
// into a trajectory and alerts the operator.
//
//   ./examples/amber_tracker [train_steps]

#include <cstdio>
#include <cstdlib>

#include "apps/amber_app.h"
#include "apps/vehicle_app.h"

using namespace metro;

int main(int argc, char** argv) {
  const int train_steps = argc > 1 ? std::atoi(argv[1]) : 180;

  zoo::DetectorConfig det_config;
  det_config.num_classes = 4;
  apps::VehicleDetectionApp detector_app(det_config, 88);
  std::printf("training detector (%d steps)...\n", train_steps);
  detector_app.Train(train_steps, 16);

  datagen::CityDataGenerator city({}, 89);
  core::AlertManager alerts;
  apps::AmberTracker tracker({}, &alerts);
  const int wanted_class = 2;
  tracker.Watch(wanted_class);
  std::printf("AMBER alert issued for vehicle class %d\n\n", wanted_class);

  // The wanted car drives the first corridor outbound; each passed camera
  // captures a frame with the wanted vehicle in it.
  std::vector<const datagen::Camera*> route;
  const std::string corridor = city.cameras().front().corridor;
  for (const auto& cam : city.cameras()) {
    if (cam.corridor == corridor && route.size() < 8) route.push_back(&cam);
  }

  Rng rng(90);
  TimeNs now = kSecond;
  int frames_with_detection = 0;
  for (const auto* cam : route) {
    // Compose the camera frame: draw frames until one contains the wanted
    // vehicle class (the generator paints class-consistent appearance).
    datagen::LabeledFrame frame = detector_app.generator().Generate(1);
    while (frame.boxes[0].cls != wanted_class) {
      frame = detector_app.generator().Generate(1);
    }
    const auto result = detector_app.ProcessFrame(
        frame.image.Reshape({1, det_config.image_size, det_config.image_size,
                             det_config.channels}),
        0.5f);
    for (const auto& det : result.detections) {
      apps::Sighting sighting;
      sighting.camera = cam->id;
      sighting.location = cam->location;
      sighting.time = now;
      sighting.vehicle_class = det.cls;
      sighting.score = det.score;
      const auto track = tracker.Observe(sighting);
      if (det.cls == wanted_class) {
        ++frames_with_detection;
        std::printf("cam %-3d (%s) t=%4llds: class %d score %.2f%s%s\n",
                    cam->id, cam->corridor.c_str(),
                    (long long)(now / kSecond), det.cls, det.score,
                    result.offloaded ? " [full model]" : " [tiny exit]",
                    track ? (" -> track " + std::to_string(*track)).c_str()
                          : "");
      }
    }
    now += 40 * kSecond;
  }

  std::printf("\nwanted vehicle detected at %d/%zu route cameras\n",
              frames_with_detection, route.size());
  for (const auto& track : tracker.ActiveTracks(now)) {
    if (track.vehicle_class != wanted_class) continue;
    std::printf("track %d: %zu sightings, last speed %.1f m/s, route:",
                track.id, track.sightings.size(), track.LastSpeedMps());
    for (const auto& s : track.sightings) std::printf(" cam%d", s.camera);
    std::printf("\n");
  }
  std::printf("\noperator alerts:\n");
  while (auto alert = alerts.ReviewNext()) {
    std::printf("  [sev %d] %s: %s\n", alert->severity, alert->kind.c_str(),
                alert->message.c_str());
  }
  return 0;
}
