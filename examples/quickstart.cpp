// Quickstart: assemble the cyberinfrastructure, stream one data source
// through the Fig. 4 pipeline, store and query documents, archive to the
// DFS, and read the operator alert queue.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/infrastructure.h"
#include "datagen/city.h"

using namespace metro;

int main() {
  // 1. Bring up the four-layer stack (Fig. 1).
  core::InfrastructureConfig config;
  config.dfs_datanodes = 4;
  config.fog.num_edges = 8;
  core::Cyberinfrastructure infra(config, WallClock::Instance());
  std::printf("%s\n\n", infra.Describe().c_str());

  // 2. Declare a topic with an analyzer: severe Waze reports become alerts.
  core::CityPipeline::TopicSpec spec;
  spec.topic = "waze";
  spec.partitions = 2;
  auto* alerts = &infra.alerts();
  spec.analyzer = [alerts](const store::Document& doc)
      -> std::optional<store::Document> {
    const auto sev = doc.find("severity");
    if (sev == doc.end() || std::get<std::int64_t>(sev->second) < 4) {
      return std::nullopt;
    }
    alerts->Raise({.location = {},
                   .kind = "traffic",
                   .message = "severe " +
                              std::get<std::string>(doc.at("kind")) +
                              " reported",
                   .severity = 3});
    return doc;
  };
  if (auto st = infra.pipeline().AddTopic(std::move(spec)); !st.ok()) {
    std::fprintf(stderr, "AddTopic: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)infra.pipeline().Start();

  // 3. Stream 2000 crowd-sourced traffic reports into the collection layer.
  datagen::WazeGenerator waze(7);
  for (int i = 0; i < 2000; ++i) {
    const auto report = waze.Generate(WallClock::Instance().Now());
    (void)infra.pipeline().log().Produce(
        "waze", std::to_string(report.id),
        core::EncodeDocument(datagen::CityDataGenerator::ToDocument(report)));
  }
  infra.pipeline().Drain();

  // 4. Query the NoSQL store: accidents within 5 km of downtown.
  auto coll = infra.pipeline().collection("waze").value();
  if (const auto indexed = coll->CreateGeoIndex("lat", "lon");
      !indexed.ok()) {
    std::fprintf(stderr, "geo index failed: %s\n",
                 indexed.ToString().c_str());
    return 1;
  }
  store::Query query;
  query.near_center = datagen::kBatonRouge;
  query.near_radius_m = 5000;
  query.conditions.push_back(
      {"kind", store::Condition::Op::kEquals, std::string("accident")});
  const auto hits = coll->Find(query);
  std::printf("stored %zu reports; %zu accidents within 5 km of downtown\n",
              coll->size(), hits.size());

  // 5. Archive the web feed to the replicated DFS and stat it.
  std::string day;
  for (const auto& line : infra.pipeline().WebFeed()) {
    day += line;
    day += '\n';
  }
  (void)infra.storage().Create("/archive/waze.jsonl", day);
  const auto info = infra.storage().Stat("/archive/waze.jsonl");
  if (info.ok()) {
    std::printf("archived %zu bytes in %d blocks (replication %d)\n",
                info->size, info->num_blocks, info->replication);
  }

  // 6. Operator reviews the alert queue.
  std::printf("\noperator queue (%zu alerts):\n", infra.alerts().pending());
  int shown = 0;
  while (auto alert = infra.alerts().ReviewNext()) {
    if (++shown > 5) continue;  // drain, print the first few
    std::printf("  [sev %d] %s: %s\n", alert->severity, alert->kind.c_str(),
                alert->message.c_str());
  }
  if (shown > 5) std::printf("  ... and %d more\n", shown - 5);

  const auto stats = infra.pipeline().Stats();
  std::printf("\npipeline: consumed=%lld stored=%lld annotated=%lld "
              "web_items=%lld mean_latency=%.2fms\n",
              (long long)stats.records_consumed,
              (long long)stats.documents_stored, (long long)stats.annotations,
              (long long)stats.web_items, stats.mean_latency_ms);
  infra.pipeline().Stop();
  return 0;
}
