// Full streaming-city demo (Figs. 1 + 4): Flume-style agents collect four
// heterogeneous sources into the message log; the pipeline stores,
// analyzes, and renders the web feed; crime documents are mined for
// hot-spots with the dataflow engine; the DFS archives the day.
//
//   ./examples/city_pipeline

#include <atomic>
#include <cstdio>

#include "core/infrastructure.h"
#include "dataflow/dataset.h"
#include "dataflow/mllib.h"
#include "datagen/city.h"
#include "ingest/flume.h"
#include "text/text.h"

using namespace metro;

int main() {
  core::InfrastructureConfig config;
  config.dfs_datanodes = 5;
  config.fog.num_edges = 8;
  core::Cyberinfrastructure infra(config, WallClock::Instance());
  std::printf("%s\n\n", infra.Describe().c_str());

  // Topics + analyzers.
  auto keyword_matcher = std::make_shared<text::KeywordMatcher>(
      std::vector<std::string>{"gunshots", "shooting", "robbery", "shots"});
  for (const char* name : {"tweets", "waze", "crimes"}) {
    core::CityPipeline::TopicSpec spec;
    spec.topic = name;
    spec.partitions = 2;
    if (std::string(name) == "tweets") {
      spec.analyzer = [keyword_matcher](const store::Document& doc)
          -> std::optional<store::Document> {
        const auto it = doc.find("text");
        if (it == doc.end()) return std::nullopt;
        const auto* txt = std::get_if<std::string>(&it->second);
        if (txt == nullptr || !keyword_matcher->Matches(*txt)) {
          return std::nullopt;
        }
        return doc;
      };
    } else {
      spec.analyzer = [](const store::Document& doc)
          -> std::optional<store::Document> { return doc; };
    }
    (void)infra.pipeline().AddTopic(std::move(spec));
  }
  (void)infra.pipeline().Start();

  // Ingestion agents, one per source (Sec. II-C2's Flume role).
  datagen::CityDataGenerator city({}, 21);
  datagen::TweetGenerator tweets({.num_users = 800}, 22);
  datagen::WazeGenerator waze(23);

  // Everything shares one span collector: the agents open a trace per
  // event, the sink hands the context to Produce, and the consumer stages
  // (mq.queue / store / analyze / web) join the same trace.
  obs::SpanCollector& tracer = infra.pipeline().tracer();
  infra.storage().SetTracer(&tracer);
  ingest::AgentConfig agent_config;
  agent_config.spans = &tracer;
  // Small sink batches: events sitting in a half-flushed batch are latency
  // the stage spans cannot attribute, so a latency-focused deployment keeps
  // flushes short (the throughput benches use the default 64).
  agent_config.batch_size = 8;

  // Publishing goes through the pipeline's retrying Produce, so a transient
  // partition outage costs retries (visible in the stats below), not data.
  auto make_sink = [&infra](std::string topic) {
    return [&infra, topic](const std::vector<ingest::Event>& batch) {
      for (const auto& e : batch) {
        obs::TraceContext trace;
        const auto it = e.headers.find(std::string(obs::kTraceHeader));
        if (it != e.headers.end()) {
          trace = obs::TraceContext::Parse(it->second).value_or(
              obs::TraceContext{});
        }
        METRO_RETURN_IF_ERROR(
            infra.pipeline().Produce(topic, e.key, e.body, trace).status());
      }
      return Status::Ok();
    };
  };

  std::atomic<int> tweet_count{0}, waze_count{0}, crime_count{0};
  ingest::Agent tweet_agent(
      "twitter",
      [&]() -> std::optional<ingest::Event> {
        if (tweet_count.fetch_add(1) >= 3000) return std::nullopt;
        return ingest::Event{
            "", core::EncodeDocument(datagen::CityDataGenerator::ToDocument(
                    tweets.Generate(WallClock::Instance().Now())))};
      },
      make_sink("tweets"), agent_config);
  ingest::Agent waze_agent(
      "waze-ccp",
      [&]() -> std::optional<ingest::Event> {
        if (waze_count.fetch_add(1) >= 800) return std::nullopt;
        return ingest::Event{
            "", core::EncodeDocument(datagen::CityDataGenerator::ToDocument(
                    waze.Generate(WallClock::Instance().Now())))};
      },
      make_sink("waze"), agent_config);
  ingest::Agent crime_agent(
      "records-upload",
      [&]() -> std::optional<ingest::Event> {
        if (crime_count.fetch_add(1) >= 300) return std::nullopt;
        return ingest::Event{
            "", core::EncodeDocument(datagen::CityDataGenerator::ToDocument(
                    city.GenerateCrime(WallClock::Instance().Now())))};
      },
      make_sink("crimes"), agent_config);

  for (ingest::Agent* agent : {&tweet_agent, &waze_agent, &crime_agent}) {
    if (const auto started = agent->Start(); !started.ok()) {
      std::fprintf(stderr, "agent start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }
  tweet_agent.WaitUntilFinished();
  waze_agent.WaitUntilFinished();
  crime_agent.WaitUntilFinished();
  infra.pipeline().Drain();

  const auto stats = infra.pipeline().Stats();
  std::printf("pipeline: consumed=%lld stored=%lld annotated=%lld "
              "web=%lld (mean latency %.2f ms, p99 %.2f ms)\n",
              (long long)stats.records_consumed,
              (long long)stats.documents_stored, (long long)stats.annotations,
              (long long)stats.web_items, stats.mean_latency_ms,
              stats.p99_latency_ms);
  std::printf("resilience: produce retries=%lld, fetch retries=%lld, "
              "records skipped=%lld; sink retries=%lld; health: %s\n",
              (long long)stats.produce_retries, (long long)stats.fetch_retries,
              (long long)stats.records_skipped,
              (long long)(tweet_agent.sink_retries() +
                          waze_agent.sink_retries() +
                          crime_agent.sink_retries()),
              infra.health().AllHealthy() ? "all healthy" : "degraded");

  // Where does the latency go? Span-derived per-stage quantiles.
  std::printf("\nstage latency (ms):\n");
  for (const auto& st : stats.stage_latency) {
    std::printf("  %-16s count=%-6lld mean=%-8.3f p50=%-8.3f p95=%-8.3f "
                "p99=%.3f\n",
                st.stage.c_str(), (long long)st.count, st.mean_ms, st.p50_ms,
                st.p95_ms, st.p99_ms);
  }
  std::printf("\n%s\n", tracer.CriticalPathReport().c_str());

  // Mine crime hot-spots from the stored documents (Sec. II-C3).
  auto crimes = infra.pipeline().collection("crimes").value();
  std::vector<dataflow::FeatureVec> points;
  for (const auto& doc : crimes->FindDocs({})) {
    points.push_back({float(std::get<double>(doc.at("lat"))),
                      float(std::get<double>(doc.at("lon")))});
  }
  Rng rng(24);
  const auto kmeans = dataflow::FitKMeans(
      dataflow::Dataset<dataflow::FeatureVec>::Parallelize(points, 4), 5,
      infra.engine(), rng);
  if (kmeans.ok()) {
    std::printf("\ncrime hot-spots (k-means on %zu stored incidents, %d "
                "iterations):\n",
                points.size(), kmeans->iterations);
    for (const auto& c : kmeans->centroids) {
      std::printf("  (%.4f, %.4f)\n", c[0], c[1]);
    }
  }

  // Archive the day's web feed to the DFS.
  std::string feed;
  for (const auto& line : infra.pipeline().WebFeed()) {
    feed += line;
    feed += '\n';
  }
  (void)infra.storage().Create("/archive/day.jsonl", feed);
  const auto info = infra.storage().Stat("/archive/day.jsonl");
  if (info.ok()) {
    std::printf("\narchived web feed: %zu bytes, %d blocks, replication %d\n",
                info->size, info->num_blocks, info->replication);
  }
  infra.pipeline().Stop();
  return 0;
}
