#include "net/simulator.h"

#include <algorithm>
#include <cassert>

namespace metro::net {

NodeId Simulator::AddNode(NodeSpec spec) {
  nodes_.push_back(Node{std::move(spec), 0});
  return int(nodes_.size()) - 1;
}

std::uint64_t Simulator::LinkKey(NodeId a, NodeId b) const {
  const auto lo = std::uint64_t(std::min(a, b));
  const auto hi = std::uint64_t(std::max(a, b));
  return (hi << 32) | lo;
}

Status Simulator::Connect(NodeId a, NodeId b, LinkSpec spec) {
  if (a < 0 || b < 0 || a >= num_nodes() || b >= num_nodes() || a == b) {
    return InvalidArgumentError("bad link endpoints");
  }
  auto [it, inserted] = links_.try_emplace(LinkKey(a, b), Link{spec, 0, {}});
  if (!inserted) return AlreadyExistsError("link exists");
  return Status::Ok();
}

void Simulator::ScheduleAt(TimeNs at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  queue_.push(Event{at, seq_++, std::move(fn)});
}

Status Simulator::Send(NodeId from, NodeId to, std::uint64_t bytes,
                       std::function<void()> on_delivery) {
  const auto it = links_.find(LinkKey(from, to));
  if (it == links_.end()) {
    return NotFoundError("no link " + nodes_[std::size_t(from)].spec.name +
                         " <-> " + nodes_[std::size_t(to)].spec.name);
  }
  Link& link = it->second;
  if (!link.up) {
    return UnavailableError("link " + nodes_[std::size_t(from)].spec.name +
                            " <-> " + nodes_[std::size_t(to)].spec.name +
                            " is down");
  }
  const auto tx_ns = TimeNs(double(bytes) * 8.0 / link.spec.bandwidth_bps * kSecond);
  const TimeNs start = std::max(now_, link.next_free);
  link.next_free = start + tx_ns;  // FIFO serialization
  const TimeNs arrival =
      link.next_free + TimeNs(double(link.spec.latency) * link.latency_scale);
  ++link.stats.messages;
  link.stats.bytes += bytes;
  ScheduleAt(arrival, std::move(on_delivery));
  return Status::Ok();
}

Status Simulator::Compute(NodeId node, std::uint64_t macs,
                          std::function<void()> fn) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgumentError("bad node id");
  }
  Node& n = nodes_[std::size_t(node)];
  const auto dur =
      TimeNs(double(macs) / n.spec.macs_per_second * kSecond);
  const TimeNs start = std::max(now_, n.busy_until);
  n.busy_until = start + dur;
  ScheduleAt(n.busy_until, std::move(fn));
  return Status::Ok();
}

void Simulator::RunUntilIdle() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the event must be copied out before
    // pop, and fn moved via const_cast-free copy of the shared function.
    Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.at);
    ev.fn();
  }
}

void Simulator::RunUntil(TimeNs deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.at);
    ev.fn();
  }
  now_ = std::max(now_, deadline);
}

Status Simulator::SetLinkUp(NodeId a, NodeId b, bool up) {
  const auto it = links_.find(LinkKey(a, b));
  if (it == links_.end()) return NotFoundError("no such link");
  it->second.up = up;
  return Status::Ok();
}

Result<bool> Simulator::LinkUp(NodeId a, NodeId b) const {
  const auto it = links_.find(LinkKey(a, b));
  if (it == links_.end()) return NotFoundError("no such link");
  return it->second.up;
}

Status Simulator::ScaleLinkLatency(NodeId a, NodeId b, double factor) {
  if (factor < 0) return InvalidArgumentError("latency factor must be >= 0");
  const auto it = links_.find(LinkKey(a, b));
  if (it == links_.end()) return NotFoundError("no such link");
  it->second.latency_scale = factor;
  return Status::Ok();
}

Result<LinkStats> Simulator::Stats(NodeId a, NodeId b) const {
  const auto it = links_.find(LinkKey(a, b));
  if (it == links_.end()) return NotFoundError("no such link");
  return it->second.stats;
}

std::uint64_t Simulator::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, link] : links_) total += link.stats.bytes;
  return total;
}

}  // namespace metro::net
