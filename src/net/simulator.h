#pragma once

// Discrete-event network simulator.
//
// Models the paper's inter-tier fabric (Sec. II-B3): nodes with a compute
// rating, point-to-point links with bandwidth + propagation latency, and an
// event queue over simulated time. The fog pipeline (Fig. 3) runs on top of
// this, so per-tier latency and bytes-on-the-wire are measured, not guessed.

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace metro::net {

/// Index of a node within a Simulator.
using NodeId = int;

/// Point-to-point link characteristics.
struct LinkSpec {
  double bandwidth_bps = 1e9;   ///< serialization rate
  TimeNs latency = kMillisecond; ///< one-way propagation delay
};

/// Cumulative per-link accounting.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Node compute/metadata.
struct NodeSpec {
  std::string name;
  double macs_per_second = 1e9;  ///< DNN multiply-accumulate throughput
};

/// Single-threaded discrete-event simulator.
///
/// Callbacks run at their scheduled simulated time, in (time, insertion)
/// order; they may schedule further events. Not thread-safe by design.
class Simulator {
 public:
  Simulator() = default;

  /// Registers a node; returns its id.
  NodeId AddNode(NodeSpec spec);

  /// Creates a bidirectional link between `a` and `b`.
  Status Connect(NodeId a, NodeId b, LinkSpec spec);

  /// Current simulated time.
  TimeNs Now() const { return now_; }

  /// Runs `fn` at absolute simulated time `at` (>= Now()).
  void ScheduleAt(TimeNs at, std::function<void()> fn);

  /// Runs `fn` after `delay` nanoseconds.
  void ScheduleAfter(TimeNs delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Transfers `bytes` from `from` to `to` over their direct link. The link
  /// serializes transfers FIFO (a busy link queues the message). Invokes
  /// `on_delivery` at arrival. Fails if no link exists.
  Status Send(NodeId from, NodeId to, std::uint64_t bytes,
              std::function<void()> on_delivery);

  /// Schedules `fn` after the time node `node` needs to execute `macs`
  /// multiply-accumulates. The node serializes compute FIFO, modelling a
  /// busy device (an edge board runs one inference at a time).
  Status Compute(NodeId node, std::uint64_t macs, std::function<void()> fn);

  /// Processes events until the queue is empty.
  void RunUntilIdle();

  /// Processes events with time <= `deadline`; later events stay queued.
  void RunUntil(TimeNs deadline);

  const NodeSpec& node(NodeId id) const { return nodes_[std::size_t(id)].spec; }
  int num_nodes() const { return int(nodes_.size()); }

  /// Stats for the (a, b) link regardless of direction argument order.
  Result<LinkStats> Stats(NodeId a, NodeId b) const;

  /// Marks the (a, b) link up or down; Sends over a down link fail with
  /// kUnavailable (fault injection for resilience experiments).
  Status SetLinkUp(NodeId a, NodeId b, bool up);

  /// Whether the (a, b) link is currently up; kNotFound for missing links.
  Result<bool> LinkUp(NodeId a, NodeId b) const;

  /// Multiplies the (a, b) link's propagation latency by `factor` (>= 0),
  /// replacing any previous factor — a congestion / degraded-route fault.
  /// `factor` 1.0 restores nominal latency.
  Status ScaleLinkLatency(NodeId a, NodeId b, double factor);

  /// Total bytes moved across every link.
  std::uint64_t TotalBytes() const;

  /// A `Clock` view of simulated time, for clock-driven policies (circuit
  /// breaker cool-downs) living inside a simulation. `SleepFor` is a no-op:
  /// simulated time only advances through the event loop.
  Clock& clock() { return clock_view_; }

 private:
  class ClockView final : public Clock {
   public:
    explicit ClockView(const Simulator& sim) : sim_(&sim) {}
    TimeNs Now() const override { return sim_->Now(); }
    void SleepFor(TimeNs) override {}
   private:
    const Simulator* sim_;
  };

  struct Link {
    LinkSpec spec;
    TimeNs next_free = 0;  ///< when the link finishes its queued transfers
    LinkStats stats;
    bool up = true;
    double latency_scale = 1.0;  ///< fault-injected latency multiplier
  };
  struct Node {
    NodeSpec spec;
    TimeNs busy_until = 0;  ///< when the node's compute queue drains
  };
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      return std::tie(at, seq) > std::tie(other.at, other.seq);
    }
  };

  std::uint64_t LinkKey(NodeId a, NodeId b) const;

  std::vector<Node> nodes_;
  std::map<std::uint64_t, Link> links_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  ClockView clock_view_{*this};
};

/// RAII link fault: takes the (a, b) link down on construction and brings it
/// back up on destruction, so a test cannot leak a downed link past scope.
class ScopedLinkFault {
 public:
  ScopedLinkFault(Simulator& sim, NodeId a, NodeId b)
      : sim_(&sim), a_(a), b_(b) {
    (void)sim_->SetLinkUp(a_, b_, false);
  }
  ~ScopedLinkFault() { (void)sim_->SetLinkUp(a_, b_, true); }

  ScopedLinkFault(const ScopedLinkFault&) = delete;
  ScopedLinkFault& operator=(const ScopedLinkFault&) = delete;

 private:
  Simulator* sim_;
  NodeId a_;
  NodeId b_;
};

}  // namespace metro::net
