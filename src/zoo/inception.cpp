#include "zoo/inception.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace metro::zoo {

using nn::ActKind;
using nn::Shape;
using nn::Tensor;
using tensor::TensorView;

namespace {

/// Copies `x` into the interior of `out`, whose border of `pad` pixels on
/// each spatial side must already hold the fill value. Raw row memcpys with
/// precomputed strides — the padded interior is contiguous per (b, y) row.
void PadSpatialRows(const float* xd, int n, int h, int w, int c, int pad,
                    float* od) {
  const int ph = h + 2 * pad, pw = w + 2 * pad;
  const std::size_t row = std::size_t(w) * c;
  const std::size_t prow = std::size_t(pw) * c;
  for (int b = 0; b < n; ++b) {
    for (int y = 0; y < h; ++y) {
      std::memcpy(
          &od[(std::size_t(b) * ph + y + pad) * prow + std::size_t(pad) * c],
          &xd[(std::size_t(b) * h + y) * row], row * sizeof(float));
    }
  }
}

/// Zero-pads H and W by `pad` on each side (for the same-size pooling
/// branch; MaxPool2d itself is unpadded).
Tensor PadSpatial(const Tensor& x, int pad) {
  const int n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  Tensor out({n, h + 2 * pad, w + 2 * pad, c},
             -1e30f);  // -inf-ish so padding never wins the max
  PadSpatialRows(x.data().data(), n, h, w, c, pad, out.data().data());
  return out;
}

/// PadSpatial into preallocated (arena) storage.
void PadSpatialInto(const TensorView& x, int pad, const TensorView& out) {
  const int n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  assert(out.dim(0) == n && out.dim(1) == h + 2 * pad &&
         out.dim(2) == w + 2 * pad && out.dim(3) == c);
  std::fill(out.data().begin(), out.data().end(), -1e30f);
  PadSpatialRows(x.data().data(), n, h, w, c, pad, out.data().data());
}

/// Drops the padded border from a gradient tensor.
Tensor UnpadSpatial(const Tensor& g, int pad) {
  const int n = g.dim(0), h = g.dim(1) - 2 * pad, w = g.dim(2) - 2 * pad,
            c = g.dim(3);
  Tensor out({n, h, w, c});
  const float* gd = g.data().data();
  float* od = out.data().data();
  const int pw = w + 2 * pad, ph = h + 2 * pad;
  const std::size_t row = std::size_t(w) * c;
  const std::size_t prow = std::size_t(pw) * c;
  for (int b = 0; b < n; ++b) {
    for (int y = 0; y < h; ++y) {
      std::memcpy(
          &od[(std::size_t(b) * h + y) * row],
          &gd[(std::size_t(b) * ph + y + pad) * prow + std::size_t(pad) * c],
          row * sizeof(float));
    }
  }
  return out;
}

/// Interleaves channel-wise parts into `out` — same values in the same
/// positions as the eager ConcatChannels.
void ConcatChannelsInto(const std::vector<TensorView>& parts,
                        const TensorView& out) {
  const int total_c = out.dim(3);
  const std::size_t pixels =
      std::size_t(out.dim(0)) * out.dim(1) * out.dim(2);
  float* od = out.data().data();
  std::size_t offset = 0;
  for (const TensorView& part : parts) {
    const int pc = part.dim(3);
    const float* pd = part.data().data();
    for (std::size_t px = 0; px < pixels; ++px) {
      std::memcpy(&od[px * std::size_t(total_c) + offset],
                  &pd[px * std::size_t(pc)], std::size_t(pc) * sizeof(float));
    }
    offset += std::size_t(pc);
  }
}

}  // namespace

Tensor ConcatChannels(const std::vector<const Tensor*>& parts) {
  assert(!parts.empty());
  const int n = parts[0]->dim(0), h = parts[0]->dim(1), w = parts[0]->dim(2);
  int total_c = 0;
  for (const Tensor* part : parts) {
    assert(part->dim(0) == n && part->dim(1) == h && part->dim(2) == w);
    total_c += part->dim(3);
  }
  Tensor out({n, h, w, total_c});
  const std::size_t pixels = std::size_t(n) * h * w;
  for (std::size_t px = 0; px < pixels; ++px) {
    std::size_t offset = 0;
    for (const Tensor* part : parts) {
      const int pc = part->dim(3);
      for (int ch = 0; ch < pc; ++ch) {
        out[px * std::size_t(total_c) + offset + std::size_t(ch)] =
            (*part)[px * std::size_t(pc) + std::size_t(ch)];
      }
      offset += std::size_t(pc);
    }
  }
  return out;
}

std::vector<Tensor> SplitChannels(const Tensor& x,
                                  const std::vector<int>& widths) {
  const int n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  int sum = 0;
  for (const int width : widths) sum += width;
  assert(sum == c);
  std::vector<Tensor> parts;
  parts.reserve(widths.size());
  const std::size_t pixels = std::size_t(n) * h * w;
  std::size_t offset = 0;
  for (const int width : widths) {
    Tensor part({n, h, w, width});
    for (std::size_t px = 0; px < pixels; ++px) {
      for (int ch = 0; ch < width; ++ch) {
        part[px * std::size_t(width) + std::size_t(ch)] =
            x[px * std::size_t(c) + offset + std::size_t(ch)];
      }
    }
    parts.push_back(std::move(part));
    offset += std::size_t(width);
  }
  return parts;
}

InceptionBlock::InceptionBlock(int in_channels, const InceptionConfig& config,
                               Rng& rng)
    : cin_(in_channels),
      config_(config),
      b1_(in_channels, config.out_1x1, 1, 1, 0, rng),
      b2_reduce_(in_channels, config.reduce_3x3, 1, 1, 0, rng),
      b2_(config.reduce_3x3, config.out_3x3, 3, 1, 1, rng),
      b3_reduce_(in_channels, config.reduce_5x5, 1, 1, 0, rng),
      b3_(config.reduce_5x5, config.out_5x5, 5, 1, 2, rng),
      b4_pool_(3, 1),
      b4_(in_channels, config.out_pool, 1, 1, 0, rng),
      act1_(ActKind::kRelu),
      act2a_(ActKind::kRelu),
      act2b_(ActKind::kRelu),
      act3a_(ActKind::kRelu),
      act3b_(ActKind::kRelu),
      act4_(ActKind::kRelu) {}

Tensor InceptionBlock::Forward(const Tensor& x, bool training) {
  if (training) cached_in_shape_ = x.shape();
  Tensor y1 = act1_.Forward(b1_.Forward(x, training), training);
  Tensor y2 = act2b_.Forward(
      b2_.Forward(act2a_.Forward(b2_reduce_.Forward(x, training), training),
                  training),
      training);
  Tensor y3 = act3b_.Forward(
      b3_.Forward(act3a_.Forward(b3_reduce_.Forward(x, training), training),
                  training),
      training);
  Tensor pooled = b4_pool_.Forward(PadSpatial(x, 1), training);
  Tensor y4 = act4_.Forward(b4_.Forward(pooled, training), training);
  return ConcatChannels({&y1, &y2, &y3, &y4});
}

METRO_NOALLOC
void InceptionBlock::ForwardInto(const nn::TensorView& x,
                                 const nn::TensorView& out,
                                 nn::InferenceContext& ctx) {
  if (!ctx.scratch) {
    Layer::ForwardInto(x, out, ctx);
    return;
  }
  // Each branch computes into block-local scratch (activations run in
  // place), then the four results interleave into `out`. The session rewinds
  // the scratch after this layer returns.
  const Shape& in = x.shape();
  TensorView y1 = ctx.scratch->AllocView(b1_.OutputShape(in));
  b1_.ForwardInto(x, y1, ctx);
  tensor::ReluInto(y1, y1);

  TensorView r2 = ctx.scratch->AllocView(b2_reduce_.OutputShape(in));
  b2_reduce_.ForwardInto(x, r2, ctx);
  tensor::ReluInto(r2, r2);
  TensorView y2 = ctx.scratch->AllocView(b2_.OutputShape(r2.shape()));
  b2_.ForwardInto(r2, y2, ctx);
  tensor::ReluInto(y2, y2);

  TensorView r3 = ctx.scratch->AllocView(b3_reduce_.OutputShape(in));
  b3_reduce_.ForwardInto(x, r3, ctx);
  tensor::ReluInto(r3, r3);
  TensorView y3 = ctx.scratch->AllocView(b3_.OutputShape(r3.shape()));
  b3_.ForwardInto(r3, y3, ctx);
  tensor::ReluInto(y3, y3);

  Shape padded_shape = in;
  padded_shape[1] += 2;
  padded_shape[2] += 2;
  TensorView padded = ctx.scratch->AllocView(padded_shape);
  PadSpatialInto(x, 1, padded);
  TensorView pooled =
      ctx.scratch->AllocView(b4_pool_.OutputShape(padded_shape));
  b4_pool_.ForwardInto(padded, pooled, ctx);
  TensorView y4 = ctx.scratch->AllocView(b4_.OutputShape(pooled.shape()));
  b4_.ForwardInto(pooled, y4, ctx);
  tensor::ReluInto(y4, y4);

  ConcatChannelsInto({y1, y2, y3, y4}, out);
}

Tensor InceptionBlock::Backward(const Tensor& grad_out) {
  auto grads = SplitChannels(
      grad_out, {config_.out_1x1, config_.out_3x3, config_.out_5x5,
                 config_.out_pool});
  Tensor gx = b1_.Backward(act1_.Backward(grads[0]));
  gx += b2_reduce_.Backward(
      act2a_.Backward(b2_.Backward(act2b_.Backward(grads[1]))));
  gx += b3_reduce_.Backward(
      act3a_.Backward(b3_.Backward(act3b_.Backward(grads[2]))));
  Tensor g_pool = b4_pool_.Backward(b4_.Backward(act4_.Backward(grads[3])));
  gx += UnpadSpatial(g_pool, 1);
  return gx;
}

std::vector<nn::Param*> InceptionBlock::Params() {
  std::vector<nn::Param*> params;
  for (nn::Conv2d* conv :
       {&b1_, &b2_reduce_, &b2_, &b3_reduce_, &b3_, &b4_}) {
    for (nn::Param* p : conv->Params()) params.push_back(p);
  }
  return params;
}

std::string InceptionBlock::name() const {
  return "inception" + std::to_string(config_.total_out());
}

std::size_t InceptionBlock::ForwardMacs(const Shape& input_shape) const {
  std::size_t macs = b1_.ForwardMacs(input_shape);
  macs += b2_reduce_.ForwardMacs(input_shape);
  macs += b2_.ForwardMacs(b2_reduce_.OutputShape(input_shape));
  macs += b3_reduce_.ForwardMacs(input_shape);
  macs += b3_.ForwardMacs(b3_reduce_.OutputShape(input_shape));
  Shape padded = input_shape;
  padded[1] += 2;
  padded[2] += 2;
  macs += b4_pool_.ForwardMacs(padded);
  macs += b4_.ForwardMacs(input_shape);
  return macs;
}

Shape InceptionBlock::OutputShape(const Shape& input_shape) const {
  return {input_shape[0], input_shape[1], input_shape[2], config_.total_out()};
}

}  // namespace metro::zoo
