#pragma once

// Deep Q-learning agent (Sec. III-D).
//
// The paper's DRL component drives smart camera control (pan/zoom toward
// incidents). This is a standard DQN: an MLP Q-network, a frozen target
// network synced periodically, an experience-replay buffer, and epsilon-
// greedy exploration.

#include <deque>
#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace metro::zoo {

/// One environment step stored for replay.
struct Transition {
  std::vector<float> state;
  int action = 0;
  float reward = 0;
  std::vector<float> next_state;
  bool done = false;
};

/// Fixed-capacity FIFO replay buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void Add(Transition t);
  std::size_t size() const { return items_.size(); }

  /// Samples `n` transitions with replacement.
  std::vector<const Transition*> Sample(std::size_t n, Rng& rng) const;

 private:
  std::size_t capacity_;
  std::deque<Transition> items_;
};

/// DQN hyperparameters.
struct DqnConfig {
  std::vector<int> hidden = {32, 32};
  float gamma = 0.97f;
  float learning_rate = 1e-3f;
  std::size_t replay_capacity = 10'000;
  std::size_t batch_size = 32;
  int target_sync_interval = 100;  ///< train steps between target syncs
};

/// Deep Q-network agent over flat float observations.
class DqnAgent {
 public:
  DqnAgent(int state_dim, int num_actions, const DqnConfig& config, Rng& rng);

  /// Epsilon-greedy action for `state`.
  int Act(std::span<const float> state, float epsilon, Rng& rng);

  /// Greedy Q-values for `state` (diagnostics, evaluation).
  std::vector<float> QValues(std::span<const float> state);

  /// Stores a transition for replay.
  void Observe(Transition t);

  /// One minibatch TD update; returns the TD loss, or 0 if the buffer is
  /// still smaller than a batch. Syncs the target network on schedule.
  float TrainStep(Rng& rng);

  int num_actions() const { return num_actions_; }
  std::size_t replay_size() const { return replay_.size(); }

  /// Copies online weights into the target network.
  void SyncTarget();

 private:
  nn::Sequential BuildNet(Rng& rng) const;

  int state_dim_, num_actions_;
  DqnConfig config_;
  nn::Sequential online_;
  nn::Sequential target_;
  nn::Adam opt_;
  ReplayBuffer replay_;
  int steps_ = 0;
};

}  // namespace metro::zoo
