#include "zoo/behavior.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace metro::zoo {

SplitBehaviorNet::SplitBehaviorNet(const BehaviorConfig& config, Rng& rng)
    : config_(config),
      block1_(config.channels, config.block1_channels, 2, config.shortcut, rng),
      lstm1_(config.block1_channels, config.lstm1_hidden, rng),
      fc1_(config.lstm1_hidden, config.num_classes, rng),
      block2_(config.block1_channels, config.block2_channels, 2,
              config.shortcut, rng),
      block3_(config.block2_channels, config.block3_channels, 2,
              config.shortcut, rng),
      lstm2_(config.block3_channels, config.lstm2_hidden, rng),
      fc2_(config.lstm2_hidden, config.num_classes, rng) {
  block1_out_shape_ = block1_.OutputShape(
      {1, config.frame_size, config.frame_size, config.channels});
}

std::vector<nn::Tensor> SplitBehaviorNet::ToSequence(const nn::Tensor& flat,
                                                     int n_clips) const {
  const int t_len = config_.clip_length;
  assert(flat.rank() == 2 && flat.dim(0) == n_clips * t_len);
  const int features = flat.dim(1);
  std::vector<nn::Tensor> steps;
  steps.reserve(std::size_t(t_len));
  for (int t = 0; t < t_len; ++t) {
    nn::Tensor step({n_clips, features});
    for (int c = 0; c < n_clips; ++c) {
      const std::size_t src = std::size_t(c * t_len + t) * features;
      const std::size_t dst = std::size_t(c) * features;
      for (int f = 0; f < features; ++f) step[dst + f] = flat[src + f];
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

nn::Tensor SplitBehaviorNet::FromSequence(
    const std::vector<nn::Tensor>& steps) const {
  const int t_len = config_.clip_length;
  assert(int(steps.size()) == t_len);
  const int n_clips = steps.front().dim(0);
  const int features = steps.front().dim(1);
  nn::Tensor flat({n_clips * t_len, features});
  for (int t = 0; t < t_len; ++t) {
    for (int c = 0; c < n_clips; ++c) {
      const std::size_t dst = std::size_t(c * t_len + t) * features;
      const std::size_t src = std::size_t(c) * features;
      for (int f = 0; f < features; ++f) flat[dst + f] = steps[std::size_t(t)][src + f];
    }
  }
  return flat;
}

nn::Tensor SplitBehaviorNet::Block1(const nn::Tensor& frames, bool training) {
  return block1_.Forward(frames, training);
}

nn::Tensor SplitBehaviorNet::LocalLogits(const nn::Tensor& frames, int n_clips,
                                         bool training) {
  nn::Tensor b1 = block1_.Forward(frames, training);
  nn::Tensor f1 = gap1_.Forward(b1, training);
  auto outs = lstm1_.Forward(ToSequence(f1, n_clips), training);
  return fc1_.Forward(outs.back(), training);
}

nn::Tensor SplitBehaviorNet::ServerLogits(const nn::Tensor& block1_out,
                                          int n_clips, bool training) {
  nn::Tensor b3 = block3_.Forward(block2_.Forward(block1_out, training), training);
  nn::Tensor f2 = gap2_.Forward(b3, training);
  auto outs = lstm2_.Forward(ToSequence(f2, n_clips), training);
  return fc2_.Forward(outs.back(), training);
}

float SplitBehaviorNet::TrainStep(const std::vector<Clip>& batch,
                                  nn::Optimizer& opt) {
  const int n = int(batch.size());
  const int t_len = config_.clip_length;
  const int hw = config_.frame_size;
  const int ch = config_.channels;

  // Stack clips into (N*T, H, W, C), clip-major.
  nn::Tensor frames({n * t_len, hw, hw, ch});
  std::vector<int> labels(static_cast<std::size_t>(n));
  const std::size_t frame_elems = std::size_t(t_len) * hw * hw * ch;
  for (int c = 0; c < n; ++c) {
    const auto& clip = batch[std::size_t(c)];
    assert(clip.frames.size() == frame_elems);
    const std::size_t dst = std::size_t(c) * frame_elems;
    for (std::size_t i = 0; i < frame_elems; ++i) {
      frames[dst + i] = clip.frames[i];
    }
    labels[std::size_t(c)] = clip.label;
  }

  // --- Forward, both exits share block 1.
  nn::Tensor b1 = block1_.Forward(frames, true);

  nn::Tensor f1 = gap1_.Forward(b1, true);
  auto outs1 = lstm1_.Forward(ToSequence(f1, n), true);
  nn::Tensor logits1 = fc1_.Forward(outs1.back(), true);
  auto ce1 = tensor::CrossEntropyLoss(logits1, labels);

  nn::Tensor b2 = block2_.Forward(b1, true);
  nn::Tensor b3 = block3_.Forward(b2, true);
  nn::Tensor f2 = gap2_.Forward(b3, true);
  auto outs2 = lstm2_.Forward(ToSequence(f2, n), true);
  nn::Tensor logits2 = fc2_.Forward(outs2.back(), true);
  auto ce2 = tensor::CrossEntropyLoss(logits2, labels);

  // --- Backward: exit 1.
  nn::Tensor grad_h1 = fc1_.Backward(ce1.grad);
  std::vector<nn::Tensor> grad_steps1(std::size_t(t_len),
                                      nn::Tensor({n, config_.lstm1_hidden}));
  grad_steps1.back() = grad_h1;
  auto grad_x1 = lstm1_.Backward(grad_steps1);
  nn::Tensor grad_b1 = gap1_.Backward(FromSequence(grad_x1));

  // --- Backward: exit 2, accumulate into the shared block-1 gradient.
  nn::Tensor grad_h2 = fc2_.Backward(ce2.grad);
  std::vector<nn::Tensor> grad_steps2(std::size_t(t_len),
                                      nn::Tensor({n, config_.lstm2_hidden}));
  grad_steps2.back() = grad_h2;
  auto grad_x2 = lstm2_.Backward(grad_steps2);
  nn::Tensor grad_b3 = gap2_.Backward(FromSequence(grad_x2));
  grad_b1 += block2_.Backward(block3_.Backward(grad_b3));

  block1_.Backward(grad_b1);

  auto params = Params();
  nn::ClipGradNorm(params, 5.0f);
  opt.Step(params);
  return ce1.loss + ce2.loss;
}

SplitBehaviorNet::LocalPass SplitBehaviorNet::RunLocal(const Clip& clip) {
  LocalPass pass;
  pass.block1_out = block1_.Forward(clip.frames, false);
  nn::Tensor f1 = gap1_.Forward(pass.block1_out, false);
  auto outs = lstm1_.Forward(ToSequence(f1, 1), false);
  pass.logits = fc1_.Forward(outs.back(), false);
  nn::Tensor probs = tensor::Softmax(pass.logits);
  pass.entropy = tensor::Entropy(probs.data());
  return pass;
}

std::vector<float> SplitBehaviorNet::RunServer(const nn::Tensor& block1_out) {
  nn::Tensor logits = ServerLogits(block1_out, 1, false);
  nn::Tensor probs = tensor::Softmax(logits);
  return {probs.data().begin(), probs.data().end()};
}

BehaviorPrediction SplitBehaviorNet::Predict(const Clip& clip,
                                             float entropy_threshold) {
  LocalPass pass = RunLocal(clip);
  BehaviorPrediction pred;
  if (pass.entropy <= entropy_threshold) {
    nn::Tensor probs = tensor::Softmax(pass.logits);
    pred.probs.assign(probs.data().begin(), probs.data().end());
    pred.entropy = pass.entropy;
    pred.used_server = false;
  } else {
    pred.probs = RunServer(pass.block1_out);
    pred.entropy = tensor::Entropy(
        std::span<const float>(pred.probs.data(), pred.probs.size()));
    pred.used_server = true;
  }
  pred.label = int(std::max_element(pred.probs.begin(), pred.probs.end()) -
                   pred.probs.begin());
  return pred;
}

std::vector<nn::Param*> SplitBehaviorNet::Params() {
  std::vector<nn::Param*> params;
  auto add = [&params](std::vector<nn::Param*> ps) {
    params.insert(params.end(), ps.begin(), ps.end());
  };
  add(block1_.Params());
  add(lstm1_.Params());
  add(fc1_.Params());
  add(block2_.Params());
  add(block3_.Params());
  add(lstm2_.Params());
  add(fc2_.Params());
  return params;
}

std::vector<nn::Tensor*> SplitBehaviorNet::Buffers() {
  std::vector<nn::Tensor*> buffers;
  for (zoo::ResNetBlock* block : {&block1_, &block2_, &block3_}) {
    for (auto* b : block->Buffers()) buffers.push_back(b);
  }
  return buffers;
}

std::size_t SplitBehaviorNet::FeatureMapBytes() const {
  return tensor::NumElements(block1_out_shape_) * std::size_t(config_.clip_length) *
         sizeof(float);
}

std::size_t SplitBehaviorNet::LocalMacs() const {
  const int t_len = config_.clip_length;
  nn::Shape in = {t_len, config_.frame_size, config_.frame_size,
                  config_.channels};
  std::size_t macs = block1_.ForwardMacs(in);
  macs += lstm1_.ForwardMacs(t_len, 1);
  macs += fc1_.ForwardMacs({1, config_.lstm1_hidden});
  return macs;
}

std::size_t SplitBehaviorNet::ServerMacs() const {
  const int t_len = config_.clip_length;
  nn::Shape b1 = block1_out_shape_;
  b1[0] = t_len;
  std::size_t macs = block2_.ForwardMacs(b1);
  const nn::Shape b2 = block2_.OutputShape(b1);
  macs += block3_.ForwardMacs(b2);
  macs += lstm2_.ForwardMacs(t_len, 1);
  macs += fc2_.ForwardMacs({1, config_.lstm2_hidden});
  return macs;
}

}  // namespace metro::zoo
