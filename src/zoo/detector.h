#pragma once

// Split early-exit object detector (Fig. 5).
//
// The paper runs Tiny YOLO on the local device and, when the classification
// score falls below a threshold, ships the pre-branch feature map to an
// analysis server that runs the remaining YOLOv2 layers. This module is the
// same architecture at laptop scale: a shared stem computes the branch-point
// feature map; a tiny head decodes it locally; a deeper trunk + head decodes
// it on the server. Both heads emit a YOLO-style S x S grid of
// (objectness, box, class) predictions and train jointly.

#include <span>
#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace metro::zoo {

using nn::Tensor;

/// Geometry/capacity knobs for the detector pair.
struct DetectorConfig {
  int image_size = 32;    ///< square input, NHWC with `channels` channels
  int channels = 3;
  int grid = 4;           ///< S: predictions form an S x S grid
  int num_classes = 8;    ///< vehicle classes
  int stem_channels = 12; ///< channel width at the branch point
  float lambda_coord = 5.0f;   ///< YOLO-style loss weights
  float lambda_noobj = 0.5f;
};

/// Ground-truth object: class plus center/size in [0,1] image coordinates.
struct GroundTruthBox {
  int cls = 0;
  float cx = 0, cy = 0, w = 0, h = 0;
};

/// A decoded detection.
struct Detection {
  float score = 0;  ///< objectness * best class probability
  int cls = 0;
  float cx = 0, cy = 0, w = 0, h = 0;
};

/// Intersection-over-union of two center/size boxes.
float Iou(const Detection& a, const Detection& b);

/// Greedy non-maximum suppression; keeps detections above `score_floor`.
std::vector<Detection> Nms(std::vector<Detection> dets, float iou_thresh,
                           float score_floor);

/// Loss value and raw-output gradient for one head.
struct DetectLossResult {
  float loss = 0;
  Tensor grad;  ///< dL/d(raw head output), shape (N, S, S, 5 + C)
};

/// The Fig. 5 architecture: shared stem, tiny exit head, full trunk+head.
class SplitDetector {
 public:
  SplitDetector(const DetectorConfig& config, Rng& rng);

  const DetectorConfig& config() const { return config_; }

  /// Runs the shared stem: images (N, S*8, S*8-ish, C) -> branch feature map.
  Tensor Stem(const Tensor& images, bool training);

  /// The local ("Tiny YOLO") head over the branch feature map.
  Tensor TinyHead(const Tensor& stem_out, bool training);

  /// The server ("remaining YOLOv2 layers") trunk + head.
  Tensor FullHead(const Tensor& stem_out, bool training);

  /// YOLO-style loss for a head output against per-image ground truth.
  DetectLossResult DetectLoss(const Tensor& head_out,
                              const std::vector<std::vector<GroundTruthBox>>&
                                  truth) const;

  /// One joint training step on a batch (both exits supervised); returns the
  /// combined loss. The caller owns the optimizer schedule.
  float TrainStep(const Tensor& images,
                  const std::vector<std::vector<GroundTruthBox>>& truth,
                  nn::Optimizer& opt);

  /// Decodes a head output row into detections (pre-NMS).
  std::vector<Detection> Decode(const Tensor& head_out, int batch_index,
                                float score_floor) const;

  /// Span overload for arena-resident head outputs (DetectorSession): decodes
  /// without materializing a Tensor. `head_out` is the flat (N, S, S, 5+C)
  /// buffer.
  std::vector<Detection> Decode(std::span<const float> head_out,
                                int batch_index, float score_floor) const;

  /// Best detection score in one image's head output — the Fig. 5 exit gate.
  float Confidence(const Tensor& head_out, int batch_index) const;

  /// Span overload of the exit gate for arena-resident head outputs.
  float Confidence(std::span<const float> head_out, int batch_index) const;

  std::vector<nn::Param*> Params();

  /// Checkpoint buffers (BatchNorm running stats) across both halves.
  std::vector<nn::Tensor*> Buffers();

  /// Bytes of the branch-point feature map for one image — what an early-exit
  /// miss ships to the analysis server.
  std::size_t FeatureMapBytes() const;

  std::size_t StemMacs(int batch) const;
  std::size_t TinyHeadMacs(int batch) const;
  std::size_t FullHeadMacs(int batch) const;

  /// The three halves, exposed so DetectorSession can plan them.
  nn::Sequential& stem_net() { return stem_; }
  nn::Sequential& tiny_head_net() { return tiny_head_; }
  nn::Sequential& full_head_net() { return full_head_; }
  const nn::Shape& stem_out_shape() const { return stem_out_shape_; }

 private:
  DetectorConfig config_;
  nn::Sequential stem_;
  nn::Sequential tiny_head_;
  nn::Sequential full_head_;
  nn::Shape stem_out_shape_;  // for batch 1
};

}  // namespace metro::zoo
