#pragma once

// Inception-style CNN module (Sec. III-A: "Besides the regular CNNs, we
// also include inception types of CNN as used in the GoogleNet and the
// ResNet type of CNN").
//
// Four parallel branches over an NHWC input, concatenated along channels:
//   1) 1x1 conv
//   2) 1x1 reduce -> 3x3 conv
//   3) 1x1 reduce -> 5x5 conv
//   4) 3x3 max pool -> 1x1 projection
// Spatial size is preserved (stride 1, same padding), as in GoogLeNet.

#include <memory>

#include "nn/layer.h"

namespace metro::zoo {

/// Branch widths of an inception module.
struct InceptionConfig {
  int out_1x1 = 8;
  int reduce_3x3 = 4;
  int out_3x3 = 8;
  int reduce_5x5 = 2;
  int out_5x5 = 4;
  int out_pool = 4;

  int total_out() const { return out_1x1 + out_3x3 + out_5x5 + out_pool; }
};

/// GoogLeNet-style inception module as a single Layer.
class InceptionBlock final : public nn::Layer {
 public:
  InceptionBlock(int in_channels, const InceptionConfig& config, Rng& rng);

  nn::Tensor Forward(const nn::Tensor& x, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_out) override;
  void ForwardInto(const nn::TensorView& x, const nn::TensorView& out,
                   nn::InferenceContext& ctx) override;
  std::vector<nn::Param*> Params() override;
  std::string name() const override;
  std::size_t ForwardMacs(const nn::Shape& input_shape) const override;
  nn::Shape OutputShape(const nn::Shape& input_shape) const override;

  const InceptionConfig& config() const { return config_; }

 private:
  int cin_;
  InceptionConfig config_;

  nn::Conv2d b1_;               // 1x1
  nn::Conv2d b2_reduce_, b2_;   // 1x1 -> 3x3
  nn::Conv2d b3_reduce_, b3_;   // 1x1 -> 5x5
  nn::MaxPool2d b4_pool_;       // 3x3 pool (stride 1 via pad trick below)
  nn::Conv2d b4_;               // -> 1x1

  nn::Activation act1_, act2a_, act2b_, act3a_, act3b_, act4_;
  nn::Shape cached_in_shape_;
};

/// Concatenates NHWC tensors along the channel axis (equal N/H/W).
nn::Tensor ConcatChannels(const std::vector<const nn::Tensor*>& parts);

/// Splits an NHWC tensor's channels at the given widths (sum == C).
std::vector<nn::Tensor> SplitChannels(const nn::Tensor& x,
                                      const std::vector<int>& widths);

}  // namespace metro::zoo
