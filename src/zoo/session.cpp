#include "zoo/session.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "tensor/ops.h"

namespace metro::zoo {

namespace {

using nn::Shape;

std::string ShapeTag(const Shape& shape) {
  std::string s;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += 'x';
    s += std::to_string(shape[i]);
  }
  return s;
}

void EmitPlan(obs::SpanCollector* spans, const char* model, const char* stage,
              const Shape& input_shape) {
  if (spans == nullptr) return;
  spans->Event("infer.plan", spans->StartTrace(),
               {{"model", model},
                {"stage", stage},
                {"input", ShapeTag(input_shape)}});
}

/// Runs one planned half inside an `infer.exec` span; re-plans (batch-size
/// changes) additionally emit an `infer.plan` event.
TensorView RunPlanned(InferenceSession& session, const TensorView& in,
                      obs::SpanCollector* spans, const char* model,
                      const char* stage) {
  if (spans == nullptr) return session.Run(in);
  const std::int64_t replans_before = session.stats().replans;
  obs::Span span = spans->Begin("infer.exec", spans->StartTrace());
  span.SetTag("model", model);
  span.SetTag("stage", stage);
  TensorView out = session.Run(in);
  spans->End(std::move(span));
  if (session.stats().replans != replans_before) {
    EmitPlan(spans, model, stage, in.shape());
  }
  return out;
}

void EmitGate(obs::SpanCollector* spans, const char* model, bool offloaded) {
  if (spans == nullptr) return;
  spans->Event("infer.gate", spans->StartTrace(),
               {{"model", model}, {"exit", offloaded ? "server" : "local"}});
}

Shape DetectorImageShape(const SplitDetector& model, int batch) {
  const DetectorConfig& c = model.config();
  return {batch, c.image_size, c.image_size, c.channels};
}

Shape DetectorStemShape(const SplitDetector& model, int batch) {
  Shape s = model.stem_out_shape();
  s[0] = batch;
  return s;
}

Shape BehaviorFrameShape(const SplitBehaviorNet& model, int n_clips) {
  const BehaviorConfig& c = model.config();
  return {n_clips * c.clip_length, c.frame_size, c.frame_size, c.channels};
}

Shape BehaviorBlock1Shape(const SplitBehaviorNet& model, int n_clips) {
  Shape s = model.block1_out_shape();
  s[0] = n_clips * model.config().clip_length;
  return s;
}

/// Same interleaving arithmetic as zoo::ConcatCols, into borrowed storage.
METRO_NOALLOC
void ConcatColsInto(const TensorView& a, const TensorView& b,
                    const TensorView& out) {
  const int n = a.dim(0), da = a.dim(1), db = b.dim(1);
  assert(b.dim(0) == n && out.dim(0) == n && out.dim(1) == da + db);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < da; ++j) {
      out[std::size_t(i) * std::size_t(da + db) + std::size_t(j)] =
          a[std::size_t(i) * std::size_t(da) + std::size_t(j)];
    }
    for (int j = 0; j < db; ++j) {
      out[std::size_t(i) * std::size_t(da + db) + std::size_t(da + j)] =
          b[std::size_t(i) * std::size_t(db) + std::size_t(j)];
    }
  }
}

/// Same arithmetic as zoo::SplitCols, into borrowed storage.
METRO_NOALLOC
void SplitColsInto(const TensorView& x, const TensorView& a,
                   const TensorView& b) {
  const int n = x.dim(0), d = x.dim(1), da = a.dim(1), db = b.dim(1);
  assert(da + db == d && a.dim(0) == n && b.dim(0) == n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < da; ++j) {
      a[std::size_t(i) * std::size_t(da) + std::size_t(j)] =
          x[std::size_t(i) * std::size_t(d) + std::size_t(j)];
    }
    for (int j = 0; j < db; ++j) {
      b[std::size_t(i) * std::size_t(db) + std::size_t(j)] =
          x[std::size_t(i) * std::size_t(d) + std::size_t(da + j)];
    }
  }
}

}  // namespace

// --- DetectorSession ---

DetectorSession::DetectorSession(SplitDetector& model, int batch,
                                 Workspace& arena, ThreadPool* pool,
                                 obs::SpanCollector* spans)
    : model_(&model),
      arena_(&arena),
      spans_(spans),
      stem_(model.stem_net(), DetectorImageShape(model, batch), arena, pool),
      tiny_(model.tiny_head_net(), DetectorStemShape(model, batch), arena,
            pool),
      full_(model.full_head_net(), DetectorStemShape(model, batch), arena,
            pool) {
  EmitPlan(spans_, "detector", "stem", stem_.plan().input_shape());
  EmitPlan(spans_, "detector", "tiny_head", tiny_.plan().input_shape());
  EmitPlan(spans_, "detector", "full_head", full_.plan().input_shape());
}

TensorView DetectorSession::Stem(const TensorView& images) {
  return RunPlanned(stem_, images, spans_, "detector", "stem");
}

TensorView DetectorSession::TinyHead(const TensorView& stem_out) {
  return RunPlanned(tiny_, stem_out, spans_, "detector", "tiny_head");
}

TensorView DetectorSession::FullHead(const TensorView& stem_out) {
  return RunPlanned(full_, stem_out, spans_, "detector", "full_head");
}

std::vector<DetectorSession::Gated> DetectorSession::Detect(
    const TensorView& images, float threshold, float score_floor,
    float nms_iou) {
  const int n = images.dim(0);
  const TensorView stem_out = Stem(images);
  const TensorView tiny_out = TinyHead(stem_out);

  std::vector<Gated> results(static_cast<std::size_t>(n));
  bool any_offload = false;
  for (int i = 0; i < n; ++i) {
    Gated& g = results[std::size_t(i)];
    g.tiny_confidence =
        model_->Confidence(std::span<const float>(tiny_out.data()), i);
    g.offloaded = g.tiny_confidence < threshold;
    any_offload |= g.offloaded;
    EmitGate(spans_, "detector", g.offloaded);
  }

  if (any_offload) {
    // At least one image misses the local gate: run the server half once,
    // batched, and decode the offloaded images from it.
    const TensorView full_out = FullHead(stem_out);
    for (int i = 0; i < n; ++i) {
      Gated& g = results[std::size_t(i)];
      if (!g.offloaded) continue;
      g.detections =
          Nms(model_->Decode(std::span<const float>(full_out.data()), i,
                             score_floor),
              nms_iou, score_floor);
    }
  }
  for (int i = 0; i < n; ++i) {
    Gated& g = results[std::size_t(i)];
    if (g.offloaded) continue;
    g.detections = Nms(
        model_->Decode(std::span<const float>(tiny_out.data()), i, score_floor),
        nms_iou, score_floor);
  }
  return results;
}

// --- BehaviorSession ---

BehaviorSession::BehaviorSession(SplitBehaviorNet& model, int n_clips,
                                 Workspace& arena, ThreadPool* pool,
                                 obs::SpanCollector* spans)
    : model_(&model),
      arena_(&arena),
      spans_(spans),
      block1_(std::vector<nn::Layer*>{&model.block1()},
              BehaviorFrameShape(model, n_clips), arena, pool),
      gap1_(std::vector<nn::Layer*>{&model.gap1()},
            BehaviorBlock1Shape(model, n_clips), arena, pool),
      server_(std::vector<nn::Layer*>{&model.block2(), &model.block3(),
                                      &model.gap2()},
              BehaviorBlock1Shape(model, n_clips), arena, pool) {
  EmitPlan(spans_, "behavior", "block1", block1_.plan().input_shape());
  EmitPlan(spans_, "behavior", "gap1", gap1_.plan().input_shape());
  EmitPlan(spans_, "behavior", "server", server_.plan().input_shape());
}

BehaviorSession::LocalPass BehaviorSession::RunLocal(const TensorView& frames,
                                                     int n_clips) {
  LocalPass pass;
  pass.block1_out = RunPlanned(block1_, frames, spans_, "behavior", "block1");
  const TensorView f1 =
      RunPlanned(gap1_, pass.block1_out, spans_, "behavior", "gap1");
  // The recurrent/classifier tail stays eager (cache-free in inference).
  auto outs = model_->lstm1().Forward(model_->ToSequence(f1.ToTensor(), n_clips),
                                      false);
  pass.logits = model_->fc1().Forward(outs.back(), false);

  const nn::Tensor probs = tensor::Softmax(pass.logits);
  const int classes = pass.logits.dim(1);
  pass.entropy.reserve(std::size_t(n_clips));
  for (int c = 0; c < n_clips; ++c) {
    pass.entropy.push_back(tensor::Entropy(std::span<const float>(
        probs.data().data() + std::size_t(c) * classes, std::size_t(classes))));
  }
  return pass;
}

nn::Tensor BehaviorSession::ServerLogits(const TensorView& block1_out,
                                         int n_clips) {
  const TensorView f2 =
      RunPlanned(server_, block1_out, spans_, "behavior", "server");
  auto outs = model_->lstm2().Forward(model_->ToSequence(f2.ToTensor(), n_clips),
                                      false);
  return model_->fc2().Forward(outs.back(), false);
}

BehaviorPrediction BehaviorSession::Predict(const Clip& clip,
                                            float entropy_threshold) {
  LocalPass pass = RunLocal(TensorView::OfConst(clip.frames), 1);
  BehaviorPrediction pred;
  if (pass.entropy.front() <= entropy_threshold) {
    const nn::Tensor probs = tensor::Softmax(pass.logits);
    pred.probs.assign(probs.data().begin(), probs.data().end());
    pred.entropy = pass.entropy.front();
    pred.used_server = false;
  } else {
    const nn::Tensor logits = ServerLogits(pass.block1_out, 1);
    const nn::Tensor probs = tensor::Softmax(logits);
    pred.probs.assign(probs.data().begin(), probs.data().end());
    pred.entropy = tensor::Entropy(
        std::span<const float>(pred.probs.data(), pred.probs.size()));
    pred.used_server = true;
  }
  EmitGate(spans_, "behavior", pred.used_server);
  pred.label = int(std::max_element(pred.probs.begin(), pred.probs.end()) -
                   pred.probs.begin());
  return pred;
}

// --- FusionSession ---

FusionSession::FusionSession(MultiModalAutoencoder& model, int batch,
                             Workspace& arena, ThreadPool* pool,
                             obs::SpanCollector* spans)
    : model_(&model),
      arena_(&arena),
      spans_(spans),
      enc_a_(model.enc_a_net(), {batch, model.config().dim_a}, arena, pool),
      enc_b_(model.enc_b_net(), {batch, model.config().dim_b}, arena, pool),
      enc_joint_(model.enc_joint_net(), {batch, 2 * model.config().hidden},
                 arena, pool),
      dec_joint_(model.dec_joint_net(), {batch, model.config().bottleneck},
                 arena, pool),
      dec_a_(model.dec_a_net(), {batch, model.config().hidden}, arena, pool),
      dec_b_(model.dec_b_net(), {batch, model.config().hidden}, arena, pool) {
  EnsureStaging(batch);
  EmitPlan(spans_, "fusion", "encode", enc_a_.plan().input_shape());
  EmitPlan(spans_, "fusion", "decode", dec_joint_.plan().input_shape());
}

void FusionSession::EnsureStaging(int batch) {
  if (batch <= staging_batch_) return;
  const std::size_t h = std::size_t(model_->config().hidden);
  concat_ = arena_->Alloc(std::size_t(batch) * 2 * h);
  split_a_ = arena_->Alloc(std::size_t(batch) * h);
  split_b_ = arena_->Alloc(std::size_t(batch) * h);
  staging_batch_ = batch;
}

nn::Tensor FusionSession::Encode(const TensorView& a, const TensorView& b) {
  const int n = a.dim(0);
  EnsureStaging(n);
  const int h = model_->config().hidden;
  const TensorView ha = RunPlanned(enc_a_, a, spans_, "fusion", "enc_a");
  const TensorView hb = RunPlanned(enc_b_, b, spans_, "fusion", "enc_b");
  const TensorView cat({n, 2 * h}, concat_.first(std::size_t(n) * 2 * h));
  ConcatColsInto(ha, hb, cat);
  return RunPlanned(enc_joint_, cat, spans_, "fusion", "enc_joint").ToTensor();
}

MultiModalAutoencoder::Reconstruction FusionSession::Decode(
    const TensorView& code) {
  const int n = code.dim(0);
  EnsureStaging(n);
  const int h = model_->config().hidden;
  const TensorView hj =
      RunPlanned(dec_joint_, code, spans_, "fusion", "dec_joint");
  const TensorView va({n, h}, split_a_.first(std::size_t(n) * h));
  const TensorView vb({n, h}, split_b_.first(std::size_t(n) * h));
  SplitColsInto(hj, va, vb);
  return {RunPlanned(dec_a_, va, spans_, "fusion", "dec_a").ToTensor(),
          RunPlanned(dec_b_, vb, spans_, "fusion", "dec_b").ToTensor()};
}

float FusionSession::ReconstructionError(const nn::Tensor& a,
                                         const nn::Tensor& b) {
  const nn::Tensor code = Encode(TensorView::OfConst(a), TensorView::OfConst(b));
  const auto recon = Decode(TensorView::OfConst(code));
  // Same accumulation order as MultiModalAutoencoder::ReconstructionError.
  double loss = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = recon.a[i] - a[i];
    loss += double(d) * d / double(a.size());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const float d = recon.b[i] - b[i];
    loss += double(d) * d / double(b.size());
  }
  return float(loss);
}

}  // namespace metro::zoo
