#pragma once

// Multi-modal fusion via deep autoencoders (Sec. III-C).
//
// Two modality-specific encoders (e.g. video features and audio features for
// gunshot detection) meet in a shared bottleneck whose activations are the
// fused representation; decoders reconstruct both inputs. Following the
// multimodal-autoencoder recipe, training randomly drops a modality so the
// fused code learns cross-modal structure and inference tolerates a missing
// channel.

#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace metro::zoo {

using nn::Tensor;

/// Layer widths of the fusion autoencoder.
struct FusionConfig {
  int dim_a = 16;       ///< modality A feature width (e.g. video embedding)
  int dim_b = 8;        ///< modality B feature width (e.g. audio embedding)
  int hidden = 24;      ///< per-modality encoder width
  int bottleneck = 12;  ///< fused representation width
  float modality_dropout = 0.3f;  ///< chance a modality is zeroed in training
};

/// Deep autoencoder that fuses two feature modalities.
class MultiModalAutoencoder {
 public:
  MultiModalAutoencoder(const FusionConfig& config, Rng& rng);

  const FusionConfig& config() const { return config_; }

  /// Fused bottleneck code for a batch: a (N, dim_a), b (N, dim_b).
  /// Either input may be a zero tensor to model a missing modality.
  Tensor Encode(const Tensor& a, const Tensor& b, bool training);

  /// Reconstructions of both modalities from a fused code.
  struct Reconstruction {
    Tensor a, b;
  };
  Reconstruction Decode(const Tensor& code, bool training);

  /// One denoising training step (MSE on both reconstructions against the
  /// *unmasked* inputs); returns the batch loss.
  float TrainStep(const Tensor& a, const Tensor& b, nn::Optimizer& opt,
                  Rng& rng);

  /// Mean reconstruction error of a batch (no training, no modality drop).
  float ReconstructionError(const Tensor& a, const Tensor& b);

  std::vector<nn::Param*> Params();

  /// The six stages, exposed so FusionSession can plan them.
  nn::Sequential& enc_a_net() { return enc_a_; }
  nn::Sequential& enc_b_net() { return enc_b_; }
  nn::Sequential& enc_joint_net() { return enc_joint_; }
  nn::Sequential& dec_joint_net() { return dec_joint_; }
  nn::Sequential& dec_a_net() { return dec_a_; }
  nn::Sequential& dec_b_net() { return dec_b_; }

 private:
  FusionConfig config_;
  nn::Sequential enc_a_, enc_b_;   // per-modality encoders -> hidden
  nn::Sequential enc_joint_;       // concat(hidden, hidden) -> bottleneck
  nn::Sequential dec_joint_;       // bottleneck -> concat widths
  nn::Sequential dec_a_, dec_b_;   // -> reconstructions
};

/// Concatenates two (N, Da) and (N, Db) tensors along columns.
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Splits a (N, Da+Db) tensor back into (N, Da) and (N, Db).
std::pair<Tensor, Tensor> SplitCols(const Tensor& x, int da);

}  // namespace metro::zoo
