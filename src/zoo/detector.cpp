#include "zoo/detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace metro::zoo {

using nn::ActKind;
using nn::Activation;
using nn::BatchNorm;
using nn::Conv2d;
using nn::MaxPool2d;

namespace {

float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

float Iou(const Detection& a, const Detection& b) {
  const float ax0 = a.cx - a.w / 2, ax1 = a.cx + a.w / 2;
  const float ay0 = a.cy - a.h / 2, ay1 = a.cy + a.h / 2;
  const float bx0 = b.cx - b.w / 2, bx1 = b.cx + b.w / 2;
  const float by0 = b.cy - b.h / 2, by1 = b.cy + b.h / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float uni = a.w * a.h + b.w * b.h - inter;
  return uni <= 0 ? 0.0f : inter / uni;
}

std::vector<Detection> Nms(std::vector<Detection> dets, float iou_thresh,
                           float score_floor) {
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  std::vector<Detection> kept;
  kept.reserve(dets.size());
  for (const Detection& d : dets) {
    if (d.score < score_floor) break;
    const bool suppressed = std::any_of(
        kept.begin(), kept.end(),
        [&](const Detection& k) { return Iou(k, d) > iou_thresh; });
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

SplitDetector::SplitDetector(const DetectorConfig& config, Rng& rng)
    : config_(config) {
  assert(config_.image_size == config_.grid * 8 &&
         "stem downsamples 8x: image_size must be grid * 8");
  const int c = config_.channels;
  const int sc = config_.stem_channels;
  const int out = 5 + config_.num_classes;

  // Shared stem: two conv+pool stages, 8x spatial reduction overall counting
  // the heads' stride-2 stages below (stem itself is 4x).
  stem_.Emplace<Conv2d>(c, 8, 3, 1, 1, rng)
      .Emplace<BatchNorm>(8)
      .Emplace<Activation>(ActKind::kLeakyRelu)
      .Emplace<MaxPool2d>(2, 2)
      .Emplace<Conv2d>(8, sc, 3, 1, 1, rng)
      .Emplace<BatchNorm>(sc)
      .Emplace<Activation>(ActKind::kLeakyRelu)
      .Emplace<MaxPool2d>(2, 2);

  // Local exit: one stride-2 conv then a 1x1 prediction conv.
  tiny_head_.Emplace<Conv2d>(sc, 16, 3, 2, 1, rng)
      .Emplace<Activation>(ActKind::kLeakyRelu)
      .Emplace<Conv2d>(16, out, 1, 1, 0, rng);

  // Server path: deeper trunk, then the prediction conv.
  full_head_.Emplace<Conv2d>(sc, 24, 3, 1, 1, rng)
      .Emplace<BatchNorm>(24)
      .Emplace<Activation>(ActKind::kLeakyRelu)
      .Emplace<MaxPool2d>(2, 2)
      .Emplace<Conv2d>(24, 32, 3, 1, 1, rng)
      .Emplace<BatchNorm>(32)
      .Emplace<Activation>(ActKind::kLeakyRelu)
      .Emplace<Conv2d>(32, out, 1, 1, 0, rng);

  stem_out_shape_ = stem_.OutputShape(
      {1, config_.image_size, config_.image_size, config_.channels});
}

Tensor SplitDetector::Stem(const Tensor& images, bool training) {
  return stem_.Forward(images, training);
}

Tensor SplitDetector::TinyHead(const Tensor& stem_out, bool training) {
  return tiny_head_.Forward(stem_out, training);
}

Tensor SplitDetector::FullHead(const Tensor& stem_out, bool training) {
  return full_head_.Forward(stem_out, training);
}

DetectLossResult SplitDetector::DetectLoss(
    const Tensor& head_out,
    const std::vector<std::vector<GroundTruthBox>>& truth) const {
  const int n = head_out.dim(0);
  const int s = config_.grid;
  const int nc = config_.num_classes;
  const int depth = 5 + nc;
  assert(head_out.dim(1) == s && head_out.dim(2) == s &&
         head_out.dim(3) == depth && int(truth.size()) == n);

  DetectLossResult res;
  res.grad = Tensor(head_out.shape());
  const float invn = 1.0f / float(n);

  // Per-cell responsible ground truth (or -1).
  std::vector<int> cell_gt(std::size_t(s) * s);
  std::vector<float> probs(static_cast<std::size_t>(nc));

  for (int b = 0; b < n; ++b) {
    std::fill(cell_gt.begin(), cell_gt.end(), -1);
    const auto& boxes = truth[std::size_t(b)];
    for (std::size_t gi = 0; gi < boxes.size(); ++gi) {
      const auto& g = boxes[gi];
      const int cx = std::clamp(int(g.cx * s), 0, s - 1);
      const int cy = std::clamp(int(g.cy * s), 0, s - 1);
      if (cell_gt[std::size_t(cy) * s + cx] < 0) {
        cell_gt[std::size_t(cy) * s + cx] = int(gi);
      }
    }

    for (int cy = 0; cy < s; ++cy) {
      for (int cx = 0; cx < s; ++cx) {
        const std::size_t base =
            ((std::size_t(b) * s + cy) * s + cx) * depth;
        const float to = head_out[base];
        const float o = SigmoidF(to);
        float* gr = &res.grad.data()[base];
        const int gi = cell_gt[std::size_t(cy) * s + cx];

        if (gi < 0) {
          // No object: push objectness to 0.
          res.loss += config_.lambda_noobj * o * o * invn;
          gr[0] += 2 * config_.lambda_noobj * o * o * (1 - o) * invn;
          continue;
        }
        const auto& g = boxes[std::size_t(gi)];
        // Objectness toward 1.
        res.loss += (o - 1) * (o - 1) * invn;
        gr[0] += 2 * (o - 1) * o * (1 - o) * invn;

        // Box coordinates (sigmoid-squashed raw values).
        const float targets[4] = {g.cx * s - float(cx), g.cy * s - float(cy),
                                  g.w, g.h};
        for (int k = 0; k < 4; ++k) {
          const float tv = head_out[base + 1 + k];
          const float v = SigmoidF(tv);
          const float d = v - targets[k];
          res.loss += config_.lambda_coord * d * d * invn;
          gr[1 + k] += 2 * config_.lambda_coord * d * v * (1 - v) * invn;
        }

        // Class cross-entropy over softmax of the trailing logits.
        float mx = head_out[base + 5];
        for (int k = 1; k < nc; ++k) mx = std::max(mx, head_out[base + 5 + k]);
        float sum = 0;
        for (int k = 0; k < nc; ++k) {
          probs[std::size_t(k)] = std::exp(head_out[base + 5 + k] - mx);
          sum += probs[std::size_t(k)];
        }
        for (auto& p : probs) p /= sum;
        res.loss -= std::log(std::max(probs[std::size_t(g.cls)], 1e-12f)) * invn;
        for (int k = 0; k < nc; ++k) {
          gr[5 + k] += (probs[std::size_t(k)] - (k == g.cls ? 1.0f : 0.0f)) * invn;
        }
      }
    }
  }
  return res;
}

float SplitDetector::TrainStep(
    const Tensor& images, const std::vector<std::vector<GroundTruthBox>>& truth,
    nn::Optimizer& opt) {
  Tensor stem_out = Stem(images, true);

  Tensor tiny_out = TinyHead(stem_out, true);
  DetectLossResult tiny_loss = DetectLoss(tiny_out, truth);

  Tensor full_out = FullHead(stem_out, true);
  DetectLossResult full_loss = DetectLoss(full_out, truth);

  Tensor stem_grad = tiny_head_.Backward(tiny_loss.grad);
  stem_grad += full_head_.Backward(full_loss.grad);
  stem_.Backward(stem_grad);

  auto params = Params();
  nn::ClipGradNorm(params, 5.0f);
  opt.Step(params);
  return tiny_loss.loss + full_loss.loss;
}

std::vector<Detection> SplitDetector::Decode(const Tensor& head_out,
                                             int batch_index,
                                             float score_floor) const {
  return Decode(std::span<const float>(head_out.data()), batch_index,
                score_floor);
}

std::vector<Detection> SplitDetector::Decode(std::span<const float> head_out,
                                             int batch_index,
                                             float score_floor) const {
  const int s = config_.grid;
  const int nc = config_.num_classes;
  const int depth = 5 + nc;
  std::vector<Detection> dets;
  dets.reserve(std::size_t(s) * std::size_t(s));
  for (int cy = 0; cy < s; ++cy) {
    for (int cx = 0; cx < s; ++cx) {
      const std::size_t base =
          ((std::size_t(batch_index) * s + cy) * s + cx) * depth;
      const float o = SigmoidF(head_out[base]);
      float mx = head_out[base + 5];
      int best = 0;
      for (int k = 1; k < nc; ++k) {
        if (head_out[base + 5 + k] > mx) {
          mx = head_out[base + 5 + k];
          best = k;
        }
      }
      float sum = 0;
      for (int k = 0; k < nc; ++k) sum += std::exp(head_out[base + 5 + k] - mx);
      const float pbest = 1.0f / sum;  // exp(0)/sum
      Detection d;
      d.score = o * pbest;
      if (d.score < score_floor) continue;
      d.cls = best;
      d.cx = (float(cx) + SigmoidF(head_out[base + 1])) / float(s);
      d.cy = (float(cy) + SigmoidF(head_out[base + 2])) / float(s);
      d.w = SigmoidF(head_out[base + 3]);
      d.h = SigmoidF(head_out[base + 4]);
      dets.push_back(d);
    }
  }
  return dets;
}

float SplitDetector::Confidence(const Tensor& head_out, int batch_index) const {
  return Confidence(std::span<const float>(head_out.data()), batch_index);
}

float SplitDetector::Confidence(std::span<const float> head_out,
                                int batch_index) const {
  // Allocation-free max over the per-cell scores (same arithmetic as
  // Decode) — this runs on every frame as the Fig. 5 exit gate.
  const int s = config_.grid;
  const int nc = config_.num_classes;
  const int depth = 5 + nc;
  float best = 0.0f;
  for (int cy = 0; cy < s; ++cy) {
    for (int cx = 0; cx < s; ++cx) {
      const std::size_t base =
          ((std::size_t(batch_index) * s + cy) * s + cx) * depth;
      const float o = SigmoidF(head_out[base]);
      float mx = head_out[base + 5];
      for (int k = 1; k < nc; ++k) {
        mx = std::max(mx, head_out[base + 5 + k]);
      }
      float sum = 0;
      for (int k = 0; k < nc; ++k) sum += std::exp(head_out[base + 5 + k] - mx);
      best = std::max(best, o * (1.0f / sum));
    }
  }
  return best;
}

std::vector<nn::Param*> SplitDetector::Params() {
  std::vector<nn::Param*> params = stem_.Params();
  for (auto* p : tiny_head_.Params()) params.push_back(p);
  for (auto* p : full_head_.Params()) params.push_back(p);
  return params;
}

std::vector<nn::Tensor*> SplitDetector::Buffers() {
  std::vector<nn::Tensor*> buffers = stem_.Buffers();
  for (auto* b : tiny_head_.Buffers()) buffers.push_back(b);
  for (auto* b : full_head_.Buffers()) buffers.push_back(b);
  return buffers;
}

std::size_t SplitDetector::FeatureMapBytes() const {
  return tensor::NumElements(stem_out_shape_) * sizeof(float);
}

std::size_t SplitDetector::StemMacs(int batch) const {
  return stem_.ForwardMacs(
      {batch, config_.image_size, config_.image_size, config_.channels});
}

std::size_t SplitDetector::TinyHeadMacs(int batch) const {
  nn::Shape in = stem_out_shape_;
  in[0] = batch;
  return tiny_head_.ForwardMacs(in);
}

std::size_t SplitDetector::FullHeadMacs(int batch) const {
  nn::Shape in = stem_out_shape_;
  in[0] = batch;
  return full_head_.ForwardMacs(in);
}

}  // namespace metro::zoo
