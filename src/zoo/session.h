#pragma once

// Arena-backed inference sessions for the zoo models.
//
// Each session binds a split model's halves to nn::InferenceSession plans
// sharing ONE tensor::Workspace, mirroring the paper's deployment: the local
// half runs on the fog node, the cut-point activation stays live in the
// arena, and the server half continues from it without a copy when the gate
// offloads (Figs. 5 and 7). Steady-state runs perform no heap allocation
// inside the planned halves; only the small recurrent/classifier tails
// (LSTM, Dense logits) and result containers still allocate.
//
// When an obs::SpanCollector is attached, sessions emit
//   infer.plan  — once per (re)plan, tagged with the model and batch shape
//   infer.exec  — per planned half executed (stage tag: stem/tiny/full/...)
//   infer.gate  — event marking each early-exit decision (exit=local|server)
// on the collector's clock. Fog simulations keep their own sim-clock
// collector; inference spans are wall-clock and belong to a separate one.
//
// Every session output is bit-exact with the eager `Forward(x, false)` path
// of its model (enforced by tests/inference_parity_test.cpp).

#include <span>
#include <vector>

#include "nn/inference.h"
#include "obs/trace.h"
#include "util/analysis.h"
#include "zoo/behavior.h"
#include "zoo/detector.h"
#include "zoo/fusion.h"

namespace metro::zoo {

using nn::InferenceSession;
using tensor::TensorView;
using tensor::Workspace;

/// Fig. 5 split detector bound to one arena: stem, tiny head and full head
/// planned as three sessions with disjoint slots, so the stem output remains
/// valid while either head (or both) consumes it.
class DetectorSession {
 public:
  DetectorSession(SplitDetector& model, int batch, Workspace& arena,
                  ThreadPool* pool = nullptr,
                  obs::SpanCollector* spans = nullptr);

  /// Planned halves. Returned views live in the arena and stay valid until
  /// the next run of the same half.
  TensorView Stem(const TensorView& images) METRO_LIFETIME_BOUND;
  TensorView TinyHead(const TensorView& stem_out) METRO_LIFETIME_BOUND;
  TensorView FullHead(const TensorView& stem_out) METRO_LIFETIME_BOUND;

  /// One image's gated outcome from Detect().
  struct Gated {
    std::vector<Detection> detections;  ///< post-NMS, from the winning head
    float tiny_confidence = 0;
    bool offloaded = false;
  };

  /// Batched early-exit inference: stem + tiny head run for every image; the
  /// full head runs (batched) only when at least one image's local
  /// confidence misses `threshold`. Bit-exact per image with the eager
  /// gate in apps::VehicleDetectionApp::ProcessFrame.
  std::vector<Gated> Detect(const TensorView& images, float threshold,
                            float score_floor = 0.1f, float nms_iou = 0.4f);

  SplitDetector& model() { return *model_; }
  Workspace& arena() METRO_LIFETIME_BOUND { return *arena_; }

 private:
  TensorView RunHalf(InferenceSession& session, const char* stage,
                     const TensorView& in) METRO_LIFETIME_BOUND;

  SplitDetector* model_;
  Workspace* arena_;
  obs::SpanCollector* spans_;
  InferenceSession stem_;
  InferenceSession tiny_;
  InferenceSession full_;
};

/// Fig. 7 split behavior recognizer bound to one arena. The convolutional
/// trunk (block1 / blocks2-3 + the global pools) is planned; the LSTM and
/// Dense tails stay eager (they no longer cache in inference, so the cost is
/// their small output tensors).
class BehaviorSession {
 public:
  BehaviorSession(SplitBehaviorNet& model, int n_clips, Workspace& arena,
                  ThreadPool* pool = nullptr,
                  obs::SpanCollector* spans = nullptr);

  /// Local half over clip-major stacked frames (n_clips*T, H, W, C).
  struct LocalPass {
    nn::Tensor logits;            ///< exit-1 logits (n_clips, classes)
    TensorView block1_out;        ///< cut-point features, arena-resident
    std::vector<float> entropy;   ///< per-clip exit-1 entropy (nats)
  };
  LocalPass RunLocal(const TensorView& frames, int n_clips);

  /// Server half continuing from a (possibly arena-resident) block-1 map.
  nn::Tensor ServerLogits(const TensorView& block1_out, int n_clips);

  /// Entropy-gated prediction for one clip; bit-exact with
  /// SplitBehaviorNet::Predict.
  BehaviorPrediction Predict(const Clip& clip, float entropy_threshold);

  SplitBehaviorNet& model() { return *model_; }
  Workspace& arena() METRO_LIFETIME_BOUND { return *arena_; }

 private:
  SplitBehaviorNet* model_;
  Workspace* arena_;
  obs::SpanCollector* spans_;
  InferenceSession block1_;
  InferenceSession gap1_;
  InferenceSession server_;  ///< block2 -> block3 -> gap2
};

/// Sec. III-C fusion autoencoder bound to one arena: the six Dense stages
/// are planned; the concat/split glue runs through persistent arena staging
/// buffers.
class FusionSession {
 public:
  FusionSession(MultiModalAutoencoder& model, int batch, Workspace& arena,
                ThreadPool* pool = nullptr,
                obs::SpanCollector* spans = nullptr);

  /// Fused bottleneck code; bit-exact with model.Encode(a, b, false).
  nn::Tensor Encode(const TensorView& a, const TensorView& b);

  /// Reconstructions; bit-exact with model.Decode(code, false).
  MultiModalAutoencoder::Reconstruction Decode(const TensorView& code);

  /// Mean reconstruction error; bit-exact with model.ReconstructionError.
  float ReconstructionError(const nn::Tensor& a, const nn::Tensor& b);

  MultiModalAutoencoder& model() { return *model_; }

 private:
  void EnsureStaging(int batch);

  MultiModalAutoencoder* model_;
  Workspace* arena_;
  obs::SpanCollector* spans_;
  InferenceSession enc_a_, enc_b_, enc_joint_;
  InferenceSession dec_joint_, dec_a_, dec_b_;
  std::span<float> concat_;          ///< (batch, 2*hidden) encoder staging
  std::span<float> split_a_, split_b_;  ///< (batch, hidden) decoder staging
  int staging_batch_ = 0;
};

}  // namespace metro::zoo
