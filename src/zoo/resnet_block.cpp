#include "zoo/resnet_block.h"

#include <cassert>

namespace metro::zoo {

ResNetBlock::ResNetBlock(int in_channels, int out_channels, int stride,
                         ShortcutKind shortcut, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      stride_(stride),
      shortcut_(shortcut),
      conv1_(in_channels, out_channels, 3, stride, 1, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      bn2_(out_channels) {
  switch (shortcut_) {
    case ShortcutKind::kConv:
      conv_sc_ = std::make_unique<nn::Conv2d>(in_channels, out_channels, 1,
                                              stride, 0, rng);
      break;
    case ShortcutKind::kIdentity:
      assert(stride == 1 && in_channels == out_channels &&
             "identity shortcut requires matching shapes");
      break;
    case ShortcutKind::kMaxPool:
      assert(out_channels >= in_channels &&
             "max-pool shortcut pads channels, it cannot drop them");
      if (stride > 1) {
        pool_sc_ = std::make_unique<nn::MaxPool2d>(stride, stride);
      }
      break;
  }
}

Tensor ResNetBlock::ShortcutForward(const Tensor& x, bool training) {
  switch (shortcut_) {
    case ShortcutKind::kConv:
      return conv_sc_->Forward(x, training);
    case ShortcutKind::kIdentity:
      return x;
    case ShortcutKind::kMaxPool: {
      Tensor pooled = pool_sc_ ? pool_sc_->Forward(x, training) : x;
      if (cout_ == cin_) return pooled;
      // Zero-pad the channel dimension up to cout_.
      Tensor padded({pooled.dim(0), pooled.dim(1), pooled.dim(2), cout_});
      const int pix = pooled.dim(0) * pooled.dim(1) * pooled.dim(2);
      for (int p = 0; p < pix; ++p) {
        for (int ch = 0; ch < cin_; ++ch) {
          padded[std::size_t(p) * cout_ + ch] = pooled[std::size_t(p) * cin_ + ch];
        }
      }
      return padded;
    }
  }
  return x;
}

Tensor ResNetBlock::ShortcutBackward(const Tensor& grad) {
  switch (shortcut_) {
    case ShortcutKind::kConv:
      return conv_sc_->Backward(grad);
    case ShortcutKind::kIdentity:
      return grad;
    case ShortcutKind::kMaxPool: {
      Tensor g = grad;
      if (cout_ != cin_) {
        // Drop gradients flowing into the zero-padded channels.
        Tensor trimmed({grad.dim(0), grad.dim(1), grad.dim(2), cin_});
        const int pix = grad.dim(0) * grad.dim(1) * grad.dim(2);
        for (int p = 0; p < pix; ++p) {
          for (int ch = 0; ch < cin_; ++ch) {
            trimmed[std::size_t(p) * cin_ + ch] = grad[std::size_t(p) * cout_ + ch];
          }
        }
        g = std::move(trimmed);
      }
      return pool_sc_ ? pool_sc_->Backward(g) : g;
    }
  }
  return grad;
}

Tensor ResNetBlock::Forward(const Tensor& x, bool training) {
  if (training) cached_in_shape_ = x.shape();
  Tensor main = bn1_.Forward(conv1_.Forward(x, training), training);
  if (training) cached_main_preact_ = main;
  main = tensor::ReluForward(main);
  main = bn2_.Forward(conv2_.Forward(main, training), training);

  Tensor sc = ShortcutForward(x, training);
  assert(sc.shape() == main.shape());
  main += sc;
  if (training) cached_preact_ = main;
  return tensor::ReluForward(main);
}

METRO_NOALLOC
void ResNetBlock::ForwardInto(const nn::TensorView& x,
                              const nn::TensorView& out,
                              nn::InferenceContext& ctx) {
  using tensor::TensorView;
  if (!ctx.scratch) {
    Layer::ForwardInto(x, out, ctx);
    return;
  }
  // Main path: conv1 -> bn1 -> relu runs in block-local scratch; conv2 writes
  // straight into `out` (distinct from `x` by the engine's ping-pong rule),
  // then bn2 / the residual add / the final relu execute in place on `out`.
  const Shape mid_shape = conv1_.OutputShape(x.shape());
  TensorView mid = ctx.scratch->AllocView(mid_shape);
  conv1_.ForwardInto(x, mid, ctx);
  bn1_.ForwardInto(mid, mid, ctx);
  tensor::ReluInto(mid, mid);
  conv2_.ForwardInto(mid, out, ctx);
  bn2_.ForwardInto(out, out, ctx);

  switch (shortcut_) {
    case ShortcutKind::kConv: {
      TensorView sc = ctx.scratch->AllocView(out.shape());
      conv_sc_->ForwardInto(x, sc, ctx);
      tensor::AddInto(out, sc, out);
      break;
    }
    case ShortcutKind::kIdentity:
      tensor::AddInto(out, x, out);
      break;
    case ShortcutKind::kMaxPool: {
      TensorView pooled = x;
      if (pool_sc_) {
        pooled = ctx.scratch->AllocView(pool_sc_->OutputShape(x.shape()));
        pool_sc_->ForwardInto(x, pooled, ctx);
      }
      if (cout_ == cin_) {
        tensor::AddInto(out, pooled, out);
      } else {
        // Add the pooled channels; the zero-padded tail contributes nothing.
        const float* pd = pooled.data().data();
        float* od = out.data().data();
        const std::size_t pix = pooled.size() / std::size_t(cin_);
        for (std::size_t p = 0; p < pix; ++p) {
          float* opx = &od[p * std::size_t(cout_)];
          const float* ppx = &pd[p * std::size_t(cin_)];
          for (int ch = 0; ch < cin_; ++ch) opx[ch] += ppx[ch];
          // Eager adds the zero padding too; keep the identical += 0.0f so
          // signed zeros normalize the same way (bit-exactness contract).
          for (int ch = cin_; ch < cout_; ++ch) opx[ch] += 0.0f;
        }
      }
      break;
    }
  }
  tensor::ReluInto(out, out);
}

Tensor ResNetBlock::Backward(const Tensor& grad_out) {
  Tensor g = tensor::ReluBackward(cached_preact_, grad_out);
  // Branch 1: main path.
  Tensor gm = conv2_.Backward(bn2_.Backward(g));
  gm = tensor::ReluBackward(cached_main_preact_, gm);
  Tensor gx = conv1_.Backward(bn1_.Backward(gm));
  // Branch 2: shortcut.
  gx += ShortcutBackward(g);
  return gx;
}

std::vector<Param*> ResNetBlock::Params() {
  std::vector<Param*> params;
  for (Param* p : conv1_.Params()) params.push_back(p);
  for (Param* p : bn1_.Params()) params.push_back(p);
  for (Param* p : conv2_.Params()) params.push_back(p);
  for (Param* p : bn2_.Params()) params.push_back(p);
  if (conv_sc_) {
    for (Param* p : conv_sc_->Params()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor*> ResNetBlock::Buffers() {
  std::vector<Tensor*> buffers = bn1_.Buffers();
  for (Tensor* b : bn2_.Buffers()) buffers.push_back(b);
  return buffers;
}

std::string ResNetBlock::name() const {
  std::string sc;
  switch (shortcut_) {
    case ShortcutKind::kConv: sc = "conv-sc"; break;
    case ShortcutKind::kIdentity: sc = "id-sc"; break;
    case ShortcutKind::kMaxPool: sc = "pool-sc"; break;
  }
  return "resblock" + std::to_string(cout_) + "(" + sc + ")";
}

std::size_t ResNetBlock::ForwardMacs(const Shape& input_shape) const {
  std::size_t macs = conv1_.ForwardMacs(input_shape);
  const Shape mid = conv1_.OutputShape(input_shape);
  macs += bn1_.ForwardMacs(mid);
  macs += conv2_.ForwardMacs(mid);
  macs += bn2_.ForwardMacs(mid);
  if (conv_sc_) macs += conv_sc_->ForwardMacs(input_shape);
  if (pool_sc_) macs += pool_sc_->ForwardMacs(input_shape);
  return macs;
}

Shape ResNetBlock::OutputShape(const Shape& input_shape) const {
  return conv1_.OutputShape(input_shape);
}

}  // namespace metro::zoo
