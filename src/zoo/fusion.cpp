#include "zoo/fusion.h"

#include <cassert>

namespace metro::zoo {

using nn::ActKind;
using nn::Activation;
using nn::Dense;

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0));
  const int n = a.dim(0), da = a.dim(1), db = b.dim(1);
  Tensor out({n, da + db});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < da; ++j) {
      out[std::size_t(i) * (da + db) + j] = a[std::size_t(i) * da + j];
    }
    for (int j = 0; j < db; ++j) {
      out[std::size_t(i) * (da + db) + da + j] = b[std::size_t(i) * db + j];
    }
  }
  return out;
}

std::pair<Tensor, Tensor> SplitCols(const Tensor& x, int da) {
  assert(x.rank() == 2 && x.dim(1) >= da);
  const int n = x.dim(0), d = x.dim(1), db = d - da;
  Tensor a({n, da}), b({n, db});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < da; ++j) {
      a[std::size_t(i) * da + j] = x[std::size_t(i) * d + j];
    }
    for (int j = 0; j < db; ++j) {
      b[std::size_t(i) * db + j] = x[std::size_t(i) * d + da + j];
    }
  }
  return {std::move(a), std::move(b)};
}

MultiModalAutoencoder::MultiModalAutoencoder(const FusionConfig& config,
                                             Rng& rng)
    : config_(config) {
  enc_a_.Emplace<Dense>(config.dim_a, config.hidden, rng)
      .Emplace<Activation>(ActKind::kRelu);
  enc_b_.Emplace<Dense>(config.dim_b, config.hidden, rng)
      .Emplace<Activation>(ActKind::kRelu);
  enc_joint_.Emplace<Dense>(2 * config.hidden, config.bottleneck, rng)
      .Emplace<Activation>(ActKind::kRelu);
  dec_joint_.Emplace<Dense>(config.bottleneck, 2 * config.hidden, rng)
      .Emplace<Activation>(ActKind::kRelu);
  dec_a_.Emplace<Dense>(config.hidden, config.dim_a, rng);
  dec_b_.Emplace<Dense>(config.hidden, config.dim_b, rng);
}

Tensor MultiModalAutoencoder::Encode(const Tensor& a, const Tensor& b,
                                     bool training) {
  Tensor ha = enc_a_.Forward(a, training);
  Tensor hb = enc_b_.Forward(b, training);
  return enc_joint_.Forward(ConcatCols(ha, hb), training);
}

MultiModalAutoencoder::Reconstruction MultiModalAutoencoder::Decode(
    const Tensor& code, bool training) {
  Tensor h = dec_joint_.Forward(code, training);
  auto [ha, hb] = SplitCols(h, config_.hidden);
  return {dec_a_.Forward(ha, training), dec_b_.Forward(hb, training)};
}

float MultiModalAutoencoder::TrainStep(const Tensor& a, const Tensor& b,
                                       nn::Optimizer& opt, Rng& rng) {
  const int n = a.dim(0);
  // Modality dropout: zero one input occasionally so the code cross-predicts.
  Tensor in_a = a, in_b = b;
  if (rng.Bernoulli(config_.modality_dropout)) {
    (rng.Bernoulli(0.5) ? in_a : in_b).Fill(0.0f);
  }

  Tensor code = Encode(in_a, in_b, true);
  Reconstruction recon = Decode(code, true);

  // MSE against the unmasked targets; grad = 2 (y - t) / (n * dim).
  auto mse = [n](const Tensor& y, const Tensor& target, Tensor& grad) {
    grad = Tensor(y.shape());
    const float scale = 2.0f / float(y.size());
    double loss = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const float d = y[i] - target[i];
      loss += double(d) * d;
      grad[i] = scale * d;
    }
    return float(loss / double(y.size()));
  };

  Tensor grad_a, grad_b;
  const float loss = mse(recon.a, a, grad_a) + mse(recon.b, b, grad_b);

  Tensor gha = dec_a_.Backward(grad_a);
  Tensor ghb = dec_b_.Backward(grad_b);
  Tensor gcode = dec_joint_.Backward(ConcatCols(gha, ghb));
  Tensor gjoint = enc_joint_.Backward(gcode);
  auto [ga, gb] = SplitCols(gjoint, config_.hidden);
  enc_a_.Backward(ga);
  enc_b_.Backward(gb);

  auto params = Params();
  nn::ClipGradNorm(params, 5.0f);
  opt.Step(params);
  return loss;
}

float MultiModalAutoencoder::ReconstructionError(const Tensor& a,
                                                 const Tensor& b) {
  Tensor code = Encode(a, b, false);
  Reconstruction recon = Decode(code, false);
  double loss = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = recon.a[i] - a[i];
    loss += double(d) * d / double(a.size());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const float d = recon.b[i] - b[i];
    loss += double(d) * d / double(b.size());
  }
  return float(loss);
}

std::vector<nn::Param*> MultiModalAutoencoder::Params() {
  std::vector<nn::Param*> params;
  for (nn::Sequential* s :
       {&enc_a_, &enc_b_, &enc_joint_, &dec_joint_, &dec_a_, &dec_b_}) {
    auto ps = s->Params();
    params.insert(params.end(), ps.begin(), ps.end());
  }
  return params;
}

}  // namespace metro::zoo
