#include "zoo/dqn.h"

#include <algorithm>
#include <cassert>

namespace metro::zoo {

using nn::ActKind;
using nn::Activation;
using nn::Dense;
using nn::Tensor;

void ReplayBuffer::Add(Transition t) {
  if (items_.size() >= capacity_) items_.pop_front();
  items_.push_back(std::move(t));
}

std::vector<const Transition*> ReplayBuffer::Sample(std::size_t n,
                                                    Rng& rng) const {
  assert(!items_.empty());
  std::vector<const Transition*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(&items_[rng.UniformU64(items_.size())]);
  }
  return out;
}

nn::Sequential DqnAgent::BuildNet(Rng& rng) const {
  nn::Sequential net;
  int in = state_dim_;
  for (const int h : config_.hidden) {
    net.Emplace<Dense>(in, h, rng).Emplace<Activation>(ActKind::kRelu);
    in = h;
  }
  net.Emplace<Dense>(in, num_actions_, rng);
  return net;
}

DqnAgent::DqnAgent(int state_dim, int num_actions, const DqnConfig& config,
                   Rng& rng)
    : state_dim_(state_dim),
      num_actions_(num_actions),
      config_(config),
      online_(BuildNet(rng)),
      target_(BuildNet(rng)),
      opt_(config.learning_rate),
      replay_(config.replay_capacity) {
  SyncTarget();
}

void DqnAgent::SyncTarget() {
  auto src = online_.Params();
  auto dst = target_.Params();
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i]->value = src[i]->value;
  }
}

int DqnAgent::Act(std::span<const float> state, float epsilon, Rng& rng) {
  if (rng.Bernoulli(epsilon)) return int(rng.UniformU64(std::size_t(num_actions_)));
  const auto q = QValues(state);
  return int(std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<float> DqnAgent::QValues(std::span<const float> state) {
  assert(int(state.size()) == state_dim_);
  Tensor x({1, state_dim_});
  std::copy(state.begin(), state.end(), x.data().begin());
  Tensor q = online_.Forward(x, false);
  return {q.data().begin(), q.data().end()};
}

void DqnAgent::Observe(Transition t) { replay_.Add(std::move(t)); }

float DqnAgent::TrainStep(Rng& rng) {
  if (replay_.size() < config_.batch_size) return 0.0f;
  const auto batch = replay_.Sample(config_.batch_size, rng);
  const int n = int(batch.size());

  Tensor states({n, state_dim_});
  Tensor next_states({n, state_dim_});
  for (int i = 0; i < n; ++i) {
    const Transition& t = *batch[std::size_t(i)];
    std::copy(t.state.begin(), t.state.end(),
              states.data().begin() + std::ptrdiff_t(i) * state_dim_);
    std::copy(t.next_state.begin(), t.next_state.end(),
              next_states.data().begin() + std::ptrdiff_t(i) * state_dim_);
  }

  // TD targets from the frozen network: r + gamma * max_a' Q_target(s', a').
  Tensor next_q = target_.Forward(next_states, false);
  std::vector<float> targets(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Transition& t = *batch[std::size_t(i)];
    float best = next_q[std::size_t(i) * num_actions_];
    for (int a = 1; a < num_actions_; ++a) {
      best = std::max(best, next_q[std::size_t(i) * num_actions_ + a]);
    }
    targets[std::size_t(i)] =
        t.done ? t.reward : t.reward + config_.gamma * best;
  }

  // MSE on the taken action's Q only.
  Tensor q = online_.Forward(states, true);
  Tensor grad(q.shape());
  double loss = 0;
  const float scale = 2.0f / float(n);
  for (int i = 0; i < n; ++i) {
    const Transition& t = *batch[std::size_t(i)];
    const std::size_t idx = std::size_t(i) * num_actions_ + std::size_t(t.action);
    const float d = q[idx] - targets[std::size_t(i)];
    loss += double(d) * d / n;
    grad[idx] = scale * d;
  }
  online_.Backward(grad);
  auto params = online_.Params();
  nn::ClipGradNorm(params, 10.0f);
  opt_.Step(params);

  if (++steps_ % config_.target_sync_interval == 0) SyncTarget();
  return float(loss);
}

}  // namespace metro::zoo
