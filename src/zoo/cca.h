#pragma once

// Canonical correlation analysis (Sec. III-C).
//
// Classical linear CCA between two views: finds projection directions
// maximizing the correlation between projected views. Small dense linear
// algebra only (Jacobi eigensolver); view dimensions are expected to be
// modest (tens), which matches the fused feature vectors this analyzes.

#include <vector>

#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/status.h"

namespace metro {
class ThreadPool;
}

namespace metro::zoo {

using tensor::Tensor;

/// Fitted CCA model.
struct CcaModel {
  std::vector<float> correlations;  ///< canonical correlations, descending
  Tensor wx;                        ///< (p, k) projection for view X
  Tensor wy;                        ///< (q, k) projection for view Y
  std::vector<float> mean_x, mean_y;
};

/// Fits CCA with `k` components on row-sample matrices X (n, p), Y (n, q).
/// Requires n > max(p, q) and k <= min(p, q). Covariance matrices are ridge-
/// regularized by `reg` for numerical stability.
Result<CcaModel> FitCca(const Tensor& x, const Tensor& y, int k,
                        float reg = 1e-4f);

/// Projects new rows of view X (n, p) -> (n, k) canonical space.
Tensor CcaProjectX(const CcaModel& model, const Tensor& x);
/// Projects new rows of view Y (n, q) -> (n, k) canonical space.
Tensor CcaProjectY(const CcaModel& model, const Tensor& y);

/// Batched allocation-free projections: rows are centered into `scratch`
/// (rewound before returning) and multiplied straight into `out` (n, k) via
/// tensor::MatMulInto. Bit-exact with CcaProjectX / CcaProjectY.
void CcaProjectXInto(const CcaModel& model, const tensor::TensorView& x,
                     const tensor::TensorView& out, tensor::Workspace& scratch,
                     ThreadPool* pool = nullptr);
void CcaProjectYInto(const CcaModel& model, const tensor::TensorView& y,
                     const tensor::TensorView& out, tensor::Workspace& scratch,
                     ThreadPool* pool = nullptr);

// --- Small symmetric linear-algebra helpers (exposed for tests) ---

/// Jacobi eigendecomposition of a symmetric matrix (d, d).
/// Eigenvalues descend; eigenvectors are the *columns* of `vectors`.
struct EigenResult {
  std::vector<float> values;
  Tensor vectors;  ///< (d, d)
};
EigenResult SymmetricEigen(const Tensor& m, int max_sweeps = 64);

/// m^{-1/2} for a symmetric positive-definite matrix via its eigensystem.
Tensor SymmetricInverseSqrt(const Tensor& m, float floor = 1e-8f);

}  // namespace metro::zoo
