#include "zoo/cca.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "tensor/ops.h"

namespace metro::zoo {

using tensor::MatMul;
using tensor::MatMulTransposeA;
using tensor::MatMulTransposeB;

namespace {

/// Column means of (n, d).
std::vector<float> ColMeans(const Tensor& x) {
  const int n = x.dim(0), d = x.dim(1);
  std::vector<double> acc(std::size_t(d), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) acc[std::size_t(j)] += x[std::size_t(i) * d + j];
  }
  std::vector<float> means(static_cast<std::size_t>(d));
  for (int j = 0; j < d; ++j) means[std::size_t(j)] = float(acc[std::size_t(j)] / n);
  return means;
}

Tensor CenterRows(const Tensor& x, const std::vector<float>& means) {
  const int n = x.dim(0), d = x.dim(1);
  Tensor out = x;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) out[std::size_t(i) * d + j] -= means[std::size_t(j)];
  }
  return out;
}

/// (1/(n-1)) A^T B for centered matrices.
Tensor Covariance(const Tensor& a, const Tensor& b) {
  Tensor c = MatMulTransposeA(a, b);
  c *= 1.0f / float(a.dim(0) - 1);
  return c;
}

}  // namespace

EigenResult SymmetricEigen(const Tensor& m, int max_sweeps) {
  assert(m.rank() == 2 && m.dim(0) == m.dim(1));
  const int d = m.dim(0);
  Tensor a = m;
  Tensor v({d, d});
  for (int i = 0; i < d; ++i) v.at(i, i) = 1.0f;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm — stop when essentially diagonal.
    double off = 0;
    for (int p = 0; p < d; ++p) {
      for (int q = p + 1; q < d; ++q) off += double(a.at(p, q)) * a.at(p, q);
    }
    if (off < 1e-18) break;

    for (int p = 0; p < d; ++p) {
      for (int q = p + 1; q < d; ++q) {
        const float apq = a.at(p, q);
        if (std::fabs(apq) < 1e-12f) continue;
        const float app = a.at(p, p), aqq = a.at(q, q);
        const float theta = 0.5f * std::atan2(2 * apq, aqq - app);
        const float c = std::cos(theta), s = std::sin(theta);
        // Rotate rows/cols p and q of A, accumulate into V.
        for (int k = 0; k < d; ++k) {
          const float akp = a.at(k, p), akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < d; ++k) {
          const float apk = a.at(p, k), aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < d; ++k) {
          const float vkp = v.at(k, p), vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue.
  std::vector<int> order(static_cast<std::size_t>(d));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return a.at(i, i) > a.at(j, j); });

  EigenResult res;
  res.values.resize(std::size_t(d));
  res.vectors = Tensor({d, d});
  for (int col = 0; col < d; ++col) {
    res.values[std::size_t(col)] = a.at(order[std::size_t(col)], order[std::size_t(col)]);
    for (int row = 0; row < d; ++row) {
      res.vectors.at(row, col) = v.at(row, order[std::size_t(col)]);
    }
  }
  return res;
}

Tensor SymmetricInverseSqrt(const Tensor& m, float floor) {
  const int d = m.dim(0);
  EigenResult eig = SymmetricEigen(m);
  // V diag(1/sqrt(lambda)) V^T
  Tensor scaled = eig.vectors;  // columns scaled by 1/sqrt(lambda)
  for (int col = 0; col < d; ++col) {
    const float lambda = std::max(eig.values[std::size_t(col)], floor);
    const float s = 1.0f / std::sqrt(lambda);
    for (int row = 0; row < d; ++row) scaled.at(row, col) *= s;
  }
  return MatMulTransposeB(scaled, eig.vectors);
}

Result<CcaModel> FitCca(const Tensor& x, const Tensor& y, int k, float reg) {
  if (x.rank() != 2 || y.rank() != 2 || x.dim(0) != y.dim(0)) {
    return InvalidArgumentError("CCA inputs must be (n,p) and (n,q)");
  }
  const int n = x.dim(0), p = x.dim(1), q = y.dim(1);
  if (k <= 0 || k > std::min(p, q)) {
    return InvalidArgumentError("k must be in [1, min(p,q)]");
  }
  if (n <= std::max(p, q)) {
    return InvalidArgumentError("need more samples than features");
  }

  CcaModel model;
  model.mean_x = ColMeans(x);
  model.mean_y = ColMeans(y);
  const Tensor xc = CenterRows(x, model.mean_x);
  const Tensor yc = CenterRows(y, model.mean_y);

  Tensor sxx = Covariance(xc, xc);
  Tensor syy = Covariance(yc, yc);
  const Tensor sxy = Covariance(xc, yc);
  for (int i = 0; i < p; ++i) sxx.at(i, i) += reg;
  for (int i = 0; i < q; ++i) syy.at(i, i) += reg;

  const Tensor sxx_is = SymmetricInverseSqrt(sxx);
  const Tensor syy_is = SymmetricInverseSqrt(syy);
  // M = Sxx^{-1/2} Sxy Syy^{-1/2}; canonical correlations are M's singular
  // values, obtained from the eigensystem of M M^T (p x p).
  const Tensor m = MatMul(MatMul(sxx_is, sxy), syy_is);
  const Tensor mmt = MatMulTransposeB(m, m);
  EigenResult eig = SymmetricEigen(mmt);

  model.correlations.resize(std::size_t(k));
  Tensor u({p, k});
  for (int col = 0; col < k; ++col) {
    model.correlations[std::size_t(col)] =
        std::sqrt(std::clamp(eig.values[std::size_t(col)], 0.0f, 1.0f));
    for (int row = 0; row < p; ++row) u.at(row, col) = eig.vectors.at(row, col);
  }

  // wx = Sxx^{-1/2} U ; wy = Syy^{-1/2} M^T U diag(1/rho).
  model.wx = MatMul(sxx_is, u);
  Tensor mtu = MatMulTransposeA(m, u);  // (q, k)
  for (int col = 0; col < k; ++col) {
    const float rho = std::max(model.correlations[std::size_t(col)], 1e-6f);
    for (int row = 0; row < q; ++row) mtu.at(row, col) /= rho;
  }
  model.wy = MatMul(syy_is, mtu);
  return model;
}

namespace {

Tensor Project(const Tensor& x, const std::vector<float>& mean,
               const Tensor& w) {
  return MatMul(CenterRows(x, mean), w);
}

}  // namespace

Tensor CcaProjectX(const CcaModel& model, const Tensor& x) {
  return Project(x, model.mean_x, model.wx);
}

Tensor CcaProjectY(const CcaModel& model, const Tensor& y) {
  return Project(y, model.mean_y, model.wy);
}

namespace {

METRO_NOALLOC
void ProjectInto(const tensor::TensorView& x, const std::vector<float>& mean,
                 const Tensor& w, const tensor::TensorView& out,
                 tensor::Workspace& scratch, ThreadPool* pool) {
  const int n = x.dim(0), d = x.dim(1);
  assert(std::size_t(d) == mean.size());
  const tensor::Workspace::Mark mark = scratch.Position();
  tensor::TensorView xc = scratch.AllocView(x.shape());
  // Same arithmetic as CenterRows: copy, then subtract column means.
  const float* xd = x.data().data();
  float* cd = xc.data().data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      cd[std::size_t(i) * d + j] = xd[std::size_t(i) * d + j] - mean[std::size_t(j)];
    }
  }
  tensor::MatMulInto(xc, w, out, pool);
  scratch.Rewind(mark);
}

}  // namespace

METRO_NOALLOC
void CcaProjectXInto(const CcaModel& model, const tensor::TensorView& x,
                     const tensor::TensorView& out, tensor::Workspace& scratch,
                     ThreadPool* pool) {
  ProjectInto(x, model.mean_x, model.wx, out, scratch, pool);
}

METRO_NOALLOC
void CcaProjectYInto(const CcaModel& model, const tensor::TensorView& y,
                     const tensor::TensorView& out, tensor::Workspace& scratch,
                     ThreadPool* pool) {
  ProjectInto(y, model.mean_y, model.wy, out, scratch, pool);
}

}  // namespace metro::zoo
