#pragma once

// The paper's ResNet block (Fig. 8).
//
// Main path: conv3x3(stride) -> BN -> ReLU -> conv3x3 -> BN.
// Shortcut: the paper replaces the usual identity/max-pool shortcut with a
// *convolutional* shortcut (1x1, stride). Both alternatives are implemented
// so bench_fig8_resnet_block can ablate the design choice.

#include <memory>

#include "nn/layer.h"

namespace metro::zoo {

using nn::Layer;
using nn::Param;
using nn::Shape;
using nn::Tensor;

/// Shortcut-path implementation of a residual block.
enum class ShortcutKind {
  kConv,      ///< 1x1 convolution (the paper's Fig. 8 choice)
  kIdentity,  ///< plain skip; requires matching shape (stride 1, cin == cout)
  kMaxPool,   ///< max-pool downsample + zero channel padding (the common
              ///< parameter-free alternative the paper replaces)
};

/// Residual block over NHWC activations.
class ResNetBlock final : public Layer {
 public:
  ResNetBlock(int in_channels, int out_channels, int stride,
              ShortcutKind shortcut, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const nn::TensorView& x, const nn::TensorView& out,
                   nn::InferenceContext& ctx) override;
  std::vector<Param*> Params() override;
  std::vector<Tensor*> Buffers() override;
  std::string name() const override;
  std::size_t ForwardMacs(const Shape& input_shape) const override;
  Shape OutputShape(const Shape& input_shape) const override;

  ShortcutKind shortcut_kind() const { return shortcut_; }

 private:
  Tensor ShortcutForward(const Tensor& x, bool training);
  Tensor ShortcutBackward(const Tensor& grad);

  int cin_, cout_, stride_;
  ShortcutKind shortcut_;

  nn::Conv2d conv1_;
  nn::BatchNorm bn1_;
  nn::Conv2d conv2_;
  nn::BatchNorm bn2_;
  std::unique_ptr<nn::Conv2d> conv_sc_;      // kConv only
  std::unique_ptr<nn::MaxPool2d> pool_sc_;   // kMaxPool with stride > 1

  Tensor cached_preact_;       // main + shortcut, before the final ReLU
  Tensor cached_main_preact_;  // bn1 output, before the intermediate ReLU
  Shape cached_in_shape_;
};

}  // namespace metro::zoo
