#pragma once

// Split behavior/action recognizer (Fig. 7).
//
// Local device: ResNet block 1 -> per-frame features -> LSTM 1 -> FC1 ->
// Output 1 with an entropy gate. When the gate is uncertain, the block-1
// feature map is shipped to the analysis server, which runs ResNet blocks
// 2-3 -> LSTM 2 -> FC2 -> Output 2. Per Fig. 8, every residual block uses a
// convolutional shortcut. Both exits train jointly on labeled clips.

#include <memory>
#include <vector>

#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "zoo/resnet_block.h"

namespace metro::zoo {

/// Capacity knobs for the Fig. 7 architecture.
struct BehaviorConfig {
  int frame_size = 16;     ///< square frames
  int channels = 3;        ///< RGB street-camera frames; the 3->8 channel,
                           ///< /2 spatial block-1 cut point then *compresses*
                           ///< (shipping features beats shipping raw frames)
  int clip_length = 6;     ///< frames per clip (T)
  int num_classes = 5;     ///< behavior categories
  int block1_channels = 8;
  int block2_channels = 12;
  int block3_channels = 16;
  int lstm1_hidden = 16;
  int lstm2_hidden = 24;
  ShortcutKind shortcut = ShortcutKind::kConv;  ///< Fig. 8 design choice
};

/// One labeled video clip: T frames of (H, W, C) stacked into a single
/// (T, H, W, C) tensor.
struct Clip {
  nn::Tensor frames;
  int label = 0;
};

/// Result of a gated inference on one clip.
struct BehaviorPrediction {
  int label = 0;
  float entropy = 0;       ///< entropy of the exit used
  bool used_server = false;
  std::vector<float> probs;
};

/// The Fig. 7 split CNN+LSTM model.
class SplitBehaviorNet {
 public:
  SplitBehaviorNet(const BehaviorConfig& config, Rng& rng);

  const BehaviorConfig& config() const { return config_; }

  /// Local path on a batch of clips (N clips, each T frames):
  /// returns exit-1 logits (N, classes). `frames` is (N*T, H, W, C),
  /// time-major within each clip.
  nn::Tensor LocalLogits(const nn::Tensor& frames, int n_clips, bool training);

  /// Server path continuing from the block-1 feature map (N*T, h, w, c1).
  nn::Tensor ServerLogits(const nn::Tensor& block1_out, int n_clips,
                          bool training);

  /// Block-1 feature map for a batch of stacked frames (the tensor an
  /// early-exit miss ships upstream).
  nn::Tensor Block1(const nn::Tensor& frames, bool training);

  /// Joint training step (CE on both exits); returns combined loss.
  float TrainStep(const std::vector<Clip>& batch, nn::Optimizer& opt);

  /// Gated inference on one clip: accept exit 1 iff its entropy is at most
  /// `entropy_threshold` (nats), else run the server path.
  /// (The paper's prose says "higher than a predefined threshold" for
  /// *accepting* output 1, but entropy is an uncertainty measure — accepting
  /// high-entropy outputs would keep the *least* confident results local; we
  /// implement the evidently intended gate.)
  BehaviorPrediction Predict(const Clip& clip, float entropy_threshold);

  /// Exit-1 logits plus the block-1 feature map for one clip — used by the
  /// fog pipeline, which makes the offload decision itself.
  struct LocalPass {
    nn::Tensor logits;      ///< (1, classes)
    nn::Tensor block1_out;  ///< (T, h, w, c1)
    float entropy = 0;
  };
  LocalPass RunLocal(const Clip& clip);

  /// Server-side classification of a shipped feature map.
  std::vector<float> RunServer(const nn::Tensor& block1_out);

  std::vector<nn::Param*> Params();

  /// Checkpoint buffers (BatchNorm running stats) across all blocks.
  std::vector<nn::Tensor*> Buffers();

  /// Bytes of the block-1 feature map for one clip.
  std::size_t FeatureMapBytes() const;

  std::size_t LocalMacs() const;   ///< block1 + LSTM1 + FC1 for one clip
  std::size_t ServerMacs() const;  ///< blocks 2-3 + LSTM2 + FC2 for one clip

  /// Splits a (N*T, features) tensor into T time-major (N, features) steps.
  /// Public so BehaviorSession can feed the eager LSTM from planned features.
  std::vector<nn::Tensor> ToSequence(const nn::Tensor& flat, int n_clips) const;
  /// Inverse of ToSequence for gradients.
  nn::Tensor FromSequence(const std::vector<nn::Tensor>& steps) const;

  /// The split halves' layers, exposed so BehaviorSession can plan them.
  ResNetBlock& block1() { return block1_; }
  nn::GlobalAvgPool& gap1() { return gap1_; }
  nn::Lstm& lstm1() { return lstm1_; }
  nn::Dense& fc1() { return fc1_; }
  ResNetBlock& block2() { return block2_; }
  ResNetBlock& block3() { return block3_; }
  nn::GlobalAvgPool& gap2() { return gap2_; }
  nn::Lstm& lstm2() { return lstm2_; }
  nn::Dense& fc2() { return fc2_; }
  const nn::Shape& block1_out_shape() const { return block1_out_shape_; }

 private:
  BehaviorConfig config_;
  ResNetBlock block1_;
  nn::GlobalAvgPool gap1_;
  nn::Lstm lstm1_;
  nn::Dense fc1_;

  ResNetBlock block2_;
  ResNetBlock block3_;
  nn::GlobalAvgPool gap2_;
  nn::Lstm lstm2_;
  nn::Dense fc2_;

  nn::Shape block1_out_shape_;  // for one frame
};

}  // namespace metro::zoo
