#pragma once

// Opioid-epidemic analytics (Sec. V future work, implemented).
//
// Fuses the multi-source tract panel (prescriptions, arrests, 911 calls,
// traffic, census, treatment availability) and trains a risk model on the
// dataflow engine, then ranks tracts for intervention. Evaluation scores
// held-out months: accuracy, top-k precision of the ranked list, and the
// learned factor weights — "uncovering additional factors that explain"
// overdose rates, which is precisely the paper's stated goal.

#include "dataflow/mllib.h"
#include "datagen/health.h"

namespace metro::apps {

/// Result of a train+evaluate run.
struct OpioidReport {
  double test_accuracy = 0;
  double baseline_accuracy = 0;   ///< always-majority-class baseline
  double top10_precision = 0;     ///< true high-risk among 10 highest scores
  std::vector<std::pair<std::string, float>> factor_weights;  ///< by |weight|
  int train_rows = 0;
  int test_rows = 0;
};

/// The analytics job.
class OpioidAnalyticsApp {
 public:
  OpioidAnalyticsApp(const datagen::OpioidPanelGenerator::Config& config,
                     std::uint64_t seed);

  /// Trains on the first (num_months - holdout) months and scores the rest.
  OpioidReport Run(dataflow::Engine& engine, int holdout_months = 3);

  /// Risk score for one observation after Run().
  float Score(const datagen::TractMonth& obs) const;

 private:
  datagen::OpioidPanelGenerator::Config config_;
  std::uint64_t seed_;
  dataflow::LogisticModel model_;
};

}  // namespace metro::apps
