#include "apps/gunshot_app.h"

#include <algorithm>

#include "nn/optimizer.h"

namespace metro::apps {

GunshotDetectionApp::GunshotDetectionApp(const Config& config,
                                         std::uint64_t seed)
    : config_(config),
      rng_(seed),
      generator_(config.video_dim, config.audio_dim, seed ^ 0x6416),
      autoencoder_(
          [&] {
            zoo::FusionConfig fusion = config.fusion;
            fusion.dim_a = config.video_dim;
            fusion.dim_b = config.audio_dim;
            return fusion;
          }(),
          rng_) {}

tensor::Tensor GunshotDetectionApp::CodesFor(const tensor::Tensor& video,
                                             const tensor::Tensor& audio) {
  return autoencoder_.Encode(video, audio, false);
}

FusionEvaluation GunshotDetectionApp::TrainAndEvaluate(int train_events,
                                                       int autoencoder_epochs,
                                                       int eval_events) {
  FusionEvaluation eval;

  // 1. Train the fusion autoencoder (denoising across modalities).
  auto train = generator_.GenerateBatch(train_events, config_.gunshot_fraction);
  nn::Adam opt(1e-3f);
  for (int epoch = 0; epoch < autoencoder_epochs; ++epoch) {
    eval.autoencoder_loss =
        autoencoder_.TrainStep(train.video, train.audio, opt, rng_);
  }

  // 2. CCA between raw modalities — the Sec. III-C analysis component.
  auto cca = zoo::FitCca(train.video, train.audio, 2);
  if (cca.ok()) {
    eval.top_canonical_correlation = cca->correlations.front();
  }

  // 3. Train the logistic head on fused codes.
  tensor::Tensor codes = CodesFor(train.video, train.audio);
  std::vector<dataflow::LabeledPoint> points;
  points.reserve(std::size_t(train_events));
  const int bn = codes.dim(1);
  for (int i = 0; i < train_events; ++i) {
    dataflow::LabeledPoint pt;
    pt.features.assign(codes.data().begin() + std::ptrdiff_t(i) * bn,
                       codes.data().begin() + std::ptrdiff_t(i + 1) * bn);
    pt.label = train.labels[std::size_t(i)];
    points.push_back(std::move(pt));
  }
  dataflow::Engine engine(2);
  auto model = dataflow::FitLogistic(
      dataflow::Dataset<dataflow::LabeledPoint>::Parallelize(points, 2), bn,
      engine, 200, 0.5f);
  if (model.ok()) classifier_ = std::move(model).value();

  // 4. Evaluate fused vs single-modality pathways on fresh events.
  auto test = generator_.GenerateBatch(eval_events, config_.gunshot_fraction);
  auto accuracy_of = [&](const tensor::Tensor& video,
                         const tensor::Tensor& audio) {
    tensor::Tensor test_codes = autoencoder_.Encode(video, audio, false);
    int hits = 0;
    dataflow::FeatureVec features(static_cast<std::size_t>(bn));
    for (int i = 0; i < eval_events; ++i) {
      std::copy(test_codes.data().begin() + std::ptrdiff_t(i) * bn,
                test_codes.data().begin() + std::ptrdiff_t(i + 1) * bn,
                features.begin());
      const int pred = LogisticPredict(classifier_, features) >= 0.5f ? 1 : 0;
      if (pred == test.labels[std::size_t(i)]) ++hits;
    }
    return double(hits) / std::max(1, eval_events);
  };

  tensor::Tensor zero_video(test.video.shape());
  tensor::Tensor zero_audio(test.audio.shape());
  eval.fused_accuracy = accuracy_of(test.video, test.audio);
  eval.video_only_accuracy = accuracy_of(test.video, zero_audio);
  eval.audio_only_accuracy = accuracy_of(zero_video, test.audio);
  return eval;
}

float GunshotDetectionApp::Score(std::span<const float> video,
                                 std::span<const float> audio) {
  tensor::Tensor v({1, config_.video_dim});
  tensor::Tensor a({1, config_.audio_dim});
  if (!video.empty()) {
    std::copy(video.begin(), video.end(), v.data().begin());
  }
  if (!audio.empty()) {
    std::copy(audio.begin(), audio.end(), a.data().begin());
  }
  tensor::Tensor code = autoencoder_.Encode(v, a, false);
  dataflow::FeatureVec features(code.data().begin(), code.data().end());
  return LogisticPredict(classifier_, features);
}

}  // namespace metro::apps
