#pragma once

// Multi-modal gunshot detection application (Sec. III-C's video+audio
// fusion example).
//
// Trains the deep fusion autoencoder on paired video/audio event features,
// then trains a logistic classifier on the fused bottleneck codes. The
// evaluation compares fused detection accuracy against each single modality
// (including the missing-modality case the autoencoder is trained for) —
// the paper's claim that "combining data from multiple modals can greatly
// increase the performance".

#include "datagen/video.h"
#include "dataflow/mllib.h"
#include "zoo/cca.h"
#include "zoo/fusion.h"

namespace metro::apps {

/// Accuracy of each detection pathway on a held-out set.
struct FusionEvaluation {
  double fused_accuracy = 0;
  double video_only_accuracy = 0;   ///< audio zeroed at inference
  double audio_only_accuracy = 0;   ///< video zeroed at inference
  double top_canonical_correlation = 0;  ///< CCA between modalities
  float autoencoder_loss = 0;
};

/// The deployed application.
class GunshotDetectionApp {
 public:
  struct Config {
    int video_dim = 16;
    int audio_dim = 8;
    zoo::FusionConfig fusion;
    double gunshot_fraction = 0.3;
  };

  GunshotDetectionApp(const Config& config, std::uint64_t seed);

  /// Trains the autoencoder then the classifier; returns the evaluation on
  /// fresh events.
  FusionEvaluation TrainAndEvaluate(int train_events = 512,
                                    int autoencoder_epochs = 60,
                                    int eval_events = 256);

  /// P(gunshot) for one event through the fused pathway. Either modality
  /// span may be empty (missing channel).
  float Score(std::span<const float> video, std::span<const float> audio);

  /// The event source this app trains against (its mixing matrices define
  /// the deployment's sensor characteristics).
  datagen::MultiModalEventGenerator& generator() { return generator_; }

 private:
  tensor::Tensor CodesFor(const tensor::Tensor& video,
                          const tensor::Tensor& audio);

  Config config_;
  Rng rng_;
  datagen::MultiModalEventGenerator generator_;
  zoo::MultiModalAutoencoder autoencoder_;
  dataflow::LogisticModel classifier_;
};

}  // namespace metro::apps
