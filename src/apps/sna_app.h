#pragma once

// Social-network-analysis application (Sec. IV-B).
//
// Reproduces the paper's investigation workflow: expand a seed offender's
// first- and second-degree associate field over the co-offender/gang graph,
// then narrow it multi-modally — geo-tagged tweets inside the incident's
// space-time window, filtered by NLP incident-text classification — to a
// small persons-of-interest list. The generator plants "present" associates
// (who tweeted near the incident) so precision/recall are measurable.

#include <vector>

#include "datagen/city.h"
#include "datagen/social.h"
#include "store/document_store.h"
#include "text/text.h"

namespace metro::apps {

/// Stage-by-stage sizes of the narrowing funnel, plus quality vs the plant.
struct InvestigationResult {
  graph::PersonId seed = 0;
  std::size_t first_degree = 0;
  std::size_t second_degree_field = 0;  ///< 1st + 2nd degree associates
  std::size_t geo_time_matched = 0;     ///< field members with tweets in window
  std::size_t persons_of_interest = 0;  ///< after NLP incident filtering
  double narrowing_factor = 0;          ///< field / persons-of-interest
  double plant_recall = 0;              ///< planted present associates found
  double plant_precision = 0;
  std::vector<graph::PersonId> poi;
};

/// Network-wide degree statistics (the Sec. IV-B published numbers).
struct NetworkStats {
  std::size_t groups = 0;
  std::size_t members = 0;
  double mean_first_degree = 0;
  double mean_second_degree_field = 0;  ///< sampled
};

/// The deployed application.
class SnaApp {
 public:
  struct Config {
    datagen::GangNetworkSpec network;
    int background_tweets_per_member = 6;
    int planted_present_associates = 5;  ///< 2nd-degree members at the scene
    double window_radius_m = 1200;
    TimeNs window_duration = 2 * 3600 * kSecond;
  };

  SnaApp(const Config& config, std::uint64_t seed);

  /// Degree statistics of the generated network (`samples` seeds for the
  /// second-degree mean).
  NetworkStats Stats(int samples = 100);

  /// Sets up one incident scenario: picks a seed member, plants present
  /// associates from the seed's 2nd-degree field, and fills the tweet
  /// collection. Returns the seed.
  graph::PersonId StageIncident(TimeNs incident_time,
                                const geo::LatLon& incident_location);

  /// Runs the narrowing funnel for the staged incident.
  InvestigationResult Investigate(graph::PersonId seed, TimeNs incident_time,
                                  const geo::LatLon& incident_location);

  const datagen::GangNetwork& network() const { return network_; }
  store::Collection& tweets() { return tweets_; }

 private:
  Config config_;
  Rng rng_;
  datagen::GangNetwork network_;
  datagen::TweetGenerator tweet_gen_;
  store::Collection tweets_;
  text::NaiveBayes classifier_;
  std::vector<graph::PersonId> planted_;
};

}  // namespace metro::apps
