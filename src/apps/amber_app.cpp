#include "apps/amber_app.h"

#include <algorithm>

namespace metro::apps {

double VehicleTrack::LastSpeedMps() const {
  if (sightings.size() < 2) return 0.0;
  const Sighting& a = sightings[sightings.size() - 2];
  const Sighting& b = sightings.back();
  const double meters = geo::HaversineMeters(a.location, b.location);
  const double seconds = double(b.time - a.time) / kSecond;
  return seconds <= 0 ? 0.0 : meters / seconds;
}

void AmberTracker::Watch(int vehicle_class) {
  if (!IsWatched(vehicle_class)) watchlist_.push_back(vehicle_class);
}

bool AmberTracker::IsWatched(int vehicle_class) const {
  return std::find(watchlist_.begin(), watchlist_.end(), vehicle_class) !=
         watchlist_.end();
}

bool AmberTracker::Reachable(const Sighting& last, const Sighting& s) const {
  if (s.time <= last.time) return false;
  const TimeNs gap = s.time - last.time;
  if (gap > config_.max_gap) return false;
  const double meters = geo::HaversineMeters(last.location, s.location);
  const double seconds = double(gap) / kSecond;
  return meters <= config_.max_speed_mps * seconds + 50.0;  // +GPS slack
}

std::optional<int> AmberTracker::Observe(const Sighting& sighting) {
  if (sighting.score < config_.min_score || !IsWatched(sighting.vehicle_class)) {
    return std::nullopt;
  }
  // Join the freshest compatible track of the same class.
  VehicleTrack* best = nullptr;
  for (auto& track : tracks_) {
    if (track.vehicle_class != sighting.vehicle_class) continue;
    if (!Reachable(track.sightings.back(), sighting)) continue;
    if (best == nullptr ||
        track.sightings.back().time > best->sightings.back().time) {
      best = &track;
    }
  }
  if (best == nullptr) {
    VehicleTrack track;
    track.id = next_track_++;
    track.vehicle_class = sighting.vehicle_class;
    track.sightings.push_back(sighting);
    tracks_.push_back(std::move(track));
    return tracks_.back().id;
  }
  best->sightings.push_back(sighting);
  if (int(best->sightings.size()) == config_.alert_after && alerts_ != nullptr) {
    core::Alert alert;
    alert.time = sighting.time;
    alert.location = sighting.location;
    alert.kind = "amber_track";
    alert.message = "wanted vehicle class " +
                    std::to_string(sighting.vehicle_class) + " tracked across " +
                    std::to_string(best->sightings.size()) +
                    " cameras, last speed " +
                    std::to_string(int(best->LastSpeedMps())) + " m/s";
    alert.severity = 5;
    alerts_->Raise(std::move(alert));
  }
  return best->id;
}

std::vector<VehicleTrack> AmberTracker::ActiveTracks(TimeNs now) const {
  std::vector<VehicleTrack> active;
  for (const auto& track : tracks_) {
    if (now - track.sightings.back().time <= config_.max_gap) {
      active.push_back(track);
    }
  }
  return active;
}

AmberScenarioResult RunAmberScenario(AmberTracker& tracker,
                                     const datagen::CityDataGenerator& city,
                                     int wanted_class, int background_sightings,
                                     std::uint64_t seed) {
  Rng rng(seed);
  tracker.Watch(wanted_class);

  // The wanted vehicle drives outbound along one corridor: cameras on that
  // corridor sight it in order, ~40 s apart (roughly 800 m at 20 m/s).
  std::vector<const datagen::Camera*> route;
  const std::string corridor = city.cameras().front().corridor;
  for (const auto& cam : city.cameras()) {
    if (cam.corridor == corridor) route.push_back(&cam);
  }
  // Corridor cameras were generated center-outward in id order.
  std::sort(route.begin(), route.end(),
            [](const auto* a, const auto* b) { return a->id < b->id; });
  if (route.size() > 12) route.resize(12);

  // Interleave plant and background sightings in time order.
  struct Timed {
    Sighting s;
    bool planted;
  };
  std::vector<Timed> feed;
  TimeNs t = kSecond;
  int order_tag = 0;
  for (const auto* cam : route) {
    Sighting s;
    s.camera = cam->id;
    s.location = cam->location;
    s.time = t;
    s.vehicle_class = wanted_class;
    s.score = 0.6f + rng.UniformFloat(0.0f, 0.3f);
    feed.push_back({s, true});
    t += 40 * kSecond;
    ++order_tag;
  }
  const TimeNs horizon = t;
  for (int i = 0; i < background_sightings; ++i) {
    const auto& cam = city.cameras()[rng.UniformU64(city.cameras().size())];
    Sighting s;
    s.camera = cam.id;
    s.location = cam.location;
    s.time = TimeNs(rng.UniformU64(std::uint64_t(horizon)));
    // Background traffic rarely matches the wanted class; when it does it is
    // typically far from the plant's corridor position (a false sighting).
    s.vehicle_class = rng.Bernoulli(0.1)
                          ? wanted_class
                          : int(rng.UniformU64(8));
    s.score = rng.UniformFloat(0.2f, 0.95f);
    feed.push_back({s, false});
  }
  std::sort(feed.begin(), feed.end(),
            [](const Timed& a, const Timed& b) { return a.s.time < b.s.time; });

  AmberScenarioResult result;
  for (const auto& item : feed) {
    if (item.planted) ++result.planted_sightings;
    (void)tracker.Observe(item.s);
  }
  result.tracks_created = int(tracker.AllTracks().size());

  // Score: the longest wanted-class track's overlap with the planted route,
  // in drive order.
  const VehicleTrack* longest = nullptr;
  for (const auto& track : tracker.AllTracks()) {
    if (track.vehicle_class != wanted_class) continue;
    if (longest == nullptr ||
        track.sightings.size() > longest->sightings.size()) {
      longest = &track;
    }
  }
  if (longest != nullptr) {
    int covered = 0;
    std::size_t cursor = 0;
    bool ordered = true;
    for (const auto* cam : route) {
      bool found = false;
      for (std::size_t i = cursor; i < longest->sightings.size(); ++i) {
        if (longest->sightings[i].camera == cam->id) {
          found = true;
          if (i < cursor) ordered = false;
          cursor = i + 1;
          break;
        }
      }
      if (found) ++covered;
    }
    result.recovered_in_one_track = covered;
    result.ordering_correct = ordered && covered > 0;
  }
  return result;
}

}  // namespace metro::apps
