#pragma once

// AMBER-alert vehicle tracking (Sec. IV-A1's motivating use case:
// "tracking cars that are involved in criminal activities (e.g., tracking
// cars described in AMBER Alerts)").
//
// A watchlist of wanted vehicle classes is matched against the detection
// stream coming off the camera network. Matching sightings are correlated
// across cameras into tracks: a sighting joins an existing track when it is
// spatio-temporally reachable from the track's last sighting at a plausible
// road speed; otherwise it opens a new track. Each confirmed track raises
// an operator alert with the trajectory so far.

#include <optional>
#include <vector>

#include "core/infrastructure.h"
#include "datagen/city.h"
#include "geo/geo.h"
#include "zoo/detector.h"

namespace metro::apps {

/// One detection attributed to a camera at a time.
struct Sighting {
  int camera = 0;
  geo::LatLon location;
  TimeNs time = 0;
  int vehicle_class = 0;
  float score = 0;
};

/// A correlated sequence of sightings of one wanted vehicle.
struct VehicleTrack {
  int id = 0;
  int vehicle_class = 0;
  std::vector<Sighting> sightings;  ///< time-ordered

  /// Straight-line speed between the last two sightings (m/s), 0 if < 2.
  double LastSpeedMps() const;
};

/// The tracker service.
class AmberTracker {
 public:
  struct Config {
    double max_speed_mps = 45.0;     ///< max plausible road speed (~160 km/h)
    TimeNs max_gap = 15 * 60 * kSecond;  ///< track expires after this silence
    float min_score = 0.3f;          ///< detection confidence floor
    int alert_after = 2;             ///< sightings before an alert fires
  };

  AmberTracker(Config config, core::AlertManager* alerts)
      : config_(config), alerts_(alerts) {}

  /// Adds a vehicle class to the watchlist (idempotent).
  void Watch(int vehicle_class);
  bool IsWatched(int vehicle_class) const;

  /// Feeds one sighting; returns the track it joined (by id) when the
  /// sighting matched the watchlist, nullopt otherwise.
  std::optional<int> Observe(const Sighting& sighting);

  /// Tracks with at least one sighting newer than now - max_gap.
  std::vector<VehicleTrack> ActiveTracks(TimeNs now) const;

  const std::vector<VehicleTrack>& AllTracks() const { return tracks_; }

 private:
  /// True if `s` is reachable from `last` at road speed within the gap.
  bool Reachable(const Sighting& last, const Sighting& s) const;

  Config config_;
  core::AlertManager* alerts_;
  std::vector<int> watchlist_;
  std::vector<VehicleTrack> tracks_;
  int next_track_ = 1;
};

/// End-to-end scenario runner: plants a wanted vehicle driving along one of
/// the Fig. 2 corridors past the camera fleet, mixes in background traffic
/// detections, and feeds everything through the tracker. Used by tests and
/// the example to score recovery of the planted route.
struct AmberScenarioResult {
  int planted_sightings = 0;
  int recovered_in_one_track = 0;  ///< longest track's overlap with the plant
  int tracks_created = 0;
  bool ordering_correct = false;   ///< recovered sightings in drive order
};

AmberScenarioResult RunAmberScenario(AmberTracker& tracker,
                                     const datagen::CityDataGenerator& city,
                                     int wanted_class, int background_sightings,
                                     std::uint64_t seed);

}  // namespace metro::apps
