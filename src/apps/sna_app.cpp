#include "apps/sna_app.h"

#include <algorithm>
#include <unordered_set>

namespace metro::apps {

SnaApp::SnaApp(const Config& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      network_(datagen::GenerateGangNetwork(config.network, seed ^ 0x6A96)),
      tweet_gen_({.num_users = config.network.num_members}, seed ^ 0x7EE7),
      tweets_("tweets"),
      classifier_(2) {
  // Train the incident-text classifier on a small labeled seed set (the
  // "NLP techniques" of Sec. IV-B). Labels: 1 = incident-related.
  const std::vector<std::pair<std::string, int>> seed_set = {
      {"heard gunshots near the store", 1},
      {"shooting reported downtown stay inside", 1},
      {"police everywhere something happened", 1},
      {"shots fired by the apartments", 1},
      {"fight broke out near the park", 1},
      {"robbery at the gas station", 1},
      {"great food at the festival", 0},
      {"traffic is moving fine", 0},
      {"watching the game tonight", 0},
      {"beautiful sunset over the river", 0},
      {"coffee shop downtown is packed", 0},
      {"new mural looks amazing", 0},
  };
  for (const auto& [txt, label] : seed_set) (void)classifier_.Train(txt, label);

  (void)tweets_.CreateIndex("user");
  (void)tweets_.CreateGeoIndex("lat", "lon");
}

NetworkStats SnaApp::Stats(int samples) {
  NetworkStats stats;
  stats.groups = std::size_t(config_.network.num_groups);
  stats.members = network_.graph.num_people();
  stats.mean_first_degree = network_.graph.MeanDegree();
  double second_sum = 0;
  const int n = std::min<int>(samples, int(stats.members));
  for (int i = 0; i < n; ++i) {
    const auto seed =
        graph::PersonId(rng_.UniformU64(network_.graph.num_people()));
    second_sum += double(network_.graph.KDegreeAssociates(seed, 2).size());
  }
  stats.mean_second_degree_field = n ? second_sum / n : 0;
  return stats;
}

graph::PersonId SnaApp::StageIncident(TimeNs incident_time,
                                      const geo::LatLon& incident_location) {
  // Pick a well-connected seed so the field is non-trivial.
  graph::PersonId seed = 0;
  std::size_t best_degree = 0;
  for (int attempt = 0; attempt < 20; ++attempt) {
    const auto candidate =
        graph::PersonId(rng_.UniformU64(network_.graph.num_people()));
    const std::size_t degree = network_.graph.Degree(candidate);
    if (degree > best_degree) {
      best_degree = degree;
      seed = candidate;
    }
  }

  // Background chatter from everyone, spread over the preceding day.
  for (std::size_t person = 0; person < network_.graph.num_people(); ++person) {
    for (int t = 0; t < config_.background_tweets_per_member; ++t) {
      datagen::Tweet tweet = tweet_gen_.Generate(
          incident_time - TimeNs(rng_.UniformInt(1, 24 * 3600)) * kSecond);
      tweet.user = network_.twitter_id[person];
      tweets_.Insert(datagen::CityDataGenerator::ToDocument(tweet));
    }
  }

  // Plant present associates: 2nd-degree field members who tweeted
  // incident-flavored text near the scene inside the window.
  planted_.clear();
  auto field = network_.graph.KDegreeAssociates(seed, 2);
  rng_.Shuffle(field);
  const int plant_count = std::min<int>(config_.planted_present_associates,
                                        int(field.size()));
  for (int i = 0; i < plant_count; ++i) {
    const graph::PersonId person = field[std::size_t(i)];
    datagen::Tweet tweet =
        tweet_gen_.GenerateNearIncident(incident_time, incident_location);
    tweet.user = network_.twitter_id[person];
    tweets_.Insert(datagen::CityDataGenerator::ToDocument(tweet));
    planted_.push_back(person);
  }
  return seed;
}

InvestigationResult SnaApp::Investigate(graph::PersonId seed,
                                        TimeNs incident_time,
                                        const geo::LatLon& incident_location) {
  InvestigationResult result;
  result.seed = seed;

  const auto first = network_.graph.KDegreeAssociates(seed, 1);
  const auto field = network_.graph.KDegreeAssociates(seed, 2);
  result.first_degree = first.size();
  result.second_degree_field = field.size();

  // Twitter ids of the field.
  std::unordered_map<std::int64_t, graph::PersonId> by_twitter;
  for (const graph::PersonId person : field) {
    by_twitter[std::int64_t(network_.twitter_id[person])] = person;
  }

  // Geo-temporal window query over the tweet store.
  store::Query query;
  query.near_center = incident_location;
  query.near_radius_m = config_.window_radius_m;
  store::Condition time_cond;
  time_cond.field = "timestamp";
  time_cond.op = store::Condition::Op::kRangeNumeric;
  time_cond.lo = double(incident_time - config_.window_duration / 2);
  time_cond.hi = double(incident_time + config_.window_duration);
  query.conditions.push_back(time_cond);

  std::unordered_set<graph::PersonId> geo_matched;
  std::unordered_set<graph::PersonId> poi;
  for (const auto& doc : tweets_.FindDocs(query)) {
    const auto user = doc.find("user");
    const auto text = doc.find("text");
    if (user == doc.end() || text == doc.end()) continue;
    const auto* uid = std::get_if<std::int64_t>(&user->second);
    if (uid == nullptr) continue;
    const auto pit = by_twitter.find(*uid);
    if (pit == by_twitter.end()) continue;  // not in the associate field
    geo_matched.insert(pit->second);
    // NLP filter: only incident-flavored text promotes to person of interest.
    const auto* txt = std::get_if<std::string>(&text->second);
    if (txt != nullptr && classifier_.Predict(*txt) == 1) {
      poi.insert(pit->second);
    }
  }

  result.geo_time_matched = geo_matched.size();
  result.persons_of_interest = poi.size();
  result.poi.assign(poi.begin(), poi.end());
  std::sort(result.poi.begin(), result.poi.end());
  result.narrowing_factor =
      poi.empty() ? double(result.second_degree_field)
                  : double(result.second_degree_field) / double(poi.size());

  std::size_t found = 0;
  for (const graph::PersonId person : planted_) {
    if (poi.count(person)) ++found;
  }
  result.plant_recall =
      planted_.empty() ? 0 : double(found) / double(planted_.size());
  result.plant_precision = poi.empty() ? 0 : double(found) / double(poi.size());
  return result;
}

}  // namespace metro::apps
