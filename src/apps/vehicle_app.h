#pragma once

// Vehicle detection & classification application (Sec. IV-A1, Figs. 5-6).
//
// Wraps the split detector with its training loop, the early-exit policy
// (accept Tiny output when its best detection score clears a threshold,
// else "ship" the feature map to the full head), detection-quality scoring
// against ground truth, and the ASCII rendering used by the Fig. 6 example.

#include <string>
#include <vector>

#include "datagen/video.h"
#include "zoo/detector.h"
#include "zoo/session.h"

namespace metro::apps {

/// Per-threshold evaluation of the split detector.
struct DetectorEvaluation {
  float threshold = 0;
  double offload_fraction = 0;   ///< frames sent to the full head
  double classification_accuracy = 0;  ///< top detection matches a gt class
  double mean_iou = 0;           ///< IoU of matched detections
  double recall = 0;             ///< gt boxes matched (IoU > 0.3, same class)
  double precision = 0;
  std::size_t frames = 0;
};

/// One processed frame.
struct FrameResult {
  std::vector<zoo::Detection> detections;
  bool offloaded = false;
  float tiny_confidence = 0;
};

/// The deployed application.
class VehicleDetectionApp {
 public:
  VehicleDetectionApp(const zoo::DetectorConfig& config, std::uint64_t seed);

  /// Joint training on synthetic labeled frames; returns final batch loss.
  float Train(int steps, int batch_size = 16, float lr = 2e-3f);

  /// Early-exit inference on one frame tensor (1, H, W, 3), via the planned
  /// arena-backed session (bit-exact with the eager halves).
  FrameResult ProcessFrame(const tensor::Tensor& frame, float threshold);

  /// Sweeps frames from the generator at one exit threshold.
  DetectorEvaluation Evaluate(int num_frames, float threshold);

  /// ASCII rendering of a frame with detection boxes — the Fig. 6 stand-in.
  static std::string RenderAscii(const tensor::Tensor& frame,
                                 const std::vector<zoo::Detection>& dets);

  zoo::SplitDetector& detector() { return detector_; }
  datagen::VehicleFrameGenerator& generator() { return generator_; }
  zoo::DetectorSession& session() { return session_; }

 private:
  zoo::DetectorConfig config_;
  Rng rng_;
  zoo::SplitDetector detector_;
  datagen::VehicleFrameGenerator generator_;
  tensor::Workspace arena_;        ///< activation arena for session_
  zoo::DetectorSession session_;   ///< planned stem/tiny/full at batch 1
};

}  // namespace metro::apps
