#include "apps/opioid_app.h"

#include <algorithm>

namespace metro::apps {

namespace {

const char* const kFactorNames[datagen::OpioidPanelGenerator::kNumFeatures] = {
    "opioid prescriptions", "drug-related arrests", "911 overdose calls",
    "traffic volume",       "poverty index",        "treatment availability",
};

}  // namespace

OpioidAnalyticsApp::OpioidAnalyticsApp(
    const datagen::OpioidPanelGenerator::Config& config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

OpioidReport OpioidAnalyticsApp::Run(dataflow::Engine& engine,
                                     int holdout_months) {
  datagen::OpioidPanelGenerator generator(config_, seed_);
  const auto panel = generator.Generate();
  const int split_month = config_.num_months - holdout_months;

  std::vector<dataflow::LabeledPoint> train;
  std::vector<const datagen::TractMonth*> test;
  for (const auto& obs : panel) {
    if (obs.month < split_month) {
      train.push_back({datagen::OpioidPanelGenerator::Features(obs),
                       obs.high_overdose_next_month ? 1 : 0});
    } else {
      test.push_back(&obs);
    }
  }

  OpioidReport report;
  report.train_rows = int(train.size());
  report.test_rows = int(test.size());

  auto fitted = dataflow::FitLogistic(
      dataflow::Dataset<dataflow::LabeledPoint>::Parallelize(train, 4),
      datagen::OpioidPanelGenerator::kNumFeatures, engine, 250, 0.8f, 1e-4f);
  if (!fitted.ok()) return report;
  model_ = std::move(fitted).value();

  // Held-out scoring.
  int hits = 0, positives = 0;
  std::vector<std::pair<float, bool>> ranked;
  for (const auto* obs : test) {
    const float score = Score(*obs);
    const bool positive = obs->high_overdose_next_month;
    if ((score >= 0.5f) == positive) ++hits;
    if (positive) ++positives;
    ranked.emplace_back(score, positive);
  }
  report.test_accuracy = test.empty() ? 0 : double(hits) / double(test.size());
  const int majority = std::max(positives, int(test.size()) - positives);
  report.baseline_accuracy =
      test.empty() ? 0 : double(majority) / double(test.size());

  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  int top_hits = 0;
  const int k = std::min<int>(10, int(ranked.size()));
  for (int i = 0; i < k; ++i) top_hits += ranked[std::size_t(i)].second;
  report.top10_precision = k == 0 ? 0 : double(top_hits) / k;

  for (int f = 0; f < datagen::OpioidPanelGenerator::kNumFeatures; ++f) {
    report.factor_weights.emplace_back(kFactorNames[f],
                                       model_.weights[std::size_t(f)]);
  }
  std::sort(report.factor_weights.begin(), report.factor_weights.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.second) > std::abs(b.second);
            });
  return report;
}

float OpioidAnalyticsApp::Score(const datagen::TractMonth& obs) const {
  return dataflow::LogisticPredict(
      model_, datagen::OpioidPanelGenerator::Features(obs));
}

}  // namespace metro::apps
