#include "apps/vehicle_app.h"

#include <algorithm>
#include <sstream>

#include "nn/optimizer.h"

namespace metro::apps {

VehicleDetectionApp::VehicleDetectionApp(const zoo::DetectorConfig& config,
                                         std::uint64_t seed)
    : config_(config),
      rng_(seed),
      detector_(config, rng_),
      generator_(config, seed ^ 0xD1CE),
      session_(detector_, /*batch=*/1, arena_) {}

float VehicleDetectionApp::Train(int steps, int batch_size, float lr) {
  nn::Adam opt(lr);
  float loss = 0;
  for (int step = 0; step < steps; ++step) {
    auto [images, truth] = generator_.Batch(batch_size);
    loss = detector_.TrainStep(images, truth, opt);
  }
  return loss;
}

FrameResult VehicleDetectionApp::ProcessFrame(const tensor::Tensor& frame,
                                              float threshold) {
  // Planned, arena-backed early exit: stem + tiny head always run; the full
  // head (the analysis server, in deployment) only when the gate misses.
  auto gated = session_.Detect(tensor::TensorView::OfConst(frame), threshold);
  FrameResult result;
  result.detections = std::move(gated.front().detections);
  result.tiny_confidence = gated.front().tiny_confidence;
  result.offloaded = gated.front().offloaded;
  return result;
}

DetectorEvaluation VehicleDetectionApp::Evaluate(int num_frames,
                                                 float threshold) {
  DetectorEvaluation eval;
  eval.threshold = threshold;
  eval.frames = std::size_t(num_frames);
  std::size_t offloads = 0, class_hits = 0;
  std::size_t matched = 0, total_gt = 0, total_det = 0;
  double iou_sum = 0;

  for (int f = 0; f < num_frames; ++f) {
    datagen::LabeledFrame frame = generator_.Generate();
    const tensor::Tensor batch1 = frame.image.Reshape(
        {1, config_.image_size, config_.image_size, config_.channels});
    FrameResult result = ProcessFrame(batch1, threshold);
    if (result.offloaded) ++offloads;

    total_gt += frame.boxes.size();
    total_det += result.detections.size();

    // Greedy match detections to ground truth by IoU.
    std::vector<bool> used(frame.boxes.size(), false);
    bool top_class_hit = false;
    for (std::size_t d = 0; d < result.detections.size(); ++d) {
      const zoo::Detection& det = result.detections[d];
      double best_iou = 0;
      int best_gt = -1;
      for (std::size_t g = 0; g < frame.boxes.size(); ++g) {
        if (used[g]) continue;
        zoo::Detection gt;
        gt.cx = frame.boxes[g].cx;
        gt.cy = frame.boxes[g].cy;
        gt.w = frame.boxes[g].w;
        gt.h = frame.boxes[g].h;
        const double iou = zoo::Iou(det, gt);
        if (iou > best_iou) {
          best_iou = iou;
          best_gt = int(g);
        }
      }
      if (best_gt >= 0 && best_iou > 0.3 &&
          det.cls == frame.boxes[std::size_t(best_gt)].cls) {
        used[std::size_t(best_gt)] = true;
        ++matched;
        iou_sum += best_iou;
        if (d == 0) top_class_hit = true;
      }
    }
    if (top_class_hit) ++class_hits;
  }

  eval.offload_fraction = double(offloads) / std::max<std::size_t>(eval.frames, 1);
  eval.classification_accuracy =
      double(class_hits) / std::max<std::size_t>(eval.frames, 1);
  eval.recall = total_gt ? double(matched) / double(total_gt) : 0;
  eval.precision = total_det ? double(matched) / double(total_det) : 0;
  eval.mean_iou = matched ? iou_sum / double(matched) : 0;
  return eval;
}

std::string VehicleDetectionApp::RenderAscii(
    const tensor::Tensor& frame, const std::vector<zoo::Detection>& dets) {
  // frame: (H, W, 3) or (1, H, W, 3).
  const int off = frame.rank() == 4 ? 1 : 0;
  const int h = frame.dim(off), w = frame.dim(off + 1);
  static constexpr std::string_view kRamp = " .:-=+*#%@";
  std::vector<std::string> canvas(std::size_t(h), std::string(std::size_t(w), ' '));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float lum = 0;
      for (int c = 0; c < 3; ++c) {
        lum += frame[(std::size_t(y) * w + x) * 3 + std::size_t(c)];
      }
      lum /= 3.0f;
      const auto idx = std::min<std::size_t>(
          std::size_t(lum * float(kRamp.size())), kRamp.size() - 1);
      canvas[std::size_t(y)][std::size_t(x)] = kRamp[idx];
    }
  }
  // Overlay boxes with the class digit at the corners.
  for (const zoo::Detection& det : dets) {
    const int x0 = std::clamp(int((det.cx - det.w / 2) * w), 0, w - 1);
    const int x1 = std::clamp(int((det.cx + det.w / 2) * w), 0, w - 1);
    const int y0 = std::clamp(int((det.cy - det.h / 2) * h), 0, h - 1);
    const int y1 = std::clamp(int((det.cy + det.h / 2) * h), 0, h - 1);
    for (int x = x0; x <= x1; ++x) {
      canvas[std::size_t(y0)][std::size_t(x)] = '-';
      canvas[std::size_t(y1)][std::size_t(x)] = '-';
    }
    for (int y = y0; y <= y1; ++y) {
      canvas[std::size_t(y)][std::size_t(x0)] = '|';
      canvas[std::size_t(y)][std::size_t(x1)] = '|';
    }
    canvas[std::size_t(y0)][std::size_t(x0)] = char('0' + det.cls % 10);
  }
  std::ostringstream os;
  for (const auto& line : canvas) os << line << '\n';
  return os.str();
}

}  // namespace metro::apps
