#include "apps/behavior_app.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace metro::apps {

BehaviorRecognitionApp::BehaviorRecognitionApp(
    const zoo::BehaviorConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      model_(config, rng_),
      generator_(config, seed ^ 0xBEEF),
      session_(model_, /*n_clips=*/1, arena_) {}

float BehaviorRecognitionApp::Train(int steps, int batch_size, float lr) {
  nn::Adam opt(lr);
  float loss = 0;
  for (int step = 0; step < steps; ++step) {
    std::vector<zoo::Clip> batch;
    batch.reserve(std::size_t(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      batch.push_back(generator_.Generate());
    }
    loss = model_.TrainStep(batch, opt);
  }
  return loss;
}

BehaviorEvaluation BehaviorRecognitionApp::Evaluate(int num_clips,
                                                    float entropy_threshold) {
  BehaviorEvaluation eval;
  eval.entropy_threshold = entropy_threshold;
  eval.clips = std::size_t(num_clips);
  std::size_t offloads = 0, gated_hits = 0, e1_hits = 0, e2_hits = 0;

  for (int i = 0; i < num_clips; ++i) {
    const zoo::Clip clip = generator_.Generate();
    // Ungated paths, for the accuracy floor/ceiling — planned sessions; the
    // block-1 cut-point features stay arena-resident between the halves.
    auto local =
        session_.RunLocal(tensor::TensorView::OfConst(clip.frames), 1);
    const int e1_label =
        int(local.logits.ArgMax());
    if (e1_label == clip.label) ++e1_hits;
    const nn::Tensor server_logits = session_.ServerLogits(local.block1_out, 1);
    const nn::Tensor server_probs = tensor::Softmax(server_logits);
    const int e2_label = int(server_probs.ArgMax());
    if (e2_label == clip.label) ++e2_hits;
    // Gated decision (reuses the already computed passes).
    const bool offload = local.entropy.front() > entropy_threshold;
    const int gated = offload ? e2_label : e1_label;
    if (offload) ++offloads;
    if (gated == clip.label) ++gated_hits;
  }

  const double n = std::max(1, num_clips);
  eval.offload_fraction = double(offloads) / n;
  eval.accuracy = double(gated_hits) / n;
  eval.exit1_accuracy = double(e1_hits) / n;
  eval.exit2_accuracy = double(e2_hits) / n;
  return eval;
}

bool BehaviorRecognitionApp::IsSuspicious(int label) {
  const auto cls = datagen::BehaviorClass(label);
  return cls == datagen::BehaviorClass::kAltercation ||
         cls == datagen::BehaviorClass::kZigzag ||
         cls == datagen::BehaviorClass::kRunning;
}

zoo::BehaviorPrediction BehaviorRecognitionApp::Monitor(
    const zoo::Clip& clip, const geo::LatLon& camera_location, TimeNs now,
    float entropy_threshold, store::Collection& incidents,
    core::AlertManager& alerts) {
  zoo::BehaviorPrediction pred = session_.Predict(clip, entropy_threshold);
  if (IsSuspicious(pred.label)) {
    // Index time, location, and activity type (Sec. IV-A2's logging step).
    store::Document doc;
    doc["type"] = std::string("behavior_incident");
    doc["activity"] =
        std::string(datagen::BehaviorName(datagen::BehaviorClass(pred.label)));
    doc["lat"] = camera_location.lat;
    doc["lon"] = camera_location.lon;
    doc["timestamp"] = std::int64_t(now);
    doc["entropy"] = double(pred.entropy);
    doc["escalated"] = pred.used_server;
    incidents.Insert(std::move(doc));

    core::Alert alert;
    alert.time = now;
    alert.location = camera_location;
    alert.kind = "suspicious_behavior";
    alert.message =
        std::string(datagen::BehaviorName(datagen::BehaviorClass(pred.label))) +
        " detected on camera feed";
    alert.severity =
        datagen::BehaviorClass(pred.label) == datagen::BehaviorClass::kAltercation
            ? 4
            : 2;
    alerts.Raise(std::move(alert));
  }
  return pred;
}

}  // namespace metro::apps
