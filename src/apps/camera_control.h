#pragma once

// DRL smart camera control application (Sec. III-D).
//
// The paper proposes deep reinforcement learning for "smart camera controls
// to automatically rotate and zoom in for traffic and crime incidents".
// This module is that loop: a pan/tilt/zoom camera over a city-block grid,
// incidents appearing at random cells, reward for keeping the incident
// centered and zoomed, and a DQN agent trained against it. Evaluation
// compares the trained policy's episode return against a random policy.

#include "util/rng.h"
#include "zoo/dqn.h"

namespace metro::apps {

/// The camera-control environment.
///
/// State (6 floats): camera (x, y) normalized, zoom level normalized,
/// incident (x, y) normalized, incident age fraction.
/// Actions: pan left/right/up/down, zoom in/out, hold (7 total).
class CameraEnv {
 public:
  struct Config {
    int grid = 9;             ///< pan positions per axis
    int zoom_levels = 3;
    int episode_steps = 40;
    int incident_lifetime = 20;  ///< steps before the incident relocates
  };

  explicit CameraEnv(Config config, std::uint64_t seed);

  /// Resets camera and incident; returns the initial state.
  std::vector<float> Reset();

  struct StepResult {
    std::vector<float> state;
    float reward = 0;
    bool done = false;
  };

  /// Applies an action (0..6).
  StepResult Step(int action);

  static constexpr int kStateDim = 6;
  static constexpr int kNumActions = 7;

  /// Reward for the current pose (exposed for tests): 1 when the incident is
  /// centered at max zoom, falling off with distance, small step penalty.
  float PoseReward() const;

 private:
  std::vector<float> State() const;
  void PlaceIncident();

  Config config_;
  Rng rng_;
  int cam_x_ = 0, cam_y_ = 0, zoom_ = 0;
  int incident_x_ = 0, incident_y_ = 0;
  int incident_age_ = 0;
  int step_ = 0;
};

/// Training/evaluation harness around the DQN agent.
class CameraControlApp {
 public:
  CameraControlApp(const CameraEnv::Config& env_config,
                   const zoo::DqnConfig& dqn_config, std::uint64_t seed);

  /// Trains for `episodes` episodes with epsilon decaying from 1.0 to 0.05;
  /// returns the mean return of the last 10 training episodes.
  double Train(int episodes);

  /// Mean episode return of the greedy policy.
  double EvaluatePolicy(int episodes);

  /// Mean episode return of a uniform random policy (the baseline).
  double EvaluateRandom(int episodes);

  zoo::DqnAgent& agent() { return agent_; }

 private:
  double RunEpisode(float epsilon, bool learn);

  Rng rng_;  // declared first: seeds the agent's weight init below
  CameraEnv env_;
  zoo::DqnAgent agent_;
};

}  // namespace metro::apps
