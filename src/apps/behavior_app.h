#pragma once

// Suspicious behavior / crime action recognition application
// (Sec. IV-A2, Figs. 7-8).
//
// Wraps the split ResNet+LSTM model with training, entropy-gated early-exit
// evaluation, and the deployment loop: recognized suspicious activity is
// indexed into a collection (time, location, type) and raised to the human
// operator through the AlertManager.

#include "core/infrastructure.h"
#include "datagen/video.h"
#include "store/document_store.h"
#include "zoo/behavior.h"
#include "zoo/session.h"

namespace metro::apps {

/// Per-threshold evaluation of the split behavior model.
struct BehaviorEvaluation {
  float entropy_threshold = 0;
  double offload_fraction = 0;  ///< clips escalated to the server path
  double accuracy = 0;          ///< gated (deployed) accuracy
  double exit1_accuracy = 0;    ///< local head alone
  double exit2_accuracy = 0;    ///< server path alone
  std::size_t clips = 0;
};

/// The deployed application.
class BehaviorRecognitionApp {
 public:
  BehaviorRecognitionApp(const zoo::BehaviorConfig& config, std::uint64_t seed);

  /// Joint training of both exits; returns the final batch loss.
  float Train(int steps, int batch_size = 12, float lr = 2e-3f);

  /// Gated and ungated accuracy over fresh clips at one threshold.
  BehaviorEvaluation Evaluate(int num_clips, float entropy_threshold);

  /// Deployment step: classify a clip from a camera; when the predicted
  /// class is a concern (altercation/zigzag), index it into `incidents` and
  /// raise an operator alert. Returns the prediction.
  zoo::BehaviorPrediction Monitor(const zoo::Clip& clip,
                                  const geo::LatLon& camera_location,
                                  TimeNs now, float entropy_threshold,
                                  store::Collection& incidents,
                                  core::AlertManager& alerts);

  zoo::SplitBehaviorNet& model() { return model_; }
  datagen::BehaviorClipGenerator& generator() { return generator_; }
  zoo::BehaviorSession& session() { return session_; }

  /// True when the class is one the application alerts on.
  static bool IsSuspicious(int label);

 private:
  zoo::BehaviorConfig config_;
  Rng rng_;
  zoo::SplitBehaviorNet model_;
  datagen::BehaviorClipGenerator generator_;
  tensor::Workspace arena_;       ///< activation arena for session_
  zoo::BehaviorSession session_;  ///< planned local/server halves, 1 clip
};

}  // namespace metro::apps
