#include "apps/camera_control.h"

#include <algorithm>
#include <cmath>

namespace metro::apps {

CameraEnv::CameraEnv(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void CameraEnv::PlaceIncident() {
  incident_x_ = int(rng_.UniformU64(std::size_t(config_.grid)));
  incident_y_ = int(rng_.UniformU64(std::size_t(config_.grid)));
  incident_age_ = 0;
}

std::vector<float> CameraEnv::Reset() {
  cam_x_ = config_.grid / 2;
  cam_y_ = config_.grid / 2;
  zoom_ = 0;
  step_ = 0;
  PlaceIncident();
  return State();
}

std::vector<float> CameraEnv::State() const {
  const float g = float(config_.grid - 1);
  return {float(cam_x_) / g,
          float(cam_y_) / g,
          float(zoom_) / float(std::max(config_.zoom_levels - 1, 1)),
          float(incident_x_) / g,
          float(incident_y_) / g,
          float(incident_age_) / float(config_.incident_lifetime)};
}

float CameraEnv::PoseReward() const {
  const float dist = std::abs(float(cam_x_ - incident_x_)) +
                     std::abs(float(cam_y_ - incident_y_));
  const float g = float(config_.grid);
  const float proximity = std::max(0.0f, 1.0f - dist / (g * 0.6f));
  // Zoom only pays off when on target; zooming while off target hurts
  // (narrow field of view pointed at nothing).
  const float zoom_frac =
      float(zoom_) / float(std::max(config_.zoom_levels - 1, 1));
  const float aimed = dist <= 1.0f ? 1.0f : 0.0f;
  return proximity * (0.5f + 0.5f * zoom_frac * aimed) -
         zoom_frac * (1.0f - aimed) * 0.2f;
}

CameraEnv::StepResult CameraEnv::Step(int action) {
  switch (action) {
    case 0: cam_x_ = std::max(cam_x_ - 1, 0); break;
    case 1: cam_x_ = std::min(cam_x_ + 1, config_.grid - 1); break;
    case 2: cam_y_ = std::max(cam_y_ - 1, 0); break;
    case 3: cam_y_ = std::min(cam_y_ + 1, config_.grid - 1); break;
    case 4: zoom_ = std::min(zoom_ + 1, config_.zoom_levels - 1); break;
    case 5: zoom_ = std::max(zoom_ - 1, 0); break;
    default: break;  // hold
  }
  if (++incident_age_ >= config_.incident_lifetime) PlaceIncident();
  ++step_;
  StepResult result;
  result.reward = PoseReward();
  result.done = step_ >= config_.episode_steps;
  result.state = State();
  return result;
}

CameraControlApp::CameraControlApp(const CameraEnv::Config& env_config,
                                   const zoo::DqnConfig& dqn_config,
                                   std::uint64_t seed)
    : rng_(seed),
      env_(env_config, seed ^ 0xCA1),
      agent_(CameraEnv::kStateDim, CameraEnv::kNumActions, dqn_config, rng_) {}

double CameraControlApp::RunEpisode(float epsilon, bool learn) {
  std::vector<float> state = env_.Reset();
  double ret = 0;
  while (true) {
    const int action = agent_.Act(state, epsilon, rng_);
    const auto step = env_.Step(action);
    ret += step.reward;
    if (learn) {
      agent_.Observe({state, action, step.reward, step.state, step.done});
      (void)agent_.TrainStep(rng_);
    }
    state = step.state;
    if (step.done) break;
  }
  return ret;
}

double CameraControlApp::Train(int episodes) {
  double tail_sum = 0;
  int tail_count = 0;
  for (int ep = 0; ep < episodes; ++ep) {
    const float epsilon =
        std::max(0.05f, 1.0f - float(ep) / std::max(1.0f, float(episodes) * 0.8f));
    const double ret = RunEpisode(epsilon, true);
    if (ep >= episodes - 10) {
      tail_sum += ret;
      ++tail_count;
    }
  }
  return tail_count ? tail_sum / tail_count : 0;
}

double CameraControlApp::EvaluatePolicy(int episodes) {
  double sum = 0;
  for (int ep = 0; ep < episodes; ++ep) sum += RunEpisode(0.0f, false);
  return sum / std::max(1, episodes);
}

double CameraControlApp::EvaluateRandom(int episodes) {
  double sum = 0;
  for (int ep = 0; ep < episodes; ++ep) {
    std::vector<float> state = env_.Reset();
    while (true) {
      const auto step =
          env_.Step(int(rng_.UniformU64(CameraEnv::kNumActions)));
      sum += step.reward;
      if (step.done) break;
    }
  }
  return sum / std::max(1, episodes);
}

}  // namespace metro::apps
