#include "datagen/city.h"

#include <cmath>

namespace metro::datagen {
namespace {

const std::vector<std::pair<std::string, int>>& OffenseCatalog() {
  // (offense, synthetic Louisiana offense code)
  static const std::vector<std::pair<std::string, int>> catalog = {
      {"homicide", 3001},          {"robbery", 6501},
      {"aggravated assault", 3702}, {"illegal use of a weapon", 9401},
      {"burglary", 6201},          {"vehicle theft", 6702},
  };
  return catalog;
}

const std::vector<std::string>& CallCategories() {
  static const std::vector<std::string> categories = {
      "shots fired", "medical", "traffic", "disturbance", "alarm",
  };
  return categories;
}

}  // namespace

CityDataGenerator::CityDataGenerator(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  hotspots_.reserve(std::size_t(config_.num_hotspots));
  for (int i = 0; i < config_.num_hotspots; ++i) {
    hotspots_.push_back({kBatonRouge.lat + rng_.Normal(0.0, 0.06),
                         kBatonRouge.lon + rng_.Normal(0.0, 0.06)});
  }
  BuildCameras();
}

void CityDataGenerator::BuildCameras() {
  // Corridors radiate from the city center like the interstates of Fig. 2
  // (I-10 E/W, I-12 E, I-110 N, plus two arterials).
  struct Corridor {
    std::string name;
    double heading_deg;
  };
  const std::vector<Corridor> corridors = {
      {"I-10-W", 250}, {"I-10-E", 110}, {"I-12-E", 85},
      {"I-110-N", 5},  {"US-61", 320},  {"LA-1", 200},
  };
  cameras_.reserve(std::size_t(config_.num_cameras));
  for (int i = 0; i < config_.num_cameras; ++i) {
    const Corridor& corridor = corridors[std::size_t(i) % corridors.size()];
    // Cameras every ~800 m along the corridor with lateral jitter.
    const double dist_deg = 0.008 * double(i / int(corridors.size()) + 1);
    const double heading = corridor.heading_deg * M_PI / 180.0;
    Camera cam;
    cam.id = i;
    cam.corridor = corridor.name;
    cam.location = {
        kBatonRouge.lat + dist_deg * std::cos(heading) + rng_.Normal(0.0, 0.001),
        kBatonRouge.lon + dist_deg * std::sin(heading) + rng_.Normal(0.0, 0.001)};
    cam.fps = rng_.Bernoulli(0.5) ? 15.0 : 30.0;
    cameras_.push_back(std::move(cam));
  }
}

CrimeRecord CityDataGenerator::GenerateCrime(TimeNs now,
                                             const GangNetwork* network) {
  CrimeRecord rec;
  rec.report_number = next_report_++;
  const auto& [offense, code] =
      OffenseCatalog()[rng_.UniformU64(OffenseCatalog().size())];
  rec.offense = offense;
  rec.offense_code = code;
  rec.timestamp = now;
  if (rng_.Bernoulli(config_.hotspot_fraction)) {
    const auto& hs = hotspots_[rng_.UniformU64(hotspots_.size())];
    rec.location = {hs.lat + rng_.Normal(0.0, config_.hotspot_sigma_deg),
                    hs.lon + rng_.Normal(0.0, config_.hotspot_sigma_deg)};
  } else {
    rec.location = {kBatonRouge.lat + rng_.Normal(0.0, 0.08),
                    kBatonRouge.lon + rng_.Normal(0.0, 0.08)};
  }
  rec.district = int(rng_.UniformU64(std::size_t(config_.num_districts)));
  if (network != nullptr && rng_.Bernoulli(0.4) &&
      network->graph.num_people() > 0) {
    // Involve a member and possibly an associate (co-offending).
    const auto seed_person =
        graph::PersonId(rng_.UniformU64(network->graph.num_people()));
    rec.involved.push_back(seed_person);
    const auto neighbors = network->graph.Neighbors(seed_person);
    if (!neighbors.empty() && rng_.Bernoulli(0.6)) {
      rec.involved.push_back(neighbors[rng_.UniformU64(neighbors.size())]);
    }
  }
  return rec;
}

EmergencyCall CityDataGenerator::GenerateCall(TimeNs now) {
  EmergencyCall call;
  call.id = next_call_++;
  call.category = CallCategories()[rng_.Categorical({0.1, 0.3, 0.3, 0.2, 0.1})];
  call.location = {kBatonRouge.lat + rng_.Normal(0.0, 0.08),
                   kBatonRouge.lon + rng_.Normal(0.0, 0.08)};
  call.timestamp = now;
  return call;
}

store::Document CityDataGenerator::ToDocument(const CrimeRecord& record) {
  store::Document doc;
  doc["type"] = std::string("crime");
  doc["report_number"] = std::int64_t(record.report_number);
  doc["offense"] = record.offense;
  doc["offense_code"] = std::int64_t(record.offense_code);
  doc["lat"] = record.location.lat;
  doc["lon"] = record.location.lon;
  doc["timestamp"] = std::int64_t(record.timestamp);
  doc["district"] = std::int64_t(record.district);
  doc["num_involved"] = std::int64_t(record.involved.size());
  return doc;
}

store::Document CityDataGenerator::ToDocument(const EmergencyCall& call) {
  store::Document doc;
  doc["type"] = std::string("911");
  doc["id"] = std::int64_t(call.id);
  doc["category"] = call.category;
  doc["lat"] = call.location.lat;
  doc["lon"] = call.location.lon;
  doc["timestamp"] = std::int64_t(call.timestamp);
  return doc;
}

store::Document CityDataGenerator::ToDocument(const Tweet& tweet) {
  store::Document doc;
  doc["type"] = std::string("tweet");
  doc["id"] = std::int64_t(tweet.id);
  doc["user"] = std::int64_t(tweet.user);
  doc["lat"] = tweet.location.lat;
  doc["lon"] = tweet.location.lon;
  doc["timestamp"] = std::int64_t(tweet.timestamp);
  doc["text"] = tweet.text;
  doc["about_incident"] = tweet.about_incident;
  return doc;
}

store::Document CityDataGenerator::ToDocument(const WazeReport& report) {
  store::Document doc;
  doc["type"] = std::string("waze");
  doc["id"] = std::int64_t(report.id);
  doc["kind"] = std::string(WazeKindName(report.kind));
  doc["lat"] = report.location.lat;
  doc["lon"] = report.location.lon;
  doc["timestamp"] = std::int64_t(report.timestamp);
  doc["severity"] = std::int64_t(report.severity);
  return doc;
}

}  // namespace metro::datagen
