#pragma once

// Synthetic health-care data (Sec. V future work).
//
// The paper's stated next step is integrating anonymized health data to
// study the opioid epidemic, listing the sources to fuse: opioid
// prescription counts, substance-related crime arrests, overdose locations,
// 911 calls, and traffic/DOTD volume. This generator produces a monthly
// census-tract panel with those features, where the (hidden) ground-truth
// overdose risk is a nonlinear function of the drivers — so the analytics
// layer has a real signal to recover and a label to score against.

#include <vector>

#include "geo/geo.h"
#include "util/rng.h"

namespace metro::datagen {

/// One tract-month observation.
struct TractMonth {
  int tract = 0;
  int month = 0;
  geo::LatLon centroid;
  // Observable features (per 1k residents, normalized scales).
  float prescriptions = 0;     ///< opioid prescriptions
  float drug_arrests = 0;      ///< substance-use-related arrests
  float overdose_calls = 0;    ///< 911 overdose calls, prior month
  float traffic_volume = 0;    ///< DOTD corridor volume index
  float poverty_index = 0;     ///< census deprivation index
  float treatment_centers = 0; ///< per-capita treatment availability
  // Outcome.
  bool high_overdose_next_month = false;
  float latent_risk = 0;  ///< ground-truth risk (hidden from models)
};

/// Panel generator over a grid of tracts.
class OpioidPanelGenerator {
 public:
  struct Config {
    int num_tracts = 120;
    int num_months = 12;
    double base_rate = 0.25;  ///< fraction of high-overdose tract-months
  };

  OpioidPanelGenerator(Config config, std::uint64_t seed);

  /// The full panel, tract-major then month.
  std::vector<TractMonth> Generate();

  /// Feature vector of an observation, in a fixed order (6 features).
  static std::vector<float> Features(const TractMonth& obs);
  static constexpr int kNumFeatures = 6;

 private:
  Config config_;
  Rng rng_;
};

}  // namespace metro::datagen
