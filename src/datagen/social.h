#pragma once

// Synthetic online-social-network and crowd-sourced traffic data
// (substitutes for the Twitter API and Waze CCP feeds of Sec. II-A2) and a
// criminal/gang network calibrated to the statistics the paper publishes in
// Sec. IV-B (67 groups, 982 members, mean first-degree field of ~14).

#include <string>
#include <vector>

#include "geo/geo.h"
#include "graph/social_graph.h"
#include "util/clock.h"
#include "util/rng.h"

namespace metro::datagen {

/// Baton Rouge city center — the paper's deployment site (Fig. 2).
inline constexpr geo::LatLon kBatonRouge{30.4515, -91.1871};

/// One synthetic tweet.
struct Tweet {
  std::uint64_t id = 0;
  std::uint64_t user = 0;
  TimeNs timestamp = 0;
  geo::LatLon location;
  std::string text;
  bool about_incident = false;  ///< ground truth for classifier scoring
};

/// Tweet stream with Zipfian users, keyword-bearing incident chatter, and
/// geo-temporal bursts around planted incidents.
class TweetGenerator {
 public:
  struct Config {
    int num_users = 500;
    double incident_fraction = 0.1;  ///< tweets that reference an incident
    double geo_spread_deg = 0.15;    ///< city-scale scatter
  };

  TweetGenerator(Config config, std::uint64_t seed);

  /// One background tweet at `now`.
  Tweet Generate(TimeNs now);

  /// A tweet about an incident at `where`, posted `now`, geotagged nearby.
  Tweet GenerateNearIncident(TimeNs now, const geo::LatLon& where);

  /// Assigns a tweet author id (Zipf-popular users tweet more).
  std::uint64_t PickUser();

 private:
  Config config_;
  Rng rng_;
  std::uint64_t next_id_ = 1;
};

/// One Waze-style report.
struct WazeReport {
  std::uint64_t id = 0;
  TimeNs timestamp = 0;
  geo::LatLon location;
  enum class Kind { kJam, kAccident, kPothole, kHazard } kind = Kind::kJam;
  int severity = 1;  ///< 1..5
};

std::string_view WazeKindName(WazeReport::Kind kind);

/// Crowd-sourced traffic report stream.
class WazeGenerator {
 public:
  WazeGenerator(std::uint64_t seed) : rng_(seed) {}

  WazeReport Generate(TimeNs now);

 private:
  Rng rng_;
  std::uint64_t next_id_ = 1;
};

/// Gang/co-offender network generator calibrated to Sec. IV-B.
struct GangNetworkSpec {
  int num_groups = 67;
  int num_members = 982;
  double mean_first_degree = 14.0;
  double cross_group_tie_fraction = 0.65;  ///< ties bridging groups (calibrated so the 2nd-degree field approaches the paper's ~200)
};

/// The generated network plus bookkeeping the SNA app needs.
struct GangNetwork {
  graph::SocialGraph graph;
  std::vector<int> group_of;            ///< person -> group index
  std::vector<std::uint64_t> twitter_id;  ///< person -> twitter user id
};

/// Builds a network whose mean degree approximates the spec by wiring
/// within-group random ties at the density that yields the target degree,
/// plus a fraction of cross-group bridges.
GangNetwork GenerateGangNetwork(const GangNetworkSpec& spec, std::uint64_t seed);

}  // namespace metro::datagen
