#pragma once

// Synthetic open city data and law-enforcement records (Sec. II-A3/4) plus
// the DOTD camera network layout of Fig. 2.
//
// Crime incidents cluster around persistent spatial hot-spots; 911 calls,
// potholes, and permits scatter city-wide; cameras sit along synthetic
// "interstate" polylines radiating from the city center, approximating the
// Fig. 2 highway corridors around Baton Rouge.

#include <string>
#include <vector>

#include "datagen/social.h"
#include "geo/geo.h"
#include "store/document_store.h"
#include "util/clock.h"
#include "util/rng.h"

namespace metro::datagen {

/// One law-enforcement incident record (the monthly crime-data schema of
/// Sec. II-A4, minus personally identifying fields).
struct CrimeRecord {
  std::uint64_t report_number = 0;
  std::string offense;     ///< "homicide", "robbery", ...
  int offense_code = 0;    ///< Louisiana criminal offense code (synthetic)
  geo::LatLon location;
  TimeNs timestamp = 0;
  int district = 0;
  std::vector<std::uint64_t> involved;  ///< gang-network person ids, if any
};

/// A 911 call-for-service record.
struct EmergencyCall {
  std::uint64_t id = 0;
  std::string category;  ///< "shots fired", "medical", "traffic", ...
  geo::LatLon location;
  TimeNs timestamp = 0;
};

/// One DOTD/city camera (Fig. 2).
struct Camera {
  int id = 0;
  std::string corridor;  ///< synthetic interstate name ("I-10", "I-12", ...)
  geo::LatLon location;
  double fps = 15.0;
  int width = 32, height = 32;
};

/// City data source with persistent hot-spots and a camera network.
class CityDataGenerator {
 public:
  struct Config {
    int num_hotspots = 6;
    double hotspot_sigma_deg = 0.01;   ///< ~1 km clusters
    double hotspot_fraction = 0.7;     ///< crimes that occur at hot-spots
    int num_cameras = 200;             ///< Fig. 2: "more than 200 cameras"
    int num_districts = 12;
  };

  CityDataGenerator(Config config, std::uint64_t seed);

  /// A crime record at `now`; when `network` is non-null, a fraction of
  /// records involve 1-3 connected members of the gang network (the
  /// co-offender ground truth the SNA experiment plants).
  CrimeRecord GenerateCrime(TimeNs now, const GangNetwork* network = nullptr);

  EmergencyCall GenerateCall(TimeNs now);

  /// The fixed camera network (generated once per instance).
  const std::vector<Camera>& cameras() const { return cameras_; }

  const std::vector<geo::LatLon>& hotspots() const { return hotspots_; }

  /// Renders a record as a document for the document store.
  static store::Document ToDocument(const CrimeRecord& record);
  static store::Document ToDocument(const EmergencyCall& call);
  static store::Document ToDocument(const Tweet& tweet);
  static store::Document ToDocument(const WazeReport& report);

 private:
  void BuildCameras();

  Config config_;
  Rng rng_;
  std::vector<geo::LatLon> hotspots_;
  std::vector<Camera> cameras_;
  std::uint64_t next_report_ = 202600001;
  std::uint64_t next_call_ = 1;
};

}  // namespace metro::datagen
