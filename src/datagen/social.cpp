#include "datagen/social.h"

#include <algorithm>
#include <cmath>

namespace metro::datagen {
namespace {

const std::vector<std::string>& BackgroundPhrases() {
  static const std::vector<std::string> phrases = {
      "great food at the festival today",
      "traffic is moving fine on the interstate",
      "who else is watching the game tonight",
      "beautiful sunset over the river",
      "coffee shop downtown is packed",
      "anyone know a good mechanic",
      "can't believe this weather",
      "new mural on government street looks amazing",
  };
  return phrases;
}

const std::vector<std::string>& IncidentPhrases() {
  static const std::vector<std::string> phrases = {
      "heard gunshots near the corner store stay safe",
      "police everywhere something happened on florida blvd",
      "shooting reported downtown everyone stay inside",
      "just saw a robbery at the gas station scary",
      "fight broke out near the park cops on the way",
      "heard shots fired by the apartments be careful",
  };
  return phrases;
}

}  // namespace

TweetGenerator::TweetGenerator(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

std::uint64_t TweetGenerator::PickUser() {
  return rng_.Zipf(std::size_t(config_.num_users), 1.1);
}

Tweet TweetGenerator::Generate(TimeNs now) {
  Tweet t;
  t.id = next_id_++;
  t.user = PickUser();
  t.timestamp = now;
  t.location = {kBatonRouge.lat + rng_.Normal(0.0, config_.geo_spread_deg),
                kBatonRouge.lon + rng_.Normal(0.0, config_.geo_spread_deg)};
  t.about_incident = rng_.Bernoulli(config_.incident_fraction);
  const auto& phrases =
      t.about_incident ? IncidentPhrases() : BackgroundPhrases();
  t.text = phrases[rng_.UniformU64(phrases.size())];
  return t;
}

Tweet TweetGenerator::GenerateNearIncident(TimeNs now,
                                           const geo::LatLon& where) {
  Tweet t;
  t.id = next_id_++;
  t.user = PickUser();
  // Posted within minutes of the incident, geotagged within ~500 m.
  t.timestamp = now + TimeNs(rng_.UniformInt(0, 10 * 60)) * kSecond;
  t.location = {where.lat + rng_.Normal(0.0, 0.004),
                where.lon + rng_.Normal(0.0, 0.004)};
  t.about_incident = true;
  const auto& phrases = IncidentPhrases();
  t.text = phrases[rng_.UniformU64(phrases.size())];
  return t;
}

std::string_view WazeKindName(WazeReport::Kind kind) {
  switch (kind) {
    case WazeReport::Kind::kJam: return "jam";
    case WazeReport::Kind::kAccident: return "accident";
    case WazeReport::Kind::kPothole: return "pothole";
    case WazeReport::Kind::kHazard: return "hazard";
  }
  return "?";
}

WazeReport WazeGenerator::Generate(TimeNs now) {
  WazeReport r;
  r.id = next_id_++;
  r.timestamp = now;
  r.location = {kBatonRouge.lat + rng_.Normal(0.0, 0.1),
                kBatonRouge.lon + rng_.Normal(0.0, 0.1)};
  r.kind = WazeReport::Kind(rng_.Categorical({0.55, 0.2, 0.15, 0.1}));
  r.severity = int(rng_.UniformInt(1, 5));
  return r;
}

GangNetwork GenerateGangNetwork(const GangNetworkSpec& spec,
                                std::uint64_t seed) {
  Rng rng(seed);
  GangNetwork net;
  net.group_of.reserve(std::size_t(spec.num_members));
  net.twitter_id.reserve(std::size_t(spec.num_members));

  // Group sizes: multinomial with mild skew so some gangs are larger.
  std::vector<double> weights(std::size_t(spec.num_groups));
  for (auto& w : weights) w = 0.5 + rng.UniformDouble();

  for (int person = 0; person < spec.num_members; ++person) {
    (void)net.graph.AddPerson("member-" + std::to_string(person));
    net.group_of.push_back(int(rng.Categorical(weights)));
    net.twitter_id.push_back(std::uint64_t(10'000 + person));
  }

  // Group rosters.
  std::vector<std::vector<graph::PersonId>> rosters(std::size_t(spec.num_groups));
  for (int person = 0; person < spec.num_members; ++person) {
    rosters[std::size_t(net.group_of[std::size_t(person)])].push_back(
        graph::PersonId(person));
  }

  // Within-group ties: target mean degree implies
  // total_ties ~= members * mean_degree / 2, split within/cross group.
  const double total_ties = spec.num_members * spec.mean_first_degree / 2.0;
  const auto within_ties =
      std::int64_t(total_ties * (1.0 - spec.cross_group_tie_fraction));
  const auto cross_ties = std::int64_t(total_ties) - within_ties;

  // Ties within a group are proportional to its roster size.
  std::int64_t placed = 0;
  std::int64_t attempts = 0;
  while (placed < within_ties && attempts < within_ties * 20) {
    ++attempts;
    const auto g = rng.Categorical(weights);
    const auto& roster = rosters[g];
    if (roster.size() < 2) continue;
    const auto a = roster[rng.UniformU64(roster.size())];
    const auto b = roster[rng.UniformU64(roster.size())];
    if (a == b || net.graph.HasTie(a, b)) continue;
    const auto kind = rng.Bernoulli(0.6) ? graph::TieKind::kCoOffender
                                         : graph::TieKind::kGangAffiliate;
    if (net.graph.AddTie(a, b, kind).ok()) ++placed;
  }

  placed = 0;
  attempts = 0;
  while (placed < cross_ties && attempts < cross_ties * 20) {
    ++attempts;
    const auto a = graph::PersonId(rng.UniformU64(std::size_t(spec.num_members)));
    const auto b = graph::PersonId(rng.UniformU64(std::size_t(spec.num_members)));
    if (a == b || net.group_of[a] == net.group_of[b] || net.graph.HasTie(a, b)) {
      continue;
    }
    if (net.graph.AddTie(a, b, graph::TieKind::kCoOffender).ok()) ++placed;
  }
  return net;
}

}  // namespace metro::datagen
