#include "datagen/video.h"

#include <algorithm>
#include <cmath>

namespace metro::datagen {

VehicleFrameGenerator::VehicleFrameGenerator(const zoo::DetectorConfig& config,
                                             std::uint64_t seed)
    : config_(config), rng_(seed) {}

std::array<float, 3> VehicleFrameGenerator::ClassColor(int cls) {
  // Eight well-separated palette colors (sedan, SUV, truck, van, bus,
  // motorcycle, pickup, emergency).
  static constexpr std::array<std::array<float, 3>, 8> kPalette = {{
      {0.9f, 0.1f, 0.1f},
      {0.1f, 0.9f, 0.1f},
      {0.1f, 0.2f, 0.9f},
      {0.9f, 0.9f, 0.1f},
      {0.9f, 0.1f, 0.9f},
      {0.1f, 0.9f, 0.9f},
      {0.9f, 0.5f, 0.1f},
      {0.6f, 0.6f, 0.6f},
  }};
  return kPalette[std::size_t(cls) % kPalette.size()];
}

void VehicleFrameGenerator::DrawVehicle(Tensor& image,
                                        const zoo::GroundTruthBox& box) {
  const int hw = config_.image_size;
  const auto color = ClassColor(box.cls);
  const int x0 = std::clamp(int((box.cx - box.w / 2) * hw), 0, hw - 1);
  const int x1 = std::clamp(int((box.cx + box.w / 2) * hw), 0, hw - 1);
  const int y0 = std::clamp(int((box.cy - box.h / 2) * hw), 0, hw - 1);
  const int y1 = std::clamp(int((box.cy + box.h / 2) * hw), 0, hw - 1);
  // Stripe frequency encodes class parity — a second visual cue beyond color.
  const int stripe = 2 + box.cls % 3;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float shade = (x / stripe) % 2 == 0 ? 1.0f : 0.7f;
      for (int c = 0; c < 3; ++c) {
        image[(std::size_t(y) * hw + x) * 3 + std::size_t(c)] =
            color[std::size_t(c)] * shade;
      }
    }
  }
}

LabeledFrame VehicleFrameGenerator::Generate(int max_vehicles) {
  const int hw = config_.image_size;
  LabeledFrame frame;
  frame.image = Tensor({hw, hw, 3});
  // Road-grey background with sensor noise.
  for (auto& v : frame.image.data()) {
    v = std::clamp(0.15f + float(rng_.Normal(0.0, 0.03)), 0.0f, 1.0f);
  }
  const int count = int(rng_.UniformInt(1, std::max(1, max_vehicles)));
  for (int i = 0; i < count; ++i) {
    zoo::GroundTruthBox box;
    box.cls = int(rng_.UniformU64(std::size_t(config_.num_classes)));
    box.w = rng_.UniformFloat(0.2f, 0.35f);
    box.h = rng_.UniformFloat(0.15f, 0.3f);
    box.cx = rng_.UniformFloat(box.w / 2, 1.0f - box.w / 2);
    box.cy = rng_.UniformFloat(box.h / 2, 1.0f - box.h / 2);
    DrawVehicle(frame.image, box);
    frame.boxes.push_back(box);
  }
  return frame;
}

std::pair<Tensor, std::vector<std::vector<zoo::GroundTruthBox>>>
VehicleFrameGenerator::Batch(int n, int max_vehicles) {
  const int hw = config_.image_size;
  Tensor images({n, hw, hw, 3});
  std::vector<std::vector<zoo::GroundTruthBox>> truth;
  truth.reserve(std::size_t(n));
  const std::size_t frame_elems = std::size_t(hw) * hw * 3;
  for (int i = 0; i < n; ++i) {
    LabeledFrame frame = Generate(max_vehicles);
    std::copy_n(frame.image.data().begin(), frame_elems,
                images.data().begin() + std::ptrdiff_t(i) * std::ptrdiff_t(frame_elems));
    truth.push_back(std::move(frame.boxes));
  }
  return {std::move(images), std::move(truth)};
}

std::string_view BehaviorName(BehaviorClass cls) {
  switch (cls) {
    case BehaviorClass::kLoitering: return "loitering";
    case BehaviorClass::kWalking: return "walking";
    case BehaviorClass::kRunning: return "running";
    case BehaviorClass::kAltercation: return "altercation";
    case BehaviorClass::kZigzag: return "zigzag";
  }
  return "?";
}

BehaviorClipGenerator::BehaviorClipGenerator(const zoo::BehaviorConfig& config,
                                             std::uint64_t seed)
    : config_(config), rng_(seed) {}

void BehaviorClipGenerator::DrawBlob(Tensor& frames, int t, float cx, float cy,
                                     float intensity) {
  const int hw = config_.frame_size;
  const int ch = config_.channels;
  const float px = std::clamp(cx, 0.0f, 1.0f) * (hw - 1);
  const float py = std::clamp(cy, 0.0f, 1.0f) * (hw - 1);
  const float sigma = float(hw) / 10.0f;
  for (int y = 0; y < hw; ++y) {
    for (int x = 0; x < hw; ++x) {
      const float d2 = (x - px) * (x - px) + (y - py) * (y - py);
      const float v = intensity * std::exp(-d2 / (2 * sigma * sigma));
      const std::size_t base =
          ((std::size_t(t) * hw + y) * hw + x) * std::size_t(ch);
      for (int c = 0; c < ch; ++c) {
        auto& px_ref = frames[base + std::size_t(c)];
        px_ref = std::min(1.0f, px_ref + v);
      }
    }
  }
}

zoo::Clip BehaviorClipGenerator::Generate(int cls) {
  if (cls < 0) cls = int(rng_.UniformU64(std::size_t(config_.num_classes)));
  const int t_len = config_.clip_length;
  zoo::Clip clip;
  clip.label = cls;
  clip.frames = Tensor(
      {t_len, config_.frame_size, config_.frame_size, config_.channels});
  for (auto& v : clip.frames.data()) {
    v = std::clamp(float(rng_.Normal(0.05, 0.02)), 0.0f, 1.0f);
  }

  float x = rng_.UniformFloat(0.2f, 0.4f);
  float y = rng_.UniformFloat(0.3f, 0.7f);
  float x2 = rng_.UniformFloat(0.7f, 0.9f);  // second blob (altercation)
  float y2 = y + rng_.UniformFloat(-0.1f, 0.1f);
  int dir = 1;

  for (int t = 0; t < t_len; ++t) {
    switch (BehaviorClass(cls)) {
      case BehaviorClass::kLoitering:
        x += float(rng_.Normal(0.0, 0.01));
        y += float(rng_.Normal(0.0, 0.01));
        break;
      case BehaviorClass::kWalking:
        x += 0.08f + float(rng_.Normal(0.0, 0.01));
        break;
      case BehaviorClass::kRunning:
        x += 0.16f + float(rng_.Normal(0.0, 0.01));
        y += 0.10f + float(rng_.Normal(0.0, 0.01));
        break;
      case BehaviorClass::kAltercation: {
        const float mid = (x + x2) / 2;
        x += (mid - x) * 0.45f;
        x2 += (mid - x2) * 0.45f;
        DrawBlob(clip.frames, t, x2, y2, 0.9f);
        break;
      }
      case BehaviorClass::kZigzag:
        if (t % 2 == 0) dir = -dir;
        x += 0.10f;
        y += 0.18f * float(dir) + float(rng_.Normal(0.0, 0.01));
        break;
    }
    DrawBlob(clip.frames, t, x, y, 0.9f);
  }
  return clip;
}

std::vector<zoo::Clip> BehaviorClipGenerator::Dataset(int n) {
  std::vector<zoo::Clip> clips;
  clips.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    clips.push_back(Generate(i % config_.num_classes));
  }
  rng_.Shuffle(clips);
  return clips;
}

MultiModalEventGenerator::MultiModalEventGenerator(int video_dim, int audio_dim,
                                                   std::uint64_t seed)
    : video_dim_(video_dim), audio_dim_(audio_dim), rng_(seed) {
  // Fixed random loading matrices from a 4-factor latent event signature.
  video_mix_.resize(std::size_t(video_dim) * 4);
  audio_mix_.resize(std::size_t(audio_dim) * 4);
  for (auto& v : video_mix_) v = float(rng_.Normal(0.0, 1.0));
  for (auto& v : audio_mix_) v = float(rng_.Normal(0.0, 1.0));
}

MultiModalEvent MultiModalEventGenerator::Generate(bool gunshot) {
  MultiModalEvent ev;
  ev.is_gunshot = gunshot;
  // Latent signature: gunshots have a shifted, high-energy factor profile.
  float latent[4];
  for (int f = 0; f < 4; ++f) {
    latent[f] = float(rng_.Normal(gunshot ? 1.5 : 0.0, 0.5));
  }
  ev.video_features.resize(std::size_t(video_dim_));
  ev.audio_features.resize(std::size_t(audio_dim_));
  for (int i = 0; i < video_dim_; ++i) {
    float v = float(rng_.Normal(0.0, 0.3));
    for (int f = 0; f < 4; ++f) v += video_mix_[std::size_t(i) * 4 + f] * latent[f] * 0.5f;
    ev.video_features[std::size_t(i)] = v;
  }
  for (int i = 0; i < audio_dim_; ++i) {
    float v = float(rng_.Normal(0.0, 0.3));
    for (int f = 0; f < 4; ++f) v += audio_mix_[std::size_t(i) * 4 + f] * latent[f] * 0.5f;
    ev.audio_features[std::size_t(i)] = v;
  }
  return ev;
}

MultiModalEventGenerator::Batch MultiModalEventGenerator::GenerateBatch(
    int n, double gunshot_fraction) {
  Batch batch;
  batch.video = Tensor({n, video_dim_});
  batch.audio = Tensor({n, audio_dim_});
  batch.labels.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    const bool gunshot = rng_.Bernoulli(gunshot_fraction);
    const MultiModalEvent ev = Generate(gunshot);
    for (int j = 0; j < video_dim_; ++j) {
      batch.video[std::size_t(i) * video_dim_ + j] = ev.video_features[std::size_t(j)];
    }
    for (int j = 0; j < audio_dim_; ++j) {
      batch.audio[std::size_t(i) * audio_dim_ + j] = ev.audio_features[std::size_t(j)];
    }
    batch.labels.push_back(gunshot ? 1 : 0);
  }
  return batch;
}

}  // namespace metro::datagen
