#include "datagen/health.h"

#include <algorithm>
#include <cmath>

#include "datagen/social.h"

namespace metro::datagen {

OpioidPanelGenerator::OpioidPanelGenerator(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

std::vector<TractMonth> OpioidPanelGenerator::Generate() {
  std::vector<TractMonth> panel;
  panel.reserve(std::size_t(config_.num_tracts) * config_.num_months);

  // Persistent per-tract character: deprivation and baseline prescribing.
  std::vector<float> poverty(std::size_t(config_.num_tracts));
  std::vector<float> rx_base(std::size_t(config_.num_tracts));
  std::vector<float> treatment(std::size_t(config_.num_tracts));
  std::vector<geo::LatLon> centroid(std::size_t(config_.num_tracts));
  for (int t = 0; t < config_.num_tracts; ++t) {
    poverty[std::size_t(t)] = std::clamp(float(rng_.Normal(0.4, 0.2)), 0.0f, 1.0f);
    rx_base[std::size_t(t)] = std::clamp(float(rng_.Normal(0.5, 0.2)), 0.05f, 1.0f);
    treatment[std::size_t(t)] = std::clamp(float(rng_.Normal(0.3, 0.2)), 0.0f, 1.0f);
    centroid[std::size_t(t)] = {kBatonRouge.lat + rng_.Normal(0.0, 0.08),
                                kBatonRouge.lon + rng_.Normal(0.0, 0.08)};
  }

  for (int tract = 0; tract < config_.num_tracts; ++tract) {
    float momentum = 0;  // last month's overdose-call level
    for (int month = 0; month < config_.num_months; ++month) {
      TractMonth obs;
      obs.tract = tract;
      obs.month = month;
      obs.centroid = centroid[std::size_t(tract)];
      obs.poverty_index = poverty[std::size_t(tract)];
      obs.treatment_centers = treatment[std::size_t(tract)];
      obs.prescriptions = std::clamp(
          rx_base[std::size_t(tract)] + float(rng_.Normal(0.0, 0.08)), 0.0f, 1.5f);
      obs.drug_arrests = std::clamp(
          0.3f * obs.poverty_index + float(rng_.Normal(0.1, 0.08)), 0.0f, 1.0f);
      obs.overdose_calls = std::clamp(momentum + float(rng_.Normal(0.05, 0.05)),
                                      0.0f, 1.5f);
      obs.traffic_volume = std::clamp(float(rng_.Normal(0.5, 0.15)), 0.0f, 1.0f);

      // Hidden risk: prescribing x deprivation interaction, arrest and
      // momentum terms, protective treatment effect, weak traffic term.
      obs.latent_risk = 1.6f * obs.prescriptions * obs.poverty_index +
                        0.8f * obs.drug_arrests + 0.9f * obs.overdose_calls -
                        0.7f * obs.treatment_centers +
                        0.1f * obs.traffic_volume;
      // Threshold chosen so roughly base_rate of tract-months are positive.
      const float noise = float(rng_.Normal(0.0, 0.15));
      const float cutoff = 1.05f - 0.9f * float(config_.base_rate - 0.25);
      obs.high_overdose_next_month = obs.latent_risk + noise > cutoff;

      momentum = 0.6f * momentum +
                 (obs.high_overdose_next_month ? 0.3f : 0.05f) +
                 float(rng_.Normal(0.0, 0.03));
      momentum = std::clamp(momentum, 0.0f, 1.2f);
      panel.push_back(obs);
    }
  }
  return panel;
}

std::vector<float> OpioidPanelGenerator::Features(const TractMonth& obs) {
  return {obs.prescriptions,  obs.drug_arrests,     obs.overdose_calls,
          obs.traffic_volume, obs.poverty_index,    obs.treatment_centers};
}

}  // namespace metro::datagen
