#pragma once

// Synthetic traffic/surveillance video (substitute for the DOTD and city
// camera feeds of Sec. II-A1).
//
// Frames are procedurally drawn tensors with known ground truth, so the
// split detector (Fig. 5) and behavior recognizer (Fig. 7) can be *trained
// and scored* — something the live feeds never allowed. Vehicles are
// class-colored rectangles with patterning; behavior clips are moving-blob
// motion patterns over time (loiter, walk, run, converge, zigzag).

#include <array>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "zoo/behavior.h"
#include "zoo/detector.h"

namespace metro::datagen {

using tensor::Tensor;

/// One labeled detection frame.
struct LabeledFrame {
  Tensor image;  ///< (H, W, 3) in [0, 1]
  std::vector<zoo::GroundTruthBox> boxes;
};

/// Vehicle frame generator matching a DetectorConfig's geometry.
class VehicleFrameGenerator {
 public:
  VehicleFrameGenerator(const zoo::DetectorConfig& config, std::uint64_t seed);

  /// A frame containing 1..max_vehicles vehicles with class-consistent
  /// appearance plus sensor noise.
  LabeledFrame Generate(int max_vehicles = 2);

  /// A batch stacked into (N, H, W, 3) with per-image ground truth.
  std::pair<Tensor, std::vector<std::vector<zoo::GroundTruthBox>>> Batch(
      int n, int max_vehicles = 2);

  /// The palette color of a class (for rendering / documentation).
  static std::array<float, 3> ClassColor(int cls);

 private:
  void DrawVehicle(Tensor& image, const zoo::GroundTruthBox& box);

  zoo::DetectorConfig config_;
  Rng rng_;
};

/// Behavior categories of the synthetic clips, in label order.
enum class BehaviorClass {
  kLoitering = 0,   ///< blob stays put
  kWalking = 1,     ///< steady left-to-right motion
  kRunning = 2,     ///< fast diagonal motion
  kAltercation = 3, ///< two blobs converge
  kZigzag = 4,      ///< erratic direction changes
};

std::string_view BehaviorName(BehaviorClass cls);

/// Labeled action-clip generator matching a BehaviorConfig's geometry.
class BehaviorClipGenerator {
 public:
  BehaviorClipGenerator(const zoo::BehaviorConfig& config, std::uint64_t seed);

  /// A clip of the given class (or a random class when cls < 0).
  zoo::Clip Generate(int cls = -1);

  /// A labeled dataset of `n` clips with a balanced class mix.
  std::vector<zoo::Clip> Dataset(int n);

 private:
  void DrawBlob(Tensor& frames, int t, float cx, float cy, float intensity);

  zoo::BehaviorConfig config_;
  Rng rng_;
};

/// Paired multi-modal event features (Sec. III-C's video+audio gunshot
/// example): both views are noisy linear functions of a shared latent event
/// signature, so fusion and CCA have real cross-modal structure to find.
struct MultiModalEvent {
  std::vector<float> video_features;
  std::vector<float> audio_features;
  bool is_gunshot = false;
};

class MultiModalEventGenerator {
 public:
  MultiModalEventGenerator(int video_dim, int audio_dim, std::uint64_t seed);

  MultiModalEvent Generate(bool gunshot);

  /// Batch as two (N, dim) tensors plus labels; `gunshot_fraction` of rows
  /// are gunshot events.
  struct Batch {
    Tensor video;  ///< (N, video_dim)
    Tensor audio;  ///< (N, audio_dim)
    std::vector<int> labels;
  };
  Batch GenerateBatch(int n, double gunshot_fraction);

 private:
  int video_dim_, audio_dim_;
  Rng rng_;
  std::vector<float> video_mix_;  ///< latent -> video loading matrix
  std::vector<float> audio_mix_;  ///< latent -> audio loading matrix
};

}  // namespace metro::datagen
