#include "core/pipeline.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/logging.h"

namespace metro::core {

CityPipeline::CityPipeline(Clock& clock, mq::BrokerClusterConfig mq_config)
    : clock_(&clock), log_(clock, mq_config), spans_(clock) {
  producer_ = log_.CreateProducer();
  // Surface replication-layer transitions (failover, ISR churn, node kills)
  // as root events in the span stream, next to the stage spans they disrupt.
  log_.SetEventHook([this](const mq::ClusterEvent& event) {
    std::vector<std::pair<std::string, std::string>> tags;
    if (!event.topic.empty()) {
      tags.emplace_back("topic", event.topic);
      tags.emplace_back("partition", std::to_string(event.partition));
    }
    if (event.node >= 0) tags.emplace_back("node", std::to_string(event.node));
    if (event.prev_node >= 0) {
      tags.emplace_back("prev_node", std::to_string(event.prev_node));
    }
    spans_.RootEvent(
        "mq." + std::string(mq::ClusterEventKindName(event.kind)),
        std::move(tags));
  });
}

CityPipeline::~CityPipeline() { Stop(); }

Status CityPipeline::AddTopic(TopicSpec spec) {
  if (started_) return FailedPreconditionError("pipeline already started");
  if (!spec.parser) spec.parser = [](const std::string&, const std::string& v) {
    return DecodeDocument(v);
  };
  METRO_RETURN_IF_ERROR(log_.CreateTopic(spec.topic, spec.partitions));
  auto state = std::make_unique<TopicState>();
  state->spec = std::move(spec);
  state->collection =
      std::make_unique<store::Collection>(state->spec.topic);
  const std::string key = state->spec.topic;
  topics_.emplace(key, std::move(state));
  return Status::Ok();
}

Result<mq::ProduceAck> CityPipeline::Produce(const std::string& topic,
                                             std::string key,
                                             std::string value,
                                             obs::TraceContext parent) {
  // The trace root rides in the record header; consumer-side stage spans
  // attach to it. An invalid parent opens a fresh trace, so every record
  // produced through the pipeline is traced.
  const obs::TraceContext root =
      parent.valid() ? parent : spans_.StartTrace();
  obs::Span span = spans_.Begin("produce", spans_.Child(root));
  span.SetTag("topic", topic);
  mq::Headers headers;
  headers[std::string(obs::kTraceHeader)] = root.Serialize();

  // Prepare once, retry the *prepared* request: partition and sequence are
  // pinned, so the broker deduplicates any attempt that actually landed
  // before its ack was observed — a retry crossing a leader failover cannot
  // duplicate the record.
  auto request = log_.Prepare(producer_, topic, std::move(key),
                              std::move(value), std::move(headers));
  if (!request.ok()) {
    span.SetTag("error", std::string(request.status().message()));
    spans_.End(std::move(span));
    return request.status();
  }

  resilience::RetryConfig config;
  config.max_attempts = 4;
  config.initial_backoff = kMillisecond / 2;
  config.max_backoff = 8 * kMillisecond;
  resilience::RetryPolicy retry(config, *clock_);
  auto ack = retry.Run(
      [&]() -> Result<mq::ProduceAck> { return log_.Produce(*request); });
  produce_retries_.fetch_add(retry.retries(), std::memory_order_relaxed);
  if (retry.retries() > 0) span.SetTag("retried", "true");
  if (!ack.ok()) {
    if (ack.status().code() == StatusCode::kResourceExhausted) {
      produce_backpressure_.fetch_add(1, std::memory_order_relaxed);
      span.SetTag("backpressure", "true");
    }
    span.SetTag("error", std::string(ack.status().message()));
  } else if (ack->duplicate) {
    span.SetTag("duplicate", "true");
  }
  spans_.End(std::move(span));
  return ack;
}

Result<store::Collection*> CityPipeline::collection(const std::string& topic) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  return it->second->collection.get();
}

Status CityPipeline::Start() {
  if (started_) return FailedPreconditionError("pipeline already started");
  started_ = true;
  for (auto& [name, state] : topics_) {
    TopicState* raw = state.get();
    state->consumer = std::jthread(
        [this, raw](std::stop_token stop) { ConsumerLoop(*raw, stop); });
  }
  return Status::Ok();
}

void CityPipeline::ConsumerLoop(TopicState& state, std::stop_token stop) {
  const std::string& topic = state.spec.topic;
  const std::string group = "pipeline";
  const std::string member = "consumer-" + topic;
  const auto assignment = log_.JoinGroup(group + "-" + topic, topic, member);
  if (!assignment.ok()) return;

  // Poll all assigned partitions until stop is requested *and* the backlog
  // is drained — a clean shutdown loses nothing.
  while (true) {
    bool progressed = false;
    for (const int partition : *assignment) {
      const std::int64_t committed =
          log_.CommittedOffset(group + "-" + topic, topic, partition);
      // Zero-copy fetch: a shared view into the leader's retained batch —
      // record payloads are read in place (string_view) and only
      // materialized at the parser call, not copied per fetch.
      const auto view = log_.FetchBatch(topic, partition, committed, 128);
      if (!view.ok()) {
        if (view.status().code() == StatusCode::kUnavailable) {
          // Partition leader down; back off (below) and retry the fetch.
          fetch_retries_.fetch_add(1, std::memory_order_relaxed);
        } else if (view.status().code() == StatusCode::kOutOfRange) {
          // Retention truncated past our committed offset. Skip the
          // committed position forward to the retention floor so the pump
          // does not stall forever on offsets that no longer exist.
          const auto info = log_.GetPartitionInfo(topic, partition);
          if (info.ok() && info->begin_offset > committed) {
            records_skipped_.fetch_add(info->begin_offset - committed,
                                       std::memory_order_relaxed);
            (void)log_.CommitOffset(group + "-" + topic, topic, partition,
                                    info->begin_offset);
            progressed = true;
          }
        }
        continue;
      }
      if (view->empty()) continue;
      progressed = true;
      for (std::size_t i = 0; i < view->size(); ++i) {
        const mq::RecordView rec = (*view)[i];
        records_consumed_.fetch_add(1, std::memory_order_relaxed);
        // Continue the producer's trace from the record header. Stage spans
        // chain off a cursor (each start = the previous end), so per-trace
        // stage durations sum to the produce -> web latency.
        obs::TraceContext trace;
        if (const auto header = rec.FindHeader(obs::kTraceHeader)) {
          if (const auto parsed = obs::TraceContext::Parse(*header)) {
            trace = *parsed;
          }
        }
        TimeNs cursor = rec.timestamp();
        auto stage = [&](const char* name) {
          if (!trace.valid()) return;
          const TimeNs now = clock_->Now();
          obs::Span span;
          span.name = name;
          span.context = spans_.Child(trace);
          span.start = cursor;
          span.end = now;
          spans_.Record(std::move(span));
          cursor = now;
        };
        // Queue-wait stage: broker append time -> consumer pickup.
        stage("mq.queue");
        // The parser contract takes owned strings; this is the single point
        // where the record's payload is copied out of the shared batch.
        const std::string key(rec.key());
        const std::string value(rec.value());
        auto doc = state.spec.parser(key, value);
        if (!doc) continue;
        // Storage stage.
        (void)state.collection->Insert(*doc);
        documents_stored_.fetch_add(1, std::memory_order_relaxed);
        stage("store");
        // Analysis stage.
        if (state.spec.analyzer) {
          auto annotation = state.spec.analyzer(*doc);
          stage("analyze");
          if (annotation) {
            annotations_.fetch_add(1, std::memory_order_relaxed);
            // Visualization stage: render to the web feed.
            const std::string json = store::ToJson(*annotation);
            {
              MutexLock lock(web_mu_);
              web_feed_.push_back(json);
            }
            stage("web");
          }
        }
      }
      (void)log_.CommitOffset(group + "-" + topic, topic, partition,
                              view->next_offset());
    }
    if (!progressed) {
      if (stop.stop_requested()) return;
      clock_->SleepFor(kMillisecond / 2);
    }
  }
}

void CityPipeline::Stop() {
  for (auto& [name, state] : topics_) {
    if (state->consumer.joinable()) state->consumer.request_stop();
  }
  for (auto& [name, state] : topics_) {
    if (state->consumer.joinable()) state->consumer.join();
  }
}

bool CityPipeline::Drain(TimeNs max_wait) {
  // One shared deadline: a partition that is merely mid-failover recovers in
  // a few ticks, while one whose quorum never comes back would otherwise
  // hold the caller forever.
  const TimeNs deadline = clock_->Now() + max_wait;
  bool drained = true;
  for (auto& [name, state] : topics_) {
    const std::string& topic = state->spec.topic;
    const auto parts = log_.NumPartitions(topic);
    if (!parts.ok()) continue;
    for (int p = 0; p < *parts; ++p) {
      while (true) {
        const auto info = log_.GetPartitionInfo(topic, p);
        if (!info.ok()) {
          // Mid-failover the partition briefly has no leader; wait it out
          // until the deadline.
          if (info.status().code() == StatusCode::kUnavailable &&
              clock_->Now() < deadline) {
            clock_->SleepFor(kMillisecond);
            continue;
          }
          if (info.status().code() == StatusCode::kUnavailable) {
            METRO_LOG(kWarning)
                << "Drain giving up on leaderless partition " << topic << "/"
                << p << ": " << info.status();
            drained = false;
          }
          break;
        }
        const std::int64_t committed =
            log_.CommittedOffset("pipeline-" + topic, topic, p);
        if (committed >= info->end_offset) break;
        if (clock_->Now() >= deadline) {
          METRO_LOG(kWarning)
              << "Drain deadline passed with " << topic << "/" << p
              << " undrained (committed " << committed << " of "
              << info->end_offset << ")";
          drained = false;
          break;
        }
        clock_->SleepFor(kMillisecond);
      }
    }
  }
  return drained;
}

std::vector<std::string> CityPipeline::WebFeed() const {
  MutexLock lock(web_mu_);
  return web_feed_;
}

PipelineStats CityPipeline::Stats() const {
  PipelineStats s;
  s.records_consumed = records_consumed_.load();
  s.documents_stored = documents_stored_.load();
  s.annotations = annotations_.load();
  s.produce_retries = produce_retries_.load();
  s.fetch_retries = fetch_retries_.load();
  s.records_skipped = records_skipped_.load();
  s.produce_backpressure = produce_backpressure_.load();
  {
    MutexLock lock(web_mu_);
    s.web_items = std::int64_t(web_feed_.size());
  }
  s.stage_latency = spans_.StageBreakdown();
  // End-to-end latency from the same spans that feed the breakdown: the
  // extent of every trace that reached the web stage (i.e. was annotated).
  std::vector<double> e2e_ms;
  for (const obs::TraceSummary& t : spans_.Traces()) {
    if (t.stage_ns.count("web") > 0) {
      e2e_ms.push_back(double(t.total()) / double(kMillisecond));
    }
  }
  if (!e2e_ms.empty()) {
    std::sort(e2e_ms.begin(), e2e_ms.end());
    double sum = 0;
    for (const double v : e2e_ms) sum += v;
    s.mean_latency_ms = sum / double(e2e_ms.size());
    s.p99_latency_ms =
        e2e_ms[std::size_t(double(e2e_ms.size() - 1) * 0.99)];
  }
  return s;
}

}  // namespace metro::core
