#include "core/infrastructure.h"

#include <sstream>

namespace metro::core {

std::size_t AlertManager::Raise(Alert alert) {
  MutexLock lock(mu_);
  alerts_.push_back(std::move(alert));
  return alerts_.size() - 1;
}

std::optional<Alert> AlertManager::ReviewNext() {
  MutexLock lock(mu_);
  if (next_review_ >= alerts_.size()) return std::nullopt;
  alerts_[next_review_].reviewed = true;
  return alerts_[next_review_++];
}

std::size_t AlertManager::pending() const {
  MutexLock lock(mu_);
  return alerts_.size() - next_review_;
}

std::size_t AlertManager::total() const {
  MutexLock lock(mu_);
  return alerts_.size();
}

std::vector<Alert> AlertManager::All() const {
  MutexLock lock(mu_);
  return alerts_;
}

Cyberinfrastructure::Cyberinfrastructure(const InfrastructureConfig& config,
                                         Clock& clock)
    : config_(config),
      storage_(config.dfs_datanodes, config.dfs),
      fog_(config.fog),
      pipeline_(clock),
      engine_(config.engine_parallelism),
      scheduler_(config.yarn_policy),
      annotations_("annotations") {
  for (int i = 0; i < config.yarn_nodes; ++i) {
    scheduler_.AddNode(config.yarn_node_capacity);
  }
  health_.Register("dfs", [this] {
    const int under = storage_.UnderReplicatedBlocks();
    if (under == 0) return Status::Ok();
    return UnavailableError(std::to_string(under) +
                            " under-replicated block(s)");
  });
  health_.Register("mq", [this] {
    // Replicated-broker health: every partition must have a leader and an
    // ISR at quorum, else acked-durability is at risk.
    return pipeline_.log().Probe();
  });
  health_.Register("fog.server", [this] {
    int down = 0;
    for (int f = 0; f < fog_.num_fogs(); ++f) {
      const auto up =
          fog_.sim().LinkUp(fog_.fog_node(f), fog_.server_of_fog_index(f));
      if (up.ok() && !*up) ++down;
    }
    if (down == 0) return Status::Ok();
    return UnavailableError(std::to_string(down) +
                            " fog->server link(s) down");
  });
}

std::size_t Cyberinfrastructure::ForEachAnnotation(
    std::string_view begin_row, std::string_view end_row,
    const std::function<bool(const store::Cell&)>& fn) const {
  std::size_t visited = 0;
  for (auto it = annotations_.NewIterator(begin_row, end_row); it.Valid();
       it.Next()) {
    ++visited;
    if (!fn(store::Cell{it.row(), it.column(), it.value()})) break;
  }
  return visited;
}

std::string Cyberinfrastructure::Describe() const {
  std::ostringstream os;
  os << "cyberinfrastructure: dfs=" << config_.dfs_datanodes
     << " datanodes (replication " << config_.dfs.replication << "), fog="
     << config_.fog.num_edges << " edges -> "
     << fog_.num_fogs() << " fog nodes -> " << fog_.num_servers()
     << " analysis servers -> cloud, engine=" << config_.engine_parallelism
     << " workers, yarn=" << config_.yarn_nodes << " nodes";
  return os.str();
}

}  // namespace metro::core
