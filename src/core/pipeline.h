#pragma once

// The Fig. 4 pipeline: data collection -> NoSQL storage -> analysis servers
// -> web/visualization.
//
// Producers (ingest agents, apps) publish raw records to message-log topics.
// Per-topic storage consumers persist them into document-store collections.
// Registered analyzers then annotate documents, and annotations flow to the
// web sink — an in-memory JSON feed standing in for the project website.
// Every stage is a real thread so throughput and end-to-end latency are
// measured, not simulated.

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mq/broker_cluster.h"
#include "obs/trace.h"
#include "resilience/policy.h"
#include "store/doc_codec.h"
#include "store/document_store.h"
#include "util/metrics.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::core {

/// Analyzer: turns a stored document into an annotation document (or
/// nullopt to pass). Runs on the analysis-server stage.
using AnalyzerFn =
    std::function<std::optional<store::Document>(const store::Document&)>;

/// Parser: decodes a raw message-log record value into a document.
/// Returning nullopt drops the record (malformed input).
using ParserFn = std::function<std::optional<store::Document>(
    const std::string& key, const std::string& value)>;

/// End-to-end pipeline statistics.
struct PipelineStats {
  std::int64_t records_consumed = 0;
  std::int64_t documents_stored = 0;
  std::int64_t annotations = 0;
  std::int64_t web_items = 0;
  std::int64_t produce_retries = 0;  ///< Produce() attempts beyond the first
  std::int64_t fetch_retries = 0;    ///< consumer fetches hitting kUnavailable
  std::int64_t records_skipped = 0;  ///< offsets lost to retention truncation
  std::int64_t produce_backpressure = 0;  ///< produces rejected at the bound
  double mean_latency_ms = 0;  ///< produce -> web, for annotated records
  double p99_latency_ms = 0;
  /// Span-derived per-stage latency (produce / mq.queue / store / analyze /
  /// web), critical-path order. Replaces the old single end-to-end
  /// histogram: the same spans that yield `mean_latency_ms` break the
  /// latency down by Fig. 4 stage.
  std::vector<obs::StageStats> stage_latency;
};

/// The assembled Fig. 4 pipeline.
class CityPipeline {
 public:
  struct TopicSpec {
    std::string topic;
    int partitions = 2;
    ParserFn parser;          ///< raw record -> document
    AnalyzerFn analyzer;      ///< optional annotation step
  };

  /// `mq_config` shapes the replicated broker backing the pipeline (node
  /// count, replication factor, backpressure bound).
  explicit CityPipeline(Clock& clock, mq::BrokerClusterConfig mq_config = {});
  ~CityPipeline();

  CityPipeline(const CityPipeline&) = delete;
  CityPipeline& operator=(const CityPipeline&) = delete;

  /// Declares a topic with its parser/analyzer before Start().
  Status AddTopic(TopicSpec spec);

  /// The replicated broker cluster producers publish into.
  mq::BrokerCluster& log() { return log_; }

  /// Publishes through the resilience layer, idempotently: the request is
  /// prepared once (pinning partition and sequence number) and the prepared
  /// request is what retries with jittered exponential backoff — so a retry
  /// that crosses a leader failover cannot duplicate the record. Transient
  /// kUnavailable (no leader / ISR below quorum mid-failover) is retried;
  /// kResourceExhausted (partition backlog at its bound) is terminal here
  /// and counted in `produce_backpressure` — callers shed or wait. Other
  /// terminal errors surface immediately. Thread-safe.
  ///
  /// Every record is traced: `parent` continues an upstream trace (an
  /// ingest agent's), an invalid parent opens a fresh one. The context
  /// travels to the consumer in the record's `x-trace` header, so the
  /// consumer-side stage spans (mq.queue / store / analyze / web) join the
  /// same trace.
  Result<mq::ProduceAck> Produce(const std::string& topic, std::string key,
                                 std::string value,
                                 obs::TraceContext parent = {});

  /// The pipeline's span collector (stage spans, critical-path report).
  obs::SpanCollector& tracer() { return spans_; }

  /// Stored documents for a topic (one collection per topic).
  Result<store::Collection*> collection(const std::string& topic);

  /// Starts one consumer thread per topic.
  Status Start();

  /// Signals consumers to finish the backlog and stop, then joins.
  void Stop();

  /// Blocks until every topic's committed offset reaches the end of its log
  /// (producers must have stopped), or until `max_wait` elapses — a
  /// partition can stay leaderless forever (quorum never recovers), so the
  /// wait is bounded rather than hanging the caller. Returns true when every
  /// partition drained; false when the deadline passed with partitions still
  /// undrained (logged).
  bool Drain(TimeNs max_wait = 10 * kSecond);

  /// The rendered web feed (JSON lines), in arrival order.
  std::vector<std::string> WebFeed() const METRO_EXCLUDES(web_mu_);

  PipelineStats Stats() const;

 private:
  struct TopicState {
    TopicSpec spec;
    std::unique_ptr<store::Collection> collection;
    std::jthread consumer;
  };

  void ConsumerLoop(TopicState& state, std::stop_token stop);

  Clock* clock_;
  mq::BrokerCluster log_;
  mq::ProducerId producer_ = 0;
  // topics_ / started_ mutate only during single-threaded setup (AddTopic /
  // Start, before consumers exist); consumer threads read them immutably.
  std::unordered_map<std::string, std::unique_ptr<TopicState>> topics_;
  bool started_ = false;

  mutable Mutex web_mu_{lockrank::kCorePipelineWeb, "core.pipeline.web"};
  std::vector<std::string> web_feed_ METRO_GUARDED_BY(web_mu_);

  std::atomic<std::int64_t> records_consumed_{0};
  std::atomic<std::int64_t> documents_stored_{0};
  std::atomic<std::int64_t> annotations_{0};
  std::atomic<std::int64_t> produce_retries_{0};
  std::atomic<std::int64_t> fetch_retries_{0};
  std::atomic<std::int64_t> records_skipped_{0};
  std::atomic<std::int64_t> produce_backpressure_{0};
  obs::SpanCollector spans_;
};

/// Standard parser for the datagen documents: the record value is expected
/// to be a serialized document produced by EncodeDocument below. The codec
/// itself lives with the store (store/doc_codec.h) — it is also the
/// document store's persistence format; these wrappers keep the historical
/// core-namespace spelling.
inline std::string EncodeDocument(const store::Document& doc) {
  return store::EncodeDocument(doc);
}
inline std::optional<store::Document> DecodeDocument(const std::string& bytes) {
  return store::DecodeDocument(bytes);
}

}  // namespace metro::core
