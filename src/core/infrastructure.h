#pragma once

// The assembled cyberinfrastructure (Fig. 1).
//
// One object wiring the four layers together: the *data layer* is whatever
// producers feed the pipeline (datagen in this repository); the *hardware
// layer* is the fog topology plus the DFS storage cluster; the *software
// layer* is the message log/pipeline, the wide-column and document stores,
// the dataflow engine, and the resource manager; the *application layer* is
// the set of registered applications raising alerts through AlertManager.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dataflow/engine.h"
#include "dfs/dfs.h"
#include "fog/fog.h"
#include "geo/geo.h"
#include "resilience/health.h"
#include "sched/resource_manager.h"
#include "store/wide_column.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::core {

/// An operator-facing alert (Sec. IV-A2: "An alert will be sent to a human
/// operator who reviews the information...").
struct Alert {
  TimeNs time = 0;
  geo::LatLon location;
  std::string kind;     ///< "suspicious_behavior", "gunshot", "amber_match"...
  std::string message;
  int severity = 1;     ///< 1 (info) .. 5 (critical)
  bool reviewed = false;
};

/// Thread-safe alert queue with an operator-review workflow.
class AlertManager {
 public:
  /// Raises an alert; returns its index.
  std::size_t Raise(Alert alert) METRO_EXCLUDES(mu_);

  /// Oldest unreviewed alert, marking it reviewed (the operator workflow).
  std::optional<Alert> ReviewNext() METRO_EXCLUDES(mu_);

  std::size_t pending() const METRO_EXCLUDES(mu_);
  std::size_t total() const METRO_EXCLUDES(mu_);
  std::vector<Alert> All() const METRO_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lockrank::kCoreAlerts, "core.alerts"};
  std::vector<Alert> alerts_ METRO_GUARDED_BY(mu_);
  std::size_t next_review_ METRO_GUARDED_BY(mu_) = 0;
};

/// Construction parameters for the whole stack.
struct InfrastructureConfig {
  int dfs_datanodes = 6;
  dfs::DfsConfig dfs;
  fog::FogConfig fog;
  int engine_parallelism = 4;
  int yarn_nodes = 4;
  sched::Resource yarn_node_capacity{8, 16 * 1024};
  sched::Policy yarn_policy = sched::Policy::kFair;
};

/// Owns every layer; see the class comment for the layer map.
class Cyberinfrastructure {
 public:
  explicit Cyberinfrastructure(const InfrastructureConfig& config,
                               Clock& clock);

  // Hardware layer.
  dfs::Cluster& storage() { return storage_; }
  fog::FogTopology& fog() { return fog_; }

  // Software layer.
  CityPipeline& pipeline() { return pipeline_; }
  dataflow::Engine& engine() { return engine_; }
  sched::ResourceManager& scheduler() { return scheduler_; }
  store::WideColumnTable& annotations() { return annotations_; }

  // Application layer.
  AlertManager& alerts() { return alerts_; }

  /// Deployment-wide health probes; construction registers probes for DFS
  /// replication ("dfs"), the replicated message broker's leader/ISR state
  /// ("mq"), and the fog -> analysis-server links ("fog.server").
  /// Applications may register their own.
  resilience::HealthRegistry& health() { return health_; }

  /// Streams annotation cells with begin_row <= row < end_row (end empty =
  /// unbounded) through `fn`, in (row, column) order, off one consistent
  /// snapshot — concurrent ingest never blocks the walk and never tears it.
  /// `fn` returns false to stop early. Returns the number of cells visited.
  std::size_t ForEachAnnotation(
      std::string_view begin_row, std::string_view end_row,
      const std::function<bool(const store::Cell&)>& fn) const;

  /// One-line inventory for logs/docs.
  std::string Describe() const;

 private:
  InfrastructureConfig config_;
  dfs::Cluster storage_;
  fog::FogTopology fog_;
  CityPipeline pipeline_;
  dataflow::Engine engine_;
  sched::ResourceManager scheduler_;
  store::WideColumnTable annotations_;
  AlertManager alerts_;
  resilience::HealthRegistry health_;
};

}  // namespace metro::core
