#pragma once

// Windowed stream processing (Sec. II-C2's "streaming processing"
// workload).
//
// Event-time tumbling/sliding windows with watermark-driven firing: events
// may arrive out of order; a window fires once the watermark passes its end
// plus the allowed lateness, and later events for fired windows are counted
// as dropped-late. A SpikeDetector composes windows into the city
// application need: flag a keyword/location whose current window count
// jumps far above its trailing mean (e.g. gunshot chatter bursts).

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace metro::stream {

/// One keyed, event-timestamped observation.
struct Event {
  TimeNs event_time = 0;
  std::string key;
  double value = 1.0;
};

enum class AggKind { kCount, kSum, kMin, kMax, kMean };

/// One fired window for one key.
struct WindowResult {
  TimeNs window_start = 0;
  TimeNs window_end = 0;  ///< exclusive
  std::string key;
  double value = 0;
  std::int64_t count = 0;
};

/// Event-time windowed aggregation with watermarks.
class WindowedAggregator {
 public:
  struct Config {
    TimeNs window_size = 60 * kSecond;
    TimeNs slide = 0;  ///< 0 => tumbling (slide == window_size)
    TimeNs allowed_lateness = 0;
    AggKind agg = AggKind::kCount;
  };

  explicit WindowedAggregator(Config config);

  /// Adds an event. Events older than the watermark minus lateness are
  /// dropped and counted (kFailedPrecondition), mirroring late-data policy.
  Status Add(const Event& event);

  /// Advances the watermark (monotonic); fires every window whose
  /// end + lateness <= watermark.
  void AdvanceWatermark(TimeNs watermark);

  /// Fired windows in (window_start, key) order; clears the fired buffer.
  std::vector<WindowResult> TakeFired();

  /// Flushes all open windows regardless of the watermark (end of stream).
  void Close();

  TimeNs watermark() const { return watermark_; }
  std::int64_t late_events() const { return late_events_; }
  std::size_t open_windows() const { return open_.size(); }

 private:
  struct Accumulator {
    double sum = 0;
    double min = 0;
    double max = 0;
    std::int64_t count = 0;
  };

  /// Start times of the windows covering `t`.
  std::vector<TimeNs> WindowsFor(TimeNs t) const;
  double Finalize(const Accumulator& acc) const;
  void Fire(TimeNs start, const std::map<std::string, Accumulator>& keys);

  Config config_;
  TimeNs watermark_ = INT64_MIN;
  std::int64_t late_events_ = 0;
  // window start -> key -> accumulator
  std::map<TimeNs, std::map<std::string, Accumulator>> open_;
  std::vector<WindowResult> fired_;
};

/// Flags keys whose window value spikes above `factor` x the trailing mean
/// of the previous `history` windows (with at least `min_count` events).
class SpikeDetector {
 public:
  struct Config {
    int history = 6;
    double factor = 3.0;
    double min_count = 5;
  };

  explicit SpikeDetector(Config config) : config_(config) {}

  struct Spike {
    TimeNs window_start = 0;
    std::string key;
    double value = 0;
    double trailing_mean = 0;
  };

  /// Feeds one fired window; returns a spike if it qualifies.
  std::optional<Spike> Observe(const WindowResult& window);

 private:
  Config config_;
  std::map<std::string, std::deque<double>> history_;
};

}  // namespace metro::stream
