#include "stream/windows.h"

#include <algorithm>
#include <cassert>

namespace metro::stream {

WindowedAggregator::WindowedAggregator(Config config) : config_(config) {
  assert(config_.window_size > 0);
  if (config_.slide <= 0) config_.slide = config_.window_size;
  assert(config_.slide <= config_.window_size &&
         "slide larger than window leaves gaps");
}

std::vector<TimeNs> WindowedAggregator::WindowsFor(TimeNs t) const {
  // Windows are aligned to multiples of `slide`; a window [s, s+size)
  // covers t iff s <= t < s + size and s = k * slide.
  std::vector<TimeNs> starts;
  const TimeNs first_after = (t / config_.slide) * config_.slide;
  for (TimeNs s = first_after; s > t - config_.window_size; s -= config_.slide) {
    starts.push_back(s);
    if (s < config_.slide) break;  // avoid wrapping below zero-aligned start
  }
  return starts;
}

Status WindowedAggregator::Add(const Event& event) {
  if (watermark_ != INT64_MIN &&
      event.event_time + config_.window_size + config_.allowed_lateness <=
          watermark_) {
    ++late_events_;
    return FailedPreconditionError("event older than watermark + lateness");
  }
  for (const TimeNs start : WindowsFor(event.event_time)) {
    // Skip windows already fired (possible for slightly-late events that are
    // inside lateness for some windows but not others).
    if (watermark_ != INT64_MIN &&
        start + config_.window_size + config_.allowed_lateness <= watermark_) {
      continue;
    }
    Accumulator& acc = open_[start][event.key];
    if (acc.count == 0) {
      acc.min = acc.max = event.value;
    } else {
      acc.min = std::min(acc.min, event.value);
      acc.max = std::max(acc.max, event.value);
    }
    acc.sum += event.value;
    ++acc.count;
  }
  return Status::Ok();
}

double WindowedAggregator::Finalize(const Accumulator& acc) const {
  switch (config_.agg) {
    case AggKind::kCount: return double(acc.count);
    case AggKind::kSum: return acc.sum;
    case AggKind::kMin: return acc.min;
    case AggKind::kMax: return acc.max;
    case AggKind::kMean: return acc.count ? acc.sum / double(acc.count) : 0;
  }
  return 0;
}

void WindowedAggregator::Fire(TimeNs start,
                              const std::map<std::string, Accumulator>& keys) {
  for (const auto& [key, acc] : keys) {
    WindowResult result;
    result.window_start = start;
    result.window_end = start + config_.window_size;
    result.key = key;
    result.value = Finalize(acc);
    result.count = acc.count;
    fired_.push_back(std::move(result));
  }
}

void WindowedAggregator::AdvanceWatermark(TimeNs watermark) {
  watermark_ = std::max(watermark_, watermark);
  while (!open_.empty()) {
    const auto it = open_.begin();
    const TimeNs end = it->first + config_.window_size;
    if (end + config_.allowed_lateness > watermark_) break;
    Fire(it->first, it->second);
    open_.erase(it);
  }
}

std::vector<WindowResult> WindowedAggregator::TakeFired() {
  std::vector<WindowResult> out = std::move(fired_);
  fired_.clear();
  return out;
}

void WindowedAggregator::Close() {
  for (const auto& [start, keys] : open_) Fire(start, keys);
  open_.clear();
}

std::optional<SpikeDetector::Spike> SpikeDetector::Observe(
    const WindowResult& window) {
  auto& past = history_[window.key];
  std::optional<Spike> spike;
  if (int(past.size()) >= config_.history) {
    double mean = 0;
    for (const double v : past) mean += v;
    mean /= double(past.size());
    if (window.value >= config_.min_count &&
        window.value > config_.factor * std::max(mean, 1e-9)) {
      spike = Spike{window.window_start, window.key, window.value, mean};
    }
  }
  past.push_back(window.value);
  while (int(past.size()) > config_.history) past.pop_front();
  return spike;
}

}  // namespace metro::stream
