#pragma once

// Composable resilience policies shared by every hot path that can fail
// transiently: retry with exponential backoff + jitter, circuit breaking
// with cool-down probes, and deadline budgets. All time flows through a
// `Clock&` so the same policies run deterministically on `SimClock` in the
// chaos benches and against wall time in the threaded pipeline.
//
// The failure model (see DESIGN.md "Failure model & degradation semantics"):
// `kUnavailable` and `kDeadlineExceeded` are retryable — a node may come
// back, a queue may drain. Everything else is terminal for the attempted
// operation and must surface to the caller immediately.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "util/clock.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::resilience {

/// True for transient codes where a later retry may succeed.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}
inline bool IsRetryable(const Status& status) {
  return IsRetryable(status.code());
}

/// Tuning for `RetryPolicy`.
struct RetryConfig {
  int max_attempts = 4;                      ///< total tries, including the first
  TimeNs initial_backoff = kMillisecond;     ///< sleep before the 2nd attempt
  TimeNs max_backoff = 250 * kMillisecond;   ///< backoff growth ceiling
  double multiplier = 2.0;                   ///< exponential growth factor
  double jitter = 0.2;                       ///< +/- fraction of the backoff
  TimeNs deadline = 0;                       ///< total budget; 0 = unbounded
  /// Opt-in: also retry kResourceExhausted. Off by default — backpressure is
  /// a *signal*, and a hot producer retrying into a full partition just adds
  /// load. Edge agents that would otherwise drop data (their channel is the
  /// loss) turn this on and lean on the backoff to wait out the backlog.
  bool retry_resource_exhausted = false;
};

/// Deadline-aware exponential backoff with jitter.
///
/// Not thread-safe: each retrying call site owns its policy (they are cheap;
/// the only state is the rng and config).
class RetryPolicy {
 public:
  RetryPolicy(RetryConfig config, Clock& clock, std::uint64_t seed = 17)
      : config_(config), clock_(&clock), rng_(seed) {}

  const RetryConfig& config() const { return config_; }

  /// Jittered backoff before attempt `attempt` (1-based count of failures so
  /// far); exposed so simulator-driven callers can schedule the wait instead
  /// of sleeping.
  TimeNs BackoffFor(int attempt) {
    double backoff = double(config_.initial_backoff);
    for (int i = 1; i < attempt; ++i) backoff *= config_.multiplier;
    backoff = std::min(backoff, double(config_.max_backoff));
    const double spread = rng_.UniformDouble(-config_.jitter, config_.jitter);
    return std::max<TimeNs>(0, TimeNs(backoff * (1.0 + spread)));
  }

  /// Runs `fn` (returning `Status` or `Result<T>`) until it succeeds, fails
  /// terminally, exhausts `max_attempts`, or would overrun `deadline`.
  /// Sleeps on the policy's clock between attempts. When the budget expires
  /// mid-retry the last transient error is returned (not a synthesized
  /// deadline error), so callers see the real cause.
  template <typename Fn>
  auto Run(Fn&& fn) -> decltype(fn()) {
    const TimeNs start = clock_->Now();
    auto result = fn();
    for (int attempt = 1; attempt < config_.max_attempts; ++attempt) {
      if (result.ok()) return result;
      const Status status = StatusOf(result);
      const bool retryable =
          IsRetryable(status) ||
          (config_.retry_resource_exhausted &&
           status.code() == StatusCode::kResourceExhausted);
      if (!retryable) return result;
      const TimeNs backoff = BackoffFor(attempt);
      if (config_.deadline > 0 &&
          clock_->Now() + backoff - start >= config_.deadline) {
        return result;  // budget would expire before the next attempt
      }
      clock_->SleepFor(backoff);
      ++retries_;
      result = fn();
    }
    return result;
  }

  /// Retries performed across all `Run` calls (for metrics plumbing).
  std::int64_t retries() const { return retries_; }

 private:
  static const Status& StatusOf(const Status& s) { return s; }
  template <typename T>
  static Status StatusOf(const Result<T>& r) { return r.status(); }

  RetryConfig config_;
  Clock* clock_;
  Rng rng_;
  std::int64_t retries_ = 0;
};

/// Tuning for `CircuitBreaker`.
struct BreakerConfig {
  int failure_threshold = 5;            ///< consecutive failures to trip open
  TimeNs cooldown = 500 * kMillisecond; ///< open -> half-open delay
  int half_open_probes = 1;             ///< successes needed to close again
};

/// Classic closed / open / half-open circuit breaker.
///
/// Closed passes everything through and counts consecutive failures; at the
/// threshold it opens and rejects fast. After `cooldown` it lets a limited
/// number of probe calls through (half-open); enough successes close it,
/// any failure re-opens it and restarts the cool-down. Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Observes state transitions (tracing/metrics hook): `listener(from, to)`
  /// runs after the transition, outside the breaker's lock.
  using StateListener = std::function<void(State from, State to)>;

  CircuitBreaker(BreakerConfig config, Clock& clock)
      : config_(config), clock_(&clock) {}

  /// Registers the transition listener, replacing any previous one. The
  /// listener must not call back into the breaker's mutating methods.
  void SetStateListener(StateListener listener) METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    listener_ = std::move(listener);
  }

  /// True when a call may proceed; false is a fast rejection (circuit open).
  /// Transitions open -> half-open when the cool-down has elapsed.
  bool Allow() METRO_EXCLUDES(mu_) {
    Transition transition;
    bool allowed = false;
    {
      MutexLock lock(mu_);
      switch (state_) {
        case State::kClosed:
          allowed = true;
          break;
        case State::kOpen:
          if (clock_->Now() - opened_at_ >= config_.cooldown) {
            transition = SetState(State::kHalfOpen);
            half_open_inflight_ = 1;
            half_open_successes_ = 0;
            allowed = true;
          } else {
            ++rejected_;
          }
          break;
        case State::kHalfOpen:
          if (half_open_inflight_ < config_.half_open_probes) {
            ++half_open_inflight_;
            allowed = true;
          } else {
            ++rejected_;
          }
          break;
      }
    }
    Notify(transition);
    return allowed;
  }

  void RecordSuccess() METRO_EXCLUDES(mu_) {
    Transition transition;
    {
      MutexLock lock(mu_);
      if (state_ == State::kHalfOpen) {
        if (++half_open_successes_ >= config_.half_open_probes) {
          transition = SetState(State::kClosed);
          consecutive_failures_ = 0;
        }
      } else {
        consecutive_failures_ = 0;
      }
    }
    Notify(transition);
  }

  void RecordFailure() METRO_EXCLUDES(mu_) {
    Transition transition;
    {
      MutexLock lock(mu_);
      if (state_ == State::kHalfOpen) {
        transition = Trip();
      } else if (state_ == State::kClosed &&
                 ++consecutive_failures_ >= config_.failure_threshold) {
        transition = Trip();
      }
    }
    Notify(transition);
  }

  /// Wraps `fn`: rejected calls fail with kUnavailable without running,
  /// outcomes are recorded (only retryable failures count against the
  /// breaker — a kNotFound is the caller's problem, not the component's).
  template <typename Fn>
  auto Run(Fn&& fn) -> decltype(fn()) {
    if (!Allow()) {
      return UnavailableError("circuit breaker open");
    }
    auto result = fn();
    if (result.ok()) {
      RecordSuccess();
    } else if (IsRetryable(StatusOfImpl(result))) {
      RecordFailure();
    }
    return result;
  }

  State state() const METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return state_;
  }
  std::int64_t rejected() const METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_;
  }

 private:
  /// A state change captured under the lock and reported after releasing it,
  /// so the listener can take its own locks (e.g. a span collector's).
  struct Transition {
    bool fired = false;
    State from = State::kClosed;
    State to = State::kClosed;
    StateListener listener;  // copy taken under the lock
  };

  /// Records the change and snapshots the listener.
  Transition SetState(State to) METRO_REQUIRES(mu_) {
    Transition t{true, state_, to, listener_};
    state_ = to;
    return t;
  }

  // Must NOT hold mu_.
  static void Notify(const Transition& t) {
    if (t.fired && t.listener) t.listener(t.from, t.to);
  }

  Transition Trip() METRO_REQUIRES(mu_) {
    Transition t = SetState(State::kOpen);
    opened_at_ = clock_->Now();
    consecutive_failures_ = 0;
    return t;
  }

  static const Status& StatusOfImpl(const Status& s) { return s; }
  template <typename T>
  static Status StatusOfImpl(const Result<T>& r) { return r.status(); }

  BreakerConfig config_;
  Clock* clock_;
  mutable Mutex mu_{lockrank::kResilienceBreaker, "resilience.breaker"};
  State state_ METRO_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ METRO_GUARDED_BY(mu_) = 0;
  int half_open_inflight_ METRO_GUARDED_BY(mu_) = 0;
  int half_open_successes_ METRO_GUARDED_BY(mu_) = 0;
  TimeNs opened_at_ METRO_GUARDED_BY(mu_) = 0;
  std::int64_t rejected_ METRO_GUARDED_BY(mu_) = 0;
  StateListener listener_ METRO_GUARDED_BY(mu_);
};

/// Human-readable breaker state ("closed", "open", "half-open").
std::string_view BreakerStateName(CircuitBreaker::State state);

/// An absolute time budget carried through a call chain.
class Deadline {
 public:
  /// A deadline `budget` nanoseconds from now on `clock`.
  static Deadline After(Clock& clock, TimeNs budget) {
    return Deadline(clock, clock.Now() + budget);
  }
  /// A deadline that never expires.
  static Deadline Infinite(Clock& clock) {
    return Deadline(clock, std::numeric_limits<TimeNs>::max());
  }

  bool Expired() const { return clock_->Now() >= at_; }
  TimeNs Remaining() const { return std::max<TimeNs>(0, at_ - clock_->Now()); }
  TimeNs at() const { return at_; }

  /// Ok while time remains; kDeadlineExceeded mentioning `what` otherwise.
  Status Check(std::string_view what) const {
    if (!Expired()) return Status::Ok();
    return DeadlineExceededError(std::string(what) + " deadline exceeded");
  }

 private:
  Deadline(Clock& clock, TimeNs at) : clock_(&clock), at_(at) {}

  Clock* clock_;
  TimeNs at_;
};

}  // namespace metro::resilience
