#include "resilience/health.h"

namespace metro::resilience {

void HealthRegistry::Register(std::string component, ProbeFn probe) {
  MutexLock lock(mu_);
  probes_[std::move(component)] = std::move(probe);
}

void HealthRegistry::Unregister(const std::string& component) {
  MutexLock lock(mu_);
  probes_.erase(component);
}

Status HealthRegistry::Check(const std::string& component) const {
  ProbeFn probe;
  {
    MutexLock lock(mu_);
    const auto it = probes_.find(component);
    if (it == probes_.end()) {
      return NotFoundError("no health probe for " + component);
    }
    probe = it->second;
  }
  // Probes run outside the registry lock so a slow probe cannot stall
  // unrelated health checks (and probes may re-enter the registry).
  return probe();
}

std::vector<ComponentHealth> HealthRegistry::CheckAll() const {
  std::vector<std::pair<std::string, ProbeFn>> probes;
  {
    MutexLock lock(mu_);
    probes.assign(probes_.begin(), probes_.end());
  }
  std::vector<ComponentHealth> out;
  out.reserve(probes.size());
  for (const auto& [name, probe] : probes) {
    out.push_back({name, probe()});
  }
  return out;
}

bool HealthRegistry::AllHealthy() const {
  for (const auto& health : CheckAll()) {
    if (!health.status.ok()) return false;
  }
  return true;
}

std::string HealthRegistry::Report() const {
  std::string out;
  for (const auto& health : CheckAll()) {
    out += health.component;
    out += ": ";
    out += health.status.ToString();
    out += '\n';
  }
  return out;
}

std::size_t HealthRegistry::size() const {
  MutexLock lock(mu_);
  return probes_.size();
}

}  // namespace metro::resilience
