#pragma once

// Scripted fault injection for the fog pipeline (the chaos harness).
//
// A `FaultPlan` is a time-ordered script of faults against the subsystems a
// deployment is built from: DFS DataNode crashes, network link flaps and
// latency spikes, message-log partition outages, and whole analysis-server
// tier outages. Plans are either hand-written (scripted experiments) or
// drawn from a seeded distribution at a chosen intensity, and are applied
// deterministically — pull-style against any clock via `ApplyUpTo`, or
// scheduled onto a discrete-event `net::Simulator` via `ScheduleOn`.

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "fog/fog.h"
#include "mq/broker_cluster.h"
#include "mq/message_log.h"
#include "net/simulator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace metro::resilience::chaos {

/// What breaks (or recovers).
enum class FaultKind {
  kDfsNodeKill,       ///< DataNode `index` crashes
  kDfsNodeRevive,     ///< DataNode `index` restarts (disk intact)
  kLinkDown,          ///< net link (`index`, `index2`) goes down
  kLinkUp,            ///< net link (`index`, `index2`) comes back
  kLinkLatencySpike,  ///< net link latency multiplied by `magnitude`
  kMqPartitionDown,   ///< `topic` partition `index` leader fails
  kMqPartitionUp,     ///< `topic` partition `index` leader returns
  kMqNodeKill,        ///< replicated-broker node `index` crashes
  kMqNodeRevive,      ///< replicated-broker node `index` restarts
  kServerOutage,      ///< fog analysis server `index` loses all fog links
  kServerRecovery,    ///< fog analysis server `index` links restored
};

std::string_view FaultKindName(FaultKind kind);

/// One scheduled fault.
struct FaultEvent {
  TimeNs at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  int index = 0;           ///< node / partition / server id (kind-dependent)
  int index2 = 0;          ///< second link endpoint for link faults
  double magnitude = 1.0;  ///< latency multiplier for kLinkLatencySpike
  std::string topic;       ///< topic for message-log faults
};

/// The subsystems a plan may target; unneeded targets stay null and events
/// against them are counted as skipped rather than applied.
struct FaultTargets {
  dfs::Cluster* dfs = nullptr;
  net::Simulator* net = nullptr;
  mq::MessageLog* mq = nullptr;
  /// Replicated broker. kMqNodeKill / kMqNodeRevive act on it directly;
  /// kMqPartitionDown / kMqPartitionUp are re-targeted onto it as a kill /
  /// revive of the partition's *preferred* leader, so partition-outage plans
  /// written against the single-broker log replay unchanged against the
  /// cluster — where the same fault now triggers a failover instead of an
  /// outage.
  mq::BrokerCluster* mq_cluster = nullptr;
  fog::FogTopology* fog = nullptr;  ///< for server-tier outages
};

/// A time-ordered, replayable fault script.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends an event (events may be added in any order; application is by
  /// timestamp).
  void Add(FaultEvent event);

  /// Draws a random plan over `[0, horizon)` at `intensity` in [0, 1]:
  /// intensity scales the number of fault episodes (0 = none). Every
  /// injected fault gets a matching recovery event before `horizon`, so a
  /// full replay always ends healthy. Which fault classes are drawn depends
  /// on which targets exist: DataNode crash/revive cycles when `dfs` is set,
  /// partition outages per `topic` when `mq` or `mq_cluster` is set, broker
  /// node kill/revive cycles when `mq_cluster` is set, and server-tier
  /// outages + fog-link latency spikes when `fog` is set.
  static FaultPlan Random(double intensity, TimeNs horizon,
                          const FaultTargets& targets,
                          const std::vector<std::string>& topics,
                          std::uint64_t seed);

  /// Applies every not-yet-applied event with `at <= now` against
  /// `targets`, in timestamp order. Returns the number applied. Idempotent
  /// per event: each fires once, so callers poll this from their run loop.
  int ApplyUpTo(TimeNs now, const FaultTargets& targets);

  /// Schedules every remaining event onto `sim` at its timestamp. The
  /// targets struct is captured by value (the pointed-to subsystems must
  /// outlive the simulation run).
  void ScheduleOn(net::Simulator& sim, FaultTargets targets);

  std::size_t size() const { return events_.size(); }
  std::size_t applied() const { return applied_; }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Lowest event timestamp not yet applied, or -1 when exhausted.
  TimeNs NextAt() const;

 private:
  static void ApplyEvent(const FaultEvent& event, const FaultTargets& targets);

  std::vector<FaultEvent> events_;  // kept sorted by (at, insertion)
  std::size_t applied_ = 0;
};

}  // namespace metro::resilience::chaos
