#pragma once

// Component health probes.
//
// Each subsystem registers a cheap probe ("dfs", "mq", "fog.server", ...)
// returning Ok when the component can serve; the registry snapshots the
// whole deployment in one call. Degradation decisions (fall back to local
// inference, shed load) key off these probes rather than poking subsystem
// internals, and the chaos benches assert that injected faults surface here.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::resilience {

/// A health probe: Ok when the component is serving normally; an error
/// status (typically kUnavailable) with a diagnostic message otherwise.
using ProbeFn = std::function<Status()>;

/// One probed component's result.
struct ComponentHealth {
  std::string component;
  Status status;
};

/// Named collection of per-component health probes. Thread-safe.
class HealthRegistry {
 public:
  /// Registers (or replaces) the probe for `component`.
  void Register(std::string component, ProbeFn probe) METRO_EXCLUDES(mu_);

  /// Removes a probe; unknown components are ignored.
  void Unregister(const std::string& component) METRO_EXCLUDES(mu_);

  /// Runs one component's probe; kNotFound for unregistered components.
  /// The probe itself runs outside the registry lock.
  Status Check(const std::string& component) const METRO_EXCLUDES(mu_);

  /// Runs every probe, sorted by component name.
  std::vector<ComponentHealth> CheckAll() const METRO_EXCLUDES(mu_);

  /// True when every registered probe returns Ok.
  bool AllHealthy() const;

  /// Multi-line "component: status" dump, sorted by name.
  std::string Report() const;

  std::size_t size() const METRO_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lockrank::kResilienceHealth, "resilience.health"};
  std::map<std::string, ProbeFn> probes_ METRO_GUARDED_BY(mu_);
};

}  // namespace metro::resilience
