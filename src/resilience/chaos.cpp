#include "resilience/chaos.h"

#include <algorithm>

namespace metro::resilience::chaos {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDfsNodeKill: return "dfs-node-kill";
    case FaultKind::kDfsNodeRevive: return "dfs-node-revive";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kLinkLatencySpike: return "link-latency-spike";
    case FaultKind::kMqPartitionDown: return "mq-partition-down";
    case FaultKind::kMqPartitionUp: return "mq-partition-up";
    case FaultKind::kMqNodeKill: return "mq-node-kill";
    case FaultKind::kMqNodeRevive: return "mq-node-revive";
    case FaultKind::kServerOutage: return "server-outage";
    case FaultKind::kServerRecovery: return "server-recovery";
  }
  return "?";
}

void FaultPlan::Add(FaultEvent event) {
  // Insert behind any already-applied prefix, keeping (at) order stable.
  auto it = std::upper_bound(
      events_.begin() + std::ptrdiff_t(applied_), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(it, std::move(event));
}

TimeNs FaultPlan::NextAt() const {
  if (applied_ >= events_.size()) return -1;
  return events_[applied_].at;
}

void FaultPlan::ApplyEvent(const FaultEvent& event,
                           const FaultTargets& targets) {
  switch (event.kind) {
    case FaultKind::kDfsNodeKill:
      if (targets.dfs && event.index >= 0 &&
          event.index < targets.dfs->num_datanodes()) {
        targets.dfs->node(event.index).Kill();
      }
      break;
    case FaultKind::kDfsNodeRevive:
      if (targets.dfs && event.index >= 0 &&
          event.index < targets.dfs->num_datanodes()) {
        targets.dfs->node(event.index).Revive();
      }
      break;
    case FaultKind::kLinkDown:
      if (targets.net) {
        (void)targets.net->SetLinkUp(event.index, event.index2, false);
      }
      break;
    case FaultKind::kLinkUp:
      if (targets.net) {
        (void)targets.net->SetLinkUp(event.index, event.index2, true);
      }
      break;
    case FaultKind::kLinkLatencySpike:
      if (targets.net) {
        (void)targets.net->ScaleLinkLatency(event.index, event.index2,
                                            event.magnitude);
      }
      break;
    case FaultKind::kMqPartitionDown:
    case FaultKind::kMqPartitionUp: {
      const bool up = event.kind == FaultKind::kMqPartitionUp;
      if (targets.mq_cluster) {
        // Re-target the partition fault onto the replicated broker: taking a
        // partition "down" means crashing its preferred leader. The mapping
        // round-trips (the matching Up event revives the same node) because
        // the preferred leader is a pure function of (topic, partition).
        const auto leader =
            targets.mq_cluster->PreferredLeader(event.topic, event.index);
        if (leader.ok()) {
          if (up) {
            (void)targets.mq_cluster->ReviveNode(*leader);
          } else {
            (void)targets.mq_cluster->KillNode(*leader);
          }
        }
      } else if (targets.mq) {
        (void)targets.mq->SetPartitionUp(event.topic, event.index, up);
      }
      break;
    }
    case FaultKind::kMqNodeKill:
      if (targets.mq_cluster) {
        (void)targets.mq_cluster->KillNode(event.index);
      }
      break;
    case FaultKind::kMqNodeRevive:
      if (targets.mq_cluster) {
        (void)targets.mq_cluster->ReviveNode(event.index);
      }
      break;
    case FaultKind::kServerOutage:
    case FaultKind::kServerRecovery:
      if (targets.fog && event.index >= 0 &&
          event.index < targets.fog->num_servers()) {
        const bool up = event.kind == FaultKind::kServerRecovery;
        const net::NodeId server = targets.fog->server(event.index);
        net::Simulator& sim = targets.fog->sim();
        for (int f = 0; f < targets.fog->num_fogs(); ++f) {
          if (targets.fog->server_of_fog_index(f) != server) continue;
          (void)sim.SetLinkUp(targets.fog->fog_node(f), server, up);
        }
      }
      break;
  }
}

int FaultPlan::ApplyUpTo(TimeNs now, const FaultTargets& targets) {
  int fired = 0;
  while (applied_ < events_.size() && events_[applied_].at <= now) {
    ApplyEvent(events_[applied_], targets);
    ++applied_;
    ++fired;
  }
  return fired;
}

void FaultPlan::ScheduleOn(net::Simulator& sim, FaultTargets targets) {
  for (; applied_ < events_.size(); ++applied_) {
    const FaultEvent event = events_[applied_];
    const TimeNs at = std::max(event.at, sim.Now());
    sim.ScheduleAt(at, [event, targets] { ApplyEvent(event, targets); });
  }
}

FaultPlan FaultPlan::Random(double intensity, TimeNs horizon,
                            const FaultTargets& targets,
                            const std::vector<std::string>& topics,
                            std::uint64_t seed) {
  FaultPlan plan;
  intensity = std::clamp(intensity, 0.0, 1.0);
  if (intensity == 0.0 || horizon <= 0) return plan;
  Rng rng(seed);

  auto Event = [](TimeNs at, FaultKind kind, int index, int index2 = 0,
                  double magnitude = 1.0) {
    FaultEvent e;
    e.at = at;
    e.kind = kind;
    e.index = index;
    e.index2 = index2;
    e.magnitude = magnitude;
    return e;
  };

  // Intensity scales episode count; each episode is one fault plus its
  // recovery, with the outage lasting up to a quarter of the horizon.
  const int episodes = int(1 + intensity * 7.0 + 0.5);
  auto episode_window = [&](TimeNs& start, TimeNs& end) {
    start = TimeNs(rng.UniformDouble(0.0, 0.70) * double(horizon));
    const TimeNs max_len = horizon / 4;
    end = start + std::max<TimeNs>(
                      1, TimeNs(rng.UniformDouble(0.25, 1.0) * double(max_len)));
  };

  for (int e = 0; e < episodes; ++e) {
    std::vector<int> classes;
    if (targets.dfs && targets.dfs->num_datanodes() > 0) classes.push_back(0);
    if ((targets.mq || targets.mq_cluster) && !topics.empty()) {
      classes.push_back(1);
    }
    if (targets.fog && targets.fog->num_servers() > 0) classes.push_back(2);
    if (targets.fog && targets.fog->num_fogs() > 0) classes.push_back(3);
    if (targets.mq_cluster && targets.mq_cluster->num_nodes() > 0) {
      classes.push_back(4);
    }
    if (classes.empty()) break;
    const int cls = classes[rng.UniformU64(classes.size())];
    TimeNs start = 0, end = 0;
    episode_window(start, end);

    switch (cls) {
      case 0: {
        const int node = int(rng.UniformU64(
            std::uint64_t(targets.dfs->num_datanodes())));
        plan.Add(Event(start, FaultKind::kDfsNodeKill, node));
        plan.Add(Event(end, FaultKind::kDfsNodeRevive, node));
        break;
      }
      case 1: {
        FaultEvent down = Event(start, FaultKind::kMqPartitionDown, 0);
        FaultEvent up = Event(end, FaultKind::kMqPartitionUp, 0);
        down.topic = up.topic = topics[rng.UniformU64(topics.size())];
        plan.Add(std::move(down));
        plan.Add(std::move(up));
        break;
      }
      case 2: {
        const int server =
            int(rng.UniformU64(std::uint64_t(targets.fog->num_servers())));
        plan.Add(Event(start, FaultKind::kServerOutage, server));
        plan.Add(Event(end, FaultKind::kServerRecovery, server));
        break;
      }
      case 4: {
        const int node = int(
            rng.UniformU64(std::uint64_t(targets.mq_cluster->num_nodes())));
        plan.Add(Event(start, FaultKind::kMqNodeKill, node));
        plan.Add(Event(end, FaultKind::kMqNodeRevive, node));
        break;
      }
      case 3: {
        const int f =
            int(rng.UniformU64(std::uint64_t(targets.fog->num_fogs())));
        const net::NodeId fog_node = targets.fog->fog_node(f);
        const net::NodeId server = targets.fog->server_of_fog_index(f);
        FaultEvent spike = Event(start, FaultKind::kLinkLatencySpike, fog_node,
                                 server, rng.UniformDouble(2.0, 4.0 + 12.0 * intensity));
        FaultEvent clear =
            Event(end, FaultKind::kLinkLatencySpike, fog_node, server, 1.0);
        plan.Add(std::move(spike));
        plan.Add(std::move(clear));
        break;
      }
    }
  }
  return plan;
}

}  // namespace metro::resilience::chaos
