#include "resilience/policy.h"

namespace metro::resilience {

std::string_view BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace metro::resilience
