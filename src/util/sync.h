#pragma once

// Annotated synchronization primitives: Clang thread-safety analysis for the
// whole pipeline.
//
// Every mutex-holding module in the tree uses `Mutex` / `MutexLock` /
// `CondVar` instead of the raw std:: types, annotates each guarded field
// with `METRO_GUARDED_BY(mu_)`, and each must-hold-the-lock helper with
// `METRO_REQUIRES(mu_)`. Under Clang with `-DMETRO_THREAD_SAFETY=ON`
// (`-Werror=thread-safety`) the compiler then *proves* the locking
// discipline: a field read outside its mutex, a helper called without its
// lock, or a double acquire is a build error, not a latent race for TSan to
// maybe catch at runtime. On compilers without the attributes (GCC) every
// macro expands to nothing and the wrappers are zero-cost shims over the
// std:: primitives, so the annotated tree builds everywhere.
//
// The vocabulary mirrors Clang's attribute set (and Abseil's macro layer):
//
//   METRO_GUARDED_BY(mu)     field may only be touched while `mu` is held
//   METRO_PT_GUARDED_BY(mu)  pointee guarded (the pointer itself is free)
//   METRO_REQUIRES(mu)       caller must already hold `mu`
//   METRO_ACQUIRE(mu)        function acquires `mu` and returns holding it
//   METRO_RELEASE(mu)        function releases `mu`
//   METRO_TRY_ACQUIRE(b, mu) acquires `mu` iff the return value equals `b`
//   METRO_EXCLUDES(mu)       caller must NOT hold `mu` (deadlock guard)
//   METRO_ASSERT_HELD(mu)    runtime claim that `mu` is held (trust point)
//   METRO_ACQUIRED_BEFORE/AFTER(mu)  lock-ordering declaration
//
// See DESIGN.md "Concurrency invariants & static analysis" for the
// per-module lock hierarchy and scripts/check_static.sh for the gate that
// runs the analysis together with clang-tidy and the sanitizer matrix.

#include <condition_variable>
#include <mutex>

// Debug-only runtime lock-rank checker (the dynamic half of the hierarchy
// that metrolint v2's static `lockorder` pass enforces; see
// util/lock_ranks.h). On by default in debug builds, compiled out of the
// Mutex hot path entirely under NDEBUG — Release keeps only the two
// passive fields (rank/name) so the Mutex layout never changes with the
// build mode. The lockcheck functions themselves are always defined (they
// are free functions with no callers in Release) so lock_rank_test can
// exercise the checker logic in every build flavor.
#ifndef METRO_LOCK_RANK_CHECK
#ifdef NDEBUG
#define METRO_LOCK_RANK_CHECK 0
#else
#define METRO_LOCK_RANK_CHECK 1
#endif
#endif

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define METRO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef METRO_THREAD_ANNOTATION
#define METRO_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define METRO_CAPABILITY(x) METRO_THREAD_ANNOTATION(capability(x))
#define METRO_SCOPED_CAPABILITY METRO_THREAD_ANNOTATION(scoped_lockable)
#define METRO_GUARDED_BY(x) METRO_THREAD_ANNOTATION(guarded_by(x))
#define METRO_PT_GUARDED_BY(x) METRO_THREAD_ANNOTATION(pt_guarded_by(x))
#define METRO_ACQUIRED_BEFORE(...) \
  METRO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define METRO_ACQUIRED_AFTER(...) \
  METRO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define METRO_REQUIRES(...) \
  METRO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define METRO_ACQUIRE(...) \
  METRO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define METRO_RELEASE(...) \
  METRO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define METRO_TRY_ACQUIRE(...) \
  METRO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define METRO_EXCLUDES(...) METRO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define METRO_ASSERT_HELD(...) \
  METRO_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define METRO_RETURN_CAPABILITY(x) METRO_THREAD_ANNOTATION(lock_returned(x))
#define METRO_NO_THREAD_SAFETY_ANALYSIS \
  METRO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace metro {

namespace lockcheck {

/// True when the runtime rank checker is compiled into this build. Tests
/// use it to decide whether the inversion death tests can run.
inline constexpr bool kCompiledIn = METRO_LOCK_RANK_CHECK != 0;

/// Process-wide switch so death tests can prove the disabled path is a
/// no-op without rebuilding. Checked per acquisition (relaxed load).
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

struct HeldLock {
  const void* mu;
  int rank;
  const char* name;
};

/// Per-thread stack of currently held ranked locks. Fixed capacity: a
/// thread nesting more than 64 locks has bigger problems; overflow drops
/// entries (checker degrades, never corrupts).
struct HeldStack {
  HeldLock entries[64];
  int size = 0;
};

inline HeldStack& Held() {
  thread_local HeldStack stack;
  return stack;
}

[[noreturn]] inline void DieOnInversion(const HeldStack& s, int rank,
                                        const char* name) {
  std::fprintf(stderr,
               "metro lock-rank inversion: acquiring \"%s\" (rank %d) while "
               "holding:\n",
               name, rank);
  for (int i = s.size - 1; i >= 0; --i) {
    std::fprintf(stderr, "  #%d \"%s\" (rank %d)\n", s.size - 1 - i,
                 s.entries[i].name, s.entries[i].rank);
  }
  std::fprintf(stderr,
               "ranks must strictly increase along acquisition — see "
               "util/lock_ranks.h and DESIGN.md \"Global lock hierarchy\"\n");
  std::abort();
}

/// Called after a successful acquisition. Unranked locks (rank 0) are
/// tracked but never checked; a ranked acquisition must out-rank every
/// ranked lock already held by this thread.
inline void OnAcquire(const void* mu, int rank, const char* name) {
  HeldStack& s = Held();
  if (rank > 0 && EnabledFlag().load(std::memory_order_relaxed)) {
    for (int i = 0; i < s.size; ++i) {
      if (s.entries[i].rank > 0 && s.entries[i].mu != mu &&
          rank <= s.entries[i].rank) {
        DieOnInversion(s, rank, name);
      }
    }
  }
  if (s.size < 64) s.entries[s.size++] = HeldLock{mu, rank, name};
}

/// Called before release. Scans from the top so early-unlock patterns
/// (MutexLock::Unlock mid-scope) remove the right entry.
inline void OnRelease(const void* mu) {
  HeldStack& s = Held();
  for (int i = s.size - 1; i >= 0; --i) {
    if (s.entries[i].mu == mu) {
      for (int j = i; j + 1 < s.size; ++j) s.entries[j] = s.entries[j + 1];
      --s.size;
      return;
    }
  }
}

}  // namespace lockcheck

/// Annotated exclusive mutex. A zero-cost wrapper over std::mutex that
/// carries the `capability` attribute so `METRO_GUARDED_BY(mu_)` fields and
/// `METRO_REQUIRES(mu_)` helpers are checkable at compile time.
///
/// Every long-lived mutex declares its place in the global lock hierarchy:
/// `Mutex mu_{lockrank::kStoreLsm, "store.lsm"};` (util/lock_ranks.h). The
/// rank/name fields are always present — Release builds carry them as two
/// passive words so the layout matches debug builds — and in debug builds
/// every acquisition is checked against the thread's held-lock stack
/// (lockcheck::OnAcquire), aborting on a rank inversion.
///
/// Also satisfies BasicLockable (lowercase lock/unlock) so `CondVar` can
/// suspend on it directly.
class METRO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() METRO_ACQUIRE() {
    mu_.lock();
    NoteAcquire();
  }
  void Unlock() METRO_RELEASE() {
    NoteRelease();
    mu_.unlock();
  }
  bool TryLock() METRO_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    NoteAcquire();
    return true;
  }

  // BasicLockable spelling (for std::condition_variable_any and generic
  // code); same semantics, same annotations.
  void lock() METRO_ACQUIRE() {
    mu_.lock();
    NoteAcquire();
  }
  void unlock() METRO_RELEASE() {
    NoteRelease();
    mu_.unlock();
  }

  /// Late rank assignment for mutexes that cannot be constructed in place
  /// with one (e.g. `std::vector<Mutex>` stripes); call before first use.
  void SetRank(int rank, const char* name) {
    rank_ = rank;
    name_ = name;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
#if METRO_LOCK_RANK_CHECK
  void NoteAcquire() { lockcheck::OnAcquire(this, rank_, name_); }
  void NoteRelease() { lockcheck::OnRelease(this); }
#else
  void NoteAcquire() {}
  void NoteRelease() {}
#endif

  std::mutex mu_;
  int rank_ = 0;
  const char* name_ = "";
};

/// RAII lock over an annotated `Mutex` (the std::lock_guard/unique_lock
/// replacement). Supports releasing early (`Unlock`) and re-acquiring
/// (`Lock`) for unlock-before-notify and compute-outside-the-lock patterns;
/// the destructor releases only if still held.
class METRO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) METRO_ACQUIRE(mu) : mu_(&mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() METRO_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope exit (e.g. to notify a CondVar unlocked).
  void Unlock() METRO_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  /// Re-acquires after an early Unlock.
  void Lock() METRO_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

/// Condition variable bound to an annotated `Mutex`.
///
/// `Wait` declares `METRO_REQUIRES(mu)`: the analysis checks that callers
/// hold the mutex across the wait (it is released and re-acquired inside,
/// invisible to the caller — exactly the capability contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and suspends; re-acquires before returning.
  /// Callers loop on their predicate as with any condition variable.
  void Wait(Mutex& mu) METRO_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace metro
