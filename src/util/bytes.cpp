#include "util/bytes.h"

#include <array>

namespace metro {

void ByteWriter::PutU32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void ByteWriter::PutU64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void ByteWriter::PutF32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits);
}

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(char((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(char(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.append(s);
}

Result<std::uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) return CorruptionError("truncated u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return CorruptionError("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return CorruptionError("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::int64_t> ByteReader::GetI64() {
  METRO_ASSIGN_OR_RETURN(const std::uint64_t v, GetU64());
  return static_cast<std::int64_t>(v);
}

Result<float> ByteReader::GetF32() {
  METRO_ASSIGN_OR_RETURN(const std::uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

Result<double> ByteReader::GetF64() {
  METRO_ASSIGN_OR_RETURN(const std::uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::uint64_t> ByteReader::GetVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return CorruptionError("truncated varint");
    const auto byte = std::uint8_t(data_[pos_++]);
    if (shift >= 63 && byte > 1) return CorruptionError("varint overflow");
    v |= std::uint64_t(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

Result<std::string> ByteReader::GetString() {
  METRO_ASSIGN_OR_RETURN(const std::uint64_t n, GetVarint());
  if (remaining() < n) return CorruptionError("truncated string body");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Result<std::string_view> ByteReader::GetRaw(std::size_t n) {
  if (remaining() < n) return CorruptionError("truncated raw bytes");
  std::string_view s = data_.substr(pos_, n);
  pos_ += n;
  return s;
}

namespace {

std::array<std::uint32_t, 256> MakeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82f63b78;  // reflected Castagnoli
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::string_view data) {
  static const auto table = MakeCrc32cTable();
  std::uint32_t crc = 0xffffffff;
  for (const char c : data) {
    crc = table[(crc ^ std::uint8_t(c)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffff;
}

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace metro
