#pragma once

// Binary serialization primitives.
//
// Fixed-width little-endian encoding plus varint and length-prefixed strings;
// used by the DFS block format, the message-queue log, and the LSM store's
// SSTable/WAL records.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace metro {

/// Append-only encoder.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(char(v)); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  void PutVarint(std::uint64_t v);
  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix.
  void PutRaw(std::string_view s) { buf_.append(s); }

  const std::string& data() const& { return buf_; }
  std::string&& data() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential decoder over a borrowed buffer; all reads are bounds-checked
/// and fail with kCorruption on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<std::uint8_t> GetU8();
  Result<std::uint32_t> GetU32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<float> GetF32();
  Result<double> GetF64();
  Result<std::uint64_t> GetVarint();
  /// Length-prefixed byte string (copies out).
  Result<std::string> GetString();
  /// Exactly `n` raw bytes as a view into the underlying buffer.
  Result<std::string_view> GetRaw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// CRC32 (Castagnoli polynomial, table-driven) for record checksums.
std::uint32_t Crc32c(std::string_view data);

/// FNV-1a 64-bit hash — partitioners and bloom filters.
std::uint64_t Fnv1a64(std::string_view data);

}  // namespace metro
