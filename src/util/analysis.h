#pragma once

// Project-invariant analysis vocabulary: annotations the static gate checks.
//
// Three families, complementing the lock annotations in util/sync.h:
//
//   METRO_NOALLOC         hot-path marker, enforced *lexically* by
//                         tools/metrolint on every machine (no clang needed).
//                         Place it on a function DEFINITION (prefix position,
//                         like `static`); metrolint rejects direct heap
//                         allocation inside the body: `new`, malloc-family
//                         calls, owning-container construction or growth
//                         (push_back/resize/...), `Tensor` construction and
//                         `ToTensor()`. The contract is shallow and local:
//                         un-annotated callees are not scanned, which is how
//                         sanctioned cold paths (arena growth inside
//                         Workspace::Alloc, session replanning) stay out of
//                         the rule. bench/alloc_count.h measures the same
//                         property at runtime; metrolint proves the kernels
//                         never regress it at review time.
//
//   METRO_LIFETIME_BOUND  maps to [[clang::lifetimebound]] under Clang (no-op
//                         elsewhere). Applied to every view-returning API —
//                         TensorView factories, Workspace::Alloc/AllocView,
//                         InferenceSession::Run, zoo session halves — so a
//                         TensorView outliving the Tensor or arena it borrows
//                         from is a compile-time -Wdangling* diagnostic,
//                         escalated to an error by -DMETRO_LIFETIME=ON.
//                         Two spellings:
//                           parameter:  f(const Tensor& t METRO_LIFETIME_BOUND)
//                           implicit this (member fn, after cv-qualifiers):
//                                       TensorView View() const METRO_LIFETIME_BOUND;
//
//   METRO_CHECK           always-on invariant check (survives NDEBUG, unlike
//                         assert): prints the expression plus a printf-style
//                         context message to stderr and aborts. Used where a
//                         violated invariant would otherwise corrupt memory
//                         silently in Release — exactly the build
//                         scripts/check_perf.sh gates on. METRO_DCHECK is the
//                         debug-only spelling for hot-loop checks.
//
// See DESIGN.md "Project invariants (metrolint)" for the rule families, the
// module layering DAG, and how to whitelist an exception.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

// Marker only; expands to nothing. tools/metrolint keys on the token.
#define METRO_NOALLOC

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define METRO_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef METRO_LIFETIME_BOUND
#define METRO_LIFETIME_BOUND  // no-op outside Clang
#endif

namespace metro {

/// Prints the failed expression and formatted context, then aborts. Never
/// returns; out-of-line formatting keeps METRO_CHECK call sites cheap.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* fmt, ...) {
  std::fprintf(stderr, "%s:%d: METRO_CHECK failed: %s\n  ", file, line, expr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace metro

/// Always-on invariant check with printf-style context:
///   METRO_CHECK(a.size() == b.size(), "copy %zu -> %zu", b.size(), a.size());
#define METRO_CHECK(cond, ...)                                       \
  ((cond) ? (void)0                                                  \
          : ::metro::CheckFailed(__FILE__, __LINE__, #cond, __VA_ARGS__))

/// Debug-only spelling (compiled out under NDEBUG) for per-element checks in
/// hot loops where even the branch is too expensive in Release.
#ifdef NDEBUG
#define METRO_DCHECK(cond, ...) ((void)0)
#else
#define METRO_DCHECK(cond, ...) METRO_CHECK(cond, __VA_ARGS__)
#endif
