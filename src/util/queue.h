#pragma once

// Bounded blocking MPMC queue.
//
// The workhorse channel between producer and consumer threads across the
// ingest, message-queue, and fog subsystems. Close() drains gracefully:
// producers fail fast, consumers keep receiving until empty.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "util/status.h"

namespace metro {

/// Outcome of a non-blocking pop: a momentarily empty queue may still
/// receive items, a closed-and-drained queue never will. Non-blocking
/// pollers must stop (not spin) on `kClosed`.
enum class TryPopResult {
  kItem,    ///< the out-parameter holds the next item
  kEmpty,   ///< nothing right now; producers may still push
  kClosed,  ///< closed and fully drained; no item will ever arrive
};

/// Thread-safe bounded queue with blocking push/pop and graceful shutdown.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available; fails with kAborted once closed.
  Status Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return AbortedError("queue closed");
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Non-blocking push; kResourceExhausted when full, kAborted when closed.
  Status TryPush(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return AbortedError("queue closed");
      if (items_.size() >= capacity_) return ResourceExhaustedError("queue full");
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Blocks until an item is available; nullopt once closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop. Unlike a bare optional, the result distinguishes
  /// "momentarily empty" (`kEmpty`) from "closed and drained" (`kClosed`),
  /// so a poller on a dead queue terminates instead of spinning forever.
  TryPopResult TryPop(T& out) {
    std::unique_lock lock(mu_);
    if (items_.empty()) {
      return closed_ ? TryPopResult::kClosed : TryPopResult::kEmpty;
    }
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return TryPopResult::kItem;
  }

  /// Rejects future pushes and wakes all waiters; pops drain what remains.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace metro
