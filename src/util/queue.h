#pragma once

// Bounded blocking MPMC queue.
//
// The workhorse channel between producer and consumer threads across the
// ingest, message-queue, and fog subsystems. Close() drains gracefully:
// producers fail fast, consumers keep receiving until empty.

#include <deque>
#include <optional>

#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro {

/// Outcome of a non-blocking pop: a momentarily empty queue may still
/// receive items, a closed-and-drained queue never will. Non-blocking
/// pollers must stop (not spin) on `kClosed`.
enum class TryPopResult {
  kItem,    ///< the out-parameter holds the next item
  kEmpty,   ///< nothing right now; producers may still push
  kClosed,  ///< closed and fully drained; no item will ever arrive
};

/// Thread-safe bounded queue with blocking push/pop and graceful shutdown.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available; fails with kAborted once closed.
  Status Push(T item) METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return AbortedError("queue closed");
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return Status::Ok();
  }

  /// Non-blocking push; kResourceExhausted when full, kAborted when closed.
  Status TryPush(T item) METRO_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return AbortedError("queue closed");
      if (items_.size() >= capacity_) return ResourceExhaustedError("queue full");
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return Status::Ok();
  }

  /// Blocks until an item is available; nullopt once closed *and* drained.
  std::optional<T> Pop() METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop. Unlike a bare optional, the result distinguishes
  /// "momentarily empty" (`kEmpty`) from "closed and drained" (`kClosed`),
  /// so a poller on a dead queue terminates instead of spinning forever.
  TryPopResult TryPop(T& out) METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) {
      return closed_ ? TryPopResult::kClosed : TryPopResult::kEmpty;
    }
    out = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return TryPopResult::kItem;
  }

  /// Rejects future pushes and wakes all waiters; pops drain what remains.
  void Close() METRO_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{lockrank::kUtilQueue, "util.queue"};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ METRO_GUARDED_BY(mu_);
  bool closed_ METRO_GUARDED_BY(mu_) = false;
};

}  // namespace metro
