#include "util/clock.h"

#include <thread>

namespace metro {

TimeNs WallClock::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WallClock::SleepFor(TimeNs ns) {
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

WallClock& WallClock::Instance() {
  static WallClock clock;
  return clock;
}

}  // namespace metro
