#include "util/thread_pool.h"

#include <cassert>
#include <exception>

#include "util/logging.h"
#include "util/metrics.h"

namespace metro {

ThreadPool::ThreadPool(std::size_t num_threads, MetricsRegistry* metrics)
    : metrics_(metrics), tasks_(1 << 16) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  // A throwing task must never escape the jthread — an uncaught exception
  // on a worker calls std::terminate and takes the whole process down. The
  // failure is counted and logged; the worker keeps draining the queue.
  while (auto task = tasks_.Pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("threadpool.task_exceptions").Increment();
      }
      METRO_LOG(kWarning) << "thread pool task threw: " << e.what();
    } catch (...) {
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("threadpool.task_exceptions").Increment();
      }
      METRO_LOG(kWarning) << "thread pool task threw a non-std exception";
    }
  }
}

Status ThreadPool::Submit(std::function<void()> task) {
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  tasks_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace metro
