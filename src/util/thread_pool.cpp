#include "util/thread_pool.h"

#include <cassert>

namespace metro {

ThreadPool::ThreadPool(std::size_t num_threads) : tasks_(1 << 16) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = tasks_.Pop()) (*task)();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  tasks_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace metro
