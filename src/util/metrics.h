#pragma once

// Lightweight metrics: counters, gauges, and latency histograms.
//
// Every subsystem exports its operational numbers through a `MetricsRegistry`
// so benches and the core pipeline can print a single coherent report.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace metro {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    std::lock_guard lock(mu_);
    value_ = v;
  }
  void Add(double delta) {
    std::lock_guard lock(mu_);
    value_ += delta;
  }
  double value() const {
    std::lock_guard lock(mu_);
    return value_;
  }

 private:
  mutable std::mutex mu_;
  double value_ = 0;
};

/// Log-bucketed histogram for latency/size distributions.
///
/// Buckets are powers of two from 1 to 2^62, giving ~2x resolution over the
/// full int64 range — the classic trade-off for operational latency tracking.
class Histogram {
 public:
  static constexpr int kNumBuckets = 63;

  /// Records a sample (values < 0 are clamped to 0).
  void Record(std::int64_t value);

  std::int64_t count() const;
  std::int64_t sum() const;
  double mean() const;
  std::int64_t min() const;
  std::int64_t max() const;

  /// Approximate quantile via linear interpolation within the bucket.
  /// q in [0, 1]; returns 0 for an empty histogram.
  std::int64_t Quantile(double q) const;

  std::int64_t p50() const { return Quantile(0.50); }
  std::int64_t p95() const { return Quantile(0.95); }
  std::int64_t p99() const { return Quantile(0.99); }

 private:
  mutable std::mutex mu_;
  std::int64_t buckets_[kNumBuckets] = {};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Named collection of metrics shared across a subsystem.
///
/// Lookup lazily creates the metric; returned references stay valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Multi-line human-readable dump, sorted by name.
  std::string Report() const;

  /// Resets by dropping all metrics (references become stale; use only
  /// between bench iterations that re-acquire their metrics).
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metro
