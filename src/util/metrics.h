#pragma once

// Lightweight metrics: counters, gauges, and latency histograms.
//
// Every subsystem exports its operational numbers through a `MetricsRegistry`
// so benches and the core pipeline can print a single coherent report.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ = v;
  }
  void Add(double delta) METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += delta;
  }
  double value() const METRO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_{lockrank::kUtilMetricsGauge, "util.metrics.gauge"};
  double value_ METRO_GUARDED_BY(mu_) = 0;
};

/// Log-bucketed histogram for latency/size distributions.
///
/// Buckets are powers of two from 1 to 2^62, giving ~2x resolution over the
/// full int64 range — the classic trade-off for operational latency tracking.
class Histogram {
 public:
  static constexpr int kNumBuckets = 63;

  /// Records a sample (values < 0 are clamped to 0).
  void Record(std::int64_t value) METRO_EXCLUDES(mu_);

  std::int64_t count() const METRO_EXCLUDES(mu_);
  std::int64_t sum() const METRO_EXCLUDES(mu_);
  double mean() const METRO_EXCLUDES(mu_);
  std::int64_t min() const METRO_EXCLUDES(mu_);
  std::int64_t max() const METRO_EXCLUDES(mu_);

  /// Approximate quantile via linear interpolation within the bucket.
  /// q in [0, 1]; returns 0 for an empty histogram.
  std::int64_t Quantile(double q) const METRO_EXCLUDES(mu_);

  std::int64_t p50() const { return Quantile(0.50); }
  std::int64_t p95() const { return Quantile(0.95); }
  std::int64_t p99() const { return Quantile(0.99); }

 private:
  mutable Mutex mu_{lockrank::kUtilMetricsHistogram, "util.metrics.histogram"};
  std::int64_t buckets_[kNumBuckets] METRO_GUARDED_BY(mu_) = {};
  std::int64_t count_ METRO_GUARDED_BY(mu_) = 0;
  std::int64_t sum_ METRO_GUARDED_BY(mu_) = 0;
  std::int64_t min_ METRO_GUARDED_BY(mu_) = 0;
  std::int64_t max_ METRO_GUARDED_BY(mu_) = 0;
};

/// Named collection of metrics shared across a subsystem.
///
/// Lookup lazily creates the metric; returned references stay valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) METRO_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) METRO_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) METRO_EXCLUDES(mu_);

  /// Multi-line human-readable dump, sorted by name.
  std::string Report() const METRO_EXCLUDES(mu_);

  /// Resets by dropping all metrics (references become stale; use only
  /// between bench iterations that re-acquire their metrics).
  void Clear() METRO_EXCLUDES(mu_);

 private:
  // Lock order: mu_ before any contained metric's internal lock (Report()
  // reads Gauge/Histogram values while holding mu_).
  mutable Mutex mu_{lockrank::kUtilMetricsRegistry, "util.metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      METRO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ METRO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      METRO_GUARDED_BY(mu_);
};

}  // namespace metro
