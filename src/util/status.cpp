#include "util/status.h"

namespace metro {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out{StatusCodeName(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace metro
