#pragma once

// Runtime cross-check of the view-invalidation contracts that metrolint v3
// proves statically (tools/metrolint/views.cpp, the `invalidation` pass): a
// TensorView used after its owning Workspace rewound past it, or a
// RecordView used across a RecordBatch re-Seal, aborts with context instead
// of silently reading stale (or since-reused) storage.
//
// Gated exactly like the runtime lock-rank checker (util/sync.h): compiled
// in for Debug builds, compiled out entirely under NDEBUG, and overridable
// either way with -DMETRO_VIEW_CHECK=0/1 (the top-level CMake option of the
// same name plumbs this). When compiled in, every arena view carries a
// (owner, end-offset, generation) stamp and every rewind records a
// (offset, generation) event; a view access compares stamps in O(live
// rewind events), which the coalescing in Workspace::Rewind keeps at one
// entry for steady-state Mark/Rewind loops.
//
// Scope: the checker validates *invalidation*, not storage lifetime — the
// owning arena/batch must still outlive the view. That axis is covered by
// METRO_LIFETIME_BOUND (compile time, Clang) and metrolint's view-escape
// pass (whole-program, any compiler).

#ifndef METRO_VIEW_CHECK
#ifdef NDEBUG
#define METRO_VIEW_CHECK 0
#else
#define METRO_VIEW_CHECK 1
#endif
#endif

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace metro::viewcheck {

/// True when the per-view generation stamps are compiled in. Tests branch on
/// this to pick between the death-test and the compiled-out expectations.
inline constexpr bool kCompiledIn = METRO_VIEW_CHECK != 0;

/// Runtime kill-switch, on by default. Tests use it to prove the disabled
/// checker is a no-op (mirroring what an NDEBUG build compiles out).
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

inline void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

/// Abort path shared by every stamped view type, so death tests and humans
/// grep for one prefix regardless of which surface tripped.
[[noreturn]] inline void Die(const char* kind, const char* detail) {
  std::fprintf(stderr, "view-after-invalidate: %s (%s)\n", kind, detail);
  std::abort();
}

}  // namespace metro::viewcheck
