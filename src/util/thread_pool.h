#pragma once

// Fixed-size worker pool used by the dataflow engine and analysis servers.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/queue.h"

namespace metro {

class MetricsRegistry;

/// Fixed set of worker threads draining a shared task queue.
///
/// Tasks submitted after Shutdown() are rejected. The destructor joins all
/// workers after draining outstanding tasks. A task that throws is counted
/// (and mirrored into `metrics` as `threadpool.task_exceptions` when given)
/// and logged; the worker survives it.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads,
                      MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; kAborted after shutdown.
  Status Submit(std::function<void()> task);

  /// Enqueues a callable and exposes its result as a future.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> Async(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    const Status st = Submit([task] { (*task)(); });
    if (!st.ok()) {
      // Surface the rejection through the future rather than losing it.
      task->reset();
      std::promise<R> p;
      p.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool shut down")));
      return p.get_future();
    }
    return fut;
  }

  /// Stops accepting tasks, drains the queue, and joins workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

  /// Tasks that threw (and were contained) since construction.
  std::int64_t task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  MetricsRegistry* metrics_;
  std::atomic<std::int64_t> task_exceptions_{0};
  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

}  // namespace metro
