#pragma once

// Fixed-size worker pool used by the dataflow engine and analysis servers.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/queue.h"

namespace metro {

class MetricsRegistry;

/// Fixed set of worker threads draining a shared task queue.
///
/// Tasks submitted after Shutdown() are rejected. The destructor joins all
/// workers after draining outstanding tasks. A task that throws is counted
/// (and mirrored into `metrics` as `threadpool.task_exceptions` when given)
/// and logged; the worker survives it.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads,
                      MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; kAborted after shutdown.
  Status Submit(std::function<void()> task);

  /// Enqueues a callable and exposes its result as a future.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> Async(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    const Status st = Submit([task] { (*task)(); });
    if (!st.ok()) {
      // Surface the rejection through the future rather than losing it.
      task->reset();
      std::promise<R> p;
      p.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool shut down")));
      return p.get_future();
    }
    return fut;
  }

  /// Stops accepting tasks, drains the queue, and joins workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

  /// Tasks that threw (and were contained) since construction.
  std::int64_t task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  MetricsRegistry* metrics_;
  std::atomic<std::int64_t> task_exceptions_{0};
  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

/// Splits [begin, end) into contiguous chunks and runs `fn(lo, hi)` on the
/// pool, with the calling thread executing the first chunk itself. Runs
/// serially when `pool` is null or the range is smaller than `grain`.
///
/// `fn` must only touch disjoint state per index — no synchronization is
/// added. Chunk boundaries never split an index, so results are identical to
/// the serial order whenever `fn(lo, hi)` is equivalent to calling
/// `fn(i, i+1)` for each i. Do not call from inside a pool worker: the
/// calling thread blocks on the chunk futures, and nesting could deadlock a
/// saturated pool.
template <typename Fn>
void ParallelFor(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                 std::int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  const std::int64_t n = end - begin;
  if (grain < 1) grain = 1;
  std::int64_t chunks = (n + grain - 1) / grain;
  if (pool) {
    chunks = std::min<std::int64_t>(chunks, std::int64_t(pool->num_threads()) + 1);
  }
  if (!pool || chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> pending;
  pending.reserve(std::size_t(chunks) - 1);
  for (std::int64_t lo = begin + step; lo < end; lo += step) {
    const std::int64_t hi = std::min<std::int64_t>(lo + step, end);
    pending.push_back(pool->Async([&fn, lo, hi] { fn(lo, hi); }));
  }
  fn(begin, std::min<std::int64_t>(begin + step, end));
  for (auto& f : pending) f.get();
}

}  // namespace metro
