#pragma once

// Fixed-size worker pool used by the dataflow engine and analysis servers.

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/queue.h"

namespace metro {

/// Fixed set of worker threads draining a shared task queue.
///
/// Tasks submitted after Shutdown() are rejected. The destructor joins all
/// workers after draining outstanding tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; kAborted after shutdown.
  Status Submit(std::function<void()> task);

  /// Enqueues a callable and exposes its result as a future.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> Async(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    const Status st = Submit([task] { (*task)(); });
    if (!st.ok()) {
      // Surface the rejection through the future rather than losing it.
      task->reset();
      std::promise<R> p;
      p.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool shut down")));
      return p.get_future();
    }
    return fut;
  }

  /// Stops accepting tasks, drains the queue, and joins workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

}  // namespace metro
