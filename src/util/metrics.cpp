#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace metro {
namespace {

int BucketIndex(std::int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(value));  // in [1, 63]
}

std::int64_t BucketLow(int index) {
  return index == 0 ? 0 : (std::int64_t{1} << (index - 1));
}

std::int64_t BucketHigh(int index) {
  return index >= Histogram::kNumBuckets - 1 ? INT64_MAX
                                             : (std::int64_t{1} << index) - 1;
}

}  // namespace

void Histogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  MutexLock lock(mu_);
  const int idx = std::min(BucketIndex(value), kNumBuckets - 1);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::int64_t Histogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

std::int64_t Histogram::sum() const {
  MutexLock lock(mu_);
  return sum_;
}

double Histogram::mean() const {
  MutexLock lock(mu_);
  return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

std::int64_t Histogram::min() const {
  MutexLock lock(mu_);
  return min_;
}

std::int64_t Histogram::max() const {
  MutexLock lock(mu_);
  return max_;
}

std::int64_t Histogram::Quantile(double q) const {
  MutexLock lock(mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; never answer them from bucket bounds
  // (q=1.0 used to return the last bucket's *low* edge when that bucket held
  // a single sample — far below the true max).
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * double(count_ - 1);
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (double(seen + buckets_[i] - 1) >= target) {
      // Interpolate within the bucket; [lo, hi] is clamped to the observed
      // [min_, max_] so single-sample and one-bucket histograms never
      // interpolate below min_ or above max_.
      const double frac =
          buckets_[i] <= 1 ? 0.0 : (target - double(seen)) / double(buckets_[i] - 1);
      const std::int64_t lo = std::max(BucketLow(i), min_);
      const std::int64_t hi = std::min(BucketHigh(i), max_);
      return lo + static_cast<std::int64_t>(frac * double(std::max<std::int64_t>(hi - lo, 0)));
    }
    seen += buckets_[i];
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::Report() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h->count() << " mean=" << h->mean()
       << " p50=" << h->p50() << " p95=" << h->p95() << " p99=" << h->p99()
       << " max=" << h->max() << '\n';
  }
  return os.str();
}

void MetricsRegistry::Clear() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace metro
