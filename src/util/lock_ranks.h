#pragma once

// The global lock hierarchy: one rank constant per named mutex in the tree.
//
// Ranks encode the only order in which locks may be nested: a thread may
// acquire a mutex only while every lock it already holds has a *strictly
// smaller* rank. The table is the single source of truth shared by three
// enforcement layers, which cross-check each other:
//
//   1. metrolint v2 `lockorder` (tools/metrolint/) proves the whole-program
//      acquired-while-holding graph respects these ranks statically, and
//      verifies that every `Mutex f{lockrank::kX, "name"}` declaration
//      matches the [locks] table in tools/metrolint/metrolint.toml.
//   2. The debug runtime checker in util/sync.h keeps a thread-local stack
//      of held locks and aborts (printing both stacks) on an inversion the
//      static pass could not see (data-dependent call paths, function
//      pointers).
//   3. Clang thread-safety annotations (METRO_ACQUIRED_BEFORE/AFTER) cover
//      the per-class relations.
//
// Numbering leaves gaps so a new lock slots between neighbors without
// renumbering; the full module -> name -> rank table lives in DESIGN.md
// ("Global lock hierarchy"). Rank 0 is reserved for unranked mutexes
// (tests, scratch locks): the runtime checker skips them.

namespace metro::lockrank {

// core — alerting and the web-facing pipeline snapshot.
inline constexpr int kCoreAlerts = 10;       // AlertManager::mu_
inline constexpr int kCorePipelineWeb = 12;  // CityPipeline::web_mu_

// resilience — health registry and circuit breakers.
inline constexpr int kResilienceHealth = 20;   // HealthRegistry::mu_
inline constexpr int kResilienceBreaker = 22;  // CircuitBreaker::mu_

// mq — broker cluster metadata, partition logs, consumer groups.
inline constexpr int kMqCluster = 30;  // BrokerCluster::mu_
inline constexpr int kMqLog = 32;      // MessageLog::mu_
inline constexpr int kMqGroups = 34;   // GroupCoordinator::mu_

// store — wide-column, document, and LSM engines. Writer-side locks rank
// before the brief version/map pin locks so a writer may publish a new
// version (or region map) while still holding its write lock; the block
// cache shards rank last because both read and write paths touch them.
inline constexpr int kStoreWideColumn = 40;     // WideColumnTable::mu_
inline constexpr int kStoreWideColumnMap = 41;  // WideColumnTable::map_mu_
inline constexpr int kStoreDocs = 42;           // Collection::mu_
inline constexpr int kStoreLsmWrite = 43;       // LsmEngine::write_mu_
inline constexpr int kStoreLsmVersion = 44;     // LsmEngine::version_mu_
inline constexpr int kStoreBlockCache = 46;     // BlockCache::Shard::cache_mu

// dfs / sched — cluster state above per-node state, scheduler above both.
inline constexpr int kDfsCluster = 50;   // Cluster::mu_
inline constexpr int kDfsDataNode = 52;  // DataNode::mu_
inline constexpr int kSchedRm = 56;      // ResourceManager::mu_

// dataflow / nn / graph — leaf-ish compute-side locks.
inline constexpr int kDataflowDataset = 60;   // Dataset::Node::mu
inline constexpr int kNnInferenceStats = 62;  // InferenceSession::stats_mu_
inline constexpr int kGraphOutbox = 66;       // pregel outbox_mu[] stripes

// obs — trace collection.
inline constexpr int kObsTrace = 70;  // SpanCollector::mu_

// util — leaf primitives: anything may hold a higher-level lock while
// touching these, so they rank above (are acquired after) everything else.
inline constexpr int kUtilQueue = 80;            // BoundedQueue::mu_
inline constexpr int kUtilMetricsRegistry = 90;  // MetricsRegistry::mu_
inline constexpr int kUtilMetricsGauge = 92;     // Gauge::mu_
inline constexpr int kUtilMetricsHistogram = 94; // Histogram::mu_
inline constexpr int kUtilLogging = 98;          // logging OutputMutex()

}  // namespace metro::lockrank
