#pragma once

// Minimal leveled logging.
//
// `METRO_LOG(kInfo) << "replicated block " << id;` — thread-safe line-at-a-time
// output; the global threshold silences verbose subsystems in benches.

#include <atomic>
#include <sstream>
#include <string_view>

namespace metro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Returns the process-wide minimum level that is emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum level; returns the previous value.
LogLevel SetLogLevel(LogLevel level);

namespace internal {

/// One log statement; flushes a single line to stderr on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace metro

#define METRO_LOG(level)                                            \
  ::metro::internal::LogLine(::metro::LogLevel::level, __FILE__, __LINE__)
