#pragma once

// Deterministic pseudo-random number generation.
//
// Every stochastic component in metropolis draws randomness through `Rng`
// (xoshiro256++ seeded via splitmix64), so benches and tests are reproducible
// from a single seed.

#include <cmath>
#include <cstdint>
#include <vector>

namespace metro {

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t UniformU64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Exponential with rate lambda (> 0); mean is 1/lambda.
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth's method; fine for
  /// the small means used by the traffic generators).
  int Poisson(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s (rejection-free inverse
  /// CDF over a precomputed table would be faster; n here is small).
  std::size_t Zipf(std::size_t n, double s);

  /// A random index drawn proportionally to `weights` (all >= 0, sum > 0).
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = UniformU64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace metro
