#include "util/logging.h"

#include <cstdio>

#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

Mutex& OutputMutex() {
  static Mutex m{lockrank::kUtilLogging, "util.logging"};  // serializes whole lines onto stderr
  return m;
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

LogLevel SetLogLevel(LogLevel level) {
  return g_level.exchange(level, std::memory_order_relaxed);
}

namespace internal {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff) {
  if (!enabled_) return;
  // Basename keeps lines short.
  const auto slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  stream_ << LevelName(level) << " [" << file << ":" << line << "] ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string s = stream_.str();
  MutexLock lock(OutputMutex());
  std::fwrite(s.data(), 1, s.size(), stderr);
}

}  // namespace internal
}  // namespace metro
