#include "util/rng.h"

#include <cassert>

namespace metro {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? NextU64() : UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

float Rng::UniformFloat(float lo, float hi) {
  return static_cast<float>(UniformDouble(lo, hi));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u = UniformDouble();
  while (u <= 1e-300) u = UniformDouble();
  return -std::log(u) / lambda;
}

int Rng::Poisson(double mean) {
  assert(mean >= 0);
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= UniformDouble();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::Zipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over the harmonic weights; n is small for our generators.
  double total = 0.0;
  for (std::size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = UniformDouble() * total;
  for (std::size_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(double(i), s);
    if (u <= 0) return i - 1;
  }
  return n - 1;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0);
  double u = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace metro
