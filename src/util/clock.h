#pragma once

// Time sources.
//
// Distributed components take a `Clock&` so the same code runs against wall
// time in production-style runs and against `SimClock` in deterministic
// benches (the fog/network simulator advances simulated time explicitly).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>

namespace metro {

/// Nanoseconds since an arbitrary epoch.
using TimeNs = std::int64_t;

constexpr TimeNs kMicrosecond = 1'000;
constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since the clock's epoch.
  virtual TimeNs Now() const = 0;

  /// Blocks (or advances simulation) for `ns` nanoseconds.
  virtual void SleepFor(TimeNs ns) = 0;
};

/// Real monotonic clock backed by std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  TimeNs Now() const override;
  void SleepFor(TimeNs ns) override;

  /// Process-wide instance (the common case outside simulations).
  static WallClock& Instance();
};

/// Manually advanced clock for deterministic simulation.
///
/// `SleepFor` advances the clock immediately; discrete-event drivers use
/// `AdvanceTo`/`Advance` directly. `now_` is atomic because sim-driven
/// components poll `Now()` from worker threads (e.g. pipeline consumer
/// loops) while the driving thread advances time; determinism still
/// requires the *driver* to be single-threaded, the atomic only makes
/// concurrent observation well-defined.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_(start) {}

  TimeNs Now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepFor(TimeNs ns) override { Advance(ns); }

  /// Moves simulated time forward by `ns` (>= 0).
  void Advance(TimeNs ns) { now_.fetch_add(ns, std::memory_order_relaxed); }

  /// Moves simulated time to `t`; never goes backwards.
  void AdvanceTo(TimeNs t) {
    TimeNs cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<TimeNs> now_;
};

/// Scoped stopwatch measuring wall time in nanoseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(WallClock::Instance().Now()) {}

  /// Nanoseconds since construction or the last Reset().
  TimeNs ElapsedNs() const { return WallClock::Instance().Now() - start_; }
  double ElapsedSeconds() const { return double(ElapsedNs()) / kSecond; }
  void Reset() { start_ = WallClock::Instance().Now(); }

 private:
  TimeNs start_;
};

}  // namespace metro
