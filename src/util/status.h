#pragma once

// Status / Result error model for metropolis.
//
// Operational failures (a missing key, an unreachable node, a full queue) are
// reported through `Status` and `Result<T>`; exceptions are reserved for
// programming errors and construction failures, per C++ Core Guidelines E.*.

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace metro {

/// Canonical error space shared by every subsystem.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,       ///< transient: retrying may succeed (node down, queue full)
  kDeadlineExceeded,
  kResourceExhausted,
  kCorruption,        ///< checksum mismatch, torn write, bad record
  kPermissionDenied,
  kUnimplemented,
  kAborted,
  kInternal,
};

/// Human-readable name of a status code ("NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

/// The result of an operation that can fail without a payload.
///
/// `Status` is cheap to copy in the OK case and carries a message otherwise.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: key missing".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Factory helpers, mirroring absl::*Error.
inline Status NotFoundError(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
inline Status AlreadyExistsError(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
inline Status InvalidArgumentError(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
inline Status FailedPreconditionError(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
inline Status OutOfRangeError(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
inline Status UnavailableError(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
inline Status DeadlineExceededError(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
inline Status ResourceExhaustedError(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
inline Status CorruptionError(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
inline Status PermissionDeniedError(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
inline Status UnimplementedError(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
inline Status AbortedError(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
inline Status InternalError(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

/// The result of an operation that yields a `T` on success.
///
/// Accessing `value()` on an error result is a programming error and asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status: `return NotFoundError("k");`.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result(Status) requires an error");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; `Status::Ok()` when holding a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` when holding an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates an error status out of the enclosing function.
#define METRO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::metro::Status _metro_st = (expr);              \
    if (!_metro_st.ok()) return _metro_st;           \
  } while (false)

/// `METRO_ASSIGN_OR_RETURN(auto v, Compute())` — unwraps or propagates.
#define METRO_ASSIGN_OR_RETURN(decl, expr)                       \
  METRO_ASSIGN_OR_RETURN_IMPL_(                                  \
      METRO_STATUS_CONCAT_(_metro_res, __LINE__), decl, expr)
#define METRO_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  decl = std::move(tmp).value()
#define METRO_STATUS_CONCAT_(a, b) METRO_STATUS_CONCAT_IMPL_(a, b)
#define METRO_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace metro
