#pragma once

// Social network analysis (Sec. IV-B).
//
// An undirected co-offender / affiliation graph with the operations the
// paper's investigation workflow needs: k-degree associate expansion
// (first- and second-degree fields), degree statistics, and community
// detection via label propagation.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace metro::graph {

/// Person identifier within a SocialGraph.
using PersonId = std::uint32_t;

/// Edge annotation: how two people are linked.
enum class TieKind {
  kCoOffender,   ///< linked through a shared criminal incident report
  kGangAffiliate, ///< same gang/group roster
  kSocialMedia,  ///< follows/mentions on an online social network
};

/// Undirected multi-relational social graph.
class SocialGraph {
 public:
  /// Adds a person; returns their id.
  PersonId AddPerson(std::string name);

  /// Adds an undirected edge (idempotent per (a, b, kind)).
  Status AddTie(PersonId a, PersonId b, TieKind kind);

  /// True when a and b share at least one tie of any kind.
  bool HasTie(PersonId a, PersonId b) const;

  std::size_t num_people() const { return names_.size(); }
  std::size_t num_ties() const { return num_ties_; }

  const std::string& name(PersonId id) const { return names_[id]; }

  /// Direct neighbors over any tie kind.
  std::vector<PersonId> Neighbors(PersonId id) const;

  /// Degree of a person (distinct neighbors, any tie kind).
  std::size_t Degree(PersonId id) const;

  /// All people within `k` hops of `seed`, excluding the seed itself —
  /// the paper's "first-degree associates" (k=1) and "second-degree
  /// affiliates" (k=2) fields.
  std::vector<PersonId> KDegreeAssociates(PersonId seed, int k) const;

  /// Mean distinct-neighbor count over all people with at least one tie.
  double MeanDegree() const;

  /// Communities via synchronous label propagation; returns a label per
  /// person. Deterministic given the seed.
  std::vector<int> LabelPropagation(Rng& rng, int max_iters = 20) const;

  /// Degree centrality normalized by (n-1).
  std::vector<double> DegreeCentrality() const;

  /// Betweenness-flavored importance via `samples` random BFS traversals
  /// (approximate; exact betweenness is overkill at this scale).
  std::vector<double> ApproxBetweenness(Rng& rng, int samples) const;

 private:
  std::vector<std::string> names_;
  // adjacency: person -> neighbor -> tie kinds
  std::vector<std::unordered_map<PersonId, std::set<TieKind>>> adj_;
  std::size_t num_ties_ = 0;
};

}  // namespace metro::graph
