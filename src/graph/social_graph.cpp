#include "graph/social_graph.h"

#include <algorithm>
#include <deque>

namespace metro::graph {

PersonId SocialGraph::AddPerson(std::string name) {
  names_.push_back(std::move(name));
  adj_.emplace_back();
  return PersonId(names_.size() - 1);
}

Status SocialGraph::AddTie(PersonId a, PersonId b, TieKind kind) {
  if (a >= names_.size() || b >= names_.size()) {
    return InvalidArgumentError("unknown person id");
  }
  if (a == b) return InvalidArgumentError("self-ties are not allowed");
  const bool new_pair = adj_[a].find(b) == adj_[a].end();
  adj_[a][b].insert(kind);
  adj_[b][a].insert(kind);
  if (new_pair) ++num_ties_;
  return Status::Ok();
}

bool SocialGraph::HasTie(PersonId a, PersonId b) const {
  return a < adj_.size() && adj_[a].find(b) != adj_[a].end();
}

std::vector<PersonId> SocialGraph::Neighbors(PersonId id) const {
  std::vector<PersonId> out;
  out.reserve(adj_[id].size());
  for (const auto& [nbr, kinds] : adj_[id]) out.push_back(nbr);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SocialGraph::Degree(PersonId id) const { return adj_[id].size(); }

std::vector<PersonId> SocialGraph::KDegreeAssociates(PersonId seed,
                                                     int k) const {
  std::vector<int> depth(names_.size(), -1);
  depth[seed] = 0;
  std::deque<PersonId> frontier{seed};
  std::vector<PersonId> out;
  while (!frontier.empty()) {
    const PersonId cur = frontier.front();
    frontier.pop_front();
    if (depth[cur] >= k) continue;
    for (const auto& [nbr, kinds] : adj_[cur]) {
      if (depth[nbr] >= 0) continue;
      depth[nbr] = depth[cur] + 1;
      out.push_back(nbr);
      frontier.push_back(nbr);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double SocialGraph::MeanDegree() const {
  std::size_t sum = 0, connected = 0;
  for (const auto& nbrs : adj_) {
    if (nbrs.empty()) continue;
    sum += nbrs.size();
    ++connected;
  }
  return connected == 0 ? 0.0 : double(sum) / double(connected);
}

std::vector<int> SocialGraph::LabelPropagation(Rng& rng, int max_iters) const {
  const std::size_t n = names_.size();
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = int(i);

  std::vector<PersonId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = PersonId(i);

  for (int iter = 0; iter < max_iters; ++iter) {
    rng.Shuffle(order);
    bool changed = false;
    for (const PersonId p : order) {
      if (adj_[p].empty()) continue;
      // Most frequent neighbor label. Ties keep the current label when it is
      // among the winners (stability), else pick among winners at random —
      // min-label tie-breaking would flood one label across bridges.
      std::map<int, int> votes;
      for (const auto& [nbr, kinds] : adj_[p]) ++votes[labels[nbr]];
      int best_votes = 0;
      for (const auto& [label, count] : votes) {
        best_votes = std::max(best_votes, count);
      }
      std::vector<int> winners;
      for (const auto& [label, count] : votes) {
        if (count == best_votes) winners.push_back(label);
      }
      int best_label = labels[p];
      if (std::find(winners.begin(), winners.end(), labels[p]) ==
          winners.end()) {
        best_label = winners[rng.UniformU64(winners.size())];
      }
      if (best_label != labels[p]) {
        labels[p] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return labels;
}

std::vector<double> SocialGraph::DegreeCentrality() const {
  const std::size_t n = names_.size();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = double(adj_[i].size()) / double(n - 1);
  }
  return out;
}

std::vector<double> SocialGraph::ApproxBetweenness(Rng& rng,
                                                   int samples) const {
  const std::size_t n = names_.size();
  std::vector<double> score(n, 0.0);
  if (n == 0) return score;
  std::vector<int> parent(n);
  std::vector<int> depth(n);
  for (int s = 0; s < samples; ++s) {
    const auto src = PersonId(rng.UniformU64(n));
    std::fill(parent.begin(), parent.end(), -1);
    std::fill(depth.begin(), depth.end(), -1);
    depth[src] = 0;
    std::deque<PersonId> q{src};
    std::vector<PersonId> visited{src};
    while (!q.empty()) {
      const PersonId cur = q.front();
      q.pop_front();
      for (const auto& [nbr, kinds] : adj_[cur]) {
        if (depth[nbr] >= 0) continue;
        depth[nbr] = depth[cur] + 1;
        parent[nbr] = int(cur);
        visited.push_back(nbr);
        q.push_back(nbr);
      }
    }
    // Credit each interior node once per shortest path traversed.
    for (const PersonId v : visited) {
      int cur = parent[v];
      while (cur >= 0 && PersonId(cur) != src) {
        score[std::size_t(cur)] += 1.0;
        cur = parent[std::size_t(cur)];
      }
    }
  }
  for (auto& v : score) v /= double(samples);
  return score;
}

}  // namespace metro::graph
