#include "graph/pregel.h"

#include <algorithm>
#include <limits>

namespace metro::graph {

VertexId PregelGraph::AddVertex() {
  out_.emplace_back();
  return VertexId(out_.size() - 1);
}

void PregelGraph::AddVertices(std::size_t count) {
  out_.resize(out_.size() + count);
}

Status PregelGraph::AddEdge(VertexId from, VertexId to, double weight) {
  if (from >= out_.size() || to >= out_.size()) {
    return InvalidArgumentError("edge endpoint out of range");
  }
  out_[from].push_back(Edge{to, weight});
  ++num_edges_;
  return Status::Ok();
}

std::vector<double> PageRank(const PregelGraph& graph, ThreadPool& pool,
                             int iterations, double damping) {
  const std::size_t n = graph.num_vertices();
  std::vector<double> ranks(n, n == 0 ? 0.0 : 1.0 / double(n));
  if (n == 0) return ranks;
  const double base = (1.0 - damping) / double(n);

  const auto program = [&](VertexContext<double, double>& ctx) {
    if (ctx.superstep > 0) {
      double sum = 0;
      for (const double m : *ctx.messages) sum += m;
      *ctx.value = base + damping * sum;
    }
    if (ctx.superstep < iterations) {
      const auto& edges = ctx.graph->OutEdges(ctx.id);
      if (!edges.empty()) {
        const double share = *ctx.value / double(edges.size());
        for (const auto& edge : edges) ctx.send(edge.to, share);
      }
    } else {
      ctx.vote_to_halt();
    }
  };
  RunPregel<double, double>(graph, ranks, program, pool, iterations + 1);
  return ranks;
}

std::vector<VertexId> ConnectedComponents(const PregelGraph& graph,
                                          ThreadPool& pool) {
  const std::size_t n = graph.num_vertices();
  std::vector<VertexId> labels(n);
  for (std::size_t v = 0; v < n; ++v) labels[v] = VertexId(v);

  const auto program = [](VertexContext<VertexId, VertexId>& ctx) {
    VertexId lowest = *ctx.value;
    for (const VertexId m : *ctx.messages) lowest = std::min(lowest, m);
    const bool changed = lowest < *ctx.value;
    const bool first = ctx.superstep == 0;
    *ctx.value = lowest;
    if (first || changed) {
      for (const auto& edge : ctx.graph->OutEdges(ctx.id)) {
        ctx.send(edge.to, lowest);
      }
    }
    ctx.vote_to_halt();
  };
  RunPregel<VertexId, VertexId>(graph, labels, program, pool,
                                int(n) + 2);
  return labels;
}

std::vector<double> ShortestPaths(const PregelGraph& graph, VertexId source,
                                  ThreadPool& pool) {
  const std::size_t n = graph.num_vertices();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  if (source < n) dist[source] = 0.0;

  const auto program = [source](VertexContext<double, double>& ctx) {
    double best = *ctx.value;
    for (const double m : *ctx.messages) best = std::min(best, m);
    const bool improved = best < *ctx.value;
    *ctx.value = best;
    if ((ctx.superstep == 0 && ctx.id == source) || improved) {
      for (const auto& edge : ctx.graph->OutEdges(ctx.id)) {
        ctx.send(edge.to, best + edge.weight);
      }
    }
    ctx.vote_to_halt();
  };
  RunPregel<double, double>(graph, dist, program, pool, int(n) + 2);
  return dist;
}

}  // namespace metro::graph
