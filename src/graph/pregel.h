#pragma once

// Vertex-centric graph processing (the GraphX/GraphMap role the paper
// cites for Sec. II-C2's "graph-based processing" workloads).
//
// A Pregel-style engine: computation proceeds in synchronous supersteps;
// each active vertex receives the messages sent to it in the previous
// superstep, updates its value, and sends messages along its out-edges.
// Vertices vote to halt; the run ends when no vertex is active and no
// messages are in flight. Supersteps execute vertices in parallel on a
// thread pool. PageRank and connected components ship as built-in programs.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace metro::graph {

/// Vertex identifier in a PregelGraph.
using VertexId = std::uint32_t;

/// Directed graph with per-edge weights (use both directions for
/// undirected semantics).
class PregelGraph {
 public:
  /// Adds a vertex; returns its id (dense, starting at 0).
  VertexId AddVertex();

  /// Adds `count` vertices at once.
  void AddVertices(std::size_t count);

  Status AddEdge(VertexId from, VertexId to, double weight = 1.0);

  std::size_t num_vertices() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  struct Edge {
    VertexId to;
    double weight;
  };
  const std::vector<Edge>& OutEdges(VertexId v) const { return out_[v]; }
  std::size_t OutDegree(VertexId v) const { return out_[v].size(); }

 private:
  std::vector<std::vector<Edge>> out_;
  std::size_t num_edges_ = 0;
};

/// One vertex's view during a superstep.
template <typename Value, typename Message>
struct VertexContext {
  VertexId id;
  int superstep;
  Value* value;                          ///< mutable vertex state
  const std::vector<Message>* messages;  ///< inbox from last superstep
  const PregelGraph* graph;

  // Outbox handling is provided by the engine:
  std::function<void(VertexId, Message)> send;
  std::function<void()> vote_to_halt;
};

/// Runs a vertex program to convergence (or `max_supersteps`).
///
/// `program` is invoked once per active vertex per superstep. A halted
/// vertex reactivates when it receives a message. Returns the number of
/// supersteps executed.
template <typename Value, typename Message>
int RunPregel(
    const PregelGraph& graph, std::vector<Value>& values,
    const std::function<void(VertexContext<Value, Message>&)>& program,
    ThreadPool& pool, int max_supersteps = 50) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::vector<Message>> inbox(n), outbox(n);
  // One stripe lock per destination vertex; sends from racing workers
  // append under the target's lock. (A std::vector of mutexes is fine here:
  // never resized while workers run.)
  std::vector<Mutex> outbox_mu(n);
  for (Mutex& mu : outbox_mu) {
    mu.SetRank(lockrank::kGraphOutbox, "graph.outbox");
  }
  std::vector<char> active(n, 1);

  int superstep = 0;
  for (; superstep < max_supersteps; ++superstep) {
    // A vertex runs if it is active or has mail.
    std::vector<VertexId> runnable;
    for (std::size_t v = 0; v < n; ++v) {
      if (active[v] || !inbox[v].empty()) runnable.push_back(VertexId(v));
    }
    if (runnable.empty()) break;

    // Parallel superstep: chunk the runnable set across the pool.
    const std::size_t chunks =
        std::min<std::size_t>(pool.num_threads() * 2, runnable.size());
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      futures.push_back(pool.Async([&, c] {
        for (std::size_t i = c; i < runnable.size(); i += chunks) {
          const VertexId v = runnable[i];
          active[v] = 1;
          bool halted = false;
          VertexContext<Value, Message> ctx;
          ctx.id = v;
          ctx.superstep = superstep;
          ctx.value = &values[v];
          ctx.messages = &inbox[v];
          ctx.graph = &graph;
          ctx.send = [&outbox, &outbox_mu](VertexId to, Message msg) {
            MutexLock lock(outbox_mu[to]);
            outbox[to].push_back(std::move(msg));
          };
          ctx.vote_to_halt = [&halted] { halted = true; };
          program(ctx);
          if (halted) active[v] = 0;
        }
      }));
    }
    for (auto& f : futures) f.get();

    // Deliver mail (barrier).
    for (std::size_t v = 0; v < n; ++v) {
      inbox[v] = std::move(outbox[v]);
      outbox[v].clear();
    }
  }
  return superstep;
}

/// PageRank with damping 0.85; returns per-vertex ranks summing ~1.
std::vector<double> PageRank(const PregelGraph& graph, ThreadPool& pool,
                             int iterations = 20, double damping = 0.85);

/// Connected components over the *undirected* view (edges must be present
/// in both directions); returns the minimum vertex id of each component.
std::vector<VertexId> ConnectedComponents(const PregelGraph& graph,
                                          ThreadPool& pool);

/// Single-source shortest paths over edge weights (+inf when unreachable).
std::vector<double> ShortestPaths(const PregelGraph& graph, VertexId source,
                                  ThreadPool& pool);

}  // namespace metro::graph
