#include "text/text.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace metro::text {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(char(std::tolower(c)));
    } else if (!cur.empty()) {
      if (cur.size() > 1) tokens.push_back(cur);
      cur.clear();
    }
  }
  if (cur.size() > 1) tokens.push_back(cur);
  return tokens;
}

KeywordMatcher::KeywordMatcher(const std::vector<std::string>& keywords) {
  for (const auto& k : keywords) {
    std::string lower;
    lower.reserve(k.size());
    for (const char c : k) {
      lower.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    }
    keywords_.insert(std::move(lower));
  }
}

bool KeywordMatcher::Matches(std::string_view text) const {
  for (const auto& token : Tokenize(text)) {
    if (keywords_.count(token)) return true;
  }
  return false;
}

std::vector<std::string> KeywordMatcher::MatchedKeywords(
    std::string_view text) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& token : Tokenize(text)) {
    if (keywords_.count(token) && seen.insert(token).second) {
      out.push_back(token);
    }
  }
  return out;
}

int Vocabulary::GetOrAdd(const std::string& token) {
  const auto [it, inserted] = token_to_id_.try_emplace(token, int(tokens_.size()));
  if (inserted) tokens_.push_back(token);
  return it->second;
}

int Vocabulary::Get(const std::string& token) const {
  const auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? -1 : it->second;
}

void TfIdf::Fit(const std::vector<std::string>& corpus) {
  num_docs_ = corpus.size();
  std::vector<std::int64_t> doc_freq;
  for (const auto& doc : corpus) {
    std::unordered_set<int> seen;
    for (const auto& token : Tokenize(doc)) {
      const int id = vocab_.GetOrAdd(token);
      if (std::size_t(id) >= doc_freq.size()) doc_freq.resize(std::size_t(id) + 1, 0);
      if (seen.insert(id).second) ++doc_freq[std::size_t(id)];
    }
  }
  idf_.resize(doc_freq.size());
  for (std::size_t i = 0; i < doc_freq.size(); ++i) {
    // Smoothed IDF.
    idf_[i] = std::log((1.0f + float(num_docs_)) / (1.0f + float(doc_freq[i]))) + 1.0f;
  }
}

SparseVector TfIdf::Transform(std::string_view text) const {
  std::unordered_map<int, int> tf;
  for (const auto& token : Tokenize(text)) {
    const int id = vocab_.Get(token);
    if (id >= 0) ++tf[id];
  }
  SparseVector vec;
  vec.reserve(tf.size());
  double norm_sq = 0;
  for (const auto& [id, count] : tf) {
    const float w = float(count) * idf_[std::size_t(id)];
    vec.emplace_back(id, w);
    norm_sq += double(w) * w;
  }
  std::sort(vec.begin(), vec.end());
  if (norm_sq > 0) {
    const float inv = float(1.0 / std::sqrt(norm_sq));
    for (auto& [id, w] : vec) w *= inv;
  }
  return vec;
}

float TfIdf::Cosine(const SparseVector& a, const SparseVector& b) {
  float dot = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first == b[j].first) {
      dot += a[i].second * b[j].second;
      ++i;
      ++j;
    } else if (a[i].first < b[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;  // inputs are L2-normalized
}

Status NaiveBayes::Train(std::string_view text, int label) {
  if (label < 0 || label >= num_classes_) {
    return InvalidArgumentError("label out of range");
  }
  ++class_docs_[std::size_t(label)];
  ++total_docs_;
  for (const auto& token : Tokenize(text)) {
    const int id = vocab_.GetOrAdd(token);
    if (std::size_t(id) >= counts_.size()) {
      counts_.resize(std::size_t(id) + 1,
                     std::vector<std::int64_t>(std::size_t(num_classes_), 0));
    }
    ++counts_[std::size_t(id)][std::size_t(label)];
    ++class_tokens_[std::size_t(label)];
  }
  return Status::Ok();
}

std::vector<double> NaiveBayes::Scores(std::string_view text) const {
  std::vector<double> scores(std::size_t(num_classes_), 0.0);
  const double v = double(vocab_.size()) + 1.0;
  for (int c = 0; c < num_classes_; ++c) {
    // Log prior with Laplace smoothing over classes.
    scores[std::size_t(c)] =
        std::log((double(class_docs_[std::size_t(c)]) + 1.0) /
                 (double(total_docs_) + num_classes_));
  }
  for (const auto& token : Tokenize(text)) {
    const int id = vocab_.Get(token);
    for (int c = 0; c < num_classes_; ++c) {
      const double count =
          id >= 0 ? double(counts_[std::size_t(id)][std::size_t(c)]) : 0.0;
      scores[std::size_t(c)] += std::log(
          (count + 1.0) / (double(class_tokens_[std::size_t(c)]) + v));
    }
  }
  return scores;
}

int NaiveBayes::Predict(std::string_view text) const {
  const auto scores = Scores(text);
  return int(std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace metro::text
