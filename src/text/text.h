#pragma once

// Lightweight NLP (Sec. IV-B).
//
// Tokenization, keyword matching (the Twitter collector filters by keyword
// sets), TF-IDF vectorization, and a multinomial naive-Bayes classifier used
// to flag incident-related tweet text in the SNA application.

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace metro::text {

/// Lowercases and splits on non-alphanumeric characters; drops empties and
/// single characters. '#' and '@' prefixes are stripped (hashtags/mentions
/// match their bare word).
std::vector<std::string> Tokenize(std::string_view text);

/// Case-insensitive keyword set matcher (whole-token matching).
class KeywordMatcher {
 public:
  /// `keywords` are lowercased on ingestion.
  explicit KeywordMatcher(const std::vector<std::string>& keywords);

  /// True if any token of `text` is a keyword.
  bool Matches(std::string_view text) const;

  /// The keywords present in `text` (deduplicated, in first-seen order).
  std::vector<std::string> MatchedKeywords(std::string_view text) const;

 private:
  std::unordered_set<std::string> keywords_;
};

/// Incrementally built vocabulary mapping tokens to dense ids.
class Vocabulary {
 public:
  /// Id for `token`, adding it if absent.
  int GetOrAdd(const std::string& token);

  /// Id or -1 when absent (for frozen inference-time lookups).
  int Get(const std::string& token) const;

  std::size_t size() const { return token_to_id_.size(); }
  const std::string& token(int id) const { return tokens_[std::size_t(id)]; }

 private:
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> tokens_;
};

/// Sparse term vector: (term id, weight) pairs sorted by id.
using SparseVector = std::vector<std::pair<int, float>>;

/// TF-IDF vectorizer; fit on a corpus, then transform documents.
class TfIdf {
 public:
  /// Counts document frequencies across `corpus` and freezes the vocabulary.
  void Fit(const std::vector<std::string>& corpus);

  /// TF-IDF weights for `text` (unknown tokens are ignored); L2-normalized.
  SparseVector Transform(std::string_view text) const;

  /// Cosine similarity of two sparse vectors.
  static float Cosine(const SparseVector& a, const SparseVector& b);

  std::size_t vocab_size() const { return vocab_.size(); }

 private:
  Vocabulary vocab_;
  std::vector<float> idf_;
  std::size_t num_docs_ = 0;
};

/// Multinomial naive Bayes over token counts with Laplace smoothing.
class NaiveBayes {
 public:
  explicit NaiveBayes(int num_classes) : num_classes_(num_classes) {}

  /// Adds one labeled document to the training counts.
  Status Train(std::string_view text, int label);

  /// Most probable class for `text` (ties break to the lower label).
  /// Returns 0 when nothing has been trained.
  int Predict(std::string_view text) const;

  /// Per-class log-posterior scores (unnormalized).
  std::vector<double> Scores(std::string_view text) const;

  int num_classes() const { return num_classes_; }

 private:
  int num_classes_;
  std::vector<std::int64_t> class_docs_ = std::vector<std::int64_t>(std::size_t(num_classes_), 0);
  std::vector<std::int64_t> class_tokens_ = std::vector<std::int64_t>(std::size_t(num_classes_), 0);
  Vocabulary vocab_;
  // token id -> per-class counts
  std::vector<std::vector<std::int64_t>> counts_;
  std::int64_t total_docs_ = 0;
};

}  // namespace metro::text
