#include "geo/geo.h"

#include <algorithm>
#include <cmath>

namespace metro::geo {
namespace {

constexpr double kEarthRadiusM = 6'371'000.0;
constexpr double kDegToRad = M_PI / 180.0;
constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

/// Meters per degree of longitude at a given latitude.
double MetersPerLonDegree(double lat) {
  return kDegToRad * kEarthRadiusM * std::cos(lat * kDegToRad);
}

constexpr double kMetersPerLatDegree = kDegToRad * kEarthRadiusM;

}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double phi1 = a.lat * kDegToRad, phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) *
                       std::sin(dlam / 2);
  return 2 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(s)));
}

std::string Geohash(const LatLon& p, int precision) {
  precision = std::clamp(precision, 1, 12);
  double lat_lo = -90, lat_hi = 90, lon_lo = -180, lon_hi = 180;
  std::string out;
  out.reserve(std::size_t(precision));
  int bit = 0, ch = 0;
  bool even = true;  // longitude first
  while (int(out.size()) < precision) {
    if (even) {
      const double mid = (lon_lo + lon_hi) / 2;
      if (p.lon >= mid) {
        ch |= 1 << (4 - bit);
        lon_lo = mid;
      } else {
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2;
      if (p.lat >= mid) {
        ch |= 1 << (4 - bit);
        lat_lo = mid;
      } else {
        lat_hi = mid;
      }
    }
    even = !even;
    if (++bit == 5) {
      out.push_back(kBase32[ch]);
      bit = 0;
      ch = 0;
    }
  }
  return out;
}

Result<LatLon> GeohashDecode(const std::string& hash) {
  if (hash.empty() || hash.size() > 12) {
    return InvalidArgumentError("geohash length must be 1..12");
  }
  double lat_lo = -90, lat_hi = 90, lon_lo = -180, lon_hi = 180;
  bool even = true;
  for (const char c : hash) {
    const char* pos = std::char_traits<char>::find(kBase32, 32, c);
    if (pos == nullptr) return InvalidArgumentError("bad geohash character");
    const int value = int(pos - kBase32);
    for (int bit = 4; bit >= 0; --bit) {
      const bool set = (value >> bit) & 1;
      if (even) {
        const double mid = (lon_lo + lon_hi) / 2;
        (set ? lon_lo : lon_hi) = mid;
      } else {
        const double mid = (lat_lo + lat_hi) / 2;
        (set ? lat_lo : lat_hi) = mid;
      }
      even = !even;
    }
  }
  return LatLon{(lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2};
}

BoundingBox BoundingBox::Around(const LatLon& center, double radius_m) {
  const double dlat = radius_m / kMetersPerLatDegree;
  const double mpl = std::max(MetersPerLonDegree(center.lat), 1.0);
  const double dlon = radius_m / mpl;
  return {center.lat - dlat, center.lon - dlon, center.lat + dlat,
          center.lon + dlon};
}

GridIndex::GridIndex(double cell_deg) : cell_deg_(cell_deg) {}

std::int64_t GridIndex::CellKey(double lat, double lon) const {
  const auto row = std::int64_t(std::floor((lat + 90.0) / cell_deg_));
  const auto col = std::int64_t(std::floor((lon + 180.0) / cell_deg_));
  return (row << 32) | (col & 0xffffffff);
}

void GridIndex::Insert(std::uint64_t id, const LatLon& p) {
  cells_[CellKey(p.lat, p.lon)].push_back(Entry{id, p});
  ++count_;
}

std::vector<std::uint64_t> GridIndex::QueryRadius(const LatLon& center,
                                                  double radius_m) const {
  const BoundingBox box = BoundingBox::Around(center, radius_m);
  std::vector<std::uint64_t> out;
  for (double lat = box.min_lat; lat < box.max_lat + cell_deg_;
       lat += cell_deg_) {
    for (double lon = box.min_lon; lon < box.max_lon + cell_deg_;
         lon += cell_deg_) {
      const auto it = cells_.find(CellKey(lat, lon));
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (HaversineMeters(center, e.pos) <= radius_m) out.push_back(e.id);
      }
    }
  }
  return out;
}

Status GridIndex::Remove(std::uint64_t id, const LatLon& p) {
  const auto it = cells_.find(CellKey(p.lat, p.lon));
  if (it == cells_.end()) return NotFoundError("no entry in cell");
  auto& entries = it->second;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) {
      entries[i] = entries.back();
      entries.pop_back();
      if (entries.empty()) cells_.erase(it);
      --count_;
      return Status::Ok();
    }
  }
  return NotFoundError("id not in cell");
}

std::vector<std::uint64_t> GridIndex::QueryBox(const BoundingBox& box) const {
  std::vector<std::uint64_t> out;
  for (double lat = box.min_lat; lat < box.max_lat + cell_deg_;
       lat += cell_deg_) {
    for (double lon = box.min_lon; lon < box.max_lon + cell_deg_;
         lon += cell_deg_) {
      const auto it = cells_.find(CellKey(lat, lon));
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (box.Contains(e.pos)) out.push_back(e.id);
      }
    }
  }
  return out;
}

}  // namespace metro::geo
