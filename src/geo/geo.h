#pragma once

// Geospatial primitives (Sec. II-C2 "geospatial processing", Sec. IV-B).
//
// Lat/lon points, haversine distance, geohash encoding, axis-aligned
// geofences, and a uniform grid index for radius queries — what the
// SNA field-narrowing application and the camera map (Fig. 2) need.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace metro::geo {

/// WGS-84 point in degrees.
struct LatLon {
  double lat = 0;
  double lon = 0;
};

/// Great-circle distance in meters (haversine, spherical earth).
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Standard base-32 geohash of `precision` characters (1..12).
std::string Geohash(const LatLon& p, int precision);

/// Decodes a geohash to the center of its cell.
Result<LatLon> GeohashDecode(const std::string& hash);

/// Axis-aligned bounding box (a "field of interest" in the paper's terms).
struct BoundingBox {
  double min_lat = 0, min_lon = 0, max_lat = 0, max_lon = 0;

  bool Contains(const LatLon& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }

  /// Box of half-size `radius_m` around `center` (small-box approximation).
  static BoundingBox Around(const LatLon& center, double radius_m);
};

/// Uniform-grid spatial index over id -> location entries.
///
/// Cells are `cell_deg` degrees square; radius queries scan the covering
/// cells and filter by haversine distance. Good enough for city-scale data
/// (Baton Rouge spans ~0.3 degrees).
class GridIndex {
 public:
  explicit GridIndex(double cell_deg = 0.01);

  /// Inserts or re-inserts an entry (duplicate ids accumulate; use distinct
  /// ids per record).
  void Insert(std::uint64_t id, const LatLon& p);

  /// Ids within `radius_m` meters of `center`, unordered.
  std::vector<std::uint64_t> QueryRadius(const LatLon& center,
                                         double radius_m) const;

  /// Ids inside the box, unordered.
  std::vector<std::uint64_t> QueryBox(const BoundingBox& box) const;

  /// Removes one entry previously inserted at `p` with this id; kNotFound if
  /// no such entry exists in that cell.
  Status Remove(std::uint64_t id, const LatLon& p);

  std::size_t size() const { return count_; }

 private:
  struct Entry {
    std::uint64_t id;
    LatLon pos;
  };

  std::int64_t CellKey(double lat, double lon) const;

  double cell_deg_;
  std::size_t count_ = 0;
  std::unordered_map<std::int64_t, std::vector<Entry>> cells_;
};

}  // namespace metro::geo
