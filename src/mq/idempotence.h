#pragma once

// Broker-side idempotent-producer dedup state (the Kafka PID/sequence role).
//
// An idempotent producer attaches a broker-assigned producer id and a
// monotonically increasing per-partition sequence number to every record.
// Each partition replica keeps a `SequenceTable` rebuilt purely from the
// records it holds, so after a leader failover the new leader suppresses the
// same retries the old one would have — a produce retried across the
// failover cannot duplicate.
//
// Dedup rule: a (producer, sequence) pair is a duplicate iff that exact
// sequence was already appended. Sequences are assigned at Prepare time but
// may land out of order — a prepared request can fail transiently (no
// leader mid-failover, backpressure) while later sequences from the same
// producer succeed, and its retry then arrives *below* the highest appended
// sequence. Such a gap sequence was never appended, so it is fresh, not a
// duplicate; only genuinely-appended sequences are suppressed. The table
// therefore tracks the exact appended set, compressed as a contiguous floor
// plus a sparse window of appended sequences above it (gaps only form from
// failed produces and collapse into the floor when their retry lands).
//
// The sparse window is bounded (`kMaxTracked`): if a gap never fills — a
// producer dropped a prepared request for good — the floor eventually
// advances past it and the abandoned sequence's status is forgotten. A
// retry from below the floor is then `kTooOld` and the produce is rejected
// with an explicit error (Kafka's OutOfOrderSequence role) rather than
// silently dropped as a false duplicate.

#include <cstdint>
#include <set>
#include <unordered_map>

#include "mq/partition_log.h"
#include "util/analysis.h"

namespace metro::mq {

/// Broker-assigned idempotent-producer identity; 0 means "no producer"
/// (plain, non-idempotent produce).
using ProducerId = std::int64_t;

/// Exact appended-sequence tracking per producer for one partition replica.
class SequenceTable {
 public:
  /// Appended sequences kept above the contiguous floor, per producer. Only
  /// unfilled gaps (permanently abandoned sequences) can grow the window;
  /// when it overflows, the floor advances and the oldest statuses are
  /// forgotten (their retries become kTooOld).
  static constexpr std::size_t kMaxTracked = 4096;

  enum class Verdict {
    kFresh,      ///< never appended; append it
    kDuplicate,  ///< already appended; suppress
    kTooOld,     ///< below the tracked window; reject, status unknown
    kOverlap,    ///< batch range partially appended; reject (range checks
                 ///< only — a pinned batch either landed whole or not at
                 ///< all, so overlap means a mis-built retry)
  };
  struct Probe {
    Verdict verdict = Verdict::kFresh;
    /// For kDuplicate: the original base offset, when the range ends at the
    /// producer's highest appended sequence (the pinned-retry case); -1 for
    /// older duplicates past the remembered offset.
    std::int64_t duplicate_offset = -1;
  };

  /// Classifies a (producer, sequence) pair against the replica's history.
  /// Equivalent to `CheckRange(producer, sequence, 1)`.
  Probe Check(ProducerId producer, std::int64_t sequence) const;

  /// Classifies a batch's contiguous sequence range
  /// `[first, first + count)`. kDuplicate only when EVERY sequence in the
  /// range was appended (a whole-batch retry); kTooOld when any part of the
  /// range fell below the tracked window; kOverlap when some but not all
  /// sequences were appended.
  Probe CheckRange(ProducerId producer, std::int64_t first,
                   std::int64_t count) const;

  /// Folds an appended record into the table (leader append and follower
  /// replication both call this, keeping tables identical across the ISR).
  void Observe(const Record& record);

  /// Folds an appended batch — sequences `[first, first + count)` landed at
  /// offsets `[base_offset, base_offset + count)`. The in-order fast path
  /// (the next contiguous range, no gaps outstanding) is allocation-free;
  /// gap bookkeeping and first contact from a producer take the cold path.
  void ObserveRange(ProducerId producer, std::int64_t first,
                    std::int64_t count, std::int64_t base_offset);

  void Clear() { producers_.clear(); }

 private:
  struct ProducerState {
    /// Sequences <= too_old have had their status forgotten (window
    /// overflow); <= contiguous (but > too_old) were all appended; above
    /// that, exactly the members of `appended` were. too_old <= contiguous.
    std::int64_t too_old = -1;
    std::int64_t contiguous = -1;
    std::set<std::int64_t> appended;
    std::int64_t last_sequence = -1;  ///< highest appended
    std::int64_t last_offset = -1;
  };

  /// Cold half of ObserveRange: out-of-order ranges, outstanding gaps, and
  /// a producer's first contact (creates the map entry).
  void ObserveRangeSlow(ProducerId producer, std::int64_t first,
                        std::int64_t count, std::int64_t base_offset);

  std::unordered_map<ProducerId, ProducerState> producers_;
};

}  // namespace metro::mq
