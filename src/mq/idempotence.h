#pragma once

// Broker-side idempotent-producer dedup state (the Kafka PID/sequence role).
//
// An idempotent producer attaches a broker-assigned producer id and a
// monotonically increasing per-partition sequence number to every record.
// Each partition replica keeps a `SequenceTable` rebuilt purely from the
// records it holds, so after a leader failover the new leader suppresses the
// same retries the old one would have — a produce retried across the
// failover cannot duplicate.
//
// Dedup rule (the in-process transport delivers in order, so duplicates can
// only come from retries): a sequence strictly above the highest one seen is
// fresh; the highest one seen again is the retry of the last append and
// returns the cached offset; anything lower is an older duplicate and is
// suppressed with an unknown offset. A sequence is therefore appended at
// most once per partition.

#include <cstdint>
#include <unordered_map>

#include "mq/partition_log.h"

namespace metro::mq {

/// Broker-assigned idempotent-producer identity; 0 means "no producer"
/// (plain, non-idempotent produce).
using ProducerId = std::int64_t;

/// Highest sequence seen per producer for one partition replica.
class SequenceTable {
 public:
  enum class Verdict {
    kFresh,      ///< append it
    kDuplicate,  ///< already appended; suppress
  };
  struct Probe {
    Verdict verdict = Verdict::kFresh;
    std::int64_t duplicate_offset = -1;  ///< original offset when remembered
  };

  /// Classifies a (producer, sequence) pair against the replica's history.
  Probe Check(ProducerId producer, std::int64_t sequence) const;

  /// Folds an appended record into the table (leader append and follower
  /// replication both call this, keeping tables identical across the ISR).
  void Observe(const Record& record);

  void Clear() { producers_.clear(); }

 private:
  struct ProducerState {
    std::int64_t last_sequence = -1;
    std::int64_t last_offset = -1;
  };
  std::unordered_map<ProducerId, ProducerState> producers_;
};

}  // namespace metro::mq
