#pragma once

// Consumer-group bookkeeping shared by the single-broker `MessageLog` and
// the replicated `BrokerCluster`.
//
// A group binds to one topic; members get partitions assigned round-robin
// and the assignment rebalances as members join or leave. Committed offsets
// are validated against the topic's partition count and readable end, which
// the owning broker resolves *before* calling in — the coordinator never
// calls back into the broker, so its lock is a leaf (no cycles with the
// broker's own lock).

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::mq {

/// Thread-safe group/assignment/offset table.
class GroupCoordinator {
 public:
  /// Adds a member (idempotently) and rebalances over `partitions`; returns
  /// the partitions now assigned to this member. kFailedPrecondition when
  /// the group is already bound to a different topic.
  Result<std::vector<int>> Join(const std::string& group,
                                const std::string& topic,
                                const std::string& member, int partitions)
      METRO_EXCLUDES(mu_);

  /// Removes a member and rebalances over `partitions` (the group topic's
  /// partition count, resolved by the owner via `TopicOf`).
  Status Leave(const std::string& group, const std::string& member,
               int partitions) METRO_EXCLUDES(mu_);

  /// Current assignment for a member (empty when not joined).
  std::vector<int> Assignment(const std::string& group,
                              const std::string& member) const
      METRO_EXCLUDES(mu_);

  /// The topic a group is bound to; kNotFound for unknown groups.
  Result<std::string> TopicOf(const std::string& group) const
      METRO_EXCLUDES(mu_);

  /// Records a committed offset. The owner passes the topic's partition
  /// count and that partition's readable end offset: commits to a partition
  /// outside [0, partitions) fail with kInvalidArgument, negative offsets
  /// with kInvalidArgument, and offsets beyond `end_offset` with kOutOfRange
  /// — an unvalidated commit would silently corrupt `Lag`.
  Status Commit(const std::string& group, const std::string& topic,
                int partition, std::int64_t offset, int partitions,
                std::int64_t end_offset) METRO_EXCLUDES(mu_);

  /// Last committed offset, or 0 when the group never committed.
  std::int64_t Committed(const std::string& group, const std::string& topic,
                         int partition) const METRO_EXCLUDES(mu_);

  /// Snapshot of a group's committed offsets (partition -> offset), for the
  /// owner's Lag computation; kNotFound for unknown groups.
  Result<std::map<int, std::int64_t>> CommittedAll(
      const std::string& group) const METRO_EXCLUDES(mu_);

 private:
  struct Group {
    std::string topic;
    std::vector<std::string> members;  // sorted
    std::unordered_map<std::string, std::vector<int>> assignment;
    std::map<int, std::int64_t> committed;  // partition -> offset
  };

  /// Recomputes `group`'s round-robin partition assignment.
  static void Rebalance(Group& group, int partitions);

  mutable Mutex mu_{lockrank::kMqGroups, "mq.groups"};
  std::unordered_map<std::string, Group> groups_ METRO_GUARDED_BY(mu_);
};

}  // namespace metro::mq
