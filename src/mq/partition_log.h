#pragma once

// The per-partition append-only record segment shared by every broker role.
//
// One `PartitionLog` is one replica of one partition: the single-broker
// `MessageLog` holds one per partition, and each replicated `BrokerNode`
// holds one per (topic, partition) it hosts. It models a broker's disk —
// offsets are assigned monotonically, the front is trimmed by retention,
// and the tail can be truncated during follower resync. It carries no
// synchronization: the owning broker guards it with its own lock.
//
// Storage is a ring of *segments*, each one `shared_ptr<const RecordBatch>`
// (see record_batch.h). A replicated batch is therefore the SAME object on
// every ISR member — replication and resync bump a refcount instead of
// copying payload bytes — and fetches hand out `BatchView`s over it rather
// than materialized `Record` copies. The single-record `Append`/`Fetch`
// API remains as a compatibility shim over one-record batches.
//
// Fetch boundary contract (shared by `Fetch` and `FetchBatch`, and relied
// on by both the consumer path and revive-time replica resync in
// broker_cluster.cpp):
//
//   * `offset < begin_offset()`          -> kOutOfRange ("below retention
//     floor"; the consumer's cursor points at trimmed history and must be
//     reset — see `MessageLog::Fetch` for the reset policy).
//   * `offset > end_offset()`            -> kOutOfRange ("beyond end"; the
//     cursor points past anything the log has ever assigned).
//   * otherwise                          -> OK with the records in
//     `[offset, min(limit, end_offset()))`, POSSIBLY EMPTY. In particular
//     `offset == limit` (a consumer parked at the high-water mark) and
//     `offset == end_offset()` with `limit < end_offset()` (a cursor at the
//     unreplicated tail) both return empty-OK: the position is valid, there
//     is simply nothing readable yet.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mq/record_batch.h"
#include "util/analysis.h"
#include "util/clock.h"
#include "util/status.h"

namespace metro::mq {

/// One record in a partition, materialized (the compatibility / convenience
/// representation; the zero-copy path reads `RecordView`s instead).
struct Record {
  std::int64_t offset = 0;
  TimeNs timestamp = 0;
  std::string key;
  std::string value;
  Headers headers;
  /// Idempotent-producer identity: the broker-assigned producer id and the
  /// producer's per-partition sequence number, replicated with the record so
  /// a failed-over leader rebuilds the dedup state from its log.
  /// producer_id 0 / sequence -1 mean "not an idempotent produce".
  std::int64_t producer_id = 0;
  std::int64_t sequence = -1;
};

/// Per-partition high-water marks etc.
struct PartitionInfo {
  int partition = 0;
  std::int64_t begin_offset = 0;  ///< first retained offset
  std::int64_t end_offset = 0;    ///< next offset to be assigned
};

/// A successful produce: where the record(s) landed. `duplicate` marks an
/// idempotent retry the broker suppressed — the records were already
/// appended by an earlier attempt and `offset` is the original base offset
/// when the broker still remembers it (-1 for older duplicates past the
/// remembered window). `count` is the number of records acked (1 for the
/// single-record API).
struct ProduceAck {
  int partition = 0;
  std::int64_t offset = 0;
  std::int64_t count = 1;
  bool duplicate = false;
};

/// Append-only in-memory log for one partition replica. NOT thread-safe —
/// the owning broker serializes access.
class PartitionLog {
 public:
  std::int64_t begin_offset() const { return begin_offset_; }
  std::int64_t end_offset() const { return end_offset_; }
  /// Retained records (end - begin); the backlog the backpressure bound
  /// applies to.
  std::int64_t size() const { return end_offset_ - begin_offset_; }

  // --- batched zero-copy path ---

  /// Appends a sealed batch as leader. The broker must have sealed it with
  /// `base_offset == end_offset()` (it owns offset assignment under its
  /// lock); violating that is a programming error (METRO_CHECK). Returns
  /// the batch's base offset. Steady state allocates nothing — the segment
  /// ring grows only on the cold wrap path.
  std::int64_t AppendBatch(std::shared_ptr<const RecordBatch> batch);

  /// Appends a sealed batch as follower: `batch->base_offset()` must equal
  /// `end_offset()` (the replication stream is contiguous);
  /// kFailedPrecondition otherwise. Shares the leader's batch — no payload
  /// copy.
  Status AppendReplicaBatch(std::shared_ptr<const RecordBatch> batch);

  /// Reads a view of at most `max_records` from `offset`, never past
  /// `limit` (exclusive — the high-water mark for replicated reads) and
  /// never across a segment boundary: one call returns records from one
  /// batch, and the caller advances to `view.next_offset()` and fetches
  /// again. Boundary contract as documented at the top of this header; an
  /// empty view carries `next_offset() == offset`.
  Result<BatchView> FetchBatch(std::int64_t offset, std::size_t max_records,
                               std::int64_t limit) const;

  /// The whole retained batch whose base offset is exactly `offset`, for
  /// zero-copy replica resync; nullptr when `offset` is not a retained
  /// segment boundary or the segment was tail-truncated (resync falls back
  /// to record-level copy).
  std::shared_ptr<const RecordBatch> BatchAt(std::int64_t offset) const;

  /// The record at `offset` viewed in place; nullopt outside the retained
  /// window. The view borrows from the log — it is invalidated by
  /// retention/truncation, so use it before releasing the broker lock.
  std::optional<RecordView> ViewAt(std::int64_t offset) const;

  // --- single-record compatibility path (one-record batches) ---

  /// Appends as leader: assigns the next offset and returns it.
  std::int64_t Append(Record record);

  /// Appends as follower: `record.offset` must equal `end_offset()` (the
  /// replication stream is contiguous); kFailedPrecondition otherwise.
  Status AppendReplica(Record record);

  /// Materializing fetch: same boundary contract as `FetchBatch`, but
  /// copies up to `max_records` out as owning `Record`s (and, unlike
  /// `FetchBatch`, crosses segment boundaries).
  Result<std::vector<Record>> Fetch(std::int64_t offset,
                                    std::size_t max_records,
                                    std::int64_t limit) const;

  // --- retention / truncation ---

  /// Drops whole segments with `timestamp < cutoff` from the front,
  /// advancing `begin_offset`; returns the number of records dropped.
  /// (Every record in a batch shares the batch's append timestamp, so
  /// batch-granular trimming equals record-granular trimming.)
  std::int64_t EnforceRetention(TimeNs cutoff);

  /// Truncates the tail so `end_offset() == end` (follower resync discards
  /// a never-acked divergent suffix). No-op when already shorter; returns
  /// the number of records dropped.
  std::int64_t TruncateTo(std::int64_t end);

  /// Clears all records and restarts the log at `begin` (a follower whose
  /// retained window fell entirely behind the leader's).
  void Reset(std::int64_t begin);

 private:
  /// One retained slice of one immutable batch. `count` can be smaller than
  /// the batch's size after a tail truncation; `first_offset` always equals
  /// `batch->base_offset()` (front trimming is whole-segment).
  struct Segment {
    std::shared_ptr<const RecordBatch> batch;
    std::int64_t first_offset = 0;
    std::uint32_t count = 0;
  };

  Segment& Slot(std::size_t logical) {
    return ring_[(head_ + logical) % ring_.size()];
  }
  const Segment& Slot(std::size_t logical) const {
    return ring_[(head_ + logical) % ring_.size()];
  }
  /// Binary search for the segment containing `offset`; nullptr outside the
  /// retained window. Allocation-free.
  const Segment* SegmentFor(std::int64_t offset) const;
  /// Cold path: re-linearizes the ring into a larger backing vector.
  void GrowRing();
  /// Places a validated batch at the tail (shared by leader/replica paths).
  void PlaceBatch(std::shared_ptr<const RecordBatch> batch);

  std::vector<Segment> ring_;  ///< circular; segments live at head_..+count
  std::size_t head_ = 0;
  std::size_t seg_count_ = 0;
  std::int64_t begin_offset_ = 0;
  std::int64_t end_offset_ = 0;
};

}  // namespace metro::mq
