#pragma once

// The per-partition append-only record segment shared by every broker role.
//
// One `PartitionLog` is one replica of one partition: the single-broker
// `MessageLog` holds one per partition, and each replicated `BrokerNode`
// holds one per (topic, partition) it hosts. It models a broker's disk —
// offsets are assigned monotonically, the front is trimmed by retention,
// and the tail can be truncated during follower resync. It carries no
// synchronization: the owning broker guards it with its own lock.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace metro::mq {

/// Opaque per-record metadata carried alongside the payload (the Kafka
/// record-headers role). The broker stores and returns them untouched; the
/// tracing layer rides on the `x-trace` key (see src/obs/trace.h).
using Headers = std::map<std::string, std::string>;

/// One record in a partition.
struct Record {
  std::int64_t offset = 0;
  TimeNs timestamp = 0;
  std::string key;
  std::string value;
  Headers headers;
  /// Idempotent-producer identity: the broker-assigned producer id and the
  /// producer's per-partition sequence number, replicated with the record so
  /// a failed-over leader rebuilds the dedup state from its log.
  /// producer_id 0 / sequence -1 mean "not an idempotent produce".
  std::int64_t producer_id = 0;
  std::int64_t sequence = -1;
};

/// Per-partition high-water marks etc.
struct PartitionInfo {
  int partition = 0;
  std::int64_t begin_offset = 0;  ///< first retained offset
  std::int64_t end_offset = 0;    ///< next offset to be assigned
};

/// A successful produce: where the record landed. `duplicate` marks an
/// idempotent retry the broker suppressed — the record was already appended
/// by an earlier attempt and `offset` is the original offset when the broker
/// still remembers it (-1 for older duplicates past the remembered window).
struct ProduceAck {
  int partition = 0;
  std::int64_t offset = 0;
  bool duplicate = false;
};

/// Append-only in-memory log for one partition replica. NOT thread-safe —
/// the owning broker serializes access.
class PartitionLog {
 public:
  std::int64_t begin_offset() const { return begin_offset_; }
  std::int64_t end_offset() const {
    return begin_offset_ + std::int64_t(records_.size());
  }
  /// Retained records (end - begin); the backlog the backpressure bound
  /// applies to.
  std::int64_t size() const { return std::int64_t(records_.size()); }

  /// Appends as leader: assigns the next offset and returns it.
  std::int64_t Append(Record record);

  /// Appends as follower: `record.offset` must equal `end_offset()` (the
  /// replication stream is contiguous); kFailedPrecondition otherwise.
  Status AppendReplica(Record record);

  /// The record at `offset`, or nullptr outside the retained window.
  const Record* At(std::int64_t offset) const;

  /// Reads up to `max_records` from `offset`, never past `limit` (exclusive
  /// — the high-water mark for replicated reads). An offset at the readable
  /// end returns an empty vector; below the retention floor or past the end
  /// it fails with kOutOfRange.
  Result<std::vector<Record>> Fetch(std::int64_t offset,
                                    std::size_t max_records,
                                    std::int64_t limit) const;

  /// Drops records with `timestamp < cutoff` from the front, advancing
  /// `begin_offset`; returns the number dropped.
  std::int64_t EnforceRetention(TimeNs cutoff);

  /// Truncates the tail so `end_offset() == end` (follower resync discards
  /// a never-acked divergent suffix). No-op when already shorter; returns
  /// the number of records dropped.
  std::int64_t TruncateTo(std::int64_t end);

  /// Clears all records and restarts the log at `begin` (a follower whose
  /// retained window fell entirely behind the leader's).
  void Reset(std::int64_t begin);

 private:
  std::int64_t begin_offset_ = 0;
  std::vector<Record> records_;
};

}  // namespace metro::mq
