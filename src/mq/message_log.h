#pragma once

// Durable partitioned message log (the Kafka role in Sec. II-C2's
// streaming pipeline, feeding Fig. 4's collection stage).
//
// Topics are split into partitions; records are appended with monotonically
// increasing per-partition offsets and fetched by offset. Consumer groups
// commit offsets and get partitions assigned round-robin, rebalancing as
// members join or leave. This is the single-broker log; the replicated,
// failover-capable broker built from the same `PartitionLog` segments and
// `GroupCoordinator` lives in mq/broker_cluster.h.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mq/consumer_groups.h"
#include "mq/partition_log.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::mq {

/// Broker: thread-safe in-memory log with retention and consumer groups.
class MessageLog {
 public:
  explicit MessageLog(Clock& clock) : clock_(&clock) {}

  /// Creates a topic with `partitions` partitions (>= 1).
  Status CreateTopic(const std::string& topic, int partitions)
      METRO_EXCLUDES(mu_);

  bool HasTopic(const std::string& topic) const METRO_EXCLUDES(mu_);
  Result<int> NumPartitions(const std::string& topic) const
      METRO_EXCLUDES(mu_);

  /// Appends a record; the partition is chosen by key hash, or round-robin
  /// for empty keys — skipping partitions that are currently down (each skip
  /// ticks `mq.roundrobin_skips`) so one dead partition cannot fail a slice
  /// of keyless traffic. Partition choice and append happen under one
  /// critical section: the chosen partition cannot go down (or away) between
  /// the pick and the write.
  Result<ProduceAck> Produce(const std::string& topic, std::string key,
                             std::string value, Headers headers = {})
      METRO_EXCLUDES(mu_);

  /// Appends to an explicit partition.
  Result<ProduceAck> ProduceTo(const std::string& topic, int partition,
                               std::string key, std::string value,
                               Headers headers = {}) METRO_EXCLUDES(mu_);

  /// Appends the records accumulated in `builder` (at least one) to an
  /// explicit partition as one immutable batch — the single-broker analog
  /// of `BrokerCluster`'s batched produce: one lock acquisition and one
  /// arena-backed append for the whole batch.
  Result<ProduceAck> ProduceBatchTo(const std::string& topic, int partition,
                                    RecordBatchBuilder& builder)
      METRO_EXCLUDES(mu_);

  /// Reads up to `max_records` records starting at `offset`.
  /// An offset at the end returns an empty vector (not an error); an offset
  /// before the retention window fails with kOutOfRange.
  ///
  /// Reset policy: a consumer whose next offset has been retired by
  /// retention gets kOutOfRange and is expected to reset to the current
  /// `begin_offset` (from GetPartitionInfo), accounting the gap as skipped
  /// records — the records are gone; re-fetching older offsets cannot bring
  /// them back. See core::CityPipeline's consumer loop for the reference
  /// implementation.
  Result<std::vector<Record>> Fetch(const std::string& topic, int partition,
                                    std::int64_t offset,
                                    std::size_t max_records) const
      METRO_EXCLUDES(mu_);

  /// Zero-copy fetch: a shared view of up to `max_records` from one batch
  /// (the caller advances to `view.next_offset()` and fetches again; an
  /// empty view means "caught up"). Same boundary contract as `Fetch`; the
  /// view stays valid after the call — it keeps its batch alive.
  Result<BatchView> FetchBatch(const std::string& topic, int partition,
                               std::int64_t offset,
                               std::size_t max_records) const
      METRO_EXCLUDES(mu_);

  Result<PartitionInfo> GetPartitionInfo(const std::string& topic,
                                         int partition) const
      METRO_EXCLUDES(mu_);

  /// Drops records older than `retention` from every partition; returns the
  /// number of records dropped.
  std::int64_t EnforceRetention(TimeNs retention) METRO_EXCLUDES(mu_);

  /// Marks a partition available or unavailable (a failed leader broker —
  /// fault injection for resilience experiments). Produce and Fetch against
  /// an unavailable partition fail with kUnavailable; the stored records
  /// survive and serve again once the partition comes back.
  Status SetPartitionUp(const std::string& topic, int partition, bool up)
      METRO_EXCLUDES(mu_);

  /// Whether a partition is currently available.
  Result<bool> PartitionUp(const std::string& topic, int partition) const
      METRO_EXCLUDES(mu_);

  // --- consumer groups ---

  /// Adds a member and rebalances; returns the partitions now assigned to
  /// this member.
  Result<std::vector<int>> JoinGroup(const std::string& group,
                                     const std::string& topic,
                                     const std::string& member)
      METRO_EXCLUDES(mu_);

  /// Removes a member and rebalances.
  Status LeaveGroup(const std::string& group, const std::string& member)
      METRO_EXCLUDES(mu_);

  /// Current assignment for a member (empty when not joined).
  std::vector<int> Assignment(const std::string& group,
                              const std::string& member) const;

  /// Records a committed offset. Validated: the partition must exist in the
  /// group's topic (kInvalidArgument) and the offset must not pass the
  /// partition's end (kOutOfRange) — see GroupCoordinator::Commit.
  Status CommitOffset(const std::string& group, const std::string& topic,
                      int partition, std::int64_t offset) METRO_EXCLUDES(mu_);

  /// Last committed offset, or 0 when the group never committed.
  std::int64_t CommittedOffset(const std::string& group,
                               const std::string& topic, int partition) const;

  /// Total records the group has not yet committed across all partitions
  /// of its topic (end offset minus committed, floored at 0 per partition)
  /// — the standard backlog/health signal.
  Result<std::int64_t> Lag(const std::string& group) const
      METRO_EXCLUDES(mu_);

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Partition {
    PartitionLog log;
    bool up = true;  ///< leader available (fault injection)
  };
  struct Topic {
    std::vector<Partition> partitions;
    std::size_t round_robin = 0;
  };

  /// Append under the already-held broker lock (the single critical section
  /// shared by Produce and ProduceTo).
  Result<ProduceAck> ProduceToLocked(const std::string& topic, int partition,
                                     std::string key, std::string value,
                                     Headers headers) METRO_REQUIRES(mu_);

  Clock* clock_;
  // Lock order: mu_ before metrics_'s internal lock (counters are bumped
  // while the broker lock is held). The group coordinator's lock is a leaf:
  // topic metadata is resolved under mu_ first and the coordinator never
  // calls back into the broker.
  mutable Mutex mu_{lockrank::kMqLog, "mq.log"};
  std::unordered_map<std::string, Topic> topics_ METRO_GUARDED_BY(mu_);
  GroupCoordinator groups_;
  MetricsRegistry metrics_;
};

}  // namespace metro::mq
