#pragma once

// Durable partitioned message log (the Kafka role in Sec. II-C2's
// streaming pipeline, feeding Fig. 4's collection stage).
//
// Topics are split into partitions; records are appended with monotonically
// increasing per-partition offsets and fetched by offset. Consumer groups
// commit offsets and get partitions assigned round-robin, rebalancing as
// members join or leave.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/clock.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/sync.h"

namespace metro::mq {

/// Opaque per-record metadata carried alongside the payload (the Kafka
/// record-headers role). The broker stores and returns them untouched; the
/// tracing layer rides on the `x-trace` key (see src/obs/trace.h).
using Headers = std::map<std::string, std::string>;

/// One record in a partition.
struct Record {
  std::int64_t offset = 0;
  TimeNs timestamp = 0;
  std::string key;
  std::string value;
  Headers headers;
};

/// Per-partition high-water marks etc.
struct PartitionInfo {
  int partition = 0;
  std::int64_t begin_offset = 0;  ///< first retained offset
  std::int64_t end_offset = 0;    ///< next offset to be assigned
};

/// Broker: thread-safe in-memory log with retention and consumer groups.
class MessageLog {
 public:
  explicit MessageLog(Clock& clock) : clock_(&clock) {}

  /// Creates a topic with `partitions` partitions (>= 1).
  Status CreateTopic(const std::string& topic, int partitions);

  bool HasTopic(const std::string& topic) const;
  Result<int> NumPartitions(const std::string& topic) const;

  /// Appends a record; the partition is chosen by key hash (or round-robin
  /// for empty keys). Returns (partition, offset).
  struct ProduceAck {
    int partition = 0;
    std::int64_t offset = 0;
  };
  Result<ProduceAck> Produce(const std::string& topic, std::string key,
                             std::string value, Headers headers = {});

  /// Appends to an explicit partition.
  Result<ProduceAck> ProduceTo(const std::string& topic, int partition,
                               std::string key, std::string value,
                               Headers headers = {});

  /// Reads up to `max_records` records starting at `offset`.
  /// An offset at the end returns an empty vector (not an error); an offset
  /// before the retention window fails with kOutOfRange.
  Result<std::vector<Record>> Fetch(const std::string& topic, int partition,
                                    std::int64_t offset,
                                    std::size_t max_records) const;

  Result<PartitionInfo> GetPartitionInfo(const std::string& topic,
                                         int partition) const;

  /// Drops records older than `retention` from every partition; returns the
  /// number of records dropped.
  std::int64_t EnforceRetention(TimeNs retention);

  /// Marks a partition available or unavailable (a failed leader broker —
  /// fault injection for resilience experiments). Produce and Fetch against
  /// an unavailable partition fail with kUnavailable; the stored records
  /// survive and serve again once the partition comes back.
  Status SetPartitionUp(const std::string& topic, int partition, bool up);

  /// Whether a partition is currently available.
  Result<bool> PartitionUp(const std::string& topic, int partition) const;

  // --- consumer groups ---

  /// Adds a member and rebalances; returns the partitions now assigned to
  /// this member.
  Result<std::vector<int>> JoinGroup(const std::string& group,
                                     const std::string& topic,
                                     const std::string& member);

  /// Removes a member and rebalances.
  Status LeaveGroup(const std::string& group, const std::string& member);

  /// Current assignment for a member (empty when not joined).
  std::vector<int> Assignment(const std::string& group,
                              const std::string& member) const;

  Status CommitOffset(const std::string& group, const std::string& topic,
                      int partition, std::int64_t offset);

  /// Last committed offset, or 0 when the group never committed.
  std::int64_t CommittedOffset(const std::string& group,
                               const std::string& topic, int partition) const;

  /// Total records the group has not yet committed across all partitions
  /// of its topic (end offset minus committed, floored at 0 per partition)
  /// — the standard backlog/health signal.
  Result<std::int64_t> Lag(const std::string& group) const;

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Partition {
    std::int64_t begin_offset = 0;
    std::vector<Record> records;
    bool up = true;  ///< leader available (fault injection)
  };
  struct Topic {
    std::vector<Partition> partitions;
    std::size_t round_robin = 0;
  };
  struct Group {
    std::string topic;
    std::vector<std::string> members;                 // sorted
    std::unordered_map<std::string, std::vector<int>> assignment;
    std::map<int, std::int64_t> committed;            // partition -> offset
  };

  /// Recomputes `group`'s round-robin partition assignment.
  void Rebalance(Group& group) METRO_REQUIRES(mu_);

  Clock* clock_;
  // Lock order: mu_ before metrics_'s internal lock (counters are bumped
  // while the broker lock is held).
  mutable Mutex mu_;
  std::unordered_map<std::string, Topic> topics_ METRO_GUARDED_BY(mu_);
  std::unordered_map<std::string, Group> groups_ METRO_GUARDED_BY(mu_);
  MetricsRegistry metrics_;
};

}  // namespace metro::mq
