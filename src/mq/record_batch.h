#pragma once

// Immutable record batches with arena-backed payloads — the unit of the
// zero-copy produce/replicate/fetch path (ROADMAP item 1, the throughput
// half of the replicated MQ).
//
// A `RecordBatchBuilder` accumulates records by copying every key/value/
// header byte into ONE contiguous char arena (the `tensor::Workspace` bump-
// arena idiom, re-grown in chunks only while building). `Build()` freezes
// the payloads into a `RecordBatch`; the broker then `Seal`s the batch's
// identity (base offset, timestamp, producer id, first sequence) exactly
// once at append time, appends it to the leader log, and replicates it to
// every ISR member **by shared reference** — one `shared_ptr` refcount bump
// per replica instead of the per-record `std::string` copies the pre-batch
// path paid per ISR member.
//
// Ownership/mutability contract (DESIGN.md "Record batches & payload
// ownership" has the full statement):
//
//   * The builder owns the arena while building; `Build()` transfers it to
//     the batch. After `Build()` the payload bytes never move or change.
//   * Only the broker, under the cluster lock and before the batch is
//     visible in any log, may call `Seal` (assigning identity). Once a
//     sealed batch has been appended, nothing mutates it — replicas and
//     consumers hold `shared_ptr<const RecordBatch>` views of the same
//     object, which is what makes sharing across threads race-free.
//   * `RecordView` / `BatchView` are non-owning / shared-owning views;
//     record offsets and sequences are derived (`base + index`), never
//     stored per record.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/analysis.h"
#include "util/clock.h"
#include "util/viewcheck.h"

namespace metro::mq {

/// Opaque per-record metadata carried alongside the payload (the Kafka
/// record-headers role). The broker stores and returns them untouched; the
/// tracing layer rides on the `x-trace` key (see src/obs/trace.h).
using Headers = std::map<std::string, std::string>;

/// One record header viewed in place inside a batch arena.
struct HeaderView {
  std::string_view key;
  std::string_view value;
};

class RecordBatch;

/// Non-owning view of one record inside a `RecordBatch`. Cheap value type
/// (batch pointer + index); valid only while the batch is alive — hold the
/// owning `BatchView` (or the batch's `shared_ptr`) across lock boundaries.
class RecordView {
 public:
  RecordView() = default;
  RecordView(const RecordBatch* batch METRO_LIFETIME_BOUND, std::size_t index);

  std::int64_t offset() const;
  TimeNs timestamp() const;
  std::string_view key() const;
  std::string_view value() const;
  /// Idempotent-producer identity (0 / -1 for non-idempotent batches).
  std::int64_t producer_id() const;
  std::int64_t sequence() const;

  std::size_t header_count() const;
  HeaderView header(std::size_t i) const;
  /// Linear scan for `key` (header counts are tiny); nullopt when absent.
  std::optional<std::string_view> FindHeader(std::string_view key) const;
  /// Materializes the headers as an owning map (compat `Record` building).
  Headers CopyHeaders() const;

 private:
  /// Aborts when the batch was (re-)Sealed after this view was minted: the
  /// derived fields (offset, sequence, timestamp) silently changed under the
  /// view. No-op unless METRO_VIEW_CHECK is compiled in and enabled. Every
  /// accessor in record_batch.cpp calls this first.
  void CheckLive() const;

  const RecordBatch* batch_ = nullptr;
  std::size_t index_ = 0;
#if METRO_VIEW_CHECK
  std::uint64_t vc_epoch_ = 0;  ///< batch seal epoch at mint time
#endif
};

/// An immutable batch of records over one contiguous payload arena.
class RecordBatch {
 public:
  /// A span of the payload arena.
  struct Slice {
    std::uint32_t pos = 0;
    std::uint32_t len = 0;
  };
  struct HeaderSlice {
    Slice key;
    Slice value;
  };
  /// Per-record payload coordinates; offset/sequence are derived from the
  /// batch identity, not stored.
  struct Entry {
    Slice key;
    Slice value;
    std::uint32_t header_begin = 0;
    std::uint32_t header_count = 0;
  };

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Offset of record 0; record i sits at `base_offset() + i`.
  std::int64_t base_offset() const { return base_offset_; }
  /// Broker-assigned append time, shared by every record in the batch.
  TimeNs timestamp() const { return timestamp_; }
  std::int64_t producer_id() const { return producer_id_; }
  /// Sequence of record 0 (record i carries `first_sequence() + i`); -1 for
  /// non-idempotent batches.
  std::int64_t first_sequence() const { return first_sequence_; }
  /// Offset one past the last record once sealed.
  std::int64_t end_offset() const {
    return base_offset_ + std::int64_t(entries_.size());
  }

  /// True once the broker has assigned identity (see Seal).
  bool sealed() const { return sealed_; }

  /// True once an append of this batch was acked (it is shared into live
  /// logs and must never be re-sealed). Set by the broker at ack time.
  bool committed() const { return committed_; }
  void MarkCommitted() { committed_ = true; }

  /// Total arena bytes (keys + values + headers) — what replication shares
  /// instead of copying.
  std::size_t payload_bytes() const { return arena_.size(); }
  /// Key + value bytes only (the `mq.bytes_produced` accounting unit).
  std::size_t key_value_bytes() const { return kv_bytes_; }

  /// The record at `i`. METRO_NOALLOC: pure pointer math over the arena.
  METRO_NOALLOC RecordView view(std::size_t i) const METRO_LIFETIME_BOUND {
    return RecordView(this, i);
  }

  /// Assigns the batch identity at append time. Called by the broker under
  /// the cluster lock, before the batch becomes visible in any log; a
  /// rolled-back append may re-seal on retry, an appended batch is never
  /// sealed again (the idempotent path dedups the retry first).
  void Seal(std::int64_t base_offset, TimeNs timestamp,
            std::int64_t producer_id, std::int64_t first_sequence) {
    base_offset_ = base_offset;
    timestamp_ = timestamp;
    producer_id_ = producer_id;
    first_sequence_ = first_sequence;
    sealed_ = true;
#if METRO_VIEW_CHECK
    // Identity changed: RecordViews minted before this Seal now derive
    // different offsets/sequences and must not be read again.
    ++vc_epoch_;
#endif
  }

 private:
  friend class RecordView;
  friend class RecordBatchBuilder;

  std::string_view Text(const Slice& s) const {
    return std::string_view(arena_.data() + s.pos, s.len);
  }

  std::vector<char> arena_;         ///< every payload byte, contiguous
  std::vector<Entry> entries_;      ///< one per record
  std::vector<HeaderSlice> headers_;///< flat header table, per-record runs
  std::int64_t base_offset_ = 0;
  TimeNs timestamp_ = 0;
  std::int64_t producer_id_ = 0;
  std::int64_t first_sequence_ = -1;
  std::size_t kv_bytes_ = 0;
  bool sealed_ = false;
  bool committed_ = false;
#if METRO_VIEW_CHECK
  std::uint64_t vc_epoch_ = 0;  ///< bumped by every Seal
#endif
};

inline RecordView::RecordView(const RecordBatch* batch, std::size_t index)
    : batch_(batch), index_(index) {
#if METRO_VIEW_CHECK
  if (batch_ != nullptr) vc_epoch_ = batch_->vc_epoch_;
#endif
}

inline void RecordView::CheckLive() const {
#if METRO_VIEW_CHECK
  if (batch_ == nullptr || !viewcheck::Enabled()) return;
  if (batch_->vc_epoch_ != vc_epoch_) {
    viewcheck::Die("RecordView used across a RecordBatch Seal",
                   "batch identity re-assigned after the view was minted");
  }
#endif
}

/// Shared-owning view of a contiguous record range inside one batch — what
/// `Fetch` hands across the broker lock. Holding the view keeps the batch
/// (and therefore every `RecordView` into it) alive; the records themselves
/// are never copied.
class BatchView {
 public:
  BatchView() = default;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  METRO_NOALLOC RecordView operator[](std::size_t i) const {
    return batch_->view(first_ + i);
  }

  /// The fetch cursor after this view: `last record's offset + 1`, or the
  /// requested offset unchanged for an empty view. Consumers advance to
  /// here and fetch again.
  std::int64_t next_offset() const { return next_offset_; }

  /// The whole underlying batch (replica resync shares it directly).
  const std::shared_ptr<const RecordBatch>& batch() const { return batch_; }
  /// Index of this view's first record within `batch()`.
  std::uint32_t first_index() const { return first_; }

 private:
  friend class PartitionLog;
  BatchView(std::shared_ptr<const RecordBatch> batch, std::uint32_t first,
            std::uint32_t count, std::int64_t next_offset)
      : batch_(std::move(batch)),
        first_(first),
        count_(count),
        next_offset_(next_offset) {}

  std::shared_ptr<const RecordBatch> batch_;
  std::uint32_t first_ = 0;
  std::uint32_t count_ = 0;
  std::int64_t next_offset_ = 0;
};

/// Accumulates records into one arena, then freezes them into a batch.
/// Single-owner, not thread-safe; reusable after Build().
class RecordBatchBuilder {
 public:
  RecordBatchBuilder() = default;
  /// Pre-sizes the arena so steady-state building never regrows it.
  explicit RecordBatchBuilder(std::size_t reserve_bytes,
                              std::size_t reserve_records = 0);

  /// Copies the payload bytes into the arena (the one copy the produce path
  /// pays; everything downstream shares them).
  void Add(std::string_view key, std::string_view value);
  void Add(std::string_view key, std::string_view value,
           const Headers& headers);

  std::size_t size() const { return batch_ ? batch_->entries_.size() : 0; }
  bool empty() const { return size() == 0; }
  std::size_t payload_bytes() const {
    return batch_ ? batch_->arena_.size() : 0;
  }

  /// Freezes the accumulated records into an immutable (identity-unsealed)
  /// batch and resets the builder. Requires at least one record.
  std::shared_ptr<RecordBatch> Build();

 private:
  RecordBatch::Slice Intern(std::string_view text);
  void Ensure();

  std::shared_ptr<RecordBatch> batch_;  ///< under construction
  std::size_t reserve_bytes_ = 0;
  std::size_t reserve_records_ = 0;
};

}  // namespace metro::mq
