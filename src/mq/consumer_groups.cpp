#include "mq/consumer_groups.h"

#include <algorithm>

namespace metro::mq {

void GroupCoordinator::Rebalance(Group& group, int partitions) {
  group.assignment.clear();
  if (group.members.empty()) return;
  for (int p = 0; p < partitions; ++p) {
    const std::string& member =
        group.members[std::size_t(p) % group.members.size()];
    group.assignment[member].push_back(p);
  }
}

Result<std::vector<int>> GroupCoordinator::Join(const std::string& group,
                                                const std::string& topic,
                                                const std::string& member,
                                                int partitions) {
  MutexLock lock(mu_);
  Group& g = groups_[group];
  if (g.topic.empty()) {
    g.topic = topic;
  } else if (g.topic != topic) {
    return FailedPreconditionError("group already bound to topic " + g.topic);
  }
  if (std::find(g.members.begin(), g.members.end(), member) ==
      g.members.end()) {
    g.members.push_back(member);
    std::sort(g.members.begin(), g.members.end());
  }
  Rebalance(g, partitions);
  return g.assignment[member];
}

Status GroupCoordinator::Leave(const std::string& group,
                               const std::string& member, int partitions) {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  auto& members = it->second.members;
  const auto mit = std::find(members.begin(), members.end(), member);
  if (mit == members.end()) return NotFoundError("member " + member);
  members.erase(mit);
  Rebalance(it->second, partitions);
  return Status::Ok();
}

std::vector<int> GroupCoordinator::Assignment(const std::string& group,
                                              const std::string& member) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  const auto ait = it->second.assignment.find(member);
  return ait == it->second.assignment.end() ? std::vector<int>{} : ait->second;
}

Result<std::string> GroupCoordinator::TopicOf(const std::string& group) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  return it->second.topic;
}

Status GroupCoordinator::Commit(const std::string& group,
                                const std::string& topic, int partition,
                                std::int64_t offset, int partitions,
                                std::int64_t end_offset) {
  if (partition < 0 || partition >= partitions) {
    return InvalidArgumentError("partition " + std::to_string(partition) +
                                " out of range");
  }
  if (offset < 0) {
    return InvalidArgumentError("negative commit offset");
  }
  if (offset > end_offset) {
    return OutOfRangeError("commit offset " + std::to_string(offset) +
                           " beyond partition end " +
                           std::to_string(end_offset));
  }
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  if (it->second.topic != topic) {
    return FailedPreconditionError("group bound to topic " + it->second.topic);
  }
  it->second.committed[partition] = offset;
  return Status::Ok();
}

std::int64_t GroupCoordinator::Committed(const std::string& group,
                                         const std::string& topic,
                                         int partition) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end() || it->second.topic != topic) return 0;
  const auto oit = it->second.committed.find(partition);
  return oit == it->second.committed.end() ? 0 : oit->second;
}

Result<std::map<int, std::int64_t>> GroupCoordinator::CommittedAll(
    const std::string& group) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  return it->second.committed;
}

}  // namespace metro::mq
