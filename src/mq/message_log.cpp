#include "mq/message_log.h"

#include <algorithm>

#include "util/bytes.h"

namespace metro::mq {

Status MessageLog::CreateTopic(const std::string& topic, int partitions) {
  if (partitions < 1) return InvalidArgumentError("partitions must be >= 1");
  MutexLock lock(mu_);
  const auto [it, inserted] = topics_.try_emplace(topic);
  if (!inserted) return AlreadyExistsError("topic " + topic);
  it->second.partitions.resize(std::size_t(partitions));
  return Status::Ok();
}

bool MessageLog::HasTopic(const std::string& topic) const {
  MutexLock lock(mu_);
  return topics_.count(topic) > 0;
}

Result<int> MessageLog::NumPartitions(const std::string& topic) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  return int(it->second.partitions.size());
}

Result<ProduceAck> MessageLog::Produce(const std::string& topic,
                                       std::string key, std::string value,
                                       Headers headers) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  const std::size_t n = t.partitions.size();
  int partition;
  if (!key.empty()) {
    partition = int(Fnv1a64(key) % n);
  } else {
    // Round-robin over *available* partitions: a down partition is skipped
    // (and counted) instead of failing its share of keyless traffic. When
    // everything is down, fall through and let the append path report it.
    partition = int(t.round_robin++ % n);
    for (std::size_t i = 0;
         i < n && !t.partitions[std::size_t(partition)].up; ++i) {
      metrics_.GetCounter("mq.roundrobin_skips").Increment();
      partition = int(t.round_robin++ % n);
    }
  }
  // Same critical section as the append: the chosen partition cannot go
  // down or be retired between the pick and the write.
  return ProduceToLocked(topic, partition, std::move(key), std::move(value),
                         std::move(headers));
}

Result<ProduceAck> MessageLog::ProduceTo(const std::string& topic,
                                         int partition, std::string key,
                                         std::string value, Headers headers) {
  MutexLock lock(mu_);
  return ProduceToLocked(topic, partition, std::move(key), std::move(value),
                         std::move(headers));
}

Result<ProduceAck> MessageLog::ProduceToLocked(const std::string& topic,
                                               int partition, std::string key,
                                               std::string value,
                                               Headers headers) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  Partition& p = t.partitions[std::size_t(partition)];
  if (!p.up) {
    metrics_.GetCounter("mq.produce_unavailable").Increment();
    return UnavailableError("partition " + topic + "/" +
                            std::to_string(partition) + " unavailable");
  }
  Record rec;
  rec.timestamp = clock_->Now();
  rec.key = std::move(key);
  rec.value = std::move(value);
  rec.headers = std::move(headers);
  const std::size_t bytes = rec.key.size() + rec.value.size();
  const std::int64_t offset = p.log.Append(std::move(rec));
  metrics_.GetCounter("mq.records_produced").Increment();
  metrics_.GetCounter("mq.bytes_produced").Increment(std::int64_t(bytes));
  ProduceAck ack;
  ack.partition = partition;
  ack.offset = offset;
  return ack;
}

Result<ProduceAck> MessageLog::ProduceBatchTo(const std::string& topic,
                                              int partition,
                                              RecordBatchBuilder& builder) {
  if (builder.empty()) {
    return InvalidArgumentError("batched produce requires a non-empty batch");
  }
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  Partition& p = t.partitions[std::size_t(partition)];
  if (!p.up) {
    metrics_.GetCounter("mq.produce_unavailable").Increment();
    return UnavailableError("partition " + topic + "/" +
                            std::to_string(partition) + " unavailable");
  }
  std::shared_ptr<RecordBatch> batch = builder.Build();
  const std::int64_t count = std::int64_t(batch->size());
  const std::size_t bytes = batch->key_value_bytes();
  batch->Seal(p.log.end_offset(), clock_->Now(), /*producer_id=*/0,
              /*first_sequence=*/-1);
  const std::int64_t base = p.log.AppendBatch(std::move(batch));
  metrics_.GetCounter("mq.records_produced").Increment(count);
  metrics_.GetCounter("mq.batches_produced").Increment();
  metrics_.GetCounter("mq.bytes_produced").Increment(std::int64_t(bytes));
  ProduceAck ack;
  ack.partition = partition;
  ack.offset = base;
  ack.count = count;
  return ack;
}

Result<BatchView> MessageLog::FetchBatch(const std::string& topic,
                                         int partition, std::int64_t offset,
                                         std::size_t max_records) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  const Partition& p = t.partitions[std::size_t(partition)];
  if (!p.up) {
    return UnavailableError("partition " + topic + "/" +
                            std::to_string(partition) + " unavailable");
  }
  return p.log.FetchBatch(offset, max_records, p.log.end_offset());
}

Result<std::vector<Record>> MessageLog::Fetch(const std::string& topic,
                                              int partition,
                                              std::int64_t offset,
                                              std::size_t max_records) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  const Partition& p = t.partitions[std::size_t(partition)];
  if (!p.up) {
    return UnavailableError("partition " + topic + "/" +
                            std::to_string(partition) + " unavailable");
  }
  return p.log.Fetch(offset, max_records, p.log.end_offset());
}

Result<PartitionInfo> MessageLog::GetPartitionInfo(const std::string& topic,
                                                   int partition) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  const Partition& p = t.partitions[std::size_t(partition)];
  PartitionInfo info;
  info.partition = partition;
  info.begin_offset = p.log.begin_offset();
  info.end_offset = p.log.end_offset();
  return info;
}

std::int64_t MessageLog::EnforceRetention(TimeNs retention) {
  MutexLock lock(mu_);
  const TimeNs cutoff = clock_->Now() - retention;
  std::int64_t dropped = 0;
  for (auto& [name, topic] : topics_) {
    for (Partition& p : topic.partitions) {
      dropped += p.log.EnforceRetention(cutoff);
    }
  }
  return dropped;
}

Status MessageLog::SetPartitionUp(const std::string& topic, int partition,
                                  bool up) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  t.partitions[std::size_t(partition)].up = up;
  return Status::Ok();
}

Result<bool> MessageLog::PartitionUp(const std::string& topic,
                                     int partition) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  return t.partitions[std::size_t(partition)].up;
}

Result<std::vector<int>> MessageLog::JoinGroup(const std::string& group,
                                               const std::string& topic,
                                               const std::string& member) {
  int partitions = 0;
  {
    MutexLock lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return NotFoundError("topic " + topic);
    partitions = int(it->second.partitions.size());
  }
  return groups_.Join(group, topic, member, partitions);
}

Status MessageLog::LeaveGroup(const std::string& group,
                              const std::string& member) {
  auto topic = groups_.TopicOf(group);
  if (!topic.ok()) return topic.status();
  int partitions = 0;
  {
    MutexLock lock(mu_);
    const auto it = topics_.find(*topic);
    if (it != topics_.end()) partitions = int(it->second.partitions.size());
  }
  return groups_.Leave(group, member, partitions);
}

std::vector<int> MessageLog::Assignment(const std::string& group,
                                        const std::string& member) const {
  return groups_.Assignment(group, member);
}

Status MessageLog::CommitOffset(const std::string& group,
                                const std::string& topic, int partition,
                                std::int64_t offset) {
  int partitions = 0;
  std::int64_t end = 0;
  {
    MutexLock lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return NotFoundError("topic " + topic);
    partitions = int(it->second.partitions.size());
    if (partition >= 0 && std::size_t(partition) < it->second.partitions.size()) {
      end = it->second.partitions[std::size_t(partition)].log.end_offset();
    }
  }
  return groups_.Commit(group, topic, partition, offset, partitions, end);
}

std::int64_t MessageLog::CommittedOffset(const std::string& group,
                                         const std::string& topic,
                                         int partition) const {
  return groups_.Committed(group, topic, partition);
}

Result<std::int64_t> MessageLog::Lag(const std::string& group) const {
  auto topic = groups_.TopicOf(group);
  if (!topic.ok()) return topic.status();
  auto committed = groups_.CommittedAll(group);
  if (!committed.ok()) return committed.status();
  MutexLock lock(mu_);
  const auto it = topics_.find(*topic);
  if (it == topics_.end()) return NotFoundError("topic " + *topic);
  std::int64_t lag = 0;
  for (std::size_t p = 0; p < it->second.partitions.size(); ++p) {
    const auto cit = committed->find(int(p));
    const std::int64_t done = cit == committed->end() ? 0 : cit->second;
    lag += std::max<std::int64_t>(
        it->second.partitions[p].log.end_offset() - done, 0);
  }
  return lag;
}

}  // namespace metro::mq
