#include "mq/message_log.h"

#include <algorithm>

#include "util/bytes.h"

namespace metro::mq {

Status MessageLog::CreateTopic(const std::string& topic, int partitions) {
  if (partitions < 1) return InvalidArgumentError("partitions must be >= 1");
  MutexLock lock(mu_);
  const auto [it, inserted] = topics_.try_emplace(topic);
  if (!inserted) return AlreadyExistsError("topic " + topic);
  it->second.partitions.resize(std::size_t(partitions));
  return Status::Ok();
}

bool MessageLog::HasTopic(const std::string& topic) const {
  MutexLock lock(mu_);
  return topics_.count(topic) > 0;
}

Result<int> MessageLog::NumPartitions(const std::string& topic) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  return int(it->second.partitions.size());
}

Result<MessageLog::ProduceAck> MessageLog::Produce(const std::string& topic,
                                                   std::string key,
                                                   std::string value,
                                                   Headers headers) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  const std::size_t n = t.partitions.size();
  const int partition =
      key.empty() ? int(t.round_robin++ % n) : int(Fnv1a64(key) % n);
  lock.Unlock();
  return ProduceTo(topic, partition, std::move(key), std::move(value),
                   std::move(headers));
}

Result<MessageLog::ProduceAck> MessageLog::ProduceTo(const std::string& topic,
                                                     int partition,
                                                     std::string key,
                                                     std::string value,
                                                     Headers headers) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  Partition& p = t.partitions[std::size_t(partition)];
  if (!p.up) {
    metrics_.GetCounter("mq.produce_unavailable").Increment();
    return UnavailableError("partition " + topic + "/" +
                            std::to_string(partition) + " unavailable");
  }
  Record rec;
  rec.offset = p.begin_offset + std::int64_t(p.records.size());
  rec.timestamp = clock_->Now();
  rec.key = std::move(key);
  rec.value = std::move(value);
  rec.headers = std::move(headers);
  const std::size_t bytes = rec.key.size() + rec.value.size();
  p.records.push_back(std::move(rec));
  metrics_.GetCounter("mq.records_produced").Increment();
  metrics_.GetCounter("mq.bytes_produced").Increment(std::int64_t(bytes));
  return ProduceAck{partition, p.begin_offset + std::int64_t(p.records.size()) - 1};
}

Result<std::vector<Record>> MessageLog::Fetch(const std::string& topic,
                                              int partition,
                                              std::int64_t offset,
                                              std::size_t max_records) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  const Partition& p = t.partitions[std::size_t(partition)];
  if (!p.up) {
    return UnavailableError("partition " + topic + "/" +
                            std::to_string(partition) + " unavailable");
  }
  const std::int64_t end = p.begin_offset + std::int64_t(p.records.size());
  if (offset < p.begin_offset) {
    return OutOfRangeError("offset " + std::to_string(offset) +
                           " below retention floor " +
                           std::to_string(p.begin_offset));
  }
  if (offset > end) {
    return OutOfRangeError("offset beyond end of log");
  }
  std::vector<Record> out;
  const std::size_t start = std::size_t(offset - p.begin_offset);
  const std::size_t count = std::min(max_records, p.records.size() - start);
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(p.records[start + i]);
  return out;
}

Result<PartitionInfo> MessageLog::GetPartitionInfo(const std::string& topic,
                                                   int partition) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  const Partition& p = t.partitions[std::size_t(partition)];
  return PartitionInfo{partition, p.begin_offset,
                       p.begin_offset + std::int64_t(p.records.size())};
}

std::int64_t MessageLog::EnforceRetention(TimeNs retention) {
  MutexLock lock(mu_);
  const TimeNs cutoff = clock_->Now() - retention;
  std::int64_t dropped = 0;
  for (auto& [name, topic] : topics_) {
    for (Partition& p : topic.partitions) {
      std::size_t keep = 0;
      while (keep < p.records.size() && p.records[keep].timestamp < cutoff) {
        ++keep;
      }
      if (keep == 0) continue;
      p.records.erase(p.records.begin(), p.records.begin() + std::ptrdiff_t(keep));
      p.begin_offset += std::int64_t(keep);
      dropped += std::int64_t(keep);
    }
  }
  return dropped;
}

Status MessageLog::SetPartitionUp(const std::string& topic, int partition,
                                  bool up) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  t.partitions[std::size_t(partition)].up = up;
  return Status::Ok();
}

Result<bool> MessageLog::PartitionUp(const std::string& topic,
                                     int partition) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  const Topic& t = it->second;
  if (partition < 0 || std::size_t(partition) >= t.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  return t.partitions[std::size_t(partition)].up;
}

void MessageLog::Rebalance(Group& group) {
  group.assignment.clear();
  const auto tit = topics_.find(group.topic);
  if (tit == topics_.end() || group.members.empty()) return;
  const int parts = int(tit->second.partitions.size());
  for (int p = 0; p < parts; ++p) {
    const std::string& member =
        group.members[std::size_t(p) % group.members.size()];
    group.assignment[member].push_back(p);
  }
}

Result<std::vector<int>> MessageLog::JoinGroup(const std::string& group,
                                               const std::string& topic,
                                               const std::string& member) {
  MutexLock lock(mu_);
  if (!topics_.count(topic)) return NotFoundError("topic " + topic);
  Group& g = groups_[group];
  if (g.topic.empty()) {
    g.topic = topic;
  } else if (g.topic != topic) {
    return FailedPreconditionError("group already bound to topic " + g.topic);
  }
  if (std::find(g.members.begin(), g.members.end(), member) == g.members.end()) {
    g.members.push_back(member);
    std::sort(g.members.begin(), g.members.end());
  }
  Rebalance(g);
  return g.assignment[member];
}

Status MessageLog::LeaveGroup(const std::string& group,
                              const std::string& member) {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  auto& members = it->second.members;
  const auto mit = std::find(members.begin(), members.end(), member);
  if (mit == members.end()) return NotFoundError("member " + member);
  members.erase(mit);
  Rebalance(it->second);
  return Status::Ok();
}

std::vector<int> MessageLog::Assignment(const std::string& group,
                                        const std::string& member) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  const auto ait = it->second.assignment.find(member);
  return ait == it->second.assignment.end() ? std::vector<int>{} : ait->second;
}

Status MessageLog::CommitOffset(const std::string& group,
                                const std::string& topic, int partition,
                                std::int64_t offset) {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  if (it->second.topic != topic) {
    return FailedPreconditionError("group bound to topic " + it->second.topic);
  }
  it->second.committed[partition] = offset;
  return Status::Ok();
}

std::int64_t MessageLog::CommittedOffset(const std::string& group,
                                         const std::string& topic,
                                         int partition) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end() || it->second.topic != topic) return 0;
  const auto oit = it->second.committed.find(partition);
  return oit == it->second.committed.end() ? 0 : oit->second;
}

Result<std::int64_t> MessageLog::Lag(const std::string& group) const {
  MutexLock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return NotFoundError("group " + group);
  const auto tit = topics_.find(it->second.topic);
  if (tit == topics_.end()) return NotFoundError("topic " + it->second.topic);
  std::int64_t lag = 0;
  for (std::size_t p = 0; p < tit->second.partitions.size(); ++p) {
    const Partition& part = tit->second.partitions[p];
    const std::int64_t end = part.begin_offset + std::int64_t(part.records.size());
    const auto cit = it->second.committed.find(int(p));
    const std::int64_t committed =
        cit == it->second.committed.end() ? 0 : cit->second;
    lag += std::max<std::int64_t>(end - committed, 0);
  }
  return lag;
}

}  // namespace metro::mq
