#pragma once

// Replicated message broker: N `BrokerNode`s hosting leader/follower
// replicas of every partition, with deterministic leader placement,
// in-sync-replica (ISR) tracking, high-water-mark reads, quorum-acked
// produce, automatic leader failover, an idempotent produce path, and
// bounded per-partition backlogs.
//
// Replication contract (DESIGN.md "Failure model" has the full statement):
//
//   * Placement: partition p of a topic is replicated on nodes
//     `(hash(topic) + p + i) % nodes` for i in [0, replication_factor); the
//     i = 0 node is the *preferred* leader.
//   * Leader rule: the leader is the first ISR member in replica order.
//     When a leader dies, leadership moves to the next ISR member — which,
//     by the synchronous-replication invariant, holds every acked record.
//     A revived replica resyncs from the current leader and rejoins the ISR
//     as a follower (leadership does not flap back).
//   * Acked durability: a produce is acked only when the ISR holds at least
//     `quorum = replication_factor / 2 + 1` members, every one of which has
//     appended the record. An acked record therefore survives any failover
//     permitted by the quorum rule, and unclean election is impossible:
//     when every replica dies, only members of the final ISR may be elected
//     on revival, so a stale replica can never serve as leader.
//   * Visibility: fetches are served by the leader and never read past the
//     high-water mark (the replicated prefix), so consumers cannot observe
//     a record that a failover could retract.
//   * Backpressure: when a leader's retained backlog reaches
//     `max_partition_backlog`, produce fails with kResourceExhausted (and
//     the `mq.backpressure` counter ticks) instead of growing the log
//     without bound; retention is the release valve.
//
// All cluster state is guarded by one lock — the "network" between replicas
// is a function call, which is what makes replication synchronous and the
// chaos tests deterministic.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mq/consumer_groups.h"
#include "mq/idempotence.h"
#include "mq/partition_log.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::mq {

/// A (topic, partition) coordinate.
struct TopicPartition {
  std::string topic;
  int partition = 0;

  friend bool operator<(const TopicPartition& a, const TopicPartition& b) {
    if (a.topic != b.topic) return a.topic < b.topic;
    return a.partition < b.partition;
  }
};

/// A borrowed (topic, partition) key, for allocation-free replica lookups
/// on the hot produce/fetch path.
struct TopicPartitionView {
  std::string_view topic;
  int partition = 0;
};

/// Transparent ordering over owned and borrowed keys.
struct TopicPartitionLess {
  using is_transparent = void;
  static bool Less(std::string_view at, int ap, std::string_view bt, int bp) {
    if (at != bt) return at < bt;
    return ap < bp;
  }
  bool operator()(const TopicPartition& a, const TopicPartition& b) const {
    return Less(a.topic, a.partition, b.topic, b.partition);
  }
  bool operator()(const TopicPartition& a, const TopicPartitionView& b) const {
    return Less(a.topic, a.partition, b.topic, b.partition);
  }
  bool operator()(const TopicPartitionView& a, const TopicPartition& b) const {
    return Less(a.topic, a.partition, b.topic, b.partition);
  }
};

/// One broker process. All methods are called by the owning `BrokerCluster`
/// under the cluster lock; the node carries no synchronization of its own.
/// `Kill` models a process crash: the node stops serving, but its replicas
/// (its disk) survive and serve again after `Revive` + resync.
class BrokerNode {
 public:
  explicit BrokerNode(int id) : id_(id) {}

  int id() const { return id_; }
  bool up() const { return up_; }
  void Kill() { up_ = false; }
  void Revive() { up_ = true; }

  /// One hosted partition replica: its log plus the idempotence table
  /// rebuilt from that log's records.
  struct Replica {
    PartitionLog log;
    SequenceTable sequences;
  };

  /// The replica for `tp`, created on first use.
  Replica& replica(const TopicPartition& tp) { return replicas_[tp]; }
  const Replica* Find(const TopicPartitionView& tp) const {
    const auto it = replicas_.find(tp);
    return it == replicas_.end() ? nullptr : &it->second;
  }
  /// Allocation-free lookup of a replica materialized at topic creation;
  /// nullptr when this node does not host `tp`.
  Replica* FindMutable(const TopicPartitionView& tp) {
    const auto it = replicas_.find(tp);
    return it == replicas_.end() ? nullptr : &it->second;
  }

 private:
  int id_;
  bool up_ = true;
  std::map<TopicPartition, Replica, TopicPartitionLess> replicas_;
};

/// Cluster tuning.
struct BrokerClusterConfig {
  int nodes = 3;               ///< broker processes
  int replication_factor = 3;  ///< replicas per partition (clamped to nodes)
  /// Retained records per partition before produce fails with
  /// kResourceExhausted; 0 = unbounded.
  std::int64_t max_partition_backlog = 1 << 20;
};

/// A leadership/replication change, reported through the event hook so the
/// observability layer (which sits above mq in the include DAG) can record
/// failover events without mq depending on it.
struct ClusterEvent {
  enum class Kind {
    kLeaderElected,  ///< partition gained a leader (creation or revival)
    kFailover,       ///< leadership moved off a dead node
    kQuorumLost,     ///< last ISR member died; partition has no leader
    kIsrShrink,      ///< a replica left the ISR
    kIsrExpand,      ///< a resynced replica rejoined the ISR
    kNodeKilled,
    kNodeRevived,
  };
  Kind kind = Kind::kLeaderElected;
  std::string topic;   ///< empty for node-level events
  int partition = -1;
  int node = -1;       ///< the new leader / (re)joined / killed node
  int prev_node = -1;  ///< the previous leader for kFailover
};

std::string_view ClusterEventKindName(ClusterEvent::Kind kind);

/// A pinned, retry-safe produce: partition and idempotence identity are
/// assigned once by `Prepare`, so re-submitting the same request after a
/// transient failure (or across a leader failover) cannot duplicate.
struct ProduceRequest {
  std::string topic;
  int partition = 0;
  std::string key;
  std::string value;
  Headers headers;
  ProducerId producer_id = 0;
  std::int64_t sequence = -1;
};

/// A pinned, retry-safe batched produce (see `PrepareBatch`). The batch's
/// payload arena is built once by the caller; the broker appends it to the
/// leader and shares it into every ISR replica by reference. Resubmitting
/// the same request after a transient failure (or across a leader failover)
/// cannot duplicate: the sequence range `[first_sequence,
/// first_sequence + batch->size())` is deduplicated as a unit.
struct ProduceBatchRequest {
  std::string topic;
  int partition = 0;
  ProducerId producer_id = 0;
  std::int64_t first_sequence = -1;
  std::shared_ptr<RecordBatch> batch;
};

/// Leader/ISR snapshot for one partition (tests, health, operators).
struct PartitionView {
  int leader = -1;            ///< node id; -1 = no leader (quorum lost)
  std::vector<int> replicas;  ///< preferred order; [0] is preferred leader
  std::vector<int> isr;       ///< in-sync subset, in replica order
  std::int64_t high_water_mark = 0;
  std::int64_t begin_offset = 0;
  std::int64_t end_offset = 0;
};

/// The replicated broker. Thread-safe.
class BrokerCluster {
 public:
  using EventFn = std::function<void(const ClusterEvent&)>;

  explicit BrokerCluster(Clock& clock, BrokerClusterConfig config = {});

  int num_nodes() const { return int(nodes_.size()); }
  int replication_factor() const { return config_.replication_factor; }
  int quorum() const { return config_.replication_factor / 2 + 1; }

  /// Registers the event hook (replacing any previous one). Events are
  /// delivered outside the cluster lock; the hook may call back into
  /// read-side cluster methods but must not inject faults.
  void SetEventHook(EventFn hook) METRO_EXCLUDES(mu_);

  // --- topics ---

  /// Creates a topic with `partitions` partitions (>= 1), placing replicas
  /// and electing the preferred leaders.
  Status CreateTopic(const std::string& topic, int partitions)
      METRO_EXCLUDES(mu_);

  bool HasTopic(const std::string& topic) const METRO_EXCLUDES(mu_);
  Result<int> NumPartitions(const std::string& topic) const
      METRO_EXCLUDES(mu_);

  // --- produce ---

  /// Non-idempotent convenience produce; the partition is chosen by key
  /// hash, or round-robin over partitions that currently have a leader for
  /// empty keys (skipped leaderless partitions tick `mq.roundrobin_skips`).
  Result<ProduceAck> Produce(const std::string& topic, std::string key,
                             std::string value, Headers headers = {})
      METRO_EXCLUDES(mu_);

  /// Non-idempotent produce to an explicit partition.
  Result<ProduceAck> ProduceTo(const std::string& topic, int partition,
                               std::string key, std::string value,
                               Headers headers = {}) METRO_EXCLUDES(mu_);

  /// Registers an idempotent producer and returns its id.
  ProducerId CreateProducer() METRO_EXCLUDES(mu_);

  /// Builds a pinned request: picks the partition (as `Produce` does) and,
  /// for a registered producer, assigns the next per-partition sequence
  /// number. The request may then be submitted through `Produce(request)`
  /// any number of times — exactly one append results.
  Result<ProduceRequest> Prepare(ProducerId producer, const std::string& topic,
                                 std::string key, std::string value,
                                 Headers headers = {}) METRO_EXCLUDES(mu_);

  /// Submits a prepared request. acks=quorum: fails with kUnavailable when
  /// the partition has no leader or the ISR is below quorum (retry after
  /// failover), with kResourceExhausted when the backlog bound is hit.
  /// Implemented as a one-record batch through the batched path below.
  Result<ProduceAck> Produce(const ProduceRequest& request)
      METRO_EXCLUDES(mu_);

  /// Builds a pinned batched request to an explicit partition from the
  /// records accumulated in `builder` (at least one). For a registered
  /// producer (id > 0) the batch is assigned the next `builder.size()`
  /// per-partition sequence numbers; producer 0 produces non-idempotently.
  /// The request may then be submitted through `Produce(request)` — for an
  /// idempotent producer any number of times, with exactly one append
  /// resulting.
  Result<ProduceBatchRequest> PrepareBatch(ProducerId producer,
                                           const std::string& topic,
                                           int partition,
                                           RecordBatchBuilder& builder)
      METRO_EXCLUDES(mu_);

  /// Submits a pinned batched request: quorum-acked, idempotent over the
  /// whole sequence range, appended to the leader and shared (not copied)
  /// into every ISR replica. Error space matches the single-record path,
  /// plus kFailedPrecondition for a partially-appended range
  /// (`mq.sequence_overlap`) and for resubmitting an already-committed
  /// non-idempotent batch. Steady state is allocation-free end to end.
  Result<ProduceAck> Produce(const ProduceBatchRequest& request)
      METRO_EXCLUDES(mu_);

  // --- fetch / metadata ---

  /// Reads up to `max_records` from the leader, never past the high-water
  /// mark. kUnavailable when the partition has no leader; kOutOfRange below
  /// the retention floor (consumers reset to `begin_offset` — see
  /// `MessageLog::Fetch` for the reset policy).
  Result<std::vector<Record>> Fetch(const std::string& topic, int partition,
                                    std::int64_t offset,
                                    std::size_t max_records) const
      METRO_EXCLUDES(mu_);

  /// Zero-copy fetch: a shared view of up to `max_records` from the leader,
  /// never past the high-water mark and never across a batch boundary (the
  /// caller advances to `view.next_offset()` and fetches again; an empty
  /// view means "parked at the high-water mark"). The view keeps the
  /// underlying immutable batch alive, so it remains valid after the call
  /// returns — even across retention or failover.
  Result<BatchView> FetchBatch(const std::string& topic, int partition,
                               std::int64_t offset,
                               std::size_t max_records) const
      METRO_EXCLUDES(mu_);

  Result<PartitionInfo> GetPartitionInfo(const std::string& topic,
                                         int partition) const
      METRO_EXCLUDES(mu_);

  Result<PartitionView> View(const std::string& topic, int partition) const
      METRO_EXCLUDES(mu_);

  /// The node that would lead `partition` with every replica healthy — the
  /// deterministic target for "kill the leader" fault plans.
  Result<int> PreferredLeader(const std::string& topic, int partition) const
      METRO_EXCLUDES(mu_);

  Result<int> LeaderOf(const std::string& topic, int partition) const
      METRO_EXCLUDES(mu_);

  /// Drops records older than `retention` from every replica of every
  /// partition (the disk-level janitor runs on dead nodes too, keeping
  /// replicas aligned); returns records dropped from leader replicas.
  std::int64_t EnforceRetention(TimeNs retention) METRO_EXCLUDES(mu_);

  // --- faults ---

  /// Crashes a broker process: its replicas leave every ISR and any
  /// partition it led fails over to the next ISR member.
  Status KillNode(int node) METRO_EXCLUDES(mu_);

  /// Restarts a broker process: its replicas resync from the current
  /// leaders and rejoin the ISRs. A leaderless partition elects the revived
  /// node only if it was in the final ISR (no unclean election).
  Status ReviveNode(int node) METRO_EXCLUDES(mu_);

  Result<bool> NodeUp(int node) const METRO_EXCLUDES(mu_);

  /// Health probe for `resilience::HealthRegistry`: Ok when every partition
  /// has a leader and an ISR at quorum; kUnavailable with a diagnostic
  /// otherwise.
  Status Probe() const METRO_EXCLUDES(mu_);

  // --- consumer groups (same contract as MessageLog) ---

  Result<std::vector<int>> JoinGroup(const std::string& group,
                                     const std::string& topic,
                                     const std::string& member)
      METRO_EXCLUDES(mu_);
  Status LeaveGroup(const std::string& group, const std::string& member)
      METRO_EXCLUDES(mu_);
  std::vector<int> Assignment(const std::string& group,
                              const std::string& member) const;
  /// Validated commit: rejects partitions outside the topic and offsets
  /// beyond the high-water mark (kOutOfRange) — see GroupCoordinator.
  Status CommitOffset(const std::string& group, const std::string& topic,
                      int partition, std::int64_t offset) METRO_EXCLUDES(mu_);
  std::int64_t CommittedOffset(const std::string& group,
                               const std::string& topic, int partition) const;
  /// Uncommitted backlog across the group's topic (high-water mark minus
  /// committed, floored at 0 per partition).
  Result<std::int64_t> Lag(const std::string& group) const METRO_EXCLUDES(mu_);

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct PartitionMeta {
    std::vector<int> replicas;  ///< preferred order
    std::vector<int> isr;       ///< in-sync subset (empty iff leader == -1)
    std::vector<int> final_isr; ///< ISR at the moment quorum was lost
    int leader = -1;
    std::int64_t high_water = 0;
  };
  struct TopicMeta {
    std::vector<PartitionMeta> partitions;
    std::size_t round_robin = 0;
  };

  /// Single-record path: wraps the request in a one-record batch and runs
  /// it through `ProduceBatchLocked`.
  Result<ProduceAck> ProduceLocked(const ProduceRequest& request)
      METRO_REQUIRES(mu_);
  /// The batched produce path: dedup (whole range), backlog bound, seal,
  /// leader append, shared replication, sequence-range observation.
  Result<ProduceAck> ProduceBatchLocked(const ProduceBatchRequest& request)
      METRO_REQUIRES(mu_);
  /// Picks the partition for a produce (key hash / leader-skipping
  /// round-robin); never fails for a known topic.
  int PickPartitionLocked(TopicMeta& topic, const std::string& key)
      METRO_REQUIRES(mu_);
  /// Copies the leader's suffix into `node`'s replica and rejoins the ISR.
  void ResyncReplicaLocked(const TopicPartition& tp, PartitionMeta& meta,
                           int node, std::vector<ClusterEvent>& events)
      METRO_REQUIRES(mu_);
  Result<const PartitionMeta*> MetaLocked(const std::string& topic,
                                          int partition) const
      METRO_REQUIRES(mu_);
  void Emit(std::vector<ClusterEvent> events) METRO_EXCLUDES(mu_);

  Clock* clock_;
  BrokerClusterConfig config_;
  // Lock order: mu_ before metrics_'s internal lock; the group
  // coordinator's lock is a leaf taken after topic metadata is resolved.
  mutable Mutex mu_{lockrank::kMqCluster, "mq.cluster"};
  std::vector<std::unique_ptr<BrokerNode>> nodes_ METRO_GUARDED_BY(mu_);
  std::map<std::string, TopicMeta> topics_ METRO_GUARDED_BY(mu_);
  ProducerId next_producer_ METRO_GUARDED_BY(mu_) = 1;
  /// Next sequence to assign per (producer, topic, partition).
  std::map<ProducerId, std::map<TopicPartition, std::int64_t>> producer_seq_
      METRO_GUARDED_BY(mu_);
  EventFn hook_ METRO_GUARDED_BY(mu_);
  GroupCoordinator groups_;
  MetricsRegistry metrics_;
  // mq.* counters resolved once at construction (GetCounter takes the
  // registry lock and a map lookup; references stay valid for the
  // registry's lifetime) so the METRO_NOALLOC produce path ticks them with
  // a plain atomic add.
  Counter* c_records_produced_;
  Counter* c_batches_produced_;
  Counter* c_bytes_produced_;
  Counter* c_replica_bytes_shared_;
  Counter* c_duplicates_suppressed_;
  Counter* c_sequence_too_old_;
  Counter* c_sequence_overlap_;
  Counter* c_backpressure_;
  Counter* c_no_leader_;
  Counter* c_quorum_failures_;
  Counter* c_roundrobin_skips_;
  Counter* c_failovers_;
};

}  // namespace metro::mq
