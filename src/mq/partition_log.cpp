#include "mq/partition_log.h"

#include <algorithm>

namespace metro::mq {

namespace {

// Cold error construction, kept out of the METRO_NOALLOC bodies.
Status RetentionFloorError(std::int64_t offset, std::int64_t begin) {
  return OutOfRangeError("offset " + std::to_string(offset) +
                         " below retention floor " + std::to_string(begin));
}

Status BeyondEndError(std::int64_t offset, std::int64_t end) {
  return OutOfRangeError("offset " + std::to_string(offset) +
                         " beyond end of log at " + std::to_string(end));
}

Status ReplicaGapError(std::int64_t got, std::int64_t end) {
  return FailedPreconditionError(
      "replica append at offset " + std::to_string(got) + " but log ends at " +
      std::to_string(end));
}

}  // namespace

void PartitionLog::GrowRing() {
  std::vector<Segment> bigger(ring_.empty() ? 8 : ring_.size() * 2);
  for (std::size_t i = 0; i < seg_count_; ++i) bigger[i] = std::move(Slot(i));
  ring_.swap(bigger);
  head_ = 0;
}

METRO_NOALLOC void PartitionLog::PlaceBatch(
    std::shared_ptr<const RecordBatch> batch) {
  if (seg_count_ == ring_.size()) GrowRing();  // cold: amortized wrap
  Segment& slot = ring_[(head_ + seg_count_) % ring_.size()];
  slot.first_offset = end_offset_;
  slot.count = std::uint32_t(batch->size());
  end_offset_ += std::int64_t(slot.count);
  slot.batch = std::move(batch);
  ++seg_count_;
}

METRO_NOALLOC std::int64_t PartitionLog::AppendBatch(
    std::shared_ptr<const RecordBatch> batch) {
  METRO_CHECK(batch != nullptr && batch->sealed(),
              "AppendBatch requires a sealed batch");
  METRO_CHECK(batch->base_offset() == end_offset_,
              "batch sealed at base %lld but log ends at %lld",
              (long long)batch->base_offset(), (long long)end_offset_);
  const std::int64_t base = end_offset_;
  PlaceBatch(std::move(batch));
  return base;
}

METRO_NOALLOC Status PartitionLog::AppendReplicaBatch(
    std::shared_ptr<const RecordBatch> batch) {
  if (batch == nullptr || !batch->sealed() ||
      batch->base_offset() != end_offset_) {
    return ReplicaGapError(batch == nullptr ? -1 : batch->base_offset(),
                           end_offset_);
  }
  PlaceBatch(std::move(batch));
  return Status::Ok();
}

METRO_NOALLOC const PartitionLog::Segment* PartitionLog::SegmentFor(
    std::int64_t offset) const {
  if (offset < begin_offset_ || offset >= end_offset_) return nullptr;
  // Last segment with first_offset <= offset; segments are offset-sorted in
  // logical ring order.
  std::size_t lo = 0;
  std::size_t hi = seg_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (Slot(mid).first_offset <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const Segment& seg = Slot(lo - 1);
  if (offset >= seg.first_offset + std::int64_t(seg.count)) return nullptr;
  return &seg;
}

METRO_NOALLOC Result<BatchView> PartitionLog::FetchBatch(
    std::int64_t offset, std::size_t max_records, std::int64_t limit) const {
  if (offset < begin_offset_) return RetentionFloorError(offset, begin_offset_);
  if (offset > end_offset_) return BeyondEndError(offset, end_offset_);
  const std::int64_t readable = limit < end_offset_ ? limit : end_offset_;
  if (offset >= readable) return BatchView(nullptr, 0, 0, offset);
  const Segment* seg = SegmentFor(offset);
  METRO_CHECK(seg != nullptr, "retained offset %lld has no segment",
              (long long)offset);
  const std::int64_t first = offset - seg->first_offset;
  std::int64_t take = std::int64_t(seg->count) - first;
  if (take > readable - offset) take = readable - offset;
  if (std::size_t(take) > max_records) take = std::int64_t(max_records);
  return BatchView(seg->batch, std::uint32_t(first), std::uint32_t(take),
                   offset + take);
}

std::shared_ptr<const RecordBatch> PartitionLog::BatchAt(
    std::int64_t offset) const {
  const Segment* seg = SegmentFor(offset);
  if (seg == nullptr || seg->first_offset != offset) return nullptr;
  if (std::size_t(seg->count) != seg->batch->size()) return nullptr;
  return seg->batch;
}

std::optional<RecordView> PartitionLog::ViewAt(std::int64_t offset) const {
  const Segment* seg = SegmentFor(offset);
  if (seg == nullptr) return std::nullopt;
  return seg->batch->view(std::size_t(offset - seg->first_offset));
}

std::int64_t PartitionLog::Append(Record record) {
  RecordBatchBuilder builder;
  builder.Add(record.key, record.value, record.headers);
  std::shared_ptr<RecordBatch> batch = builder.Build();
  batch->Seal(end_offset_, record.timestamp, record.producer_id,
              record.sequence);
  return AppendBatch(std::move(batch));
}

Status PartitionLog::AppendReplica(Record record) {
  if (record.offset != end_offset_) {
    return ReplicaGapError(record.offset, end_offset_);
  }
  RecordBatchBuilder builder;
  builder.Add(record.key, record.value, record.headers);
  std::shared_ptr<RecordBatch> batch = builder.Build();
  batch->Seal(record.offset, record.timestamp, record.producer_id,
              record.sequence);
  return AppendReplicaBatch(std::move(batch));
}

Result<std::vector<Record>> PartitionLog::Fetch(std::int64_t offset,
                                                std::size_t max_records,
                                                std::int64_t limit) const {
  if (offset < begin_offset_) return RetentionFloorError(offset, begin_offset_);
  if (offset > end_offset_) return BeyondEndError(offset, end_offset_);
  const std::int64_t readable = std::min(limit, end_offset_);
  std::vector<Record> out;
  std::int64_t cursor = offset;
  while (cursor < readable && out.size() < max_records) {
    auto view = FetchBatch(cursor, max_records - out.size(), readable);
    const BatchView& bv = view.value();  // in-range by the checks above
    if (bv.empty()) break;
    for (std::size_t i = 0; i < bv.size(); ++i) {
      const RecordView rv = bv[i];
      Record rec;
      rec.offset = rv.offset();
      rec.timestamp = rv.timestamp();
      rec.key = std::string(rv.key());
      rec.value = std::string(rv.value());
      rec.headers = rv.CopyHeaders();
      rec.producer_id = rv.producer_id();
      rec.sequence = rv.sequence();
      out.push_back(std::move(rec));
    }
    cursor = bv.next_offset();
  }
  return out;
}

std::int64_t PartitionLog::EnforceRetention(TimeNs cutoff) {
  std::int64_t dropped = 0;
  while (seg_count_ > 0) {
    Segment& front = ring_[head_];
    if (front.batch->timestamp() >= cutoff) break;
    dropped += std::int64_t(front.count);
    begin_offset_ = front.first_offset + std::int64_t(front.count);
    front = Segment{};
    head_ = (head_ + 1) % ring_.size();
    --seg_count_;
  }
  return dropped;
}

std::int64_t PartitionLog::TruncateTo(std::int64_t end) {
  if (end >= end_offset_) return 0;
  const std::int64_t target = std::max(end, begin_offset_);
  const std::int64_t dropped = end_offset_ - target;
  while (seg_count_ > 0) {
    Segment& last = Slot(seg_count_ - 1);
    if (last.first_offset >= target) {
      end_offset_ = last.first_offset;
      last = Segment{};
      --seg_count_;
      continue;
    }
    // `target` falls inside `last`: retain its prefix. The dropped suffix
    // stays alive inside the shared batch but is no longer addressable
    // through this log.
    last.count = std::uint32_t(target - last.first_offset);
    end_offset_ = target;
    break;
  }
  return dropped;
}

void PartitionLog::Reset(std::int64_t begin) {
  for (std::size_t i = 0; i < seg_count_; ++i) Slot(i) = Segment{};
  head_ = 0;
  seg_count_ = 0;
  begin_offset_ = begin;
  end_offset_ = begin;
}

}  // namespace metro::mq
