#include "mq/partition_log.h"

#include <algorithm>

namespace metro::mq {

std::int64_t PartitionLog::Append(Record record) {
  record.offset = end_offset();
  records_.push_back(std::move(record));
  return records_.back().offset;
}

Status PartitionLog::AppendReplica(Record record) {
  if (record.offset != end_offset()) {
    return FailedPreconditionError(
        "replica append at offset " + std::to_string(record.offset) +
        " but log ends at " + std::to_string(end_offset()));
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

const Record* PartitionLog::At(std::int64_t offset) const {
  if (offset < begin_offset_ || offset >= end_offset()) return nullptr;
  return &records_[std::size_t(offset - begin_offset_)];
}

Result<std::vector<Record>> PartitionLog::Fetch(std::int64_t offset,
                                                std::size_t max_records,
                                                std::int64_t limit) const {
  const std::int64_t readable = std::min(limit, end_offset());
  if (offset < begin_offset_) {
    return OutOfRangeError("offset " + std::to_string(offset) +
                           " below retention floor " +
                           std::to_string(begin_offset_));
  }
  if (offset > readable) {
    return OutOfRangeError("offset beyond end of log");
  }
  std::vector<Record> out;
  const std::size_t start = std::size_t(offset - begin_offset_);
  const std::size_t avail = std::size_t(readable - offset);
  const std::size_t count = std::min(max_records, avail);
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(records_[start + i]);
  return out;
}

std::int64_t PartitionLog::EnforceRetention(TimeNs cutoff) {
  std::size_t keep = 0;
  while (keep < records_.size() && records_[keep].timestamp < cutoff) ++keep;
  if (keep == 0) return 0;
  records_.erase(records_.begin(), records_.begin() + std::ptrdiff_t(keep));
  begin_offset_ += std::int64_t(keep);
  return std::int64_t(keep);
}

std::int64_t PartitionLog::TruncateTo(std::int64_t end) {
  if (end >= end_offset()) return 0;
  const std::int64_t keep = std::max<std::int64_t>(0, end - begin_offset_);
  const std::int64_t dropped = std::int64_t(records_.size()) - keep;
  records_.resize(std::size_t(keep));
  return dropped;
}

void PartitionLog::Reset(std::int64_t begin) {
  records_.clear();
  begin_offset_ = begin;
}

}  // namespace metro::mq
