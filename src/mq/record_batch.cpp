#include "mq/record_batch.h"

namespace metro::mq {

std::int64_t RecordView::offset() const {
  CheckLive();
  return batch_->base_offset_ + std::int64_t(index_);
}

TimeNs RecordView::timestamp() const {
  CheckLive();
  return batch_->timestamp_;
}

std::string_view RecordView::key() const {
  CheckLive();
  return batch_->Text(batch_->entries_[index_].key);
}

std::string_view RecordView::value() const {
  CheckLive();
  return batch_->Text(batch_->entries_[index_].value);
}

std::int64_t RecordView::producer_id() const {
  CheckLive();
  return batch_->producer_id_;
}

std::int64_t RecordView::sequence() const {
  CheckLive();
  if (batch_->first_sequence_ < 0) return -1;
  return batch_->first_sequence_ + std::int64_t(index_);
}

std::size_t RecordView::header_count() const {
  CheckLive();
  return batch_->entries_[index_].header_count;
}

HeaderView RecordView::header(std::size_t i) const {
  CheckLive();
  const RecordBatch::Entry& e = batch_->entries_[index_];
  const RecordBatch::HeaderSlice& h = batch_->headers_[e.header_begin + i];
  return HeaderView{batch_->Text(h.key), batch_->Text(h.value)};
}

std::optional<std::string_view> RecordView::FindHeader(
    std::string_view key) const {
  CheckLive();
  const RecordBatch::Entry& e = batch_->entries_[index_];
  for (std::uint32_t i = 0; i < e.header_count; ++i) {
    const RecordBatch::HeaderSlice& h = batch_->headers_[e.header_begin + i];
    if (batch_->Text(h.key) == key) return batch_->Text(h.value);
  }
  return std::nullopt;
}

Headers RecordView::CopyHeaders() const {
  CheckLive();
  Headers out;
  const RecordBatch::Entry& e = batch_->entries_[index_];
  for (std::uint32_t i = 0; i < e.header_count; ++i) {
    const RecordBatch::HeaderSlice& h = batch_->headers_[e.header_begin + i];
    out.emplace(std::string(batch_->Text(h.key)),
                std::string(batch_->Text(h.value)));
  }
  return out;
}

RecordBatchBuilder::RecordBatchBuilder(std::size_t reserve_bytes,
                                       std::size_t reserve_records)
    : reserve_bytes_(reserve_bytes), reserve_records_(reserve_records) {}

void RecordBatchBuilder::Ensure() {
  if (batch_) return;
  batch_ = std::make_shared<RecordBatch>();
  if (reserve_bytes_ > 0) batch_->arena_.reserve(reserve_bytes_);
  if (reserve_records_ > 0) batch_->entries_.reserve(reserve_records_);
}

RecordBatch::Slice RecordBatchBuilder::Intern(std::string_view text) {
  RecordBatch::Slice s;
  s.pos = std::uint32_t(batch_->arena_.size());
  s.len = std::uint32_t(text.size());
  batch_->arena_.insert(batch_->arena_.end(), text.begin(), text.end());
  return s;
}

void RecordBatchBuilder::Add(std::string_view key, std::string_view value) {
  Ensure();
  RecordBatch::Entry e;
  e.key = Intern(key);
  e.value = Intern(value);
  e.header_begin = std::uint32_t(batch_->headers_.size());
  e.header_count = 0;
  batch_->kv_bytes_ += key.size() + value.size();
  batch_->entries_.push_back(e);
}

void RecordBatchBuilder::Add(std::string_view key, std::string_view value,
                             const Headers& headers) {
  Ensure();
  RecordBatch::Entry e;
  e.key = Intern(key);
  e.value = Intern(value);
  e.header_begin = std::uint32_t(batch_->headers_.size());
  e.header_count = std::uint32_t(headers.size());
  for (const auto& [hk, hv] : headers) {
    RecordBatch::HeaderSlice h;
    h.key = Intern(hk);
    h.value = Intern(hv);
    batch_->headers_.push_back(h);
  }
  batch_->kv_bytes_ += key.size() + value.size();
  batch_->entries_.push_back(e);
}

std::shared_ptr<RecordBatch> RecordBatchBuilder::Build() {
  METRO_CHECK(batch_ && !batch_->entries_.empty(),
              "Build() on an empty RecordBatchBuilder");
  return std::move(batch_);
}

}  // namespace metro::mq
