#include "mq/broker_cluster.h"

#include <algorithm>

#include "util/bytes.h"

namespace metro::mq {

namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Cold error construction for the METRO_NOALLOC produce/fetch bodies: the
// annotated functions call these helpers so string building stays off the
// lexically-scanned hot path (and, at runtime, happens only when the
// produce already failed).
std::string Where(std::string_view topic, int partition) {
  return std::string(topic) + "/" + std::to_string(partition);
}

Status UnknownTopicError(const std::string& topic) {
  return NotFoundError("topic " + topic);
}

Status PartitionRangeError() {
  return InvalidArgumentError("partition out of range");
}

Status EmptyBatchError() {
  return InvalidArgumentError("batched produce requires a non-empty batch");
}

Status NoLeaderError(std::string_view topic, int partition) {
  return UnavailableError("partition " + Where(topic, partition) +
                          " has no leader");
}

Status QuorumError(std::string_view topic, int partition, int isr,
                   int quorum) {
  return UnavailableError("partition " + Where(topic, partition) + " ISR " +
                          std::to_string(isr) + " below quorum " +
                          std::to_string(quorum));
}

Status TooOldError(const ProduceBatchRequest& request) {
  return FailedPreconditionError(
      "producer " + std::to_string(request.producer_id) + " sequence " +
      std::to_string(request.first_sequence) + " on " +
      Where(request.topic, request.partition) +
      " below the tracked idempotence window");
}

Status OverlapError(const ProduceBatchRequest& request, std::int64_t count) {
  return FailedPreconditionError(
      "producer " + std::to_string(request.producer_id) + " sequence range [" +
      std::to_string(request.first_sequence) + ", " +
      std::to_string(request.first_sequence + count) + ") on " +
      Where(request.topic, request.partition) +
      " partially appended — not a whole-batch retry");
}

Status ResubmitError(const ProduceBatchRequest& request) {
  return FailedPreconditionError(
      "non-idempotent batch already committed to " +
      Where(request.topic, request.partition) +
      " resubmitted; build a new batch (or use an idempotent producer)");
}

Status BacklogError(const ProduceBatchRequest& request, std::int64_t bound) {
  return ResourceExhaustedError("partition " +
                                Where(request.topic, request.partition) +
                                " backlog at bound " + std::to_string(bound));
}

Status DivergenceError(const ProduceBatchRequest& request,
                       const Status& cause) {
  return InternalError("ISR divergence on " +
                       Where(request.topic, request.partition) + ": " +
                       cause.message());
}

}  // namespace

std::string_view ClusterEventKindName(ClusterEvent::Kind kind) {
  switch (kind) {
    case ClusterEvent::Kind::kLeaderElected:
      return "leader_elected";
    case ClusterEvent::Kind::kFailover:
      return "failover";
    case ClusterEvent::Kind::kQuorumLost:
      return "quorum_lost";
    case ClusterEvent::Kind::kIsrShrink:
      return "isr_shrink";
    case ClusterEvent::Kind::kIsrExpand:
      return "isr_expand";
    case ClusterEvent::Kind::kNodeKilled:
      return "node_killed";
    case ClusterEvent::Kind::kNodeRevived:
      return "node_revived";
  }
  return "unknown";
}

BrokerCluster::BrokerCluster(Clock& clock, BrokerClusterConfig config)
    : clock_(&clock), config_(config) {
  config_.nodes = std::max(1, config_.nodes);
  config_.replication_factor =
      std::clamp(config_.replication_factor, 1, config_.nodes);
  c_records_produced_ = &metrics_.GetCounter("mq.records_produced");
  c_batches_produced_ = &metrics_.GetCounter("mq.batches_produced");
  c_bytes_produced_ = &metrics_.GetCounter("mq.bytes_produced");
  c_replica_bytes_shared_ = &metrics_.GetCounter("mq.replica_bytes_shared");
  c_duplicates_suppressed_ = &metrics_.GetCounter("mq.duplicates_suppressed");
  c_sequence_too_old_ = &metrics_.GetCounter("mq.sequence_too_old");
  c_sequence_overlap_ = &metrics_.GetCounter("mq.sequence_overlap");
  c_backpressure_ = &metrics_.GetCounter("mq.backpressure");
  c_no_leader_ = &metrics_.GetCounter("mq.no_leader");
  c_quorum_failures_ = &metrics_.GetCounter("mq.quorum_failures");
  c_roundrobin_skips_ = &metrics_.GetCounter("mq.roundrobin_skips");
  c_failovers_ = &metrics_.GetCounter("mq.failovers");
  MutexLock lock(mu_);
  nodes_.reserve(std::size_t(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    nodes_.push_back(std::make_unique<BrokerNode>(i));
  }
}

void BrokerCluster::SetEventHook(EventFn hook) {
  MutexLock lock(mu_);
  hook_ = std::move(hook);
}

void BrokerCluster::Emit(std::vector<ClusterEvent> events) {
  if (events.empty()) return;
  EventFn hook;
  {
    MutexLock lock(mu_);
    hook = hook_;
  }
  if (!hook) return;
  for (const ClusterEvent& event : events) hook(event);
}

Status BrokerCluster::CreateTopic(const std::string& topic, int partitions) {
  if (partitions < 1) return InvalidArgumentError("partitions must be >= 1");
  std::vector<ClusterEvent> events;
  MutexLock lock(mu_);
  const auto [it, inserted] = topics_.try_emplace(topic);
  if (!inserted) return AlreadyExistsError("topic " + topic);
  TopicMeta& t = it->second;
  t.partitions.resize(std::size_t(partitions));
  const std::uint64_t base = Fnv1a64(topic);
  for (int p = 0; p < partitions; ++p) {
    PartitionMeta& pm = t.partitions[std::size_t(p)];
    const TopicPartition tp{topic, p};
    for (int i = 0; i < config_.replication_factor; ++i) {
      const int node =
          int((base + std::uint64_t(p) + std::uint64_t(i)) %
              std::uint64_t(nodes_.size()));
      pm.replicas.push_back(node);
      nodes_[std::size_t(node)]->replica(tp);  // materialize the replica
      if (nodes_[std::size_t(node)]->up()) pm.isr.push_back(node);
    }
    if (!pm.isr.empty()) {
      pm.leader = pm.isr.front();
      ClusterEvent event;
      event.kind = ClusterEvent::Kind::kLeaderElected;
      event.topic = topic;
      event.partition = p;
      event.node = pm.leader;
      events.push_back(std::move(event));
    }
  }
  lock.Unlock();
  Emit(std::move(events));
  return Status::Ok();
}

bool BrokerCluster::HasTopic(const std::string& topic) const {
  MutexLock lock(mu_);
  return topics_.count(topic) > 0;
}

Result<int> BrokerCluster::NumPartitions(const std::string& topic) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  return int(it->second.partitions.size());
}

Result<const BrokerCluster::PartitionMeta*> BrokerCluster::MetaLocked(
    const std::string& topic, int partition) const {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  if (partition < 0 ||
      std::size_t(partition) >= it->second.partitions.size()) {
    return InvalidArgumentError("partition out of range");
  }
  return &it->second.partitions[std::size_t(partition)];
}

int BrokerCluster::PickPartitionLocked(TopicMeta& topic,
                                       const std::string& key) {
  const std::size_t n = topic.partitions.size();
  if (!key.empty()) return int(Fnv1a64(key) % n);
  // Keyless round-robin skips partitions that currently have no leader so a
  // single dead preferred leader cannot fail a fraction of keyless traffic.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = topic.round_robin++ % n;
    if (topic.partitions[idx].leader >= 0) return int(idx);
    c_roundrobin_skips_->Increment();
  }
  // Every partition is leaderless; let the produce path report kUnavailable.
  return int(topic.round_robin++ % n);
}

ProducerId BrokerCluster::CreateProducer() {
  MutexLock lock(mu_);
  return next_producer_++;
}

Result<ProduceRequest> BrokerCluster::Prepare(ProducerId producer,
                                              const std::string& topic,
                                              std::string key,
                                              std::string value,
                                              Headers headers) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  if (producer < 0 || producer >= next_producer_) {
    return InvalidArgumentError("unknown producer id " +
                                std::to_string(producer));
  }
  ProduceRequest request;
  request.topic = topic;
  request.partition = PickPartitionLocked(it->second, key);
  request.key = std::move(key);
  request.value = std::move(value);
  request.headers = std::move(headers);
  if (producer > 0) {
    request.producer_id = producer;
    request.sequence =
        producer_seq_[producer][TopicPartition{topic, request.partition}]++;
  }
  return request;
}

Result<ProduceAck> BrokerCluster::Produce(const ProduceRequest& request) {
  MutexLock lock(mu_);
  return ProduceLocked(request);
}

Result<ProduceBatchRequest> BrokerCluster::PrepareBatch(
    ProducerId producer, const std::string& topic, int partition,
    RecordBatchBuilder& builder) {
  if (builder.empty()) return EmptyBatchError();
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return UnknownTopicError(topic);
  if (partition < 0 ||
      std::size_t(partition) >= it->second.partitions.size()) {
    return PartitionRangeError();
  }
  if (producer < 0 || producer >= next_producer_) {
    return InvalidArgumentError("unknown producer id " +
                                std::to_string(producer));
  }
  ProduceBatchRequest request;
  request.topic = topic;
  request.partition = partition;
  request.batch = builder.Build();
  if (producer > 0) {
    request.producer_id = producer;
    std::int64_t& next = producer_seq_[producer][TopicPartition{topic, partition}];
    request.first_sequence = next;
    next += std::int64_t(request.batch->size());
  }
  return request;
}

Result<ProduceAck> BrokerCluster::Produce(const ProduceBatchRequest& request) {
  MutexLock lock(mu_);
  return ProduceBatchLocked(request);
}

Result<ProduceAck> BrokerCluster::Produce(const std::string& topic,
                                          std::string key, std::string value,
                                          Headers headers) {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return NotFoundError("topic " + topic);
  ProduceRequest request;
  request.topic = topic;
  request.partition = PickPartitionLocked(it->second, key);
  request.key = std::move(key);
  request.value = std::move(value);
  request.headers = std::move(headers);
  return ProduceLocked(request);
}

Result<ProduceAck> BrokerCluster::ProduceTo(const std::string& topic,
                                            int partition, std::string key,
                                            std::string value,
                                            Headers headers) {
  ProduceRequest request;
  request.topic = topic;
  request.partition = partition;
  request.key = std::move(key);
  request.value = std::move(value);
  request.headers = std::move(headers);
  MutexLock lock(mu_);
  return ProduceLocked(request);
}

Result<ProduceAck> BrokerCluster::ProduceLocked(const ProduceRequest& request) {
  // Compatibility shim: wrap the record in a one-record batch and run the
  // batched path — one dedup check, one append, one shared replication.
  RecordBatchBuilder builder;
  builder.Add(request.key, request.value, request.headers);
  ProduceBatchRequest batched;
  batched.topic = request.topic;
  batched.partition = request.partition;
  batched.producer_id = request.producer_id;
  batched.first_sequence = request.sequence;
  batched.batch = builder.Build();
  return ProduceBatchLocked(batched);
}

METRO_NOALLOC Result<ProduceAck> BrokerCluster::ProduceBatchLocked(
    const ProduceBatchRequest& request) {
  const auto it = topics_.find(request.topic);
  if (it == topics_.end()) return UnknownTopicError(request.topic);
  TopicMeta& t = it->second;
  if (request.partition < 0 ||
      std::size_t(request.partition) >= t.partitions.size()) {
    return PartitionRangeError();
  }
  if (request.batch == nullptr || request.batch->empty()) {
    return EmptyBatchError();
  }
  PartitionMeta& pm = t.partitions[std::size_t(request.partition)];
  if (pm.leader < 0) {
    c_no_leader_->Increment();
    return NoLeaderError(request.topic, request.partition);
  }
  if (int(pm.isr.size()) < quorum()) {
    c_quorum_failures_->Increment();
    return QuorumError(request.topic, request.partition, int(pm.isr.size()),
                       quorum());
  }
  const TopicPartitionView tp{request.topic, request.partition};
  BrokerNode::Replica* lead = nodes_[std::size_t(pm.leader)]->FindMutable(tp);
  METRO_CHECK(lead != nullptr, "leader %d hosts no replica of %s/%d",
              pm.leader, request.topic.c_str(), request.partition);
  const std::int64_t count = std::int64_t(request.batch->size());
  const SequenceTable::Probe probe = lead->sequences.CheckRange(
      request.producer_id, request.first_sequence, count);
  if (probe.verdict == SequenceTable::Verdict::kDuplicate) {
    c_duplicates_suppressed_->Increment();
    ProduceAck ack;
    ack.partition = request.partition;
    ack.offset = probe.duplicate_offset;
    ack.count = count;
    ack.duplicate = true;
    return ack;
  }
  if (probe.verdict == SequenceTable::Verdict::kTooOld) {
    // The range fell below the broker's tracked window, so it cannot be
    // told apart from an already-appended one. Rejecting is the only safe
    // answer: appending risks a duplicate, a duplicate-ack risks silent
    // loss. Terminal for this prepared request — the producer must
    // re-prepare.
    c_sequence_too_old_->Increment();
    return TooOldError(request);
  }
  if (probe.verdict == SequenceTable::Verdict::kOverlap) {
    c_sequence_overlap_->Increment();
    return OverlapError(request, count);
  }
  if (request.producer_id <= 0 && request.batch->committed()) {
    // Without idempotence there is no dedup to absorb the resubmission, and
    // re-sealing a batch that live logs already share would mutate it under
    // them — refuse instead.
    return ResubmitError(request);
  }
  if (config_.max_partition_backlog > 0 &&
      lead->log.size() + count > config_.max_partition_backlog) {
    c_backpressure_->Increment();
    return BacklogError(request, config_.max_partition_backlog);
  }
  // Assign the batch its identity — offsets, broker timestamp, idempotence
  // range — and append to the leader. A rolled-back attempt re-seals on
  // retry; a committed one never reaches here (dedup or the guard above).
  request.batch->Seal(lead->log.end_offset(), clock_->Now(),
                      request.producer_id, request.first_sequence);
  const std::int64_t base = lead->log.AppendBatch(request.batch);
  // acks=quorum via synchronous replication: every ISR member appends before
  // the ack; quorum was pre-checked above, so the acked batch is on at
  // least `quorum()` replicas when the caller sees it. Replication shares
  // the leader's immutable batch — a refcount bump per member, not a
  // payload copy. A replication failure (defensive — ISR logs cannot
  // diverge under synchronous appends) rolls the append back everywhere so
  // an errored produce leaves no record: the producer may then safely
  // retry without duplicating.
  for (std::size_t i = 0; i < pm.isr.size(); ++i) {
    const int node = pm.isr[i];
    if (node == pm.leader) continue;
    BrokerNode::Replica* rep = nodes_[std::size_t(node)]->FindMutable(tp);
    METRO_CHECK(rep != nullptr, "ISR node %d hosts no replica of %s/%d", node,
                request.topic.c_str(), request.partition);
    const Status replicated = rep->log.AppendReplicaBatch(request.batch);
    if (!replicated.ok()) {
      lead->log.TruncateTo(base);
      for (std::size_t j = 0; j < i; ++j) {
        const int prior = pm.isr[j];
        if (prior == pm.leader) continue;
        nodes_[std::size_t(prior)]->FindMutable(tp)->log.TruncateTo(base);
      }
      return DivergenceError(request, replicated);
    }
  }
  // The batch is durable on the full ISR; only now fold its sequence range
  // into the dedup tables (a rolled-back attempt must stay fresh for its
  // retry) and mark it committed.
  for (std::size_t i = 0; i < pm.isr.size(); ++i) {
    nodes_[std::size_t(pm.isr[i])]->FindMutable(tp)->sequences.ObserveRange(
        request.producer_id, request.first_sequence, count, base);
  }
  request.batch->MarkCommitted();
  pm.high_water = lead->log.end_offset();
  c_records_produced_->Increment(count);
  c_batches_produced_->Increment();
  c_bytes_produced_->Increment(std::int64_t(request.batch->key_value_bytes()));
  if (pm.isr.size() > 1) {
    c_replica_bytes_shared_->Increment(
        std::int64_t(request.batch->payload_bytes()) *
        std::int64_t(pm.isr.size() - 1));
  }
  ProduceAck ack;
  ack.partition = request.partition;
  ack.offset = base;
  ack.count = count;
  return ack;
}

Result<std::vector<Record>> BrokerCluster::Fetch(const std::string& topic,
                                                 int partition,
                                                 std::int64_t offset,
                                                 std::size_t max_records) const {
  MutexLock lock(mu_);
  auto meta = MetaLocked(topic, partition);
  if (!meta.ok()) return meta.status();
  const PartitionMeta& pm = **meta;
  if (pm.leader < 0) {
    return NoLeaderError(topic, partition);
  }
  const BrokerNode::Replica* lead =
      nodes_[std::size_t(pm.leader)]->Find(TopicPartitionView{topic, partition});
  if (lead == nullptr) return InternalError("leader replica missing");
  return lead->log.Fetch(offset, max_records, pm.high_water);
}

METRO_NOALLOC Result<BatchView> BrokerCluster::FetchBatch(
    const std::string& topic, int partition, std::int64_t offset,
    std::size_t max_records) const {
  MutexLock lock(mu_);
  auto meta = MetaLocked(topic, partition);
  if (!meta.ok()) return meta.status();
  const PartitionMeta& pm = **meta;
  if (pm.leader < 0) {
    return NoLeaderError(topic, partition);
  }
  const BrokerNode::Replica* lead =
      nodes_[std::size_t(pm.leader)]->Find(TopicPartitionView{topic, partition});
  METRO_CHECK(lead != nullptr, "leader %d hosts no replica of %s/%d",
              pm.leader, topic.c_str(), partition);
  return lead->log.FetchBatch(offset, max_records, pm.high_water);
}

Result<PartitionInfo> BrokerCluster::GetPartitionInfo(const std::string& topic,
                                                      int partition) const {
  MutexLock lock(mu_);
  auto meta = MetaLocked(topic, partition);
  if (!meta.ok()) return meta.status();
  const PartitionMeta& pm = **meta;
  if (pm.leader < 0) {
    return NoLeaderError(topic, partition);
  }
  const BrokerNode::Replica* lead =
      nodes_[std::size_t(pm.leader)]->Find(TopicPartitionView{topic, partition});
  if (lead == nullptr) return InternalError("leader replica missing");
  PartitionInfo info;
  info.partition = partition;
  info.begin_offset = lead->log.begin_offset();
  info.end_offset = pm.high_water;
  return info;
}

Result<PartitionView> BrokerCluster::View(const std::string& topic,
                                          int partition) const {
  MutexLock lock(mu_);
  auto meta = MetaLocked(topic, partition);
  if (!meta.ok()) return meta.status();
  const PartitionMeta& pm = **meta;
  PartitionView view;
  view.leader = pm.leader;
  view.replicas = pm.replicas;
  view.isr = pm.isr;
  view.high_water_mark = pm.high_water;
  const int sample = pm.leader >= 0 ? pm.leader : pm.replicas.front();
  const BrokerNode::Replica* rep =
      nodes_[std::size_t(sample)]->Find(TopicPartitionView{topic, partition});
  if (rep != nullptr) {
    view.begin_offset = rep->log.begin_offset();
    view.end_offset = rep->log.end_offset();
  }
  return view;
}

Result<int> BrokerCluster::PreferredLeader(const std::string& topic,
                                           int partition) const {
  MutexLock lock(mu_);
  auto meta = MetaLocked(topic, partition);
  if (!meta.ok()) return meta.status();
  return (*meta)->replicas.front();
}

Result<int> BrokerCluster::LeaderOf(const std::string& topic,
                                    int partition) const {
  MutexLock lock(mu_);
  auto meta = MetaLocked(topic, partition);
  if (!meta.ok()) return meta.status();
  return (*meta)->leader;
}

std::int64_t BrokerCluster::EnforceRetention(TimeNs retention) {
  MutexLock lock(mu_);
  const TimeNs cutoff = clock_->Now() - retention;
  std::int64_t dropped = 0;
  for (auto& [name, topic] : topics_) {
    for (std::size_t p = 0; p < topic.partitions.size(); ++p) {
      const PartitionMeta& pm = topic.partitions[p];
      const TopicPartition tp{name, int(p)};
      // The janitor runs on every replica — dead nodes included — so the
      // retention floors stay aligned and a revived follower resyncs
      // against the same window the leader retains.
      for (const int node : pm.replicas) {
        const std::int64_t n =
            nodes_[std::size_t(node)]->replica(tp).log.EnforceRetention(cutoff);
        if (node == pm.leader) dropped += n;
      }
    }
  }
  return dropped;
}

Status BrokerCluster::KillNode(int node) {
  std::vector<ClusterEvent> events;
  MutexLock lock(mu_);
  if (node < 0 || std::size_t(node) >= nodes_.size()) {
    return InvalidArgumentError("node " + std::to_string(node) +
                                " out of range");
  }
  BrokerNode& killed = *nodes_[std::size_t(node)];
  if (!killed.up()) return Status::Ok();  // already dead
  killed.Kill();
  {
    ClusterEvent event;
    event.kind = ClusterEvent::Kind::kNodeKilled;
    event.node = node;
    events.push_back(std::move(event));
  }
  for (auto& [name, topic] : topics_) {
    for (std::size_t p = 0; p < topic.partitions.size(); ++p) {
      PartitionMeta& pm = topic.partitions[p];
      if (!Contains(pm.isr, node)) continue;
      const std::vector<int> old_isr = pm.isr;
      pm.isr.erase(std::find(pm.isr.begin(), pm.isr.end(), node));
      {
        ClusterEvent event;
        event.kind = ClusterEvent::Kind::kIsrShrink;
        event.topic = name;
        event.partition = int(p);
        event.node = node;
        events.push_back(std::move(event));
      }
      if (pm.leader != node) continue;
      if (pm.isr.empty()) {
        // The last in-sync replica died. Remember who was in sync at that
        // moment: only those replicas hold every acked record, so only they
        // may be elected when nodes come back (no unclean election).
        pm.final_isr = old_isr;
        pm.leader = -1;
        ClusterEvent event;
        event.kind = ClusterEvent::Kind::kQuorumLost;
        event.topic = name;
        event.partition = int(p);
        event.node = node;
        events.push_back(std::move(event));
      } else {
        // ISR members hold every acked record by the synchronous-replication
        // invariant, so the first survivor in replica order takes over with
        // the high-water mark intact.
        const int successor = pm.isr.front();
        pm.leader = successor;
        c_failovers_->Increment();
        ClusterEvent event;
        event.kind = ClusterEvent::Kind::kFailover;
        event.topic = name;
        event.partition = int(p);
        event.node = successor;
        event.prev_node = node;
        events.push_back(std::move(event));
      }
    }
  }
  lock.Unlock();
  Emit(std::move(events));
  return Status::Ok();
}

void BrokerCluster::ResyncReplicaLocked(const TopicPartition& tp,
                                        PartitionMeta& meta, int node,
                                        std::vector<ClusterEvent>& events) {
  if (Contains(meta.isr, node)) return;
  BrokerNode::Replica& lead =
      nodes_[std::size_t(meta.leader)]->replica(tp);
  BrokerNode::Replica& rep = nodes_[std::size_t(node)]->replica(tp);
  // A follower can never be ahead of the leader (appends are synchronous
  // across the ISR), but truncate defensively before copying the suffix.
  rep.log.TruncateTo(lead.log.end_offset());
  if (rep.log.end_offset() < lead.log.begin_offset()) {
    // The follower's window fell entirely behind the leader's retention
    // floor; restart it from the floor. Dedup state from records older than
    // the retained window is rebuilt only from what the leader still holds.
    rep.log.Reset(lead.log.begin_offset());
    rep.sequences.Clear();
  }
  std::int64_t off = rep.log.end_offset();
  while (off < lead.log.end_offset()) {
    // Zero-copy resync: share the leader's retained segment whenever the
    // follower's cursor sits on a whole-batch boundary — the common case,
    // since both sides append batch-at-a-time.
    if (std::shared_ptr<const RecordBatch> seg = lead.log.BatchAt(off)) {
      const std::int64_t next = seg->end_offset();
      if (!rep.log.AppendReplicaBatch(seg).ok()) {
        // Divergent follower state: abort the resync before observing any
        // dedup state. The follower stays out of the ISR and the next
        // heartbeat round retries from its (unchanged) end offset.
        return;
      }
      rep.sequences.ObserveRange(seg->producer_id(), seg->first_sequence(),
                                 std::int64_t(seg->size()), off);
      off = next;
      continue;
    }
    // Cold fallback (the cursor landed mid-batch after a defensive
    // truncation): copy record-by-record until the next batch boundary.
    const std::optional<RecordView> rv = lead.log.ViewAt(off);
    if (!rv) break;  // unreachable: [end, lead end) is retained
    Record rec;
    rec.offset = rv->offset();
    rec.timestamp = rv->timestamp();
    rec.key = std::string(rv->key());
    rec.value = std::string(rv->value());
    rec.headers = rv->CopyHeaders();
    rec.producer_id = rv->producer_id();
    rec.sequence = rv->sequence();
    rep.sequences.Observe(rec);
    if (!rep.log.AppendReplica(std::move(rec)).ok()) return;  // retry later
    ++off;
  }
  // Rejoin the ISR, keeping it in replica (preferred-leader) order.
  std::vector<int> isr;
  for (const int r : meta.replicas) {
    if (r == node || Contains(meta.isr, r)) isr.push_back(r);
  }
  meta.isr = std::move(isr);
  ClusterEvent event;
  event.kind = ClusterEvent::Kind::kIsrExpand;
  event.topic = tp.topic;
  event.partition = tp.partition;
  event.node = node;
  events.push_back(std::move(event));
}

Status BrokerCluster::ReviveNode(int node) {
  std::vector<ClusterEvent> events;
  MutexLock lock(mu_);
  if (node < 0 || std::size_t(node) >= nodes_.size()) {
    return InvalidArgumentError("node " + std::to_string(node) +
                                " out of range");
  }
  BrokerNode& revived = *nodes_[std::size_t(node)];
  if (revived.up()) return Status::Ok();  // already alive
  revived.Revive();
  {
    ClusterEvent event;
    event.kind = ClusterEvent::Kind::kNodeRevived;
    event.node = node;
    events.push_back(std::move(event));
  }
  for (auto& [name, topic] : topics_) {
    for (std::size_t p = 0; p < topic.partitions.size(); ++p) {
      PartitionMeta& pm = topic.partitions[p];
      if (!Contains(pm.replicas, node)) continue;
      const TopicPartition tp{name, int(p)};
      if (pm.leader >= 0) {
        ResyncReplicaLocked(tp, pm, node, events);
        continue;
      }
      // Leaderless partition: elect the revived node only if it was in the
      // final ISR (an empty snapshot means the partition never had a leader,
      // so nothing acked can be lost). Anyone else waits, out of the ISR,
      // for a final-ISR member to return.
      if (!pm.final_isr.empty() && !Contains(pm.final_isr, node)) continue;
      pm.leader = node;
      pm.isr = {node};
      pm.high_water = revived.replica(tp).log.end_offset();
      {
        ClusterEvent event;
        event.kind = ClusterEvent::Kind::kLeaderElected;
        event.topic = name;
        event.partition = int(p);
        event.node = node;
        events.push_back(std::move(event));
      }
      // Bring the other survivors back in sync under the new leader.
      for (const int r : pm.replicas) {
        if (r != node && nodes_[std::size_t(r)]->up()) {
          ResyncReplicaLocked(tp, pm, r, events);
        }
      }
    }
  }
  lock.Unlock();
  Emit(std::move(events));
  return Status::Ok();
}

Result<bool> BrokerCluster::NodeUp(int node) const {
  MutexLock lock(mu_);
  if (node < 0 || std::size_t(node) >= nodes_.size()) {
    return InvalidArgumentError("node " + std::to_string(node) +
                                " out of range");
  }
  return nodes_[std::size_t(node)]->up();
}

Status BrokerCluster::Probe() const {
  MutexLock lock(mu_);
  for (const auto& [name, topic] : topics_) {
    for (std::size_t p = 0; p < topic.partitions.size(); ++p) {
      const PartitionMeta& pm = topic.partitions[p];
      const std::string where = name + "/" + std::to_string(p);
      if (pm.leader < 0) {
        return UnavailableError("partition " + where + " has no leader");
      }
      if (int(pm.isr.size()) < quorum()) {
        return UnavailableError("partition " + where + " ISR " +
                                std::to_string(pm.isr.size()) +
                                " below quorum " + std::to_string(quorum()));
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<int>> BrokerCluster::JoinGroup(const std::string& group,
                                                  const std::string& topic,
                                                  const std::string& member) {
  int partitions = 0;
  {
    MutexLock lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return NotFoundError("topic " + topic);
    partitions = int(it->second.partitions.size());
  }
  return groups_.Join(group, topic, member, partitions);
}

Status BrokerCluster::LeaveGroup(const std::string& group,
                                 const std::string& member) {
  auto topic = groups_.TopicOf(group);
  if (!topic.ok()) return topic.status();
  int partitions = 0;
  {
    MutexLock lock(mu_);
    const auto it = topics_.find(*topic);
    if (it != topics_.end()) partitions = int(it->second.partitions.size());
  }
  return groups_.Leave(group, member, partitions);
}

std::vector<int> BrokerCluster::Assignment(const std::string& group,
                                           const std::string& member) const {
  return groups_.Assignment(group, member);
}

Status BrokerCluster::CommitOffset(const std::string& group,
                                   const std::string& topic, int partition,
                                   std::int64_t offset) {
  int partitions = 0;
  std::int64_t end = 0;
  {
    MutexLock lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return NotFoundError("topic " + topic);
    partitions = int(it->second.partitions.size());
    if (partition >= 0 && partition < partitions) {
      end = it->second.partitions[std::size_t(partition)].high_water;
    }
  }
  return groups_.Commit(group, topic, partition, offset, partitions, end);
}

std::int64_t BrokerCluster::CommittedOffset(const std::string& group,
                                            const std::string& topic,
                                            int partition) const {
  return groups_.Committed(group, topic, partition);
}

Result<std::int64_t> BrokerCluster::Lag(const std::string& group) const {
  auto topic = groups_.TopicOf(group);
  if (!topic.ok()) return topic.status();
  auto committed = groups_.CommittedAll(group);
  if (!committed.ok()) return committed.status();
  MutexLock lock(mu_);
  const auto it = topics_.find(*topic);
  if (it == topics_.end()) return NotFoundError("topic " + *topic);
  std::int64_t lag = 0;
  for (std::size_t p = 0; p < it->second.partitions.size(); ++p) {
    const auto cit = committed->find(int(p));
    const std::int64_t done = cit == committed->end() ? 0 : cit->second;
    lag += std::max<std::int64_t>(
        it->second.partitions[p].high_water - done, 0);
  }
  return lag;
}

}  // namespace metro::mq
