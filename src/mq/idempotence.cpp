#include "mq/idempotence.h"

namespace metro::mq {

SequenceTable::Probe SequenceTable::Check(ProducerId producer,
                                          std::int64_t sequence) const {
  Probe probe;
  if (producer <= 0 || sequence < 0) return probe;  // not idempotent: fresh
  const auto it = producers_.find(producer);
  if (it == producers_.end() || sequence > it->second.last_sequence) {
    return probe;  // fresh
  }
  probe.verdict = Verdict::kDuplicate;
  probe.duplicate_offset =
      sequence == it->second.last_sequence ? it->second.last_offset : -1;
  return probe;
}

void SequenceTable::Observe(const Record& record) {
  if (record.producer_id <= 0 || record.sequence < 0) return;
  ProducerState& state = producers_[record.producer_id];
  if (record.sequence > state.last_sequence) {
    state.last_sequence = record.sequence;
    state.last_offset = record.offset;
  }
}

}  // namespace metro::mq
