#include "mq/idempotence.h"

namespace metro::mq {

SequenceTable::Probe SequenceTable::Check(ProducerId producer,
                                          std::int64_t sequence) const {
  Probe probe;
  if (producer <= 0 || sequence < 0) return probe;  // not idempotent: fresh
  const auto it = producers_.find(producer);
  if (it == producers_.end()) return probe;  // fresh
  const ProducerState& state = it->second;
  if (sequence <= state.too_old) {
    // Fell off the tracked window; appended-or-not is no longer known, so
    // neither appending nor suppressing is safe — the caller must reject.
    probe.verdict = Verdict::kTooOld;
    return probe;
  }
  if (sequence > state.contiguous && state.appended.count(sequence) == 0) {
    return probe;  // fresh: above the highest, or an unfilled gap (a retry
                   // of a prepared request that never landed)
  }
  probe.verdict = Verdict::kDuplicate;
  probe.duplicate_offset =
      sequence == state.last_sequence ? state.last_offset : -1;
  return probe;
}

void SequenceTable::Observe(const Record& record) {
  if (record.producer_id <= 0 || record.sequence < 0) return;
  ProducerState& state = producers_[record.producer_id];
  if (record.sequence <= state.contiguous ||
      state.appended.count(record.sequence) > 0) {
    return;  // already folded in (resync replays retained records)
  }
  state.appended.insert(record.sequence);
  if (record.sequence > state.last_sequence) {
    state.last_sequence = record.sequence;
    state.last_offset = record.offset;
  }
  // Collapse the contiguous prefix into the floor; in the common in-order
  // case the set holds at most one element at a time.
  auto it = state.appended.begin();
  while (it != state.appended.end() && *it == state.contiguous + 1) {
    state.contiguous = *it;
    it = state.appended.erase(it);
  }
  // Bound the sparse window. An unfilled gap (an abandoned prepared
  // request) below kMaxTracked later appends stops the contiguous collapse,
  // so on overflow the oldest gap is forgotten: every status at or below
  // the oldest tracked append becomes unknown (kTooOld on retry — an
  // explicit rejection, never a silent false duplicate).
  while (state.appended.size() > kMaxTracked) {
    const std::int64_t oldest = *state.appended.begin();
    state.too_old = oldest - 1;
    state.contiguous = oldest;
    state.appended.erase(state.appended.begin());
    auto next = state.appended.begin();
    while (next != state.appended.end() && *next == state.contiguous + 1) {
      state.contiguous = *next;
      next = state.appended.erase(next);
    }
  }
}

}  // namespace metro::mq
