#include "mq/idempotence.h"

namespace metro::mq {

SequenceTable::Probe SequenceTable::Check(ProducerId producer,
                                          std::int64_t sequence) const {
  return CheckRange(producer, sequence, 1);
}

SequenceTable::Probe SequenceTable::CheckRange(ProducerId producer,
                                               std::int64_t first,
                                               std::int64_t count) const {
  Probe probe;
  if (producer <= 0 || first < 0 || count <= 0) {
    return probe;  // not idempotent: fresh
  }
  const auto it = producers_.find(producer);
  if (it == producers_.end()) return probe;  // fresh
  const ProducerState& state = it->second;
  const std::int64_t last = first + count - 1;
  if (first <= state.too_old) {
    // Part of the range fell off the tracked window; appended-or-not is no
    // longer known, so neither appending nor suppressing is safe — the
    // caller must reject.
    probe.verdict = Verdict::kTooOld;
    return probe;
  }
  // Appended sequences in [first, last]: the contiguous-floor overlap plus
  // the sparse members above it.
  std::int64_t appended = 0;
  if (first <= state.contiguous) {
    appended += std::min(last, state.contiguous) - first + 1;
  }
  const std::int64_t sparse_from = std::max(first, state.contiguous + 1);
  for (auto sit = state.appended.lower_bound(sparse_from);
       sit != state.appended.end() && *sit <= last; ++sit) {
    ++appended;
  }
  if (appended == 0) {
    return probe;  // fresh: above the highest, or an unfilled gap (a retry
                   // of a prepared request that never landed)
  }
  if (appended < count) {
    // A pinned batch lands atomically (append + rollback are all-or-
    // nothing), so a half-appended range cannot be a legitimate retry.
    probe.verdict = Verdict::kOverlap;
    return probe;
  }
  probe.verdict = Verdict::kDuplicate;
  probe.duplicate_offset = last == state.last_sequence
                               ? state.last_offset - (count - 1)
                               : -1;
  return probe;
}

void SequenceTable::Observe(const Record& record) {
  if (record.producer_id <= 0 || record.sequence < 0) return;
  ProducerState& state = producers_[record.producer_id];
  if (record.sequence <= state.contiguous ||
      state.appended.count(record.sequence) > 0) {
    return;  // already folded in (resync replays retained records)
  }
  state.appended.insert(record.sequence);
  if (record.sequence > state.last_sequence) {
    state.last_sequence = record.sequence;
    state.last_offset = record.offset;
  }
  // Collapse the contiguous prefix into the floor; in the common in-order
  // case the set holds at most one element at a time.
  auto it = state.appended.begin();
  while (it != state.appended.end() && *it == state.contiguous + 1) {
    state.contiguous = *it;
    it = state.appended.erase(it);
  }
  // Bound the sparse window. An unfilled gap (an abandoned prepared
  // request) below kMaxTracked later appends stops the contiguous collapse,
  // so on overflow the oldest gap is forgotten: every status at or below
  // the oldest tracked append becomes unknown (kTooOld on retry — an
  // explicit rejection, never a silent false duplicate).
  while (state.appended.size() > kMaxTracked) {
    const std::int64_t oldest = *state.appended.begin();
    state.too_old = oldest - 1;
    state.contiguous = oldest;
    state.appended.erase(state.appended.begin());
    auto next = state.appended.begin();
    while (next != state.appended.end() && *next == state.contiguous + 1) {
      state.contiguous = *next;
      next = state.appended.erase(next);
    }
  }
}

METRO_NOALLOC void SequenceTable::ObserveRange(ProducerId producer,
                                               std::int64_t first,
                                               std::int64_t count,
                                               std::int64_t base_offset) {
  if (producer <= 0 || first < 0 || count <= 0) return;
  const auto it = producers_.find(producer);
  if (it != producers_.end()) {
    ProducerState& state = it->second;
    // In-order fast path: the range extends the contiguous prefix and no
    // gaps are outstanding — collapse it straight into the floor.
    if (first == state.contiguous + 1 && state.appended.empty()) {
      state.contiguous = first + count - 1;
      state.last_sequence = state.contiguous;
      state.last_offset = base_offset + count - 1;
      return;
    }
  }
  ObserveRangeSlow(producer, first, count, base_offset);
}

void SequenceTable::ObserveRangeSlow(ProducerId producer, std::int64_t first,
                                     std::int64_t count,
                                     std::int64_t base_offset) {
  Record rec;
  rec.producer_id = producer;
  for (std::int64_t i = 0; i < count; ++i) {
    rec.sequence = first + i;
    rec.offset = base_offset + i;
    Observe(rec);
  }
}

}  // namespace metro::mq
