#include "fog/fog.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

namespace metro::fog {

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kEdge: return "edge";
    case Tier::kFog: return "fog";
    case Tier::kAnalysisServer: return "server";
    case Tier::kCloud: return "cloud";
  }
  return "?";
}

FogTopology::FogTopology(const FogConfig& config) : config_(config) {
  assert(config_.num_edges > 0 && config_.edges_per_fog > 0 &&
         config_.fogs_per_server > 0);
  num_fogs_ = (config_.num_edges + config_.edges_per_fog - 1) /
              config_.edges_per_fog;
  num_servers_ =
      (num_fogs_ + config_.fogs_per_server - 1) / config_.fogs_per_server;

  for (int i = 0; i < config_.num_edges; ++i) {
    edges_.push_back(sim_.AddNode(
        {"edge-" + std::to_string(i), config_.edge_macs_per_s}));
  }
  for (int i = 0; i < num_fogs_; ++i) {
    fogs_.push_back(
        sim_.AddNode({"fog-" + std::to_string(i), config_.fog_macs_per_s}));
  }
  for (int i = 0; i < num_servers_; ++i) {
    servers_.push_back(sim_.AddNode(
        {"server-" + std::to_string(i), config_.server_macs_per_s}));
  }
  cloud_ = sim_.AddNode({"cloud", config_.cloud_macs_per_s});

  for (int i = 0; i < config_.num_edges; ++i) {
    (void)sim_.Connect(edges_[std::size_t(i)], fog_of_edge(i), config_.edge_fog);
  }
  for (int f = 0; f < num_fogs_; ++f) {
    (void)sim_.Connect(fogs_[std::size_t(f)], server_of_fog_index(f),
                       config_.fog_server);
  }
  for (int s = 0; s < num_servers_; ++s) {
    (void)sim_.Connect(servers_[std::size_t(s)], cloud_, config_.server_cloud);
  }
}

FogTopology::TierTraffic FogTopology::Traffic() const {
  TierTraffic t;
  for (int i = 0; i < config_.num_edges; ++i) {
    const auto stats = sim_.Stats(edges_[std::size_t(i)], fog_of_edge(i));
    if (stats.ok()) t.edge_to_fog += stats->bytes;
  }
  for (int f = 0; f < num_fogs_; ++f) {
    const auto stats =
        sim_.Stats(fogs_[std::size_t(f)], server_of_fog_index(f));
    if (stats.ok()) t.fog_to_server += stats->bytes;
  }
  for (int s = 0; s < num_servers_; ++s) {
    const auto stats = sim_.Stats(servers_[std::size_t(s)], cloud_);
    if (stats.ok()) t.server_to_cloud += stats->bytes;
  }
  return t;
}

double PipelineResult::AccuracyOver(const std::vector<WorkItem>& items) const {
  if (items.empty()) return 0;
  std::unordered_map<std::uint64_t, const WorkItem*> by_id;
  by_id.reserve(items.size());
  for (const WorkItem& item : items) by_id.emplace(item.id, &item);
  std::int64_t correct = 0;
  for (const ItemOutcome& o : outcomes) {
    if (o.dropped || o.failed) continue;
    const auto it = by_id.find(o.id);
    if (it == by_id.end()) continue;
    if (o.offloaded ? it->second->server_correct : it->second->local_correct) {
      ++correct;
    }
  }
  return double(correct) / double(items.size());
}

namespace {

/// Shared post-run bookkeeping: traffic deltas and latency aggregates.
void Summarize(PipelineResult& result, FogTopology& topology,
               const FogTopology::TierTraffic& before) {
  const auto after = topology.Traffic();
  result.traffic.edge_to_fog = after.edge_to_fog - before.edge_to_fog;
  result.traffic.fog_to_server = after.fog_to_server - before.fog_to_server;
  result.traffic.server_to_cloud =
      after.server_to_cloud - before.server_to_cloud;

  std::vector<TimeNs> latencies;
  for (const ItemOutcome& o : result.outcomes) {
    if (o.dropped) {
      ++result.items_dropped;
      continue;
    }
    if (o.failed) {
      ++result.items_failed;
      continue;
    }
    result.send_retries += o.retries;
    if (o.degraded) {
      ++result.items_degraded;
    } else {
      (o.offloaded ? result.items_offloaded : result.items_local) += 1;
    }
    latencies.push_back(o.latency);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0;
    for (const TimeNs l : latencies) sum += double(l);
    result.mean_latency_ms = sum / double(latencies.size()) / kMillisecond;
    result.p99_latency_ms =
        double(latencies[std::size_t(double(latencies.size() - 1) * 0.99)]) /
        kMillisecond;
  }
}

}  // namespace

PipelineResult RunEarlyExitPipeline(FogTopology& topology,
                                    std::vector<WorkItem> items,
                                    const FogComputeHooks& hooks) {
  net::Simulator& sim = topology.sim();
  auto result = std::make_shared<PipelineResult>();
  result->outcomes.reserve(items.size());
  const auto before = topology.Traffic();

  for (const WorkItem& item : items) {
    sim.ScheduleAt(item.arrival, [item, &topology, &sim, result, &hooks] {
      const net::NodeId edge = topology.edge(item.edge);
      const net::NodeId fog = topology.fog_of_edge(item.edge);
      const net::NodeId server = topology.server_of_edge(item.edge);
      const net::NodeId cloud = topology.cloud();
      const TimeNs start = sim.Now();

      auto finish = [item, result, start, &sim](bool offloaded, bool dropped,
                                                bool failed = false) {
        ItemOutcome outcome;
        outcome.id = item.id;
        outcome.completed = sim.Now();
        outcome.latency = sim.Now() - start;
        outcome.dropped = dropped;
        outcome.offloaded = offloaded;
        outcome.failed = failed;
        result->outcomes.push_back(outcome);
      };
      auto fail = [finish] { finish(false, false, true); };

      // Tier 1: elementary filtering on the edge device.
      (void)sim.Compute(edge, item.edge_filter_macs, [=, &sim, &topology] {
        if (item.dropped_by_edge_filter) {
          finish(false, true);
          return;
        }
        // Raw data moves edge -> fog.
        Status st = sim.Send(edge, fog, item.raw_bytes, [=, &sim] {
          // Tier 2: the split model's local half runs on the fog node.
          (void)sim.Compute(fog, item.local_macs, [=, &sim] {
            const bool local_exit = hooks.local_gate
                                        ? hooks.local_gate(item)
                                        : item.local_exit;
            if (local_exit) {
              // Confident: only the annotation travels upstream for storage.
              Status up = sim.Send(fog, server, item.annotation_bytes,
                                   [=, &sim] {
                (void)sim.Send(server, cloud, item.annotation_bytes,
                               [=] { finish(false, false); });
              });
              if (!up.ok()) fail();
              return;
            }
            // Not confident: ship the branch feature map to the server.
            Status off = sim.Send(fog, server, item.feature_bytes, [=, &sim] {
              (void)sim.Compute(server, item.server_macs, [=, &sim] {
                if (hooks.server_infer) hooks.server_infer(item);
                result->server_macs_total += double(item.server_macs);
                (void)sim.Send(server, cloud, item.annotation_bytes,
                               [=] { finish(true, false); });
              });
            });
            if (!off.ok()) fail();
          });
        });
        if (!st.ok()) fail();
      });
    });
  }

  sim.RunUntilIdle();
  Summarize(*result, topology, before);
  return std::move(*result);
}

namespace {

/// Per-item trace state: the root context plus a stage cursor. All of an
/// item's callbacks run sequentially on the simulator, so advancing the
/// cursor at each stage boundary yields contiguous stage spans whose
/// durations sum exactly to the item's end-to-end latency.
struct ItemTrace {
  obs::TraceContext root;
  TimeNs cursor = 0;
};

/// Per-run shared state for the resilient pipeline.
struct ResilientCtx {
  ResilientCtx(FogTopology& topo, const FogResilienceOptions& opts)
      : topology(&topo),
        sim(&topo.sim()),
        options(opts),
        breaker(opts.breaker, topo.sim().clock()),
        jitter(opts.retry, topo.sim().clock(), opts.seed) {}

  FogTopology* topology;
  net::Simulator* sim;
  FogResilienceOptions options;
  resilience::CircuitBreaker breaker;
  resilience::RetryPolicy jitter;  ///< used for BackoffFor only
  PipelineResult result;

  void Count(const char* name) {
    if (options.metrics != nullptr) {
      options.metrics->GetCounter(name).Increment();
    }
  }

  /// Closes the stage `[tr->cursor, now]` and advances the cursor.
  void Stage(const std::shared_ptr<ItemTrace>& tr, const char* name) {
    if (options.spans == nullptr || !tr->root.valid()) return;
    const TimeNs now = sim->Now();
    obs::Span span;
    span.name = name;
    span.context = options.spans->Child(tr->root);
    span.kind = obs::SpanKind::kStage;
    span.start = tr->cursor;
    span.end = now;
    options.spans->Record(std::move(span));
    tr->cursor = now;
  }

  /// Marks the item's trace degraded with the fallback cause.
  void MarkDegraded(const std::shared_ptr<ItemTrace>& tr, const char* cause) {
    if (options.spans == nullptr || !tr->root.valid()) return;
    options.spans->Event("degrade", options.spans->Child(tr->root),
                         {{"degraded", cause}});
  }

  /// Sends with retries on simulated time. `deadline_at` bounds the retry
  /// schedule (<= 0 means unbounded). `on_give_up(deadline_exceeded)` fires
  /// when the attempts or the deadline budget are exhausted. Each backoff
  /// wait is recorded as a `retry.backoff` overlay span on `trace` — it
  /// annotates time the enclosing stage span already covers.
  void SendWithRetry(net::NodeId from, net::NodeId to, std::uint64_t bytes,
                     TimeNs deadline_at, int* retry_slot,
                     obs::TraceContext trace,
                     std::function<void()> on_delivery,
                     std::function<void(bool)> on_give_up, int attempt = 1) {
    Status st = sim->Send(from, to, bytes, on_delivery);
    if (st.ok()) return;
    if (attempt >= options.retry.max_attempts) {
      on_give_up(false);
      return;
    }
    const TimeNs backoff = jitter.BackoffFor(attempt);
    if (deadline_at > 0 && sim->Now() + backoff >= deadline_at) {
      on_give_up(true);
      return;
    }
    if (retry_slot != nullptr) ++*retry_slot;
    Count("fog.retries");
    if (options.spans != nullptr && trace.valid()) {
      obs::Span span;
      span.name = "retry.backoff";
      span.context = options.spans->Child(trace);
      span.kind = obs::SpanKind::kOverlay;
      span.start = sim->Now();
      span.end = sim->Now() + backoff;
      span.SetTag("retried", "true");
      span.SetTag("attempt", std::to_string(attempt));
      options.spans->Record(std::move(span));
    }
    sim->ScheduleAfter(backoff, [=, this] {
      SendWithRetry(from, to, bytes, deadline_at, retry_slot, trace,
                    std::move(on_delivery), std::move(on_give_up),
                    attempt + 1);
    });
  }
};

}  // namespace

PipelineResult RunResilientPipeline(FogTopology& topology,
                                    std::vector<WorkItem> items,
                                    const FogResilienceOptions& options) {
  auto ctx = std::make_shared<ResilientCtx>(topology, options);
  net::Simulator& sim = *ctx->sim;
  ctx->result.outcomes.reserve(items.size());
  const auto before = topology.Traffic();

  if (options.spans != nullptr) {
    // Breaker transitions are run-scoped, not item-scoped: they land as
    // event markers on one trace for the whole run. The listener captures
    // raw pointers (not ctx) so the breaker does not own its owner.
    obs::SpanCollector* spans = options.spans;
    const obs::TraceContext run_trace = spans->StartTrace();
    ctx->breaker.SetStateListener(
        [spans, run_trace](resilience::CircuitBreaker::State from,
                           resilience::CircuitBreaker::State to) {
          spans->Event(
              "breaker." + std::string(resilience::BreakerStateName(to)),
              spans->Child(run_trace),
              {{"from", std::string(resilience::BreakerStateName(from))},
               {"to", std::string(resilience::BreakerStateName(to))}});
        });
  }

  for (const WorkItem& item : items) {
    sim.ScheduleAt(item.arrival, [item, ctx] {
      net::Simulator& sim = *ctx->sim;
      FogTopology& topology = *ctx->topology;
      const net::NodeId edge = topology.edge(item.edge);
      const net::NodeId fog = topology.fog_of_edge(item.edge);
      const net::NodeId server = topology.server_of_edge(item.edge);
      const net::NodeId cloud = topology.cloud();
      const TimeNs start = sim.Now();

      // Each item's retry count lives on the shared context until the item
      // finishes (the outcome is built at completion time).
      auto retries = std::make_shared<int>(0);
      auto tr = std::make_shared<ItemTrace>();
      if (ctx->options.spans != nullptr) {
        tr->root = ctx->options.spans->StartTrace();
        tr->cursor = start;
      }
      auto finish = [item, ctx, start, retries](bool offloaded, bool dropped,
                                                bool degraded, bool failed) {
        ItemOutcome outcome;
        outcome.id = item.id;
        outcome.completed = ctx->sim->Now();
        outcome.latency = ctx->sim->Now() - start;
        outcome.dropped = dropped;
        outcome.offloaded = offloaded;
        outcome.degraded = degraded;
        outcome.failed = failed;
        outcome.retries = *retries;
        ctx->result.outcomes.push_back(outcome);
      };

      // Tier 1: elementary filtering on the edge device.
      (void)sim.Compute(edge, item.edge_filter_macs, [=, &sim, &topology] {
        ctx->Stage(tr, "edge.filter");
        if (item.dropped_by_edge_filter) {
          finish(false, true, false, false);
          return;
        }
        // Raw data moves edge -> fog, with retries; an unreachable fog
        // uplink is the one hard failure (no compute tier to fall back to).
        ctx->SendWithRetry(
            edge, fog, item.raw_bytes, /*deadline_at=*/0, retries.get(),
            tr->root,
            [=, &sim] {
              ctx->Stage(tr, "edge.uplink");
              // Tier 2: the split model's local half runs on the fog node.
              (void)sim.Compute(fog, item.local_macs, [=, &sim] {
                const bool local_exit =
                    ctx->options.hooks.local_gate
                        ? ctx->options.hooks.local_gate(item)
                        : item.local_exit;
                ctx->Stage(tr, "fog.local");
                // The local answer now exists; nothing past this point may
                // hard-fail the item.
                auto degrade = [=](const char* counter) {
                  ctx->Count(counter);
                  ctx->MarkDegraded(tr, counter);
                  finish(false, false, true, false);
                };

                if (local_exit) {
                  // Confident: annotation travels upstream for storage. If
                  // the uplink stays down the answer is still served
                  // locally — a degraded success, not an error. Both hops
                  // roll up into one `upstream.annotation` stage.
                  ctx->SendWithRetry(
                      fog, server, item.annotation_bytes, 0, retries.get(),
                      tr->root,
                      [=, &sim] {
                        Status up = sim.Send(server, cloud,
                                             item.annotation_bytes, [=] {
                          ctx->Stage(tr, "upstream.annotation");
                          finish(false, false, false, false);
                        });
                        if (!up.ok()) {
                          ctx->Stage(tr, "upstream.annotation");
                          degrade("fog.degraded.annotation_upstream");
                        }
                      },
                      [=](bool) {
                        ctx->Stage(tr, "upstream.annotation");
                        degrade("fog.degraded.annotation_upstream");
                      });
                  return;
                }

                // Wants the server. Fast-fail on an open breaker.
                const TimeNs deadline_at =
                    ctx->options.offload_deadline > 0
                        ? sim.Now() + ctx->options.offload_deadline
                        : 0;
                if (!ctx->breaker.Allow()) {
                  degrade("fog.degraded.server_unavailable");
                  return;
                }
                ctx->SendWithRetry(
                    fog, server, item.feature_bytes, deadline_at,
                    retries.get(), tr->root,
                    [=, &sim] {
                      ctx->Stage(tr, "offload.transfer");
                      ctx->breaker.RecordSuccess();
                      (void)sim.Compute(server, item.server_macs, [=, &sim] {
                        if (ctx->options.hooks.server_infer) {
                          ctx->options.hooks.server_infer(item);
                        }
                        ctx->Stage(tr, "server.compute");
                        ctx->result.server_macs_total +=
                            double(item.server_macs);
                        // The server answered; a failed archive hop does not
                        // demote the item, it just defers the annotation.
                        Status up = sim.Send(server, cloud,
                                             item.annotation_bytes, [=] {
                          ctx->Stage(tr, "cloud.annotate");
                          finish(true, false, false, false);
                        });
                        if (!up.ok()) {
                          ctx->Count("fog.annotation_deferred.cloud");
                          finish(true, false, false, false);
                        }
                      });
                    },
                    [=](bool deadline_exceeded) {
                      ctx->Stage(tr, "offload.transfer");
                      ctx->breaker.RecordFailure();
                      degrade(deadline_exceeded
                                  ? "fog.degraded.offload_deadline"
                                  : "fog.degraded.offload_failed");
                    });
              });
            },
            [=](bool) {
              ctx->Stage(tr, "edge.uplink");
              ctx->Count("fog.failed.edge_uplink");
              finish(false, false, false, true);
            });
      });
    });
  }

  sim.RunUntilIdle();
  Summarize(ctx->result, topology, before);
  return std::move(ctx->result);
}

}  // namespace metro::fog
