#include "fog/fog.h"

#include <algorithm>
#include <cassert>

namespace metro::fog {

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kEdge: return "edge";
    case Tier::kFog: return "fog";
    case Tier::kAnalysisServer: return "server";
    case Tier::kCloud: return "cloud";
  }
  return "?";
}

FogTopology::FogTopology(const FogConfig& config) : config_(config) {
  assert(config_.num_edges > 0 && config_.edges_per_fog > 0 &&
         config_.fogs_per_server > 0);
  num_fogs_ = (config_.num_edges + config_.edges_per_fog - 1) /
              config_.edges_per_fog;
  num_servers_ =
      (num_fogs_ + config_.fogs_per_server - 1) / config_.fogs_per_server;

  for (int i = 0; i < config_.num_edges; ++i) {
    edges_.push_back(sim_.AddNode(
        {"edge-" + std::to_string(i), config_.edge_macs_per_s}));
  }
  for (int i = 0; i < num_fogs_; ++i) {
    fogs_.push_back(
        sim_.AddNode({"fog-" + std::to_string(i), config_.fog_macs_per_s}));
  }
  for (int i = 0; i < num_servers_; ++i) {
    servers_.push_back(sim_.AddNode(
        {"server-" + std::to_string(i), config_.server_macs_per_s}));
  }
  cloud_ = sim_.AddNode({"cloud", config_.cloud_macs_per_s});

  for (int i = 0; i < config_.num_edges; ++i) {
    (void)sim_.Connect(edges_[std::size_t(i)], fog_of_edge(i), config_.edge_fog);
  }
  for (int f = 0; f < num_fogs_; ++f) {
    (void)sim_.Connect(fogs_[std::size_t(f)], server_of_fog_index(f),
                       config_.fog_server);
  }
  for (int s = 0; s < num_servers_; ++s) {
    (void)sim_.Connect(servers_[std::size_t(s)], cloud_, config_.server_cloud);
  }
}

FogTopology::TierTraffic FogTopology::Traffic() const {
  TierTraffic t;
  for (int i = 0; i < config_.num_edges; ++i) {
    const auto stats = sim_.Stats(edges_[std::size_t(i)], fog_of_edge(i));
    if (stats.ok()) t.edge_to_fog += stats->bytes;
  }
  for (int f = 0; f < num_fogs_; ++f) {
    const auto stats =
        sim_.Stats(fogs_[std::size_t(f)], server_of_fog_index(f));
    if (stats.ok()) t.fog_to_server += stats->bytes;
  }
  for (int s = 0; s < num_servers_; ++s) {
    const auto stats = sim_.Stats(servers_[std::size_t(s)], cloud_);
    if (stats.ok()) t.server_to_cloud += stats->bytes;
  }
  return t;
}

PipelineResult RunEarlyExitPipeline(FogTopology& topology,
                                    std::vector<WorkItem> items) {
  net::Simulator& sim = topology.sim();
  auto result = std::make_shared<PipelineResult>();
  result->outcomes.reserve(items.size());
  const auto before = topology.Traffic();

  for (const WorkItem& item : items) {
    sim.ScheduleAt(item.arrival, [item, &topology, &sim, result] {
      const net::NodeId edge = topology.edge(item.edge);
      const net::NodeId fog = topology.fog_of_edge(item.edge);
      const net::NodeId server = topology.server_of_edge(item.edge);
      const net::NodeId cloud = topology.cloud();
      const TimeNs start = sim.Now();

      auto finish = [item, result, start, &sim](bool offloaded, bool dropped) {
        ItemOutcome outcome;
        outcome.id = item.id;
        outcome.completed = sim.Now();
        outcome.latency = sim.Now() - start;
        outcome.dropped = dropped;
        outcome.offloaded = offloaded;
        result->outcomes.push_back(outcome);
      };

      // Tier 1: elementary filtering on the edge device.
      (void)sim.Compute(edge, item.edge_filter_macs, [=, &sim, &topology] {
        if (item.dropped_by_edge_filter) {
          finish(false, true);
          return;
        }
        // Raw data moves edge -> fog.
        (void)sim.Send(edge, fog, item.raw_bytes, [=, &sim] {
          // Tier 2: the split model's local half runs on the fog node.
          (void)sim.Compute(fog, item.local_macs, [=, &sim] {
            if (item.local_exit) {
              // Confident: only the annotation travels upstream for storage.
              (void)sim.Send(fog, server, item.annotation_bytes, [=, &sim] {
                (void)sim.Send(server, cloud, item.annotation_bytes,
                               [=] { finish(false, false); });
              });
              return;
            }
            // Not confident: ship the branch feature map to the server.
            (void)sim.Send(fog, server, item.feature_bytes, [=, &sim] {
              (void)sim.Compute(server, item.server_macs, [=, &sim] {
                result->server_macs_total += double(item.server_macs);
                (void)sim.Send(server, cloud, item.annotation_bytes,
                               [=] { finish(true, false); });
              });
            });
          });
        });
      });
    });
  }

  sim.RunUntilIdle();

  const auto after = topology.Traffic();
  result->traffic.edge_to_fog = after.edge_to_fog - before.edge_to_fog;
  result->traffic.fog_to_server = after.fog_to_server - before.fog_to_server;
  result->traffic.server_to_cloud =
      after.server_to_cloud - before.server_to_cloud;

  std::vector<TimeNs> latencies;
  for (const ItemOutcome& o : result->outcomes) {
    if (o.dropped) {
      ++result->items_dropped;
      continue;
    }
    (o.offloaded ? result->items_offloaded : result->items_local) += 1;
    latencies.push_back(o.latency);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0;
    for (const TimeNs l : latencies) sum += double(l);
    result->mean_latency_ms = sum / double(latencies.size()) / kMillisecond;
    result->p99_latency_ms =
        double(latencies[std::size_t(double(latencies.size() - 1) * 0.99)]) /
        kMillisecond;
  }
  return std::move(*result);
}

}  // namespace metro::fog
