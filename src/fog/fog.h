#pragma once

// Four-tier fog computing model (Fig. 3, Sec. II-B1).
//
// Edge devices collect sensor/camera data and do elementary filtering; fog
// nodes run the first layers of a split model and ship only annotations
// upstream when confident; analysis servers run the remaining layers on
// shipped feature maps; the federated cloud stores annotated data. Built on
// the discrete-event network simulator so per-tier latency and traffic are
// measured quantities.

#include <cstdint>
#include <functional>
#include <vector>

#include "net/simulator.h"
#include "obs/trace.h"
#include "util/analysis.h"
#include "resilience/policy.h"
#include "util/metrics.h"

namespace metro::fog {

/// The four tiers of Fig. 3.
enum class Tier { kEdge = 0, kFog = 1, kAnalysisServer = 2, kCloud = 3 };

/// Human-readable tier name ("edge", "fog", ...).
std::string_view TierName(Tier tier);

/// Topology and device ratings. Defaults approximate the paper's hardware:
/// Raspberry-Pi-class edges, Jetson-class fog nodes, GPU analysis servers,
/// and a datacenter cloud, linked by last-mile / regional (LONI) / backbone
/// (Internet2) classes of links.
struct FogConfig {
  int num_edges = 8;
  int edges_per_fog = 4;
  int fogs_per_server = 2;

  double edge_macs_per_s = 5e8;
  double fog_macs_per_s = 1e10;
  double server_macs_per_s = 2e11;
  double cloud_macs_per_s = 8e11;

  net::LinkSpec edge_fog{20e6, 2 * kMillisecond};       // last-mile wireless
  net::LinkSpec fog_server{200e6, 5 * kMillisecond};    // regional network
  net::LinkSpec server_cloud{1e9, 15 * kMillisecond};   // Internet2 backbone
};

/// The instantiated tree: edges -> fog nodes -> analysis servers -> cloud.
class FogTopology {
 public:
  explicit FogTopology(const FogConfig& config);

  const FogConfig& config() const { return config_; }
  net::Simulator& sim() METRO_LIFETIME_BOUND { return sim_; }

  int num_edges() const { return config_.num_edges; }
  int num_fogs() const { return num_fogs_; }
  int num_servers() const { return num_servers_; }

  net::NodeId edge(int i) const { return edges_[std::size_t(i)]; }
  net::NodeId fog_node(int f) const { return fogs_[std::size_t(f)]; }
  net::NodeId server(int s) const { return servers_[std::size_t(s)]; }
  net::NodeId fog_of_edge(int i) const {
    return fogs_[std::size_t(i / config_.edges_per_fog)];
  }
  net::NodeId server_of_fog_index(int fog_index) const {
    return servers_[std::size_t(fog_index / config_.fogs_per_server)];
  }
  net::NodeId server_of_edge(int i) const {
    return server_of_fog_index(i / config_.edges_per_fog);
  }
  net::NodeId cloud() const { return cloud_; }

  /// Bytes that crossed each tier boundary so far.
  struct TierTraffic {
    std::uint64_t edge_to_fog = 0;
    std::uint64_t fog_to_server = 0;
    std::uint64_t server_to_cloud = 0;
  };
  TierTraffic Traffic() const;

 private:
  FogConfig config_;
  net::Simulator sim_;
  int num_fogs_ = 0;
  int num_servers_ = 0;
  std::vector<net::NodeId> edges_;
  std::vector<net::NodeId> fogs_;
  std::vector<net::NodeId> servers_;
  net::NodeId cloud_ = -1;
};

/// One unit of work entering the pipeline at an edge device (a frame, a
/// clip, a sensor batch). The gate decisions are inputs: the DNN benches
/// compute them from real trained models, the synthetic benches draw them
/// from distributions.
struct WorkItem {
  std::uint64_t id = 0;
  int edge = 0;                     ///< source edge index
  TimeNs arrival = 0;               ///< when the edge produces it
  std::uint64_t raw_bytes = 0;      ///< raw payload size (edge -> fog)
  std::uint64_t feature_bytes = 0;  ///< branch feature map (fog -> server)
  std::uint64_t annotation_bytes = 256;  ///< annotated result (upstream)
  std::uint64_t edge_filter_macs = 0;    ///< elementary filtering cost
  std::uint64_t local_macs = 0;          ///< split-model local half (fog)
  std::uint64_t server_macs = 0;         ///< split-model server half
  bool dropped_by_edge_filter = false;   ///< edge filtering discards it
  bool local_exit = true;                ///< local gate accepts (no offload)
  bool local_correct = true;   ///< the local (early-exit) answer is right
  bool server_correct = true;  ///< the server (full-model) answer is right
};

/// Per-item outcome.
struct ItemOutcome {
  std::uint64_t id = 0;
  TimeNs completed = 0;
  TimeNs latency = 0;
  bool dropped = false;
  bool offloaded = false;
  bool degraded = false;  ///< wanted the server but fell back to local
  bool failed = false;    ///< no answer produced (hard failure)
  int retries = 0;        ///< link sends retried for this item
};

/// Aggregate pipeline results.
struct PipelineResult {
  std::vector<ItemOutcome> outcomes;
  FogTopology::TierTraffic traffic;
  std::int64_t items_dropped = 0;
  std::int64_t items_local = 0;
  std::int64_t items_offloaded = 0;
  std::int64_t items_degraded = 0;  ///< answered locally under degradation
  std::int64_t items_failed = 0;    ///< hard failures (no answer at all)
  std::int64_t send_retries = 0;    ///< total link-send retries
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
  double server_macs_total = 0;  ///< compute spent on analysis servers

  /// Fraction of non-dropped items that produced an answer (degraded local
  /// answers count; hard failures do not).
  double Availability() const {
    const std::int64_t answered =
        items_local + items_offloaded + items_degraded;
    const std::int64_t total = answered + items_failed;
    return total == 0 ? 1.0 : double(answered) / double(total);
  }

  /// Deployed accuracy given the per-item correctness flags: offloaded items
  /// use the server answer, everything else (local exits and degraded
  /// fallbacks) the local answer. Dropped and failed items score as wrong.
  double AccuracyOver(const std::vector<WorkItem>& items) const;
};

/// Optional real-inference callbacks for the pipelines. The simulator prices
/// compute in MACs on simulated time; when hooks are set, the pipelines
/// additionally drive real model inference (e.g. a zoo session bound to an
/// arena) at the matching stages, on the caller's wall clock:
///   local_gate   — invoked when the `fog.local` stage completes; runs the
///                  local half for the item and returns whether the early
///                  exit accepts. Overrides `item.local_exit`.
///   server_infer — invoked when the `server.compute` stage completes for an
///                  offloaded item; runs the server half.
/// Sessions emit their own infer.plan / infer.exec / infer.gate spans into a
/// wall-clock SpanCollector; the pipelines' sim-clock stage spans are
/// unaffected.
struct FogComputeHooks {
  std::function<bool(const WorkItem&)> local_gate;
  std::function<void(const WorkItem&)> server_infer;
};

/// Tuning for `RunResilientPipeline`.
struct FogResilienceOptions {
  /// Per-send retry schedule (backoff waits run on simulated time).
  resilience::RetryConfig retry{
      .max_attempts = 3,
      .initial_backoff = 4 * kMillisecond,
      .max_backoff = 64 * kMillisecond,
      .multiplier = 2.0,
      .jitter = 0.2,
      .deadline = 0,
  };
  /// Breaker guarding the analysis-server tier, driven by simulated time.
  resilience::BreakerConfig breaker{
      .failure_threshold = 3,
      .cooldown = 200 * kMillisecond,
      .half_open_probes = 1,
  };
  /// Total budget for the offload path, measured from the offload decision;
  /// when it cannot be met the item degrades to its local answer. 0 = none.
  TimeNs offload_deadline = 400 * kMillisecond;
  /// Optional per-tier degradation/retry counters
  /// (`fog.degraded.*`, `fog.failed.*`, `fog.retries`).
  MetricsRegistry* metrics = nullptr;
  /// Optional tracer. When set, every item gets a trace with contiguous
  /// stage spans per tier hop (`edge.filter`, `edge.uplink`, `fog.local`,
  /// then `upstream.annotation` or `offload.transfer` / `server.compute` /
  /// `cloud.annotate`), `retry.backoff` overlays around retried sends, and
  /// `degrade` / breaker-transition event markers. The collector should run
  /// on the topology's simulated clock (`topology.sim().clock()`).
  obs::SpanCollector* spans = nullptr;
  std::uint64_t seed = 19;  ///< retry jitter
  /// Optional real-model inference at fog.local / server.compute.
  FogComputeHooks hooks;
};

/// Runs a batch of work items through the Fig. 3 pipeline on `topology`:
/// edge filter -> raw to fog -> local half -> (exit: annotation upstream |
/// offload: feature map to server -> server half -> annotation to cloud).
/// Send failures (downed links) leave the item `failed` — this is the
/// baseline without the resilience layer. When `hooks` are set, real model
/// inference runs at the fog.local / server.compute stages and the gate
/// outcome replaces each item's precomputed `local_exit`.
PipelineResult RunEarlyExitPipeline(FogTopology& topology,
                                    std::vector<WorkItem> items,
                                    const FogComputeHooks& hooks = {});

/// The same pipeline wrapped in the resilience layer: link sends retry with
/// jittered exponential backoff on simulated time; a circuit breaker guards
/// the analysis-server tier; and when the server is unreachable, the breaker
/// is open, or the offload deadline cannot be met, items that wanted the
/// server fall back to their local answer and complete `degraded` instead of
/// failing. Only an unreachable fog uplink (edge -> fog, after retries) still
/// hard-fails an item — there is nowhere to compute even a local answer.
PipelineResult RunResilientPipeline(FogTopology& topology,
                                    std::vector<WorkItem> items,
                                    const FogResilienceOptions& options);

}  // namespace metro::fog
