#include "nn/serialize.h"

namespace metro::nn {

std::string SaveParams(const std::vector<Param*>& params) {
  ByteWriter w;
  w.PutU32(0x4d4e4e31);  // "MNN1"
  w.PutVarint(params.size());
  for (const Param* p : params) {
    w.PutString(p->name);
    w.PutVarint(p->value.shape().size());
    for (const int d : p->value.shape()) w.PutVarint(std::uint64_t(d));
    for (const float v : p->value.data()) w.PutF32(v);
  }
  const std::uint32_t crc = Crc32c(w.data());
  w.PutU32(crc);
  return std::move(w).data();
}

Status LoadParams(const std::vector<Param*>& params, std::string_view bytes) {
  if (bytes.size() < 8) return CorruptionError("checkpoint too small");
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  ByteReader crc_reader(bytes.substr(bytes.size() - 4));
  METRO_ASSIGN_OR_RETURN(const std::uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32c(body) != stored_crc) {
    return CorruptionError("checkpoint checksum mismatch");
  }

  ByteReader r(body);
  METRO_ASSIGN_OR_RETURN(const std::uint32_t magic, r.GetU32());
  if (magic != 0x4d4e4e31) return CorruptionError("bad checkpoint magic");
  METRO_ASSIGN_OR_RETURN(const std::uint64_t count, r.GetVarint());
  if (count != params.size()) {
    return InvalidArgumentError("checkpoint has " + std::to_string(count) +
                                " params, model has " +
                                std::to_string(params.size()));
  }
  for (Param* p : params) {
    METRO_ASSIGN_OR_RETURN(const std::string name, r.GetString());
    (void)name;  // informational; matching is positional
    METRO_ASSIGN_OR_RETURN(const std::uint64_t rank, r.GetVarint());
    tensor::Shape shape(rank);
    for (auto& d : shape) {
      METRO_ASSIGN_OR_RETURN(const std::uint64_t dim, r.GetVarint());
      d = int(dim);
    }
    if (shape != p->value.shape()) {
      return InvalidArgumentError("shape mismatch for param " + p->name +
                                  ": checkpoint " + tensor::ShapeToString(shape) +
                                  " vs model " +
                                  tensor::ShapeToString(p->value.shape()));
    }
    for (auto& v : p->value.data()) {
      METRO_ASSIGN_OR_RETURN(v, r.GetF32());
    }
  }
  return Status::Ok();
}

namespace {

void WriteTensor(ByteWriter& w, const tensor::Tensor& t) {
  w.PutVarint(t.shape().size());
  for (const int d : t.shape()) w.PutVarint(std::uint64_t(d));
  for (const float v : t.data()) w.PutF32(v);
}

Status ReadTensorInto(ByteReader& r, tensor::Tensor& t) {
  METRO_ASSIGN_OR_RETURN(const std::uint64_t rank, r.GetVarint());
  tensor::Shape shape(rank);
  for (auto& d : shape) {
    METRO_ASSIGN_OR_RETURN(const std::uint64_t dim, r.GetVarint());
    d = int(dim);
  }
  if (shape != t.shape()) {
    return InvalidArgumentError("buffer shape mismatch: checkpoint " +
                                tensor::ShapeToString(shape) + " vs model " +
                                tensor::ShapeToString(t.shape()));
  }
  for (auto& v : t.data()) {
    METRO_ASSIGN_OR_RETURN(v, r.GetF32());
  }
  return Status::Ok();
}

}  // namespace

std::string SaveCheckpoint(const std::vector<Param*>& params,
                           const std::vector<tensor::Tensor*>& buffers) {
  ByteWriter w;
  w.PutU32(0x4d4e4e32);  // "MNN2"
  w.PutVarint(params.size());
  for (const Param* p : params) {
    w.PutString(p->name);
    WriteTensor(w, p->value);
  }
  w.PutVarint(buffers.size());
  for (const tensor::Tensor* b : buffers) WriteTensor(w, *b);
  const std::uint32_t crc = Crc32c(w.data());
  w.PutU32(crc);
  return std::move(w).data();
}

Status LoadCheckpoint(const std::vector<Param*>& params,
                      const std::vector<tensor::Tensor*>& buffers,
                      std::string_view bytes) {
  if (bytes.size() < 8) return CorruptionError("checkpoint too small");
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  ByteReader crc_reader(bytes.substr(bytes.size() - 4));
  METRO_ASSIGN_OR_RETURN(const std::uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32c(body) != stored_crc) {
    return CorruptionError("checkpoint checksum mismatch");
  }
  ByteReader r(body);
  METRO_ASSIGN_OR_RETURN(const std::uint32_t magic, r.GetU32());
  if (magic != 0x4d4e4e32) return CorruptionError("bad checkpoint magic");
  METRO_ASSIGN_OR_RETURN(const std::uint64_t param_count, r.GetVarint());
  if (param_count != params.size()) {
    return InvalidArgumentError("checkpoint param count mismatch");
  }
  for (Param* p : params) {
    METRO_ASSIGN_OR_RETURN(const std::string name, r.GetString());
    (void)name;
    METRO_RETURN_IF_ERROR(ReadTensorInto(r, p->value));
  }
  METRO_ASSIGN_OR_RETURN(const std::uint64_t buffer_count, r.GetVarint());
  if (buffer_count != buffers.size()) {
    return InvalidArgumentError("checkpoint buffer count mismatch");
  }
  for (tensor::Tensor* b : buffers) {
    METRO_RETURN_IF_ERROR(ReadTensorInto(r, *b));
  }
  return Status::Ok();
}

}  // namespace metro::nn
