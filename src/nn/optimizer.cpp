#include "nn/optimizer.h"

#include <cmath>

namespace metro::nn {

void Sgd::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    auto [it, inserted] = velocity_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& vel = it->second;
    auto v = vel.data();
    auto val = p->value.data();
    auto g = p->grad.data();
    for (std::size_t i = 0; i < v.size(); ++i) {
      float grad = g[i] + weight_decay_ * val[i];
      v[i] = momentum_ * v[i] + grad;
      val[i] -= lr_ * v[i];
    }
    p->ZeroGrad();
  }
}

void Adam::Step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, float(t_));
  const float bc2 = 1.0f - std::pow(beta2_, float(t_));
  for (Param* p : params) {
    auto [it, inserted] = slots_.try_emplace(
        p, Slot{Tensor(p->value.shape()), Tensor(p->value.shape())});
    Slot& slot = it->second;
    auto m = slot.m.data();
    auto v = slot.v.data();
    auto val = p->value.data();
    auto g = p->grad.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
      m[i] = beta1_ * m[i] + (1 - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1 - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->ZeroGrad();
  }
}

void ClipGradNorm(const std::vector<Param*>& params, float max_norm) {
  double sq = 0.0;
  for (const Param* p : params) {
    for (const float g : p->grad.data()) sq += double(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = float(max_norm / norm);
  for (Param* p : params) {
    for (auto& g : p->grad.data()) g *= scale;
  }
}

}  // namespace metro::nn
