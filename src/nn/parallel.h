#pragma once

// Data-parallel training (Sec. II-C1: the paper picks its DL framework
// because it "provides model and data parallelism and can be easily
// distributed among multiple nodes and multiple workers per node").
//
// Synchronous data parallelism over a thread pool: N architecturally
// identical replicas each process a shard of the batch; shard gradients are
// averaged (weighted by shard size) into the master replica, the optimizer
// steps the master, and updated weights broadcast back. One Step() is
// numerically equivalent to a full-batch step on a single model (modulo
// floating-point summation order; BatchNorm layers would use per-shard
// batch statistics, as in synchronous multi-worker practice).

#include <functional>
#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/thread_pool.h"

namespace metro::nn {

/// Synchronous data-parallel trainer for Sequential classifiers.
class DataParallelTrainer {
 public:
  /// `factory` must build architecturally identical models (weights may
  /// differ; the master's are broadcast before every step).
  DataParallelTrainer(std::function<Sequential()> factory, int replicas,
                      ThreadPool& pool);

  /// One synchronous step of cross-entropy training on (x, labels).
  /// Returns the full-batch loss and accuracy.
  StepStats Step(const Tensor& x, const std::vector<int>& labels,
                 Optimizer& optimizer);

  /// The master model (for evaluation / checkpointing).
  Sequential& master() { return replicas_.front(); }

  int num_replicas() const { return int(replicas_.size()); }

 private:
  void Broadcast();

  std::vector<Sequential> replicas_;
  ThreadPool* pool_;
};

}  // namespace metro::nn
