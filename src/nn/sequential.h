#pragma once

// Sequential model container and training utilities.

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace metro::nn {

/// A straight-line stack of layers.
///
/// Building block for the zoo models; the split architectures of Figs. 5 and 7
/// are expressed as two Sequential halves joined by an exit gate.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Runs all layers.
  Tensor Forward(const Tensor& x, bool training);

  /// Backpropagates through all layers, accumulating parameter grads.
  Tensor Backward(const Tensor& grad_out);

  /// All trainable parameters in layer order.
  std::vector<Param*> Params();

  /// All non-trainable checkpoint state (BatchNorm running stats) in order.
  std::vector<Tensor*> Buffers();

  void ZeroGrads();

  /// Total multiply-accumulates for one forward pass at `input_shape`.
  std::size_t ForwardMacs(const Shape& input_shape) const;

  /// Shape this stack produces for `input_shape`.
  Shape OutputShape(const Shape& input_shape) const;

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// "conv3x3x16 -> relu -> maxpool2/s2 -> dense256x10"
  std::string Summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// One optimizer step result for progress tracking.
struct StepStats {
  float loss = 0.0f;
  float accuracy = 0.0f;
};

}  // namespace metro::nn
