#include "nn/sequential.h"

namespace metro::nn {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h, training);
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor*> Sequential::Buffers() {
  std::vector<Tensor*> buffers;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->Buffers()) buffers.push_back(b);
  }
  return buffers;
}

void Sequential::ZeroGrads() {
  for (Param* p : Params()) p->ZeroGrad();
}

std::size_t Sequential::ForwardMacs(const Shape& input_shape) const {
  std::size_t total = 0;
  Shape shape = input_shape;
  for (const auto& layer : layers_) {
    total += layer->ForwardMacs(shape);
    shape = layer->OutputShape(shape);
  }
  return total;
}

Shape Sequential::OutputShape(const Shape& input_shape) const {
  Shape shape = input_shape;
  for (const auto& layer : layers_) shape = layer->OutputShape(shape);
  return shape;
}

std::string Sequential::Summary() const {
  std::string s;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) s += " -> ";
    s += layers_[i]->name();
  }
  return s;
}

}  // namespace metro::nn
