#include "nn/lstm.h"

#include <cmath>

namespace metro::nn {

using tensor::MatMul;
using tensor::MatMulTransposeA;
using tensor::MatMulTransposeB;

Lstm::Lstm(int input_size, int hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      wx_("wx", Tensor::HeNormal({input_size, 4 * hidden_size}, input_size, rng)),
      wh_("wh",
          Tensor::HeNormal({hidden_size, 4 * hidden_size}, hidden_size, rng)),
      b_("b", Tensor({4 * hidden_size})) {
  // Forget-gate bias (+1) — second block of the packed layout.
  auto bd = b_.value.data();
  for (int j = hidden_; j < 2 * hidden_; ++j) bd[j] = 1.0f;
}

std::vector<Tensor> Lstm::Forward(const std::vector<Tensor>& xs,
                                  bool training) {
  assert(!xs.empty());
  const int n = xs.front().dim(0);
  const int h4 = 4 * hidden_;
  // Inference holds zero backward state: the per-step gate caches are only
  // materialized when training. Backward is undefined after an inference
  // forward.
  cache_.clear();
  if (training) cache_.reserve(xs.size());

  Tensor h({n, hidden_});
  Tensor c({n, hidden_});
  std::vector<Tensor> outputs;
  outputs.reserve(xs.size());

  for (const Tensor& x : xs) {
    assert(x.dim(0) == n && x.dim(1) == input_);
    Tensor z = MatMul(x, wx_.value);
    z += MatMul(h, wh_.value);
    {
      auto zd = z.data();
      const auto bd = b_.value.data();
      for (int r = 0; r < n; ++r) {
        for (int j = 0; j < h4; ++j) zd[std::size_t(r) * h4 + j] += bd[j];
      }
    }
    const auto zd = z.data();

    if (!training) {
      // Lean path: update the cell state in place; only h and c survive a
      // step. Gate arithmetic is identical to the caching path below.
      Tensor h_next({n, hidden_});
      auto cd = c.data();
      auto hd = h_next.data();
      for (int r = 0; r < n; ++r) {
        const std::size_t zrow = std::size_t(r) * h4;
        const std::size_t row = std::size_t(r) * hidden_;
        for (int j = 0; j < hidden_; ++j) {
          const float gi = 1.0f / (1.0f + std::exp(-zd[zrow + j]));
          const float gf = 1.0f / (1.0f + std::exp(-zd[zrow + hidden_ + j]));
          const float gg = std::tanh(zd[zrow + 2 * hidden_ + j]);
          const float go = 1.0f / (1.0f + std::exp(-zd[zrow + 3 * hidden_ + j]));
          const float cv = gf * cd[row + j] + gi * gg;
          cd[row + j] = cv;
          hd[row + j] = go * std::tanh(cv);
        }
      }
      h = std::move(h_next);
      outputs.push_back(h);
      continue;
    }

    StepCache sc;
    sc.x = x;
    sc.h_prev = h;
    sc.c_prev = c;
    sc.i = Tensor({n, hidden_});
    sc.f = Tensor({n, hidden_});
    sc.g = Tensor({n, hidden_});
    sc.o = Tensor({n, hidden_});
    sc.c = Tensor({n, hidden_});
    sc.tanh_c = Tensor({n, hidden_});

    const auto cp = sc.c_prev.data();
    for (int r = 0; r < n; ++r) {
      const std::size_t zrow = std::size_t(r) * h4;
      const std::size_t row = std::size_t(r) * hidden_;
      for (int j = 0; j < hidden_; ++j) {
        const float zi = zd[zrow + j];
        const float zf = zd[zrow + hidden_ + j];
        const float zg = zd[zrow + 2 * hidden_ + j];
        const float zo = zd[zrow + 3 * hidden_ + j];
        const float gi = 1.0f / (1.0f + std::exp(-zi));
        const float gf = 1.0f / (1.0f + std::exp(-zf));
        const float gg = std::tanh(zg);
        const float go = 1.0f / (1.0f + std::exp(-zo));
        const float cv = gf * cp[row + j] + gi * gg;
        sc.i.data()[row + j] = gi;
        sc.f.data()[row + j] = gf;
        sc.g.data()[row + j] = gg;
        sc.o.data()[row + j] = go;
        sc.c.data()[row + j] = cv;
        sc.tanh_c.data()[row + j] = std::tanh(cv);
      }
    }

    h = Tensor({n, hidden_});
    for (std::size_t k = 0; k < h.size(); ++k) {
      h[k] = sc.o[k] * sc.tanh_c[k];
    }
    c = sc.c;
    outputs.push_back(h);
    cache_.push_back(std::move(sc));
  }
  return outputs;
}

std::vector<Tensor> Lstm::Backward(const std::vector<Tensor>& grad_h) {
  assert(grad_h.size() == cache_.size() && !cache_.empty());
  const int n = cache_.front().x.dim(0);
  const int h4 = 4 * hidden_;

  std::vector<Tensor> grad_x(cache_.size());
  Tensor dh_next({n, hidden_});
  Tensor dc_next({n, hidden_});

  for (int t = int(cache_.size()) - 1; t >= 0; --t) {
    const StepCache& sc = cache_[std::size_t(t)];
    Tensor dh = grad_h[std::size_t(t)];
    dh += dh_next;

    Tensor dz({n, h4});
    Tensor dc_prev({n, hidden_});
    auto dzd = dz.data();
    for (int r = 0; r < n; ++r) {
      const std::size_t row = std::size_t(r) * hidden_;
      const std::size_t zrow = std::size_t(r) * h4;
      for (int j = 0; j < hidden_; ++j) {
        const float i = sc.i[row + j], f = sc.f[row + j], g = sc.g[row + j],
                    o = sc.o[row + j], tc = sc.tanh_c[row + j];
        const float dhv = dh[row + j];
        const float dcv = dhv * o * (1 - tc * tc) + dc_next[row + j];
        const float dov = dhv * tc;
        const float div = dcv * g;
        const float dfv = dcv * sc.c_prev[row + j];
        const float dgv = dcv * i;
        dzd[zrow + j] = div * i * (1 - i);
        dzd[zrow + hidden_ + j] = dfv * f * (1 - f);
        dzd[zrow + 2 * hidden_ + j] = dgv * (1 - g * g);
        dzd[zrow + 3 * hidden_ + j] = dov * o * (1 - o);
        dc_prev[row + j] = dcv * f;
      }
    }

    wx_.grad += MatMulTransposeA(sc.x, dz);
    wh_.grad += MatMulTransposeA(sc.h_prev, dz);
    {
      auto gb = b_.grad.data();
      for (int r = 0; r < n; ++r) {
        for (int j = 0; j < h4; ++j) gb[j] += dzd[std::size_t(r) * h4 + j];
      }
    }
    grad_x[std::size_t(t)] = MatMulTransposeB(dz, wx_.value);
    dh_next = MatMulTransposeB(dz, wh_.value);
    dc_next = std::move(dc_prev);
  }
  return grad_x;
}

std::size_t Lstm::ForwardMacs(int steps, int batch) const {
  const std::size_t per_step =
      std::size_t(batch) * (std::size_t(input_) + hidden_) * 4 * hidden_;
  return per_step * std::size_t(steps);
}

}  // namespace metro::nn
