#pragma once

// LSTM layer with truncated-BPTT training.
//
// The temporal-analysis module of Sec. III-B: consumes a sequence of feature
// vectors (one per video frame) and produces hidden states whose last element
// feeds the behavior classifier of Fig. 7.

#include <vector>

#include "nn/layer.h"

namespace metro::nn {

/// Single-direction LSTM over a sequence of (N, input) tensors.
///
/// Gate order in the packed weight matrices is [i, f, g, o]; forget-gate bias
/// is initialized to +1 (the standard trick for gradient flow).
class Lstm {
 public:
  Lstm(int input_size, int hidden_size, Rng& rng);

  int input_size() const { return input_; }
  int hidden_size() const { return hidden_; }

  /// Runs the cell across `xs` (time-major: T tensors of shape (N, input)).
  /// Returns the hidden state at every step. Initial h/c are zero.
  std::vector<Tensor> Forward(const std::vector<Tensor>& xs, bool training);

  /// Backpropagates through time. `grad_h[t]` is dL/dh_t (commonly zero for
  /// all but the last step); returns dL/dx_t per step.
  std::vector<Tensor> Backward(const std::vector<Tensor>& grad_h);

  std::vector<Param*> Params() { return {&wx_, &wh_, &b_}; }

  /// MACs for a T-step forward at batch size n.
  std::size_t ForwardMacs(int steps, int batch) const;

 private:
  struct StepCache {
    Tensor x, h_prev, c_prev;
    Tensor i, f, g, o;  // post-activation gates, each (N, H)
    Tensor c, tanh_c;
  };

  int input_, hidden_;
  Param wx_;  // (input, 4H)
  Param wh_;  // (hidden, 4H)
  Param b_;   // (4H)
  std::vector<StepCache> cache_;
};

}  // namespace metro::nn
