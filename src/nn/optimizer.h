#pragma once

// Gradient-descent optimizers.
//
// Optimizers hold per-parameter state keyed by the Param's address, so the
// same optimizer instance must be used with a stable parameter set.

#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace metro::nn {

/// Base optimizer: applies accumulated grads and zeroes them.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One update step over `params`; clears each param's gradient after use.
  virtual void Step(const std::vector<Param*>& params) = 0;

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  explicit Optimizer(float lr) : lr_(lr) {}
  float lr_;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.9f, float weight_decay = 0.0f)
      : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(const std::vector<Param*>& params) override;

 private:
  float momentum_, weight_decay_;
  std::unordered_map<Param*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(const std::vector<Param*>& params) override;

 private:
  struct Slot {
    Tensor m, v;
  };
  float beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::unordered_map<Param*, Slot> slots_;
};

/// Clips the global L2 norm of the gradients to `max_norm` (used by the LSTM
/// training loops to keep BPTT stable).
void ClipGradNorm(const std::vector<Param*>& params, float max_norm);

}  // namespace metro::nn
