#include "nn/inference.h"

#include <cassert>
#include <utility>

namespace metro::nn {

InferencePlan::InferencePlan(std::vector<Layer*> layers,
                             const Shape& input_shape)
    : layers_(std::move(layers)), input_shape_(input_shape) {
  steps_.reserve(layers_.size());
  Shape cur = input_shape_;
  // -1 means the current activation still lives in the caller's input
  // buffer, which the plan must never write to.
  int cur_slot = -1;
  for (Layer* layer : layers_) {
    Step step;
    step.layer = layer;
    step.in_shape = cur;
    step.out_shape = layer->OutputShape(cur);
    switch (layer->placement()) {
      case InferencePlacement::kAlias:
        step.kind = ExecKind::kReshape;
        step.dst_slot = -1;
        break;
      case InferencePlacement::kInPlace:
        if (cur_slot == -1) {
          // Elementwise over the caller's input: redirect into a slot
          // instead of mutating foreign storage (the kernels support
          // non-aliased out, so this costs nothing extra).
          step.kind = ExecKind::kCompute;
          step.dst_slot = 0;
        } else {
          step.kind = ExecKind::kInPlace;
          step.dst_slot = -1;
        }
        break;
      case InferencePlacement::kNewBuffer:
        step.kind = ExecKind::kCompute;
        step.dst_slot = cur_slot == 0 ? 1 : 0;
        break;
    }
    if (step.kind == ExecKind::kCompute) {
      cur_slot = step.dst_slot;
      slot_floats_[std::size_t(cur_slot)] =
          std::max(slot_floats_[std::size_t(cur_slot)],
                   tensor::NumElements(step.out_shape));
    }
    cur = step.out_shape;
    steps_.push_back(std::move(step));
  }
  output_shape_ = cur;
  output_slot_ = cur_slot;
}

InferencePlan InferencePlan::For(Sequential& model, const Shape& input_shape) {
  std::vector<Layer*> layers;
  layers.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    layers.push_back(&model.layer(i));
  }
  return InferencePlan(std::move(layers), input_shape);
}

InferenceSession::InferenceSession(Sequential& model, const Shape& input_shape,
                                   Workspace& arena, ThreadPool* pool)
    : arena_(&arena),
      pool_(pool),
      plan_(InferencePlan::For(model, input_shape)) {
  EnsureSlots();
}

InferenceSession::InferenceSession(std::vector<Layer*> layers,
                                   const Shape& input_shape, Workspace& arena,
                                   ThreadPool* pool)
    : arena_(&arena),
      pool_(pool),
      plan_(InferencePlan(std::move(layers), input_shape)) {
  EnsureSlots();
}

void InferenceSession::EnsureSlots() {
  for (int s = 0; s < 2; ++s) {
    const std::size_t need = plan_.slot_floats(s);
    if (need > slot_capacity_[s]) {
      // Growth abandons the old (smaller) span inside the arena; steady
      // state never reaches this after the largest batch has been seen.
      slots_[s] = arena_->Alloc(need);
      slot_capacity_[s] = need;
    }
  }

  // Prebuild each step's output view so the Run loop allocates nothing
  // (TensorView holds a Shape, i.e. a heap vector — building one per step
  // per run was the last steady-state allocation). Views are resolvable
  // ahead of time once the activation lives in an arena slot; the only
  // unresolvable case is a kReshape relabeling of the caller's input
  // before the first compute step, left empty and handled in Run.
  const auto& steps = plan_.steps();
  step_views_.assign(steps.size(), TensorView());
  std::span<float> cur;
  bool in_arena = false;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const auto& step = steps[i];
    if (step.kind == InferencePlan::ExecKind::kCompute) {
      cur = slots_[step.dst_slot].first(tensor::NumElements(step.out_shape));
      in_arena = true;
      step_views_[i] = TensorView(step.out_shape, cur);
    } else if (in_arena) {
      // kInPlace / kReshape over arena storage: same floats, new label.
      cur = cur.first(tensor::NumElements(step.out_shape));
      step_views_[i] = TensorView(step.out_shape, cur);
    }
  }
}

void InferenceSession::Replan(const Shape& input_shape) {
  plan_ = InferencePlan(plan_.layers(), input_shape);
  EnsureSlots();
}

METRO_NOALLOC
TensorView InferenceSession::Run(const TensorView& input) {
  bool replanned = false;
  if (input.shape() != plan_.input_shape()) {
    Replan(input.shape());  // cold path: plan + slot storage rebuilt
    replanned = true;
  }

  InferenceContext ctx{arena_, pool_};
  // Walk pointers between the input and the prebuilt step views; copying a
  // TensorView copies its Shape (a heap vector), so the loop avoids it.
  const TensorView* cur = &input;
  TensorView relabeled;  // only used for kReshape over the caller's input
  const auto& steps = plan_.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const InferencePlan::Step& step = steps[i];
    switch (step.kind) {
      case InferencePlan::ExecKind::kReshape:
        if (step_views_[i].empty()) {
          relabeled = cur->Reshaped(step.out_shape);
          cur = &relabeled;
        } else {
          cur = &step_views_[i];
        }
        break;
      case InferencePlan::ExecKind::kInPlace:
      case InferencePlan::ExecKind::kCompute: {
        const TensorView& out = step_views_[i];
        const Workspace::Mark scratch = arena_->Position();
        step.layer->ForwardInto(*cur, out, ctx);
        arena_->Rewind(scratch);
        cur = &out;
        break;
      }
    }
  }

  {
    MutexLock lock(stats_mu_);
    ++stats_.runs;
    if (replanned) ++stats_.replans;
  }
  return *cur;
}

Tensor InferenceSession::Run(const Tensor& input) {
  return Run(TensorView::OfConst(input)).ToTensor();
}

InferenceSession::Stats InferenceSession::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace metro::nn
