#pragma once

// Planned inference execution engine.
//
// Training executes eagerly (Layer::Forward heap-allocates outputs and caches
// backward state); inference should not pay for either. An InferencePlan
// walks a layer stack once, runs shape inference via Layer::OutputShape, and
// assigns every activation to one of two ping-pong arena slots, collapsing
// elementwise layers to in-place execution and reshapes/identities to free
// view relabelings. An InferenceSession binds a plan to a tensor::Workspace
// (and optional ThreadPool) and replays it allocation-free: after the first
// Run the arena is warm and steady-state inference performs zero heap
// allocations inside the engine.
//
// Several sessions may share one Workspace — the Fig. 5/7 split models bind
// their local and server halves to the same arena so the cut-point
// activation stays live while the second half runs (slot storage is
// allocated per session at construction; run-time scratch is rewound after
// every layer). The eager path `Forward(x, /*training=*/false)` remains the
// bit-exactness oracle: a session's output is bit-identical to it (asserted
// by tests/inference_parity_test.cpp).
//
// Thread model: Run() must be called by one thread at a time per session
// (sessions sharing a Workspace must also share that one caller thread);
// stats() is safe to call concurrently from other threads.

#include <cstdint>
#include <vector>

#include "nn/sequential.h"
#include "tensor/workspace.h"
#include "util/lock_ranks.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace metro::nn {

using tensor::TensorView;
using tensor::Workspace;

/// Shape-planned execution schedule for a straight-line layer stack.
class InferencePlan {
 public:
  /// How a planned step executes.
  enum class ExecKind {
    kReshape,  ///< no kernel: the current view is relabeled to out_shape
    kInPlace,  ///< elementwise kernel writing over the current buffer
    kCompute,  ///< kernel writing into ping-pong slot `dst_slot`
  };

  struct Step {
    Layer* layer;
    ExecKind kind;
    int dst_slot;  ///< 0 or 1 for kCompute; -1 otherwise
    Shape in_shape;
    Shape out_shape;
  };

  InferencePlan() = default;

  /// Plans `layers` for `input_shape` (leading dimension is the batch).
  InferencePlan(std::vector<Layer*> layers, const Shape& input_shape);

  /// Plans every layer of a Sequential.
  static InferencePlan For(Sequential& model, const Shape& input_shape);

  const std::vector<Step>& steps() const { return steps_; }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }

  /// Floats each ping-pong slot must hold for this plan.
  std::size_t slot_floats(int slot) const {
    return slot_floats_[std::size_t(slot)];
  }

  /// Slot index holding the final output (-1: the output aliases the input,
  /// which happens only for all-reshape plans).
  int output_slot() const { return output_slot_; }

  const std::vector<Layer*>& layers() const { return layers_; }

 private:
  std::vector<Layer*> layers_;
  std::vector<Step> steps_;
  Shape input_shape_;
  Shape output_shape_;
  std::size_t slot_floats_[2] = {0, 0};
  int output_slot_ = -1;
};

/// Replays an InferencePlan against arena-backed activation slots.
class InferenceSession {
 public:
  /// Binds `model` to `arena` at `input_shape`. Slot storage is carved out
  /// of the arena immediately, so sessions sharing an arena get disjoint,
  /// stable slots in construction order.
  InferenceSession(Sequential& model, const Shape& input_shape,
                   Workspace& arena, ThreadPool* pool = nullptr);

  /// Same, over an explicit layer list (for models that are not a single
  /// Sequential, e.g. a zoo block or a spliced stack).
  InferenceSession(std::vector<Layer*> layers, const Shape& input_shape,
                   Workspace& arena, ThreadPool* pool = nullptr);

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Executes the plan on `input`. The returned view lives in this session's
  /// arena slots and stays valid until the next Run() on this session (other
  /// sessions on the same arena do not clobber it). If the input shape
  /// differs from the planned one (batch growth/shrink), the session replans
  /// transparently; the arena only grows if the new shapes need more room.
  /// The definition carries METRO_NOALLOC: the steady-state walk is
  /// allocation-free (the replan branch delegates to the cold Replan()).
  TensorView Run(const TensorView& input) METRO_LIFETIME_BOUND;

  /// Convenience wrapper matching the eager API: copies the result out.
  Tensor Run(const Tensor& input);

  const InferencePlan& plan() const { return plan_; }
  Workspace& arena() METRO_LIFETIME_BOUND { return *arena_; }

  /// Run counters, readable from any thread while another runs the session.
  struct Stats {
    std::int64_t runs = 0;     ///< completed Run() calls
    std::int64_t replans = 0;  ///< runs that had to re-plan for a new shape
  };
  Stats stats() const METRO_EXCLUDES(stats_mu_);

 private:
  void EnsureSlots() METRO_EXCLUDES(stats_mu_);
  /// Cold path for Run(): rebuilds the plan (and slot storage) for a new
  /// input shape. Allocates; kept out of the METRO_NOALLOC Run body.
  void Replan(const Shape& input_shape);

  Workspace* arena_;
  ThreadPool* pool_;
  InferencePlan plan_;
  std::span<float> slots_[2];
  std::size_t slot_capacity_[2] = {0, 0};
  /// Per-step output views prebuilt at (re)plan time so Run() allocates
  /// nothing; empty for reshape steps over the caller's input.
  std::vector<TensorView> step_views_;

  mutable Mutex stats_mu_{lockrank::kNnInferenceStats, "nn.inference.stats"};
  Stats stats_ METRO_GUARDED_BY(stats_mu_);
};

}  // namespace metro::nn
