#include "nn/parallel.h"

#include <cassert>
#include <future>

namespace metro::nn {

DataParallelTrainer::DataParallelTrainer(std::function<Sequential()> factory,
                                         int replicas, ThreadPool& pool)
    : pool_(&pool) {
  assert(replicas >= 1);
  replicas_.reserve(std::size_t(replicas));
  for (int r = 0; r < replicas; ++r) replicas_.push_back(factory());
  // Architectural identity check: same parameter shapes everywhere.
  const auto master_params = replicas_.front().Params();
  for (auto& replica : replicas_) {
    const auto params = replica.Params();
    assert(params.size() == master_params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      assert(params[i]->value.shape() == master_params[i]->value.shape());
    }
  }
}

void DataParallelTrainer::Broadcast() {
  auto master_params = replicas_.front().Params();
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    auto params = replicas_[r].Params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = master_params[i]->value;
    }
  }
}

StepStats DataParallelTrainer::Step(const Tensor& x,
                                    const std::vector<int>& labels,
                                    Optimizer& optimizer) {
  const int n = x.dim(0);
  assert(int(labels.size()) == n);
  const int replicas = int(replicas_.size());
  Broadcast();

  // Shard boundaries (contiguous, first shards one larger on remainder).
  struct Shard {
    int begin = 0, end = 0;
    float loss = 0;
    int correct = 0;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(replicas));
  const int base = n / replicas, extra = n % replicas;
  int cursor = 0;
  for (int r = 0; r < replicas; ++r) {
    shards[std::size_t(r)].begin = cursor;
    cursor += base + (r < extra ? 1 : 0);
    shards[std::size_t(r)].end = cursor;
  }

  std::vector<std::future<void>> futures;
  for (int r = 0; r < replicas; ++r) {
    futures.push_back(pool_->Async([this, &x, &labels, &shards, n, r] {
      Shard& shard = shards[std::size_t(r)];
      const int rows = shard.end - shard.begin;
      if (rows <= 0) return;
      Tensor xr = x.SliceBatch(shard.begin, shard.end);
      std::vector<int> lr(labels.begin() + shard.begin,
                          labels.begin() + shard.end);
      Sequential& model = replicas_[std::size_t(r)];
      model.ZeroGrads();
      Tensor logits = model.Forward(xr, true);
      auto ce = tensor::CrossEntropyLoss(logits, lr);
      // CE grads are means over the shard; rescale so the cross-replica sum
      // is the full-batch mean.
      Tensor grad = ce.grad;
      grad *= float(rows) / float(n);
      model.Backward(grad);
      shard.loss = ce.loss * float(rows) / float(n);
      shard.correct = ce.correct;
    }));
  }
  for (auto& f : futures) f.get();

  // Reduce gradients into the master.
  auto master_params = replicas_.front().Params();
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    auto params = replicas_[r].Params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      master_params[i]->grad += params[i]->grad;
    }
  }
  optimizer.Step(master_params);

  StepStats stats;
  for (const Shard& shard : shards) {
    stats.loss += shard.loss;
    stats.accuracy += float(shard.correct);
  }
  stats.accuracy /= float(n);
  return stats;
}

}  // namespace metro::nn
