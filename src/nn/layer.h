#pragma once

// Trainable layer abstraction.
//
// Layers cache whatever the matching backward pass needs, so a layer instance
// services one forward/backward pair at a time (standard single-stream
// training). Parameters expose value+grad pairs the optimizers consume.

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace metro::nn {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;

/// Execution resources for the planned inference path (nn/inference.h).
struct InferenceContext {
  /// Per-run scratch arena; the session rewinds it after every layer, so a
  /// layer may Alloc freely for intermediates. May be null for the default
  /// (eager-materializing) path.
  tensor::Workspace* scratch = nullptr;
  /// Optional kernel parallelism (conv/matmul row fan-out). May be null.
  ThreadPool* pool = nullptr;
};

/// How a layer's planned output relates to its input buffer.
enum class InferencePlacement {
  kNewBuffer,  ///< writes a distinct output buffer (ping-pong slot)
  kInPlace,    ///< elementwise: `out` aliases the input view
  kAlias,      ///< pure reshape/identity: no kernel runs, the view is relabeled
};

/// A trainable parameter: value and the gradient accumulated by backward.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; `training` selects batch-vs-running stats in
  /// BatchNorm and enables Dropout.
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  /// Propagates `grad_out` (dL/dy) to dL/dx, accumulating parameter grads.
  ///
  /// Only defined after a `Forward(x, /*training=*/true)` call: the inference
  /// paths (`Forward(x, false)` and `ForwardInto`) hold zero backward state.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Inference-only forward into a preallocated view (the planned execution
  /// path — see nn/inference.h). Never caches backward state and never
  /// allocates in overriding layers (scratch comes from `ctx`). `out` aliases
  /// `x` when `placement()` is kInPlace; for kAlias layers this is never
  /// called. The default implementation materializes the eager
  /// `Forward(x, false)` result — correct for any subclass, just slow.
  virtual void ForwardInto(const TensorView& x, const TensorView& out,
                           InferenceContext& ctx);

  /// Buffer discipline `ForwardInto` follows (drives arena planning).
  virtual InferencePlacement placement() const {
    return InferencePlacement::kNewBuffer;
  }

  /// The layer's trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> Params() { return {}; }

  /// Non-trainable state that must ship with a checkpoint (BatchNorm
  /// running statistics); optimizers never touch these.
  virtual std::vector<Tensor*> Buffers() { return {}; }

  /// Short human-readable description ("conv3x3x16", "dense128").
  virtual std::string name() const = 0;

  /// Multiply-accumulate count of one forward pass at the given input shape —
  /// drives the Fig. 8 compute-cost ablation.
  virtual std::size_t ForwardMacs(const Shape& input_shape) const = 0;

  /// Output shape for a given input shape (batch dimension preserved).
  virtual Shape OutputShape(const Shape& input_shape) const = 0;
};

/// Fully connected layer: y = xW + b over (N, D) inputs.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const TensorView& x, const TensorView& out,
                   InferenceContext& ctx) override;
  std::vector<Param*> Params() override { return {&w_, &b_}; }
  std::string name() const override;
  std::size_t ForwardMacs(const Shape& input_shape) const override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  int in_, out_;
  Param w_, b_;
  Tensor cached_x_;
};

/// 2-D convolution layer over NHWC inputs.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const TensorView& x, const TensorView& out,
                   InferenceContext& ctx) override;
  std::vector<Param*> Params() override { return {&w_, &b_}; }
  std::string name() const override;
  std::size_t ForwardMacs(const Shape& input_shape) const override;
  Shape OutputShape(const Shape& input_shape) const override;

  int stride() const { return stride_; }
  int pad() const { return pad_; }

 private:
  int cin_, cout_, k_, stride_, pad_;
  Param w_, b_;
  Tensor cached_x_;
};

/// Max pooling (square window, no padding).
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(int k, int stride) : k_(k), stride_(stride) {}

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const TensorView& x, const TensorView& out,
                   InferenceContext& ctx) override;
  std::string name() const override;
  std::size_t ForwardMacs(const Shape& input_shape) const override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  int k_, stride_;
  Shape cached_in_shape_;
  tensor::MaxPoolResult cached_;
};

/// Global average pooling: NHWC -> (N, C).
class GlobalAvgPool final : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const TensorView& x, const TensorView& out,
                   InferenceContext& ctx) override;
  std::string name() const override { return "gap"; }
  std::size_t ForwardMacs(const Shape& input_shape) const override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  Shape cached_in_shape_;
};

/// Reshapes NHWC to (N, H*W*C).
class Flatten final : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  InferencePlacement placement() const override {
    return InferencePlacement::kAlias;
  }
  std::string name() const override { return "flatten"; }
  std::size_t ForwardMacs(const Shape&) const override { return 0; }
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  Shape cached_in_shape_;
};

enum class ActKind { kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Elementwise activation.
class Activation final : public Layer {
 public:
  explicit Activation(ActKind kind, float alpha = 0.1f)
      : kind_(kind), alpha_(alpha) {}

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const TensorView& x, const TensorView& out,
                   InferenceContext& ctx) override;
  InferencePlacement placement() const override {
    return InferencePlacement::kInPlace;
  }
  std::string name() const override;
  std::size_t ForwardMacs(const Shape&) const override { return 0; }
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

 private:
  ActKind kind_;
  float alpha_;
  Tensor cached_;  // input for (leaky)relu, output for sigmoid/tanh
};

/// Batch normalization over the trailing (channel/feature) dimension.
///
/// Works for both (N, C) and NHWC inputs; maintains running statistics for
/// inference, per the usual momentum update.
class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(int channels, float momentum = 0.9f, float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  void ForwardInto(const TensorView& x, const TensorView& out,
                   InferenceContext& ctx) override;
  InferencePlacement placement() const override {
    return InferencePlacement::kInPlace;
  }
  std::vector<Param*> Params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> Buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override;
  std::size_t ForwardMacs(const Shape& input_shape) const override;
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

  std::span<const float> running_mean() const { return running_mean_.data(); }
  std::span<const float> running_var() const { return running_var_.data(); }

 private:
  /// Eager-materializing fallback when no scratch arena is bound (heap
  /// scale/shift) — kept out of the METRO_NOALLOC hot path.
  void ForwardIntoNoScratch(const TensorView& x, const TensorView& out);

  int c_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Saved batch statistics and normalized input for backward.
  Tensor cached_xhat_;
  std::vector<float> batch_mean_, batch_inv_std_;
  std::size_t rows_ = 0;
};

/// Inverted dropout; identity at inference.
class Dropout final : public Layer {
 public:
  Dropout(float rate, Rng& rng) : rate_(rate), rng_(&rng) {}

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  InferencePlacement placement() const override {
    // Identity at inference: the planned path skips it entirely.
    return InferencePlacement::kAlias;
  }
  std::string name() const override;
  std::size_t ForwardMacs(const Shape&) const override { return 0; }
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

 private:
  float rate_;
  Rng* rng_;
  std::vector<float> mask_;
};

}  // namespace metro::nn
