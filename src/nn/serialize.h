#pragma once

// Model checkpointing.
//
// Parameters serialize in order (shape + raw floats + checksum), so a model
// can be trained on an "analysis server" and its first half shipped to an
// edge device — the deployment story of Figs. 5 and 7.

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/bytes.h"
#include "util/status.h"

namespace metro::nn {

/// Serializes `params` (shapes and values) with a trailing CRC32C.
std::string SaveParams(const std::vector<Param*>& params);

/// Restores into `params`; shapes must match exactly and the checksum must
/// verify, else kCorruption / kInvalidArgument.
Status LoadParams(const std::vector<Param*>& params, std::string_view bytes);

/// Full deployment checkpoint: trainable parameters plus non-trainable
/// buffers (BatchNorm running statistics). This is what must ship to an
/// edge device — LoadParams alone leaves a BatchNorm model normalizing
/// with fresh statistics.
std::string SaveCheckpoint(const std::vector<Param*>& params,
                           const std::vector<tensor::Tensor*>& buffers);

Status LoadCheckpoint(const std::vector<Param*>& params,
                      const std::vector<tensor::Tensor*>& buffers,
                      std::string_view bytes);

}  // namespace metro::nn
