#include "nn/layer.h"

#include <cmath>

namespace metro::nn {

using tensor::MatMul;
using tensor::MatMulTransposeA;
using tensor::MatMulTransposeB;

// ---------------------------------------------------------------- Layer

void Layer::ForwardInto(const TensorView& x, const TensorView& out,
                        InferenceContext& /*ctx*/) {
  // Fallback for subclasses without a planned kernel: run the eager
  // inference path on an owning copy and materialize into the view.
  Tensor y = Forward(x.ToTensor(), /*training=*/false);
  assert(y.size() == out.size());
  out.CopyFrom(y.data());
}

// ---------------------------------------------------------------- Dense

Dense::Dense(int in_features, int out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_("w", Tensor::HeNormal({in_features, out_features}, in_features, rng)),
      b_("b", Tensor({out_features})) {}

Tensor Dense::Forward(const Tensor& x, bool training) {
  assert(x.rank() == 2 && x.dim(1) == in_);
  if (training) cached_x_ = x;
  Tensor y = MatMul(x, w_.value);
  auto yd = y.data();
  const auto bd = b_.value.data();
  const int n = y.dim(0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_; ++j) yd[std::size_t(i) * out_ + j] += bd[j];
  }
  return y;
}

METRO_NOALLOC
void Dense::ForwardInto(const TensorView& x, const TensorView& out,
                        InferenceContext& ctx) {
  assert(x.rank() == 2 && x.dim(1) == in_);
  tensor::DenseForwardInto(x, w_.value, b_.value, out, ctx.pool);
}

Tensor Dense::Backward(const Tensor& grad_out) {
  assert(grad_out.rank() == 2 && grad_out.dim(1) == out_);
  // dW = x^T * dY, db = colsum(dY), dX = dY * W^T.
  w_.grad += MatMulTransposeA(cached_x_, grad_out);
  const int n = grad_out.dim(0);
  auto gb = b_.grad.data();
  const auto go = grad_out.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_; ++j) gb[j] += go[std::size_t(i) * out_ + j];
  }
  return MatMulTransposeB(grad_out, w_.value);
}

std::string Dense::name() const {
  return "dense" + std::to_string(in_) + "x" + std::to_string(out_);
}

std::size_t Dense::ForwardMacs(const Shape& input_shape) const {
  return std::size_t(input_shape[0]) * in_ * out_;
}

Shape Dense::OutputShape(const Shape& input_shape) const {
  return {input_shape[0], out_};
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      w_("w", Tensor::HeNormal({kernel, kernel, in_channels, out_channels},
                               kernel * kernel * in_channels, rng)),
      b_("b", Tensor({out_channels})) {}

Tensor Conv2d::Forward(const Tensor& x, bool training) {
  assert(x.rank() == 4 && x.dim(3) == cin_);
  if (training) cached_x_ = x;
  return tensor::Conv2dForward(x, w_.value, b_.value, stride_, pad_);
}

METRO_NOALLOC
void Conv2d::ForwardInto(const TensorView& x, const TensorView& out,
                         InferenceContext& ctx) {
  assert(x.rank() == 4 && x.dim(3) == cin_);
  tensor::Conv2dForwardInto(x, w_.value, b_.value, stride_, pad_, out,
                            ctx.pool);
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  auto grads =
      tensor::Conv2dBackward(cached_x_, w_.value, grad_out, stride_, pad_);
  w_.grad += grads.weights;
  b_.grad += grads.bias;
  return std::move(grads.input);
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(k_) + "x" + std::to_string(k_) + "x" +
         std::to_string(cout_) + (stride_ > 1 ? "/s" + std::to_string(stride_) : "");
}

std::size_t Conv2d::ForwardMacs(const Shape& input_shape) const {
  const Shape out = OutputShape(input_shape);
  return std::size_t(out[0]) * out[1] * out[2] * out[3] * k_ * k_ * cin_;
}

Shape Conv2d::OutputShape(const Shape& input_shape) const {
  const int oh = (input_shape[1] + 2 * pad_ - k_) / stride_ + 1;
  const int ow = (input_shape[2] + 2 * pad_ - k_) / stride_ + 1;
  return {input_shape[0], oh, ow, cout_};
}

// ---------------------------------------------------------------- MaxPool2d

Tensor MaxPool2d::Forward(const Tensor& x, bool training) {
  if (!training) {
    // Inference needs no argmax routing for backward — skip the bookkeeping.
    Tensor out(OutputShape(x.shape()));
    TensorView out_view(out);
    tensor::MaxPool2dForwardInto(TensorView::OfConst(x), k_, stride_, out_view);
    return out;
  }
  cached_in_shape_ = x.shape();
  cached_ = tensor::MaxPool2dForward(x, k_, stride_);
  return cached_.output;
}

METRO_NOALLOC
void MaxPool2d::ForwardInto(const TensorView& x, const TensorView& out,
                            InferenceContext& /*ctx*/) {
  tensor::MaxPool2dForwardInto(x, k_, stride_, out);
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  return tensor::MaxPool2dBackward(cached_in_shape_, cached_, grad_out);
}

std::string MaxPool2d::name() const {
  return "maxpool" + std::to_string(k_) + "/s" + std::to_string(stride_);
}

std::size_t MaxPool2d::ForwardMacs(const Shape& input_shape) const {
  // Comparisons, not MACs; count them anyway as unit work.
  const Shape out = OutputShape(input_shape);
  return std::size_t(out[0]) * out[1] * out[2] * out[3] * k_ * k_;
}

Shape MaxPool2d::OutputShape(const Shape& input_shape) const {
  const int oh = (input_shape[1] - k_) / stride_ + 1;
  const int ow = (input_shape[2] - k_) / stride_ + 1;
  return {input_shape[0], oh, ow, input_shape[3]};
}

// ---------------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::Forward(const Tensor& x, bool training) {
  if (training) cached_in_shape_ = x.shape();
  return tensor::GlobalAvgPoolForward(x);
}

METRO_NOALLOC
void GlobalAvgPool::ForwardInto(const TensorView& x, const TensorView& out,
                                InferenceContext& /*ctx*/) {
  tensor::GlobalAvgPoolForwardInto(x, out);
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_out) {
  return tensor::GlobalAvgPoolBackward(cached_in_shape_, grad_out);
}

std::size_t GlobalAvgPool::ForwardMacs(const Shape& input_shape) const {
  return tensor::NumElements(input_shape);
}

Shape GlobalAvgPool::OutputShape(const Shape& input_shape) const {
  return {input_shape[0], input_shape[3]};
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::Forward(const Tensor& x, bool training) {
  if (training) cached_in_shape_ = x.shape();
  return x.Reshape(OutputShape(x.shape()));
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  return grad_out.Reshape(cached_in_shape_);
}

Shape Flatten::OutputShape(const Shape& input_shape) const {
  int features = 1;
  for (std::size_t i = 1; i < input_shape.size(); ++i) features *= input_shape[i];
  return {input_shape[0], features};
}

// ---------------------------------------------------------------- Activation

Tensor Activation::Forward(const Tensor& x, bool training) {
  switch (kind_) {
    case ActKind::kRelu:
      if (training) cached_ = x;
      return tensor::ReluForward(x);
    case ActKind::kLeakyRelu:
      if (training) cached_ = x;
      return tensor::LeakyReluForward(x, alpha_);
    case ActKind::kSigmoid: {
      Tensor y = tensor::SigmoidForward(x);
      if (training) cached_ = y;
      return y;
    }
    case ActKind::kTanh: {
      Tensor y = tensor::TanhForward(x);
      if (training) cached_ = y;
      return y;
    }
  }
  return x;
}

METRO_NOALLOC
void Activation::ForwardInto(const TensorView& x, const TensorView& out,
                             InferenceContext& /*ctx*/) {
  switch (kind_) {
    case ActKind::kRelu:
      tensor::ReluInto(x, out);
      return;
    case ActKind::kLeakyRelu:
      tensor::LeakyReluInto(x, out, alpha_);
      return;
    case ActKind::kSigmoid:
      tensor::SigmoidInto(x, out);
      return;
    case ActKind::kTanh:
      tensor::TanhInto(x, out);
      return;
  }
}

Tensor Activation::Backward(const Tensor& grad_out) {
  switch (kind_) {
    case ActKind::kRelu:
      return tensor::ReluBackward(cached_, grad_out);
    case ActKind::kLeakyRelu:
      return tensor::LeakyReluBackward(cached_, grad_out, alpha_);
    case ActKind::kSigmoid:
      return tensor::SigmoidBackward(cached_, grad_out);
    case ActKind::kTanh:
      return tensor::TanhBackward(cached_, grad_out);
  }
  return grad_out;
}

std::string Activation::name() const {
  switch (kind_) {
    case ActKind::kRelu: return "relu";
    case ActKind::kLeakyRelu: return "lrelu";
    case ActKind::kSigmoid: return "sigmoid";
    case ActKind::kTanh: return "tanh";
  }
  return "act";
}

// ---------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(int channels, float momentum, float eps)
    : c_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("gamma", Tensor({channels}, 1.0f)),
      beta_("beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {}

Tensor BatchNorm::Forward(const Tensor& x, bool training) {
  assert(x.rank() >= 2 && x.dim(x.rank() - 1) == c_);
  const std::size_t rows = x.size() / std::size_t(c_);
  Tensor y(x.shape());
  const auto xd = x.data();
  auto yd = y.data();
  const auto g = gamma_.value.data();
  const auto b = beta_.value.data();

  if (!training) {
    // Shares the folded scale/shift formulation with the planned path
    // (BatchNormInferenceInto), keeping eager and planned bit-identical.
    std::vector<float> scale(static_cast<std::size_t>(c_));
    std::vector<float> shift(static_cast<std::size_t>(c_));
    tensor::BatchNormFoldScaleShift(g, b, running_mean_.data(),
                                    running_var_.data(), eps_, scale, shift);
    TensorView y_view(y);
    tensor::BatchNormInferenceInto(TensorView::OfConst(x), scale, shift,
                                   y_view);
    return y;
  }

  batch_mean_.assign(std::size_t(c_), 0.0f);
  batch_inv_std_.assign(std::size_t(c_), 0.0f);
  std::vector<double> mean(std::size_t(c_), 0.0), var(std::size_t(c_), 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int ch = 0; ch < c_; ++ch) mean[std::size_t(ch)] += xd[r * c_ + ch];
  }
  for (auto& m : mean) m /= double(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int ch = 0; ch < c_; ++ch) {
      const double d = xd[r * c_ + ch] - mean[std::size_t(ch)];
      var[std::size_t(ch)] += d * d;
    }
  }
  for (auto& v : var) v /= double(rows);

  auto rm = running_mean_.data();
  auto rv = running_var_.data();
  for (int ch = 0; ch < c_; ++ch) {
    batch_mean_[std::size_t(ch)] = float(mean[std::size_t(ch)]);
    batch_inv_std_[std::size_t(ch)] =
        1.0f / std::sqrt(float(var[std::size_t(ch)]) + eps_);
    rm[ch] = momentum_ * rm[ch] + (1 - momentum_) * float(mean[std::size_t(ch)]);
    rv[ch] = momentum_ * rv[ch] + (1 - momentum_) * float(var[std::size_t(ch)]);
  }

  cached_xhat_ = Tensor(x.shape());
  auto xh = cached_xhat_.data();
  for (std::size_t r = 0; r < rows; ++r) {
    for (int ch = 0; ch < c_; ++ch) {
      const std::size_t i = r * c_ + ch;
      xh[i] = (xd[i] - batch_mean_[std::size_t(ch)]) * batch_inv_std_[std::size_t(ch)];
      yd[i] = g[ch] * xh[i] + b[ch];
    }
  }
  rows_ = rows;
  return y;
}

METRO_NOALLOC
void BatchNorm::ForwardInto(const TensorView& x, const TensorView& out,
                            InferenceContext& ctx) {
  assert(x.rank() >= 2 && x.dim(x.rank() - 1) == c_);
  if (!ctx.scratch) {
    ForwardIntoNoScratch(x, out);  // cold path: heap-backed scale/shift
    return;
  }
  const std::span<float> scale = ctx.scratch->Alloc(std::size_t(c_));
  const std::span<float> shift = ctx.scratch->Alloc(std::size_t(c_));
  tensor::BatchNormFoldScaleShift(gamma_.value.data(), beta_.value.data(),
                                  running_mean_.data(), running_var_.data(),
                                  eps_, scale, shift);
  tensor::BatchNormInferenceInto(x, scale, shift, out);
}

void BatchNorm::ForwardIntoNoScratch(const TensorView& x,
                                     const TensorView& out) {
  std::vector<float> fallback(std::size_t(c_) * 2);
  const std::span<float> scale =
      std::span<float>(fallback).first(std::size_t(c_));
  const std::span<float> shift =
      std::span<float>(fallback).last(std::size_t(c_));
  tensor::BatchNormFoldScaleShift(gamma_.value.data(), beta_.value.data(),
                                  running_mean_.data(), running_var_.data(),
                                  eps_, scale, shift);
  tensor::BatchNormInferenceInto(x, scale, shift, out);
}

Tensor BatchNorm::Backward(const Tensor& grad_out) {
  // Standard batch-norm backward over the cached normalized activations.
  const std::size_t rows = rows_;
  assert(rows > 0 && grad_out.size() == rows * std::size_t(c_));
  Tensor grad_in(grad_out.shape());
  const auto go = grad_out.data();
  const auto xh = cached_xhat_.data();
  auto gi = grad_in.data();
  auto gg = gamma_.grad.data();
  auto gb = beta_.grad.data();
  const auto g = gamma_.value.data();

  std::vector<double> sum_go(std::size_t(c_), 0.0), sum_go_xh(std::size_t(c_), 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int ch = 0; ch < c_; ++ch) {
      const std::size_t i = r * c_ + ch;
      sum_go[std::size_t(ch)] += go[i];
      sum_go_xh[std::size_t(ch)] += double(go[i]) * xh[i];
    }
  }
  for (int ch = 0; ch < c_; ++ch) {
    gg[ch] += float(sum_go_xh[std::size_t(ch)]);
    gb[ch] += float(sum_go[std::size_t(ch)]);
  }
  const double invn = 1.0 / double(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (int ch = 0; ch < c_; ++ch) {
      const std::size_t i = r * c_ + ch;
      const double term = double(go[i]) - sum_go[std::size_t(ch)] * invn -
                          double(xh[i]) * sum_go_xh[std::size_t(ch)] * invn;
      gi[i] = float(double(g[ch]) * batch_inv_std_[std::size_t(ch)] * term);
    }
  }
  return grad_in;
}

std::string BatchNorm::name() const { return "bn" + std::to_string(c_); }

std::size_t BatchNorm::ForwardMacs(const Shape& input_shape) const {
  return tensor::NumElements(input_shape) * 2;
}

// ---------------------------------------------------------------- Dropout

Tensor Dropout::Forward(const Tensor& x, bool training) {
  if (!training || rate_ <= 0.0f) {
    mask_.clear();
    return x;
  }
  Tensor y = x;
  mask_.assign(x.size(), 0.0f);
  const float scale = 1.0f / (1.0f - rate_);
  auto yd = y.data();
  for (std::size_t i = 0; i < yd.size(); ++i) {
    if (rng_->Bernoulli(rate_)) {
      yd[i] = 0.0f;
    } else {
      mask_[i] = scale;
      yd[i] *= scale;
    }
  }
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor g = grad_out;
  auto gd = g.data();
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= mask_[i];
  return g;
}

std::string Dropout::name() const {
  return "dropout" + std::to_string(int(rate_ * 100));
}

}  // namespace metro::nn
