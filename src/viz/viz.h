#pragma once

// Visualization layer (Sec. II-C3: "our cyberinfrastructure provides
// visualization capability for displaying both raw and analyzed data" —
// the D3 role).
//
// Two renderers: GeoJSON export (what a web map like the paper's D3 site
// would consume) and an ASCII density heatmap for terminal-side inspection
// of hot-spots, camera coverage, and incident clusters.

#include <string>
#include <vector>

#include "geo/geo.h"

namespace metro::viz {

/// One point feature to plot.
struct GeoFeature {
  geo::LatLon location;
  std::string label;
  double value = 1.0;
};

/// A GeoJSON FeatureCollection of point features (label/value properties).
std::string ToGeoJson(const std::vector<GeoFeature>& features);

/// Terminal density map over a bounding box.
class AsciiHeatmap {
 public:
  /// `cols` x `rows` character cells covering `box`.
  AsciiHeatmap(const geo::BoundingBox& box, int cols = 48, int rows = 18);

  /// Accumulates weight at a location (outside-the-box points ignored).
  void Add(const geo::LatLon& p, double weight = 1.0);

  /// Marks a fixed glyph at a location (e.g. 'C' for a camera); markers
  /// overlay the density ramp.
  void Mark(const geo::LatLon& p, char glyph);

  /// Renders rows top-to-bottom (north at the top) using a density ramp.
  std::string Render() const;

  double max_density() const;

 private:
  bool CellFor(const geo::LatLon& p, int& col, int& row) const;

  geo::BoundingBox box_;
  int cols_, rows_;
  std::vector<double> density_;
  std::vector<char> markers_;
};

}  // namespace metro::viz
