#include "viz/viz.h"

#include <algorithm>
#include <sstream>

namespace metro::viz {

std::string ToGeoJson(const std::vector<GeoFeature>& features) {
  std::ostringstream os;
  os << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t i = 0; i < features.size(); ++i) {
    const GeoFeature& f = features[i];
    if (i) os << ',';
    std::string label;
    label.reserve(f.label.size());
    for (const char c : f.label) {
      if (c == '"' || c == '\\') label.push_back('\\');
      label.push_back(c);
    }
    os << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
          "\"coordinates\":["
       << f.location.lon << ',' << f.location.lat
       << "]},\"properties\":{\"label\":\"" << label
       << "\",\"value\":" << f.value << "}}";
  }
  os << "]}";
  return os.str();
}

AsciiHeatmap::AsciiHeatmap(const geo::BoundingBox& box, int cols, int rows)
    : box_(box),
      cols_(std::max(cols, 1)),
      rows_(std::max(rows, 1)),
      density_(std::size_t(cols_) * rows_, 0.0),
      markers_(std::size_t(cols_) * rows_, '\0') {}

bool AsciiHeatmap::CellFor(const geo::LatLon& p, int& col, int& row) const {
  if (!box_.Contains(p)) return false;
  const double fx =
      (p.lon - box_.min_lon) / std::max(box_.max_lon - box_.min_lon, 1e-12);
  const double fy =
      (p.lat - box_.min_lat) / std::max(box_.max_lat - box_.min_lat, 1e-12);
  col = std::min(int(fx * cols_), cols_ - 1);
  row = std::min(int(fy * rows_), rows_ - 1);
  return true;
}

void AsciiHeatmap::Add(const geo::LatLon& p, double weight) {
  int col, row;
  if (CellFor(p, col, row)) {
    density_[std::size_t(row) * cols_ + std::size_t(col)] += weight;
  }
}

void AsciiHeatmap::Mark(const geo::LatLon& p, char glyph) {
  int col, row;
  if (CellFor(p, col, row)) {
    markers_[std::size_t(row) * cols_ + std::size_t(col)] = glyph;
  }
}

double AsciiHeatmap::max_density() const {
  double mx = 0;
  for (const double d : density_) mx = std::max(mx, d);
  return mx;
}

std::string AsciiHeatmap::Render() const {
  static constexpr std::string_view kRamp = " .:-=+*#%@";
  const double mx = std::max(max_density(), 1e-12);
  std::string out;
  out.reserve(std::size_t(rows_) * (cols_ + 3));
  // North (max_lat) at the top: iterate rows from last to first.
  for (int row = rows_ - 1; row >= 0; --row) {
    out.push_back('|');
    for (int col = 0; col < cols_; ++col) {
      const std::size_t idx = std::size_t(row) * cols_ + std::size_t(col);
      if (markers_[idx] != '\0') {
        out.push_back(markers_[idx]);
        continue;
      }
      const auto level = std::min<std::size_t>(
          std::size_t(density_[idx] / mx * double(kRamp.size())),
          kRamp.size() - 1);
      out.push_back(kRamp[level]);
    }
    out += "|\n";
  }
  return out;
}

}  // namespace metro::viz
