#pragma once

// Distributed file system (Sec. II-C2's HDFS role).
//
// A NameNode tracks the namespace (path -> block list) and block placement;
// DataNodes hold checksummed block replicas. Files are written once, split
// into fixed-size blocks, and replicated across distinct DataNodes. Reads
// verify checksums and fail over to healthy replicas; a replication monitor
// re-replicates under-replicated blocks after node failures — the mechanism
// behind the availability claim the paper leans on ("even though some
// machines may fail, we can still access the data").

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace metro::dfs {

/// Globally unique block identifier.
using BlockId = std::uint64_t;

/// Cluster-level tuning knobs.
struct DfsConfig {
  std::size_t block_size = 64 * 1024;  ///< bytes per block
  int replication = 3;                 ///< target replicas per block
};

/// File metadata returned by Stat.
struct FileInfo {
  std::string path;
  std::size_t size = 0;
  int num_blocks = 0;
  int replication = 0;
};

/// One storage node: block id -> (data, checksum).
///
/// DataNodes are owned by the Cluster; they are exposed for failure
/// injection in tests and benches.
class DataNode {
 public:
  explicit DataNode(int id) : id_(id) {}

  int id() const { return id_; }
  bool alive() const { return alive_; }

  /// Stops serving reads/writes (process crash). Stored data survives and
  /// becomes visible again on Revive (disk intact across restart).
  void Kill() { alive_ = false; }
  void Revive() { alive_ = true; }

  Status StoreBlock(BlockId block, std::string data);
  Result<std::string> ReadBlock(BlockId block) const;
  Status DeleteBlock(BlockId block);
  bool HasBlock(BlockId block) const;

  /// Flips bits in a stored replica (fault injection for checksum tests).
  Status CorruptBlock(BlockId block);

  /// Fails the next `n` StoreBlock calls with kUnavailable (write-path fault
  /// injection: a full disk or a crash mid-handshake). The node stays alive
  /// for reads, so the NameNode's placement still selects it.
  void FailNextStores(int n);

  std::size_t num_blocks() const;
  std::size_t bytes_stored() const;

 private:
  struct StoredBlock {
    std::string data;
    std::uint32_t crc = 0;
  };

  int id_;
  bool alive_ = true;
  int fail_stores_ = 0;  // guarded by mu_
  mutable std::mutex mu_;
  std::unordered_map<BlockId, StoredBlock> blocks_;
  std::size_t bytes_ = 0;
};

/// The whole cluster: NameNode metadata plus its DataNodes.
class Cluster {
 public:
  Cluster(int num_datanodes, DfsConfig config, std::uint64_t seed = 42);

  const DfsConfig& config() const { return config_; }
  int num_datanodes() const { return int(nodes_.size()); }
  DataNode& node(int i) { return *nodes_[std::size_t(i)]; }

  /// Attaches a tracer: Create/Read record `dfs.write`/`dfs.read` spans
  /// tagged with path, byte count, and replica failovers. Set before
  /// concurrent use; pass nullptr to detach.
  void SetTracer(obs::SpanCollector* spans) { spans_ = spans; }

  /// Writes a complete file (fails if the path exists). With a tracer
  /// attached the write is spanned: under a valid `parent` as an overlay of
  /// the caller's trace, otherwise as a stage span in a fresh trace.
  Status Create(const std::string& path, std::string_view data,
                obs::TraceContext parent = {});

  /// Reads a complete file, failing over across replicas; kUnavailable if a
  /// block has no healthy, uncorrupted replica. Traced like Create.
  Result<std::string> Read(const std::string& path,
                           obs::TraceContext parent = {}) const;

  Status Delete(const std::string& path);
  Result<FileInfo> Stat(const std::string& path) const;

  /// Paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// One pass of the replication monitor: finds blocks whose live replica
  /// count is below target and copies them to healthy nodes. Returns the
  /// number of new replicas created.
  int RunReplicationPass();

  /// Count of blocks currently below the replication target.
  int UnderReplicatedBlocks() const;

  /// Gracefully drains a node: copies every replica it holds onto other
  /// healthy nodes, then drops the node's copies. The node stays alive but
  /// is excluded from future placement until RecommissionNode. Returns the
  /// number of replicas moved; fails if the cluster cannot absorb them.
  Result<int> DecommissionNode(int node);

  /// Returns a decommissioned node to placement duty.
  Status RecommissionNode(int node);

  /// One balancing pass: moves block replicas from the most-loaded to the
  /// least-loaded healthy nodes until the byte imbalance ratio is at most
  /// `threshold` (max/min, with min floored at one block). Returns moves.
  int BalanceCluster(double threshold = 1.5);

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct BlockMeta {
    std::vector<int> replicas;  ///< datanode ids
    std::size_t size = 0;
  };
  struct FileMeta {
    std::vector<BlockId> blocks;
    std::size_t size = 0;
  };

  /// Picks `n` distinct healthy nodes, least-loaded first with random
  /// tie-breaking (stand-in for rack awareness).
  std::vector<int> PlaceReplicas(int n, const std::vector<int>& exclude) const;

  Status CreateImpl(const std::string& path, std::string_view data,
                    std::int64_t* failovers);
  Result<std::string> ReadImpl(const std::string& path,
                               std::int64_t* failovers) const;

  /// Opens the span for a traced operation (spans_ must be non-null).
  obs::Span BeginOp(const char* name, const obs::TraceContext& parent) const;

  DfsConfig config_;
  obs::SpanCollector* spans_ = nullptr;
  std::vector<std::unique_ptr<DataNode>> nodes_;
  std::vector<char> decommissioned_;
  mutable std::mutex mu_;  // namespace + block map
  std::map<std::string, FileMeta> namespace_;
  std::unordered_map<BlockId, BlockMeta> block_map_;
  BlockId next_block_ = 1;
  mutable Rng rng_;
  mutable MetricsRegistry metrics_;
};

}  // namespace metro::dfs
