#pragma once

// Distributed file system (Sec. II-C2's HDFS role).
//
// A NameNode tracks the namespace (path -> block list) and block placement;
// DataNodes hold checksummed block replicas. Files are written once, split
// into fixed-size blocks, and replicated across distinct DataNodes. Reads
// verify checksums and fail over to healthy replicas; a replication monitor
// re-replicates under-replicated blocks after node failures — the mechanism
// behind the availability claim the paper leans on ("even though some
// machines may fail, we can still access the data").

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/lock_ranks.h"
#include "util/sync.h"

namespace metro::dfs {

/// Globally unique block identifier.
using BlockId = std::uint64_t;

/// Cluster-level tuning knobs.
struct DfsConfig {
  std::size_t block_size = 64 * 1024;  ///< bytes per block
  int replication = 3;                 ///< target replicas per block
};

/// File metadata returned by Stat.
struct FileInfo {
  std::string path;
  std::size_t size = 0;
  int num_blocks = 0;
  int replication = 0;
};

/// One storage node: block id -> (data, checksum).
///
/// DataNodes are owned by the Cluster; they are exposed for failure
/// injection in tests and benches.
class DataNode {
 public:
  explicit DataNode(int id) : id_(id) {}

  int id() const { return id_; }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Stops serving reads/writes (process crash). Stored data survives and
  /// becomes visible again on Revive (disk intact across restart). Atomic so
  /// fault injection from a test/chaos thread races cleanly with serving.
  void Kill() { alive_.store(false, std::memory_order_release); }
  void Revive() { alive_.store(true, std::memory_order_release); }

  Status StoreBlock(BlockId block, std::string data) METRO_EXCLUDES(mu_);
  Result<std::string> ReadBlock(BlockId block) const METRO_EXCLUDES(mu_);
  Status DeleteBlock(BlockId block) METRO_EXCLUDES(mu_);
  bool HasBlock(BlockId block) const METRO_EXCLUDES(mu_);

  /// Flips bits in a stored replica (fault injection for checksum tests).
  Status CorruptBlock(BlockId block) METRO_EXCLUDES(mu_);

  /// Fails the next `n` StoreBlock calls with kUnavailable (write-path fault
  /// injection: a full disk or a crash mid-handshake). The node stays alive
  /// for reads, so the NameNode's placement still selects it.
  void FailNextStores(int n) METRO_EXCLUDES(mu_);

  std::size_t num_blocks() const METRO_EXCLUDES(mu_);
  std::size_t bytes_stored() const METRO_EXCLUDES(mu_);

 private:
  struct StoredBlock {
    std::string data;
    std::uint32_t crc = 0;
  };

  int id_;
  std::atomic<bool> alive_{true};  // liveness flag flipped by fault injectors
  mutable Mutex mu_{lockrank::kDfsDataNode, "dfs.datanode"};
  int fail_stores_ METRO_GUARDED_BY(mu_) = 0;
  std::unordered_map<BlockId, StoredBlock> blocks_ METRO_GUARDED_BY(mu_);
  std::size_t bytes_ METRO_GUARDED_BY(mu_) = 0;
};

/// The whole cluster: NameNode metadata plus its DataNodes.
class Cluster {
 public:
  Cluster(int num_datanodes, DfsConfig config, std::uint64_t seed = 42);

  const DfsConfig& config() const { return config_; }
  int num_datanodes() const { return int(nodes_.size()); }
  DataNode& node(int i) { return *nodes_[std::size_t(i)]; }

  /// Attaches a tracer: Create/Read record `dfs.write`/`dfs.read` spans
  /// tagged with path, byte count, and replica failovers. Set before
  /// concurrent use; pass nullptr to detach.
  void SetTracer(obs::SpanCollector* spans) { spans_ = spans; }

  /// Writes a complete file (fails if the path exists). With a tracer
  /// attached the write is spanned: under a valid `parent` as an overlay of
  /// the caller's trace, otherwise as a stage span in a fresh trace.
  Status Create(const std::string& path, std::string_view data,
                obs::TraceContext parent = {});

  /// Reads a complete file, failing over across replicas; kUnavailable if a
  /// block has no healthy, uncorrupted replica. Traced like Create.
  Result<std::string> Read(const std::string& path,
                           obs::TraceContext parent = {}) const;

  Status Delete(const std::string& path);
  Result<FileInfo> Stat(const std::string& path) const;

  /// Paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// One pass of the replication monitor: finds blocks whose live replica
  /// count is below target and copies them to healthy nodes. Returns the
  /// number of new replicas created.
  int RunReplicationPass();

  /// Count of blocks currently below the replication target.
  int UnderReplicatedBlocks() const;

  /// Gracefully drains a node: copies every replica it holds onto other
  /// healthy nodes, then drops the node's copies. The node stays alive but
  /// is excluded from future placement until RecommissionNode. Returns the
  /// number of replicas moved; fails if the cluster cannot absorb them.
  Result<int> DecommissionNode(int node);

  /// Returns a decommissioned node to placement duty.
  Status RecommissionNode(int node);

  /// One balancing pass: moves block replicas from the most-loaded to the
  /// least-loaded healthy nodes until the byte imbalance ratio is at most
  /// `threshold` (max/min, with min floored at one block). Returns moves.
  int BalanceCluster(double threshold = 1.5);

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct BlockMeta {
    std::vector<int> replicas;  ///< datanode ids
    std::size_t size = 0;
  };
  struct FileMeta {
    std::vector<BlockId> blocks;
    std::size_t size = 0;
  };

  /// Picks `n` distinct healthy nodes, least-loaded first with random
  /// tie-breaking (stand-in for rack awareness).
  std::vector<int> PlaceReplicas(int n, const std::vector<int>& exclude) const
      METRO_REQUIRES(mu_);

  Status CreateImpl(const std::string& path, std::string_view data,
                    std::int64_t* failovers) METRO_EXCLUDES(mu_);
  Result<std::string> ReadImpl(const std::string& path,
                               std::int64_t* failovers) const
      METRO_EXCLUDES(mu_);

  /// Opens the span for a traced operation (spans_ must be non-null).
  obs::Span BeginOp(const char* name, const obs::TraceContext& parent) const;

  DfsConfig config_;
  obs::SpanCollector* spans_ = nullptr;  // set before concurrent use
  std::vector<std::unique_ptr<DataNode>> nodes_;
  // Lock order: mu_ before any DataNode::mu_ (CreateImpl stores blocks while
  // holding the namespace lock); never take mu_ from inside a DataNode.
  mutable Mutex mu_{lockrank::kDfsCluster, "dfs.cluster"};  // namespace + block map
  std::vector<char> decommissioned_ METRO_GUARDED_BY(mu_);
  std::map<std::string, FileMeta> namespace_ METRO_GUARDED_BY(mu_);
  std::unordered_map<BlockId, BlockMeta> block_map_ METRO_GUARDED_BY(mu_);
  BlockId next_block_ METRO_GUARDED_BY(mu_) = 1;
  mutable Rng rng_ METRO_GUARDED_BY(mu_);
  mutable MetricsRegistry metrics_;
};

}  // namespace metro::dfs
